// Ablation A1 (DESIGN.md): BlueTree's blocking factor alpha. The paper
// fixes alpha = 2 at hardware-development time (Sec. 2.2) -- this sweep
// shows how the heuristic's one-knob priority trades the two subtree
// halves off against each other, and that no alpha setting reaches
// BlueScale's deadline-aware behaviour.
//
//   $ ./bench/ablation_alpha [--trials N] [--cycles N] [--threads N]
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 8;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults, {bench_arg::trials, bench_arg::cycles},
        "Ablation A1: BlueTree blocking factor alpha");

    std::printf("Ablation A1: BlueTree blocking factor alpha "
                "(16 clients, utilization 70-90%%)\n\n");

    stats::table t({"config", "blocking lat (us)", "worst (us)",
                    "miss ratio"});
    for (std::uint32_t alpha : {1u, 2u, 4u, 8u}) {
        fig6_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.threads = opts.threads;
        cfg.bluetree_alpha = alpha;
        const auto r = run_fig6(ic_kind::bluetree, cfg);
        t.add_row({"BlueTree alpha=" + std::to_string(alpha),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    {
        fig6_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.threads = opts.threads;
        const auto r = run_fig6(ic_kind::bluescale, cfg);
        t.add_row({"BlueScale (reference)",
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    t.print();
    return 0;
}
