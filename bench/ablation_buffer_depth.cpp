// Ablation A2 (DESIGN.md): depth of the SE's random access buffers. The
// paper's register-chain buffer is a real silicon cost (Table 1's LUT
// delta over BlueTree); this sweep measures what the depth buys in
// blocking latency and deadline misses.
//
//   $ ./bench/ablation_buffer_depth [--trials N] [--cycles N] [--threads N]
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 8;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults, {bench_arg::trials, bench_arg::cycles},
        "Ablation A2: BlueScale random-access-buffer depth");

    std::printf("Ablation A2: BlueScale random-access-buffer depth "
                "(16 clients, utilization 70-90%%)\n\n");

    stats::table t({"buffer depth", "blocking lat (us)", "worst (us)",
                    "miss ratio"});
    for (std::size_t depth : {2u, 4u, 8u, 16u, 32u}) {
        fig6_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.threads = opts.threads;
        core::se_params se;
        se.buffer_depth = depth;
        cfg.bluescale_se = se;
        const auto r = run_fig6(ic_kind::bluescale, cfg);
        t.add_row({std::to_string(depth),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    t.print();
    return 0;
}
