// Ablation A7 (DESIGN.md): Meshed BlueScale memory channels. With one
// channel the memory system saturates at 1/initiation_interval
// transactions per cycle; interleaving the address space across K
// channels multiplies the ceiling while each channel keeps BlueScale's
// per-channel scheduling. Reports sustained throughput and latency for a
// saturating streaming workload.
//
//   $ ./bench/ablation_channels [--cycles N]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/meshed_bluescale.hpp"
#include "harness/bench_cli.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

using namespace bluescale;

int main(int argc, char** argv) {
    harness::bench_options defaults;
    defaults.measure_cycles = 40'000;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults, {harness::bench_arg::cycles},
        "Ablation A7: Meshed BlueScale channel count");
    const cycle_t cycles = opts.measure_cycles;
    constexpr std::uint32_t n_clients = 16;

    std::printf("Ablation A7: Meshed BlueScale channel count under a "
                "saturating streaming workload (16 clients)\n\n");

    stats::table t({"channels", "serviced", "throughput (tx/cycle)",
                    "mean latency (cyc)", "p99 latency (cyc)"});
    for (std::uint32_t channels : {1u, 2u, 4u}) {
        core::meshed_config cfg;
        cfg.channels = channels;
        cfg.interleave_bytes = 64;
        core::meshed_bluescale_ic net(n_clients, cfg);

        stats::sample_set latency;
        net.set_response_handler([&](mem_request&& r) {
            latency.add(static_cast<double>(r.total_latency()));
        });

        simulator sim;
        sim.add(net);
        std::vector<std::uint64_t> next_addr(n_clients);
        for (std::uint32_t c = 0; c < n_clients; ++c) {
            next_addr[c] = static_cast<std::uint64_t>(c) << 24;
        }
        request_id_t id = 0;
        for (cycle_t now = 0; now < cycles; ++now) {
            for (client_id_t c = 0; c < n_clients; ++c) {
                if (net.client_can_accept(c)) {
                    mem_request r;
                    r.id = id++;
                    r.client = c;
                    r.addr = next_addr[c];
                    next_addr[c] += 64;
                    r.issue_cycle = now;
                    r.abs_deadline = now + 100'000;
                    r.level_deadline = r.abs_deadline;
                    net.client_push(c, std::move(r));
                }
            }
            sim.step();
        }
        t.add_row({std::to_string(channels),
                   std::to_string(net.total_serviced()),
                   stats::table::num(
                       static_cast<double>(net.total_serviced()) /
                           static_cast<double>(cycles),
                       3),
                   stats::table::num(latency.mean(), 1),
                   stats::table::num(latency.percentile(99), 1)});
    }
    t.print();
    std::printf("\nExpected: throughput ~= channels / "
                "initiation_interval, bounded by the per-cycle injection "
                "limit.\n");
    return 0;
}
