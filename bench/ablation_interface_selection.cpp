// Ablation A3 (DESIGN.md): interface-selection cost and quality. Sweeps
// the per-client task count and reports the selected root bandwidth, the
// algorithm's work (schedulability tests / dbf points), the estimated
// FSM runtime of the paper's hardware interface selector (Sec. 4.3), and
// the size of the incremental update when one client's tasks change
// (Sec. 3.2's distributed-refresh property).
//
//   $ ./bench/ablation_interface_selection [--trials N] [--threads N]
#include <cstdio>

#include "analysis/tree_analysis.hpp"
#include "core/interface_selector.hpp"
#include "harness/bench_cli.hpp"
#include "sim/rng.hpp"
#include "sim/trial_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"

using namespace bluescale;

namespace {

struct selection_trial {
    bool feasible = false;
    double root_bandwidth = 0.0;
    std::uint64_t tests_run = 0;
    std::uint64_t points_checked = 0;
    std::uint64_t ses_updated = 0;
};

selection_trial run_trial(std::uint32_t n_tasks, std::uint32_t trial) {
    rng gen(1000 + trial);
    workload::taskset_params params;
    params.n_tasks = n_tasks;
    auto sets = workload::make_client_tasksets(gen, 16, 0.8, 0.8, params);
    std::vector<analysis::task_set> rt;
    for (const auto& s : sets) {
        rt.push_back(workload::to_rt_tasks(s));
    }

    analysis::sched_test_stats work;
    analysis::analysis_context ctx;
    ctx.sched.stats = &work;
    auto sel = analysis::select_tree_interfaces(rt, ctx);

    selection_trial out;
    out.feasible = sel.feasible;
    out.root_bandwidth = sel.root_bandwidth;
    out.tests_run = work.tests_run;
    out.points_checked = work.points_checked;

    // Incremental refresh: change client 0's tasks (evaluated const-ly,
    // then applied -- the service-style two-step shape).
    rng rand2(5000 + trial);
    auto new_tasks =
        workload::to_rt_tasks(workload::make_taskset(rand2, params));
    auto update =
        analysis::evaluate_client_update(sel, rt, 0, new_tasks, ctx);
    out.ses_updated = update.ses_changed;
    analysis::apply_client_update(std::move(update), sel, rt);
    return out;
}

} // namespace

int main(int argc, char** argv) {
    harness::bench_options defaults;
    defaults.trials = 10;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults, {harness::bench_arg::trials},
        "Ablation A3: interface selection cost/quality");
    const sim::trial_runner runner(opts.threads);

    std::printf("Ablation A3: interface selection cost/quality "
                "(16 clients, utilization 80%%)\n\n");

    stats::table t({"tasks/client", "feasible", "root bandwidth",
                    "sched tests", "dbf points", "est. FSM cycles",
                    "SEs updated on 1-client change"});

    for (std::uint32_t n_tasks : {1u, 2u, 4u, 8u, 16u}) {
        const auto results =
            runner.run(opts.trials, [n_tasks](std::uint32_t trial) {
                return run_trial(n_tasks, trial);
            });

        stats::running_summary root_bw, tests, points, fsm, updated;
        std::uint32_t feasible = 0;
        for (const auto& r : results) {
            if (r.feasible) ++feasible;
            root_bw.add(r.root_bandwidth);
            tests.add(static_cast<double>(r.tests_run));
            points.add(static_cast<double>(r.points_checked));
            fsm.add(static_cast<double>(
                r.tests_run * core::interface_selector::k_cycles_per_test +
                r.points_checked *
                    core::interface_selector::k_cycles_per_point));
            updated.add(static_cast<double>(r.ses_updated));
        }
        t.add_row({std::to_string(n_tasks),
                   std::to_string(feasible) + "/" +
                       std::to_string(opts.trials),
                   stats::table::num(root_bw.mean(), 3),
                   stats::table::num(tests.mean(), 0),
                   stats::table::num(points.mean(), 0),
                   stats::table::num(fsm.mean(), 0),
                   stats::table::num(updated.mean(), 1)});
    }
    t.print();
    std::printf("\nNote: a 1-client change touches at most leaf_level+1 "
                "SEs (the request path), never the whole tree.\n");
    return 0;
}
