// Ablation A4 (DESIGN.md): memory-controller transaction policy under
// each interconnect. FR-FCFS trades a bounded amount of reordering for
// bank-level parallelism; FCFS is strictly in-order.
//
//   $ ./bench/ablation_memctrl [--trials N] [--cycles N] [--threads N]
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 6;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults, {bench_arg::trials, bench_arg::cycles},
        "Ablation A4: memory controller policy x interconnect");

    std::printf("Ablation A4: memory controller policy x interconnect "
                "(16 clients, utilization 70-90%%)\n\n");

    stats::table t({"design", "policy", "blocking lat (us)",
                    "miss ratio"});
    for (ic_kind kind : {ic_kind::bluescale, ic_kind::axi_icrt,
                         ic_kind::bluetree, ic_kind::gsmtree_tdm}) {
        for (memctrl_policy policy :
             {memctrl_policy::fr_fcfs, memctrl_policy::fcfs}) {
            fig6_config cfg;
            cfg.trials = opts.trials;
            cfg.measure_cycles = opts.measure_cycles;
            cfg.threads = opts.threads;
            cfg.memctrl.policy = policy;
            const auto r = run_fig6(kind, cfg);
            t.add_row({kind_name(kind),
                       policy == memctrl_policy::fcfs ? "FCFS" : "FR-FCFS",
                       stats::table::num(r.blocking_us.mean(), 3),
                       stats::table::pct(r.miss_ratio.mean(), 2)});
        }
    }
    t.print();

    // DRAM refresh: a fixed-cadence disturbance that steals ~3% of the
    // device time and closes every row. Predictable designs must absorb
    // it; the table shows the worst-case/miss impact per design.
    std::printf("\nDRAM refresh disturbance (tREFI=1560, tRFC=44 cycles, "
                "~2.8%% duty):\n");
    stats::table rt({"design", "refresh", "worst (us)", "miss ratio"});
    for (ic_kind kind : {ic_kind::bluescale, ic_kind::axi_icrt,
                         ic_kind::bluetree}) {
        for (bool refresh : {false, true}) {
            fig6_config cfg;
            cfg.trials = opts.trials;
            cfg.measure_cycles = opts.measure_cycles;
            cfg.threads = opts.threads;
            if (refresh) {
                cfg.memctrl.timing.t_refi = 1560;
                cfg.memctrl.timing.t_rfc = 44;
            }
            const auto r = run_fig6(kind, cfg);
            rt.add_row({kind_name(kind), refresh ? "on" : "off",
                        stats::table::num(r.worst_blocking_us.mean(), 2),
                        stats::table::pct(r.miss_ratio.mean(), 2)});
        }
    }
    rt.print();
    return 0;
}
