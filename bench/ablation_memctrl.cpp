// Ablation A4 (DESIGN.md): memory-controller transaction policy under
// each interconnect. FR-FCFS trades a bounded amount of reordering for
// bank-level parallelism; FCFS is strictly in-order.
//
//   $ ./bench/ablation_memctrl [trials] [measure_cycles]
#include <cstdio>
#include <cstdlib>

#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    const std::uint32_t trials =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
    const cycle_t cycles =
        argc > 2 ? static_cast<cycle_t>(std::atoll(argv[2])) : 60'000;

    std::printf("Ablation A4: memory controller policy x interconnect "
                "(16 clients, utilization 70-90%%)\n\n");

    stats::table t({"design", "policy", "blocking lat (us)",
                    "miss ratio"});
    for (ic_kind kind : {ic_kind::bluescale, ic_kind::axi_icrt,
                         ic_kind::bluetree, ic_kind::gsmtree_tdm}) {
        for (memctrl_policy policy :
             {memctrl_policy::fr_fcfs, memctrl_policy::fcfs}) {
            fig6_config cfg;
            cfg.trials = trials;
            cfg.measure_cycles = cycles;
            cfg.memctrl.policy = policy;
            const auto r = run_fig6(kind, cfg);
            t.add_row({kind_name(kind),
                       policy == memctrl_policy::fcfs ? "FCFS" : "FR-FCFS",
                       stats::table::num(r.blocking_us.mean(), 3),
                       stats::table::pct(r.miss_ratio.mean(), 2)});
        }
    }
    t.print();

    // DRAM refresh: a fixed-cadence disturbance that steals ~3% of the
    // device time and closes every row. Predictable designs must absorb
    // it; the table shows the worst-case/miss impact per design.
    std::printf("\nDRAM refresh disturbance (tREFI=1560, tRFC=44 cycles, "
                "~2.8%% duty):\n");
    stats::table rt({"design", "refresh", "worst (us)", "miss ratio"});
    for (ic_kind kind : {ic_kind::bluescale, ic_kind::axi_icrt,
                         ic_kind::bluetree}) {
        for (bool refresh : {false, true}) {
            fig6_config cfg;
            cfg.trials = trials;
            cfg.measure_cycles = cycles;
            if (refresh) {
                cfg.memctrl.timing.t_refi = 1560;
                cfg.memctrl.timing.t_rfc = 44;
            }
            const auto r = run_fig6(kind, cfg);
            rt.add_row({kind_name(kind), refresh ? "on" : "off",
                        stats::table::num(r.worst_blocking_us.mean(), 2),
                        stats::table::pct(r.miss_ratio.mean(), 2)});
        }
    }
    rt.print();
    return 0;
}
