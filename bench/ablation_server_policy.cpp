// Ablation A5 (DESIGN.md): the SE's upper-level queue policy. The paper
// schedules server tasks GEDF (Algorithm 1); this sweep compares GEDF
// against fixed-priority servers, and shows what the work-conserving
// slack-reclamation fallback contributes.
//
//   $ ./bench/ablation_server_policy [--trials N] [--cycles N] [--threads N]
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 8;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults, {bench_arg::trials, bench_arg::cycles},
        "Ablation A5: SE server-task policy");

    std::printf("Ablation A5: SE server-task policy "
                "(16 clients, utilization 70-90%%)\n\n");

    struct variant {
        const char* name;
        core::server_policy policy;
        bool work_conserving;
    };
    const variant variants[] = {
        {"GEDF + work-conserving (paper)", core::server_policy::gedf, true},
        {"GEDF, strict budgets", core::server_policy::gedf, false},
        {"fixed-priority + work-conserving",
         core::server_policy::fixed_priority, true},
        {"fixed-priority, strict budgets",
         core::server_policy::fixed_priority, false},
    };

    stats::table t({"variant", "blocking lat (us)", "worst (us)",
                    "miss ratio"});
    for (const auto& v : variants) {
        fig6_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.threads = opts.threads;
        core::se_params se;
        se.policy = v.policy;
        se.work_conserving = v.work_conserving;
        cfg.bluescale_se = se;
        const auto r = run_fig6(ic_kind::bluescale, cfg);
        t.add_row({v.name, stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    t.print();
    return 0;
}
