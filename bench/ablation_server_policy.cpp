// Ablation A5 (DESIGN.md): the SE's upper-level queue policy. The paper
// schedules server tasks GEDF (Algorithm 1); this sweep compares GEDF
// against fixed-priority servers, and shows what the work-conserving
// slack-reclamation fallback contributes.
//
//   $ ./bench/ablation_server_policy [trials] [measure_cycles]
#include <cstdio>
#include <cstdlib>

#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    const std::uint32_t trials =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
    const cycle_t cycles =
        argc > 2 ? static_cast<cycle_t>(std::atoll(argv[2])) : 60'000;

    std::printf("Ablation A5: SE server-task policy "
                "(16 clients, utilization 70-90%%)\n\n");

    struct variant {
        const char* name;
        core::server_policy policy;
        bool work_conserving;
    };
    const variant variants[] = {
        {"GEDF + work-conserving (paper)", core::server_policy::gedf, true},
        {"GEDF, strict budgets", core::server_policy::gedf, false},
        {"fixed-priority + work-conserving",
         core::server_policy::fixed_priority, true},
        {"fixed-priority, strict budgets",
         core::server_policy::fixed_priority, false},
    };

    stats::table t({"variant", "blocking lat (us)", "worst (us)",
                    "miss ratio"});
    for (const auto& v : variants) {
        fig6_config cfg;
        cfg.trials = trials;
        cfg.measure_cycles = cycles;
        core::se_params se;
        se.policy = v.policy;
        se.work_conserving = v.work_conserving;
        cfg.bluescale_se = se;
        const auto r = run_fig6(ic_kind::bluescale, cfg);
        t.add_row({v.name, stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    t.print();
    return 0;
}
