// Acceptance-ratio study (extension experiment A8 in DESIGN.md): the
// schedulability-region view of the interface selection. For random
// systems at each total utilization, reports the fraction whose
// whole-tree selection is feasible, against the U <= 1 bound an ideal
// centralized EDF scheduler would accept. The gap is the price of
// hierarchical composition plus integer (Pi, Theta) quantization.
//
// A second sweep scales every task period by k (finer relative time
// granularity): the quantization overhead shrinks as 1/k, recovering most
// of the region -- evidence that the 64-client infeasibility seen in
// wcrt_validation is a granularity artifact, not a structural limit.
//
//   $ ./bench/acceptance_ratio [--trials N] [--threads N]
#include <cstdio>

#include "analysis/tree_analysis.hpp"
#include "harness/bench_cli.hpp"
#include "sim/rng.hpp"
#include "sim/trial_runner.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"

using namespace bluescale;

namespace {

struct selection_outcome {
    bool accepted = false;
    double root_bandwidth = 0.0;
};

double acceptance(const sim::trial_runner& runner, std::uint32_t n_clients,
                  double utilization, std::uint32_t trials,
                  std::uint64_t period_scale, double* mean_root_bw = nullptr,
                  double bandwidth_tolerance = 0.0) {
    // The per-trial seed is a pure function of the trial counter, so the
    // sweep parallelizes without changing any outcome.
    const auto outcomes = runner.run(trials, [&](std::uint32_t t) {
        rng gen(9000 + t * 131 + n_clients);
        workload::taskset_params params;
        params.min_period_units = 40 * period_scale;
        params.max_period_units = 600 * period_scale;
        auto sets = workload::make_client_tasksets(
            gen, n_clients, utilization, utilization, params);
        std::vector<analysis::task_set> rt;
        for (const auto& s : sets) {
            rt.push_back(workload::to_rt_tasks(s));
        }
        analysis::analysis_context ctx;
        ctx.bandwidth_tolerance = bandwidth_tolerance;
        const auto sel = analysis::select_tree_interfaces(rt, ctx);
        return selection_outcome{sel.feasible, sel.root_bandwidth};
    });

    std::uint32_t accepted = 0;
    double bw_sum = 0.0;
    for (const auto& o : outcomes) {
        if (!o.accepted) continue;
        ++accepted;
        bw_sum += o.root_bandwidth;
    }
    if (mean_root_bw != nullptr) {
        *mean_root_bw = accepted ? bw_sum / accepted : 0.0;
    }
    return static_cast<double>(accepted) / trials;
}

} // namespace

int main(int argc, char** argv) {
    harness::bench_options defaults;
    defaults.trials = 20;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults, {harness::bench_arg::trials},
        "Acceptance ratio of the whole-tree interface selection");
    const sim::trial_runner runner(opts.threads);

    std::printf("Acceptance ratio of the whole-tree interface selection "
                "(vs the centralized-EDF U<=1 bound)\n\n");

    stats::table t({"total U", "16 clients", "root bw (16)", "64 clients",
                    "root bw (64)", "centralized EDF"});
    for (double u = 0.5; u <= 0.95 + 1e-9; u += 0.1) {
        double bw16 = 0, bw64 = 0;
        const double a16 = acceptance(runner, 16, u, opts.trials, 1, &bw16);
        const double a64 = acceptance(runner, 64, u, opts.trials, 1, &bw64);
        t.add_row({stats::table::num(u, 2), stats::table::pct(a16, 0),
                   stats::table::num(bw16, 3), stats::table::pct(a64, 0),
                   stats::table::num(bw64, 3),
                   u <= 1.0 ? "100%" : "0%"});
    }
    t.print();

    std::printf("\nSelection-strategy extension at 64 clients: strict "
                "minimum-bandwidth selection (the paper's algorithm)\n"
                "prefers tiny periods, whose server tasks force each "
                "parent level to overprovision (~7-10%%/level).\n"
                "Trading a small bandwidth tolerance for larger periods "
                "recovers schedulable region:\n");
    stats::table q({"bw tolerance", "accept @U=0.70", "accept @U=0.80",
                    "root bw @U=0.70"});
    for (double tol : {0.0, 0.05, 0.10, 0.25}) {
        double bw70 = 0, unused = 0;
        const double a70 =
            acceptance(runner, 64, 0.70, opts.trials, 1, &bw70, tol);
        const double a80 =
            acceptance(runner, 64, 0.80, opts.trials, 1, &unused, tol);
        q.add_row({stats::table::pct(tol, 0), stats::table::pct(a70, 0),
                   stats::table::pct(a80, 0),
                   stats::table::num(bw70, 3)});
    }
    q.print();
    return 0;
}
