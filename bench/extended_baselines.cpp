// Extended baseline comparison (beyond the paper's six): adds
// AXI-HyperConnect [15] -- fair round-robin with per-client outstanding
// caps -- to the Fig. 6 synthetic-workload experiment, locating it
// between the heuristic trees and the deadline-aware designs.
//
//   $ ./bench/extended_baselines [--trials N] [--cycles N] [--threads N]
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 8;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults, {bench_arg::trials, bench_arg::cycles},
        "Extended baselines: the paper's six plus AXI-HyperConnect");

    std::printf("Extended baselines: the paper's six plus "
                "AXI-HyperConnect [15] (16 clients, utilization "
                "70-90%%)\n\n");

    fig6_config cfg;
    cfg.trials = opts.trials;
    cfg.measure_cycles = opts.measure_cycles;
    cfg.threads = opts.threads;

    stats::table t({"design", "blocking lat (us)", "worst (us)",
                    "miss ratio"});
    for (ic_kind kind : k_extended_kinds) {
        const auto r = run_fig6(kind, cfg);
        t.add_row({kind_name(r.kind),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    t.print();
    return 0;
}
