// Extended baseline comparison (beyond the paper's six): adds
// AXI-HyperConnect [15] -- fair round-robin with per-client outstanding
// caps -- to the Fig. 6 synthetic-workload experiment, locating it
// between the heuristic trees and the deadline-aware designs.
//
//   $ ./bench/extended_baselines [trials] [measure_cycles]
#include <cstdio>
#include <cstdlib>

#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

int main(int argc, char** argv) {
    const std::uint32_t trials =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
    const cycle_t cycles =
        argc > 2 ? static_cast<cycle_t>(std::atoll(argv[2])) : 60'000;

    std::printf("Extended baselines: the paper's six plus "
                "AXI-HyperConnect [15] (16 clients, utilization "
                "70-90%%)\n\n");

    fig6_config cfg;
    cfg.trials = trials;
    cfg.measure_cycles = cycles;

    stats::table t({"design", "blocking lat (us)", "worst (us)",
                    "miss ratio"});
    for (ic_kind kind : k_extended_kinds) {
        const auto r = run_fig6(kind, cfg);
        t.add_row({kind_name(r.kind),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2)});
    }
    t.print();
    return 0;
}
