// Reproduces Fig. 5: hardware scalability vs scaling factor eta
// (2^eta clients). (a) normalized area, (b) power, (c) maximum
// synthesizable frequency -- for the legacy many-core system, AXI-IC^RT
// and BlueScale, standalone and integrated.
//
//   $ ./bench/fig5_scalability [--csv out.csv]
//
// --csv writes one row per (metric, eta): metric is "area" (fraction of
// platform), "power" (W) or "fmax" (MHz); the combined columns are empty
// for fmax, which Fig. 5 only reports standalone.
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "hwcost/cost_model.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::hwcost;

int main(int argc, char** argv) {
    harness::bench_options defaults;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults, {harness::bench_arg::csv},
        "Fig. 5 reproduction: area / power / fmax vs scaling factor");
    const auto csv = harness::open_bench_csv(
        opts, {"metric", "eta", "clients", "legacy", "axi_icrt",
               "bluescale", "legacy_axi", "legacy_bluescale"});

    std::printf("Fig. 5 reproduction: area / power / fmax vs scaling "
                "factor eta (clients = 2^eta)\n");

    std::printf("\n(a) Area consumption (%% of platform):\n");
    stats::table area({"eta", "clients", "Legacy", "AXI-IC^RT",
                       "BlueScale", "Legacy+AXI", "Legacy+BlueScale"});
    for (std::uint32_t eta = 1; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        const double legacy = legacy_area_fraction(n);
        const double axi = area_fraction(design::axi_icrt, n);
        const double bs = area_fraction(design::bluescale, n);
        area.add_row({std::to_string(eta), std::to_string(n),
                      stats::table::pct(legacy, 1),
                      stats::table::pct(axi, 1), stats::table::pct(bs, 1),
                      stats::table::pct(legacy + axi, 1),
                      stats::table::pct(legacy + bs, 1)});
        if (csv != nullptr) {
            csv->add_row({"area", std::to_string(eta), std::to_string(n),
                          std::to_string(legacy), std::to_string(axi),
                          std::to_string(bs), std::to_string(legacy + axi),
                          std::to_string(legacy + bs)});
        }
    }
    area.print();

    std::printf("\n(b) Power consumption (W):\n");
    stats::table power({"eta", "clients", "Legacy", "AXI-IC^RT",
                        "BlueScale", "Legacy+AXI", "Legacy+BlueScale"});
    for (std::uint32_t eta = 1; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        const double legacy = legacy_power_w(n);
        const double axi = power_w(design::axi_icrt, n);
        const double bs = power_w(design::bluescale, n);
        power.add_row({std::to_string(eta), std::to_string(n),
                       stats::table::num(legacy, 3),
                       stats::table::num(axi, 3),
                       stats::table::num(bs, 3),
                       stats::table::num(legacy + axi, 3),
                       stats::table::num(legacy + bs, 3)});
        if (csv != nullptr) {
            csv->add_row({"power", std::to_string(eta), std::to_string(n),
                          std::to_string(legacy), std::to_string(axi),
                          std::to_string(bs), std::to_string(legacy + axi),
                          std::to_string(legacy + bs)});
        }
    }
    power.print();

    std::printf("\n(c) Maximum frequency (MHz):\n");
    stats::table fmax({"eta", "clients", "Legacy", "AXI-IC^RT",
                       "BlueScale"});
    for (std::uint32_t eta = 1; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        const double legacy = legacy_fmax_mhz(n);
        const double axi = fmax_mhz(design::axi_icrt, n);
        const double bs = fmax_mhz(design::bluescale, n);
        fmax.add_row({std::to_string(eta), std::to_string(n),
                      stats::table::num(legacy, 0),
                      stats::table::num(axi, 0),
                      stats::table::num(bs, 0)});
        if (csv != nullptr) {
            csv->add_row({"fmax", std::to_string(eta), std::to_string(n),
                          std::to_string(legacy), std::to_string(axi),
                          std::to_string(bs), "", ""});
        }
    }
    fmax.print();

    std::printf("\nObs 3 check: AXI-IC^RT drops below the legacy system "
                "past eta = 5; BlueScale never does.\n");
    return 0;
}
