// Reproduces Fig. 6: interconnect-level real-time performance under
// synthetic workloads. 16 and 64 traffic generators issue randomly
// generated periodic workloads (70-90% interconnect utilization, GEDF
// request priorities); for each of the six designs the harness reports
// blocking latency and deadline miss ratio, with cross-trial variance.
//
//   $ ./bench/fig6_synthetic [--trials N] [--cycles N] [--threads N]
//                            [--seed N] [--csv out.csv]
//
// (legacy positional form: fig6_synthetic [trials] [cycles] [out.csv])
//
// --csv dumps one row per (scale, design) with the raw aggregates for
// plotting; the file is byte-identical for any --threads setting.
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

void run_scale(std::uint32_t n_clients, const bench_options& opts,
               stats::csv_writer* csv) {
    fig6_config cfg;
    cfg.n_clients = n_clients;
    cfg.trials = opts.trials;
    cfg.measure_cycles = opts.measure_cycles;
    cfg.seed = opts.seed;
    cfg.threads = opts.threads;

    std::printf("\n=== Fig. 6(%c): %u traffic generators, %u trials, "
                "%llu cycles/trial, utilization 70-90%% ===\n",
                n_clients == 16 ? 'a' : 'b', n_clients, cfg.trials,
                static_cast<unsigned long long>(cfg.measure_cycles));

    stats::table t({"design", "blocking lat (us)", "+/- sd", "worst (us)",
                    "miss ratio", "+/- sd", "sys clk (MHz)"});
    for (const auto& r : run_fig6_all(cfg)) {
        t.add_row({kind_name(r.kind),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.blocking_us.stddev(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   stats::table::pct(r.miss_ratio.stddev(), 2),
                   stats::table::num(r.system_clock_mhz, 0)});
        if (csv != nullptr) {
            csv->add_row({std::to_string(n_clients), kind_name(r.kind),
                          std::to_string(r.blocking_us.mean()),
                          std::to_string(r.blocking_us.stddev()),
                          std::to_string(r.worst_blocking_us.mean()),
                          std::to_string(r.miss_ratio.mean()),
                          std::to_string(r.miss_ratio.stddev()),
                          std::to_string(r.system_clock_mhz)});
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 100'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Fig. 6 reproduction: blocking latency and deadline miss ratio");

    const auto csv = open_bench_csv(
        opts, {"clients", "design", "blocking_us", "blocking_sd",
               "worst_us", "miss_ratio", "miss_sd", "sys_clk_mhz"});

    std::printf("Fig. 6 reproduction: blocking latency and deadline miss "
                "ratio, six interconnects\n");
    run_scale(16, opts, csv.get());
    run_scale(64, opts, csv.get());
    return 0;
}
