// Reproduces Fig. 6: interconnect-level real-time performance under
// synthetic workloads. 16 and 64 traffic generators issue randomly
// generated periodic workloads (70-90% interconnect utilization, GEDF
// request priorities); for each of the six designs the harness reports
// blocking latency and deadline miss ratio, with cross-trial variance.
//
//   $ ./bench/fig6_synthetic [trials] [measure_cycles] [out.csv]
//
// The optional CSV argument dumps one row per (scale, design) with the
// raw aggregates for plotting.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "harness/fig6_experiment.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

void run_scale(std::uint32_t n_clients, std::uint32_t trials,
               cycle_t cycles, stats::csv_writer* csv) {
    fig6_config cfg;
    cfg.n_clients = n_clients;
    cfg.trials = trials;
    cfg.measure_cycles = cycles;

    std::printf("\n=== Fig. 6(%c): %u traffic generators, %u trials, "
                "%llu cycles/trial, utilization 70-90%% ===\n",
                n_clients == 16 ? 'a' : 'b', n_clients, trials,
                static_cast<unsigned long long>(cycles));

    stats::table t({"design", "blocking lat (us)", "+/- sd", "worst (us)",
                    "miss ratio", "+/- sd", "sys clk (MHz)"});
    for (const auto& r : run_fig6_all(cfg)) {
        t.add_row({kind_name(r.kind),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.blocking_us.stddev(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   stats::table::pct(r.miss_ratio.stddev(), 2),
                   stats::table::num(r.system_clock_mhz, 0)});
        if (csv != nullptr) {
            csv->add_row({std::to_string(n_clients), kind_name(r.kind),
                          std::to_string(r.blocking_us.mean()),
                          std::to_string(r.blocking_us.stddev()),
                          std::to_string(r.worst_blocking_us.mean()),
                          std::to_string(r.miss_ratio.mean()),
                          std::to_string(r.miss_ratio.stddev()),
                          std::to_string(r.system_clock_mhz)});
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    const std::uint32_t trials =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10;
    const cycle_t cycles =
        argc > 2 ? static_cast<cycle_t>(std::atoll(argv[2])) : 100'000;

    std::unique_ptr<stats::csv_writer> csv;
    if (argc > 3) {
        csv = std::make_unique<stats::csv_writer>(
            argv[3],
            std::vector<std::string>{"clients", "design", "blocking_us",
                                     "blocking_sd", "worst_us",
                                     "miss_ratio", "miss_sd",
                                     "sys_clk_mhz"});
        if (!csv->ok()) {
            std::fprintf(stderr, "cannot write %s\n", argv[3]);
            return 1;
        }
    }

    std::printf("Fig. 6 reproduction: blocking latency and deadline miss "
                "ratio, six interconnects\n");
    run_scale(16, trials, cycles, csv.get());
    run_scale(64, trials, cycles, csv.get());
    return 0;
}
