// Reproduces Fig. 6: interconnect-level real-time performance under
// synthetic workloads. 16 and 64 traffic generators issue randomly
// generated periodic workloads (70-90% interconnect utilization, GEDF
// request priorities); for each of the six designs the harness reports
// blocking latency and deadline miss ratio, with cross-trial variance.
//
//   $ ./bench/fig6_synthetic [--trials N] [--cycles N] [--threads N]
//                            [--seed N] [--csv out.csv]
//                            [--metrics out.csv] [--trace out.json]
//
// (legacy positional form: fig6_synthetic [trials] [cycles] [out.csv])
//
// --csv dumps one row per (scale, design) with the raw aggregates for
// plotting; the file is byte-identical for any --threads setting.
// --metrics dumps the BlueScale design's merged obs::registry snapshot
// and --trace its trial-0 event trace (.json = chrome://tracing), both
// at the 16-generator scale; the metrics file is likewise byte-identical
// for any --threads setting.
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig6_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

void run_scale(std::uint32_t n_clients, const bench_options& opts,
               stats::csv_writer* csv, bool export_obs) {
    fig6_config cfg;
    cfg.n_clients = n_clients;
    cfg.trials = opts.trials;
    cfg.measure_cycles = opts.measure_cycles;
    cfg.seed = opts.seed;
    cfg.threads = opts.threads;
    cfg.collect_metrics = export_obs && !opts.metrics_path.empty();
    cfg.collect_trace = export_obs && !opts.trace_path.empty();
    cfg.profile = opts.profile;

    std::printf("\n=== Fig. 6(%c): %u traffic generators, %u trials, "
                "%llu cycles/trial, utilization 70-90%% ===\n",
                n_clients == 16 ? 'a' : 'b', n_clients, cfg.trials,
                static_cast<unsigned long long>(cfg.measure_cycles));

    stats::table t({"design", "blocking lat (us)", "+/- sd", "worst (us)",
                    "miss ratio", "+/- sd", "sys clk (MHz)"});
    stats::table prof_t({"design", "sim Mcyc/s", "sim wall (s)",
                         "sweep wall (s)"});
    for (const auto& r : run_fig6_all(cfg)) {
        t.add_row({kind_name(r.kind),
                   stats::table::num(r.blocking_us.mean(), 3),
                   stats::table::num(r.blocking_us.stddev(), 3),
                   stats::table::num(r.worst_blocking_us.mean(), 2),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   stats::table::pct(r.miss_ratio.stddev(), 2),
                   stats::table::num(r.system_clock_mhz, 0)});
        if (csv != nullptr) {
            csv->add_row({std::to_string(n_clients), kind_name(r.kind),
                          std::to_string(r.blocking_us.mean()),
                          std::to_string(r.blocking_us.stddev()),
                          std::to_string(r.worst_blocking_us.mean()),
                          std::to_string(r.miss_ratio.mean()),
                          std::to_string(r.miss_ratio.stddev()),
                          std::to_string(r.system_clock_mhz)});
        }
        if (r.kind == ic_kind::bluescale) {
            if (cfg.collect_metrics) write_bench_metrics(opts, r.metrics);
            if (cfg.collect_trace) write_bench_trace(opts, r.trace);
        }
        if (opts.profile) {
            const auto count = [&r](const char* name) {
                const obs::metric_value* v = r.profile.find(name);
                return v == nullptr ? 0.0 : static_cast<double>(v->count);
            };
            const double sim_s = count("profile/sim/wall_ns") * 1e-9;
            const double mcyc = count("profile/sim/cycles") * 1e-6;
            prof_t.add_row(
                {kind_name(r.kind),
                 stats::table::num(sim_s == 0.0 ? 0.0 : mcyc / sim_s, 2),
                 stats::table::num(sim_s, 2),
                 stats::table::num(count("profile/sweep/wall_ns") * 1e-9,
                                   2)});
        }
    }
    t.print();
    if (opts.profile) {
        std::printf("\nsimulator profile (wall clock, nondeterministic; "
                    "see obs::k_metric_profile):\n");
        prof_t.print();
    }
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 100'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Fig. 6 reproduction: blocking latency and deadline miss ratio");

    const auto csv = open_bench_csv(
        opts, {"clients", "design", "blocking_us", "blocking_sd",
               "worst_us", "miss_ratio", "miss_sd", "sys_clk_mhz"});

    std::printf("Fig. 6 reproduction: blocking latency and deadline miss "
                "ratio, six interconnects\n");
    run_scale(16, opts, csv.get(), /*export_obs=*/true);
    run_scale(64, opts, csv.get(), /*export_obs=*/false);
    return 0;
}
