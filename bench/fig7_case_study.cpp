// Reproduces Fig. 7: system-level case study. 16/64 processors + 2 DNN
// HAs execute 10 automotive safety tasks + 10 automotive function tasks
// with interference tasks raising each processor to a target utilization;
// reports the success ratio (trials without any app deadline miss) per
// design across the utilization sweep.
//
//   $ ./bench/fig7_case_study [--trials N] [--cycles N] [--threads N]
//                             [--seed N] [--csv out.csv]
//
// (legacy positional form: fig7_case_study [trials] [cycles] [out.csv])
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/fig7_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

void run_scale(std::uint32_t n_processors, const bench_options& opts,
               stats::csv_writer* csv) {
    fig7_config cfg;
    cfg.n_processors = n_processors;
    cfg.trials = opts.trials;
    cfg.measure_cycles = opts.measure_cycles;
    cfg.seed = opts.seed;
    cfg.threads = opts.threads;

    std::printf("\n=== Fig. 7(%c): %u-core system + %u DNN HAs, %u trials "
                "x %llu cycles per point ===\n",
                n_processors == 16 ? 'a' : 'b', n_processors,
                cfg.n_accelerators, cfg.trials,
                static_cast<unsigned long long>(cfg.measure_cycles));

    const auto all = run_fig7_all(cfg);

    std::vector<std::string> headers{"design"};
    for (const auto& p : all.front().points) {
        headers.push_back(stats::table::num(p.target_utilization, 2));
    }
    stats::table t(std::move(headers));
    for (const auto& r : all) {
        std::vector<std::string> row{kind_name(r.kind)};
        for (const auto& p : r.points) {
            row.push_back(stats::table::num(p.success_ratio, 2));
            if (csv != nullptr) {
                csv->add_row({std::to_string(n_processors),
                              kind_name(r.kind),
                              std::to_string(p.target_utilization),
                              std::to_string(p.success_ratio),
                              std::to_string(p.app_miss_ratio)});
            }
        }
        t.add_row(std::move(row));
    }
    std::printf("success ratio vs target utilization:\n");
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 8;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Fig. 7 reproduction: case-study success ratio");

    const auto csv = open_bench_csv(
        opts, {"processors", "design", "target_utilization",
               "success_ratio", "app_miss_ratio"});

    std::printf("Fig. 7 reproduction: case-study success ratio, "
                "six interconnects\n");
    run_scale(16, opts, csv.get());
    run_scale(64, opts, csv.get());
    return 0;
}
