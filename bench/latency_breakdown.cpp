// Latency breakdown (extension experiment A11 in DESIGN.md): where does a
// memory transaction's time go inside a configured BlueScale fabric?
// Every SE records the queueing time of each request it forwards
// (arrival-at-SE -> grant); this bench aggregates those per tree level,
// alongside the memory controller's share, across the utilization range.
//
//   $ ./bench/latency_breakdown [--cycles N]
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/bluescale_ic.hpp"
#include "harness/bench_cli.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

int main(int argc, char** argv) {
    harness::bench_options defaults;
    defaults.measure_cycles = 80'000;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults, {harness::bench_arg::cycles},
        "Per-level queueing breakdown inside BlueScale");
    const cycle_t cycles = opts.measure_cycles;
    constexpr std::uint32_t n_clients = 64;

    std::printf("Per-level queueing breakdown inside BlueScale "
                "(64 clients, 3 SE levels)\n\n");

    stats::table t({"utilization", "leaf wait (cyc)", "mid wait (cyc)",
                    "root wait (cyc)", "memory (cyc)",
                    "end-to-end (cyc)"});
    for (double util : {0.3, 0.5, 0.7, 0.85}) {
        rng gen(2024);
        auto tasksets = workload::make_client_tasksets(gen, n_clients,
                                                       util, util);
        std::vector<analysis::task_set> rt;
        for (const auto& ts : tasksets) {
            rt.push_back(workload::to_rt_tasks(ts));
        }
        const auto selection = analysis::select_tree_interfaces(rt);

        core::bluescale_ic fabric(n_clients);
        if (selection.feasible) fabric.configure(selection);
        memory_controller mem;
        fabric.attach_memory(mem);

        std::vector<std::unique_ptr<workload::traffic_generator>> clients;
        stats::running_summary mem_time, end_to_end;
        for (std::uint32_t c = 0; c < n_clients; ++c) {
            clients.push_back(
                std::make_unique<workload::traffic_generator>(
                    c, tasksets[c], fabric, 300 + c));
        }
        fabric.set_response_handler([&](mem_request&& r) {
            mem_time.add(static_cast<double>(r.mem_done - r.hop_arrival));
            end_to_end.add(static_cast<double>(r.total_latency()));
            clients[r.client]->on_response(std::move(r));
        });

        simulator sim;
        for (auto& c : clients) sim.add(*c);
        sim.add(fabric);
        sim.add(mem);
        sim.run(cycles);

        // Aggregate SE wait stats per level (root = level 0).
        const std::uint32_t depth = fabric.shape().leaf_level;
        std::vector<stats::running_summary> per_level(depth + 1);
        for (std::uint32_t l = 0; l <= depth; ++l) {
            for (std::uint32_t y = 0; y < fabric.shape().ses_at_level(l);
                 ++y) {
                per_level[l].merge(fabric.se_at(l, y).wait_stats());
            }
        }
        t.add_row({stats::table::num(util, 2),
                   stats::table::num(per_level[depth].mean(), 1),
                   stats::table::num(per_level[1].mean(), 1),
                   stats::table::num(per_level[0].mean(), 1),
                   stats::table::num(mem_time.mean(), 1),
                   stats::table::num(end_to_end.mean(), 1)});
    }
    t.print();
    std::printf("\nQueueing concentrates at the leaf/mid levels (each "
                "client throttled by its own minimum-bandwidth\n"
                "interface) while the root stays shallow -- contention is "
                "resolved early, which is the architectural intent\n"
                "of the quadtree. The memory controller is the largest "
                "single stage at every load point.\n");
    return 0;
}
