// Latency breakdown (extension experiment A11 in DESIGN.md): where does a
// memory transaction's time go inside a configured BlueScale fabric?
// Every request carries a compact per-hop stamp vector (RAB admission,
// per-level server grant -- see obs::hop_stamps); this bench reads those
// attribution stamps straight off completed responses and aggregates them
// per tree level, alongside the memory controller's share, across the
// utilization range.
//
//   $ ./bench/latency_breakdown [--cycles N]
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/bluescale_ic.hpp"
#include "harness/bench_cli.hpp"
#include "mem/memory_controller.hpp"
#include "obs/hop_stamps.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

int main(int argc, char** argv) {
    harness::bench_options defaults;
    defaults.measure_cycles = 80'000;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults, {harness::bench_arg::cycles},
        "Per-level queueing breakdown inside BlueScale");
    const cycle_t cycles = opts.measure_cycles;
    constexpr std::uint32_t n_clients = 64;

    std::printf("Per-level queueing breakdown inside BlueScale "
                "(64 clients, 3 SE levels)\n\n");

    stats::table t({"utilization", "leaf wait (cyc)", "mid wait (cyc)",
                    "root wait (cyc)", "memory (cyc)",
                    "end-to-end (cyc)"});
    for (double util : {0.3, 0.5, 0.7, 0.85}) {
        rng gen(2024);
        auto tasksets = workload::make_client_tasksets(gen, n_clients,
                                                       util, util);
        std::vector<analysis::task_set> rt;
        for (const auto& ts : tasksets) {
            rt.push_back(workload::to_rt_tasks(ts));
        }
        const auto selection = analysis::select_tree_interfaces(rt);

        core::bluescale_ic fabric(n_clients);
        if (selection.feasible) fabric.configure(selection);
        memory_controller mem;
        fabric.attach_memory(mem);

        std::vector<std::unique_ptr<workload::traffic_generator>> clients;
        const std::uint32_t depth = fabric.shape().leaf_level;
        std::vector<stats::running_summary> per_level(depth + 1);
        stats::running_summary mem_time, end_to_end;
        for (std::uint32_t c = 0; c < n_clients; ++c) {
            clients.push_back(
                std::make_unique<workload::traffic_generator>(
                    c, tasksets[c], fabric, 300 + c));
        }
        // Per-hop attribution off the response's stamp vector: the wait at
        // level l runs from arrival (grant at level l+1, plus the one-cycle
        // hop; RAB admission at the leaf) to the level-l grant, and the
        // memory stage from the root grant's handoff to mem_done.
        fabric.set_response_handler([&](mem_request&& r) {
            const obs::hop_stamps& h = r.hops;
            for (std::uint32_t l = 0; l <= depth; ++l) {
                if (!h.granted_at(l)) continue;
                const cycle_t arrived =
                    l == depth ? h.rab_admit : h.grant_at(l + 1) + 1;
                per_level[l].add(
                    static_cast<double>(h.grant_at(l) - arrived));
            }
            if (h.granted_at(0)) {
                mem_time.add(
                    static_cast<double>(r.mem_done - (h.grant_at(0) + 1)));
            }
            end_to_end.add(static_cast<double>(r.total_latency()));
            clients[r.client]->on_response(std::move(r));
        });

        simulator sim;
        for (auto& c : clients) sim.add(*c);
        sim.add(fabric);
        sim.add(mem);
        sim.run(cycles);

        t.add_row({stats::table::num(util, 2),
                   stats::table::num(per_level[depth].mean(), 1),
                   stats::table::num(per_level[1].mean(), 1),
                   stats::table::num(per_level[0].mean(), 1),
                   stats::table::num(mem_time.mean(), 1),
                   stats::table::num(end_to_end.mean(), 1)});
    }
    t.print();
    std::printf("\nQueueing concentrates at the leaf/mid levels (each "
                "client throttled by its own minimum-bandwidth\n"
                "interface) while the root stays shallow -- contention is "
                "resolved early, which is the architectural intent\n"
                "of the quadtree. The memory controller is the largest "
                "single stage at every load point.\n");
    return 0;
}
