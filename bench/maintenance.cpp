// DRAM-maintenance robustness sweep (robustness extension, not a paper
// figure): crosses refresh cadence x scrub rate x RowHammer threshold
// over the BlueScale stack, once with maintenance-UNAWARE admission (the
// paper's raw sbf) and once with the maintenance-corrected supply bound
// wired into both interface selection and the supply watchdog. A fixed
// low-rate maintenance-STORM campaign (unmodeled excess scrubbing) rides
// along so the watchdog-alarm columns separate budgeted interference
// (aware mode: no alarms) from unbudgeted interference (alarms + shed).
//
//   $ ./bench/maintenance [--trials N] [--cycles N] [--threads N]
//                         [--seed N] [--csv out.csv]
//
// --csv dumps one row per (mode, refresh, scrub, hammer) cell with the
// raw aggregates (rendered through obs::metric_cells off the
// experiment's metric snapshot); the file is byte-identical for any
// --threads setting.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/maintenance_experiment.hpp"
#include "obs/registry.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

struct refresh_point {
    const char* name;
    std::uint32_t t_refi;
    std::uint32_t t_rfc;
};
struct scrub_point {
    const char* name;
    std::uint64_t interval;
    std::uint32_t duration;
};
struct hammer_point {
    const char* name;
    std::uint64_t threshold;
    std::uint32_t mitigation;
};

// Refresh cadence: off, the DDR3-1600 preset, and a 2x-hotter device
// (halved t_refi, e.g. high-temperature operation doubling refresh rate).
constexpr refresh_point k_refresh[] = {
    {"off", 0, 0}, {"ddr3", 1950, 65}, {"2x", 975, 65}};
constexpr scrub_point k_scrub[] = {{"off", 0, 0}, {"on", 2048, 32}};
constexpr hammer_point k_hammer[] = {{"off", 0, 0}, {"on", 256, 32}};

void run_mode(bool aware, const bench_options& opts,
              stats::csv_writer* csv) {
    std::printf("\n=== %s admission: refresh x scrub x hammer sweep, "
                "%u trials, %llu cycles/trial ===\n",
                aware ? "maintenance-aware" : "maintenance-unaware",
                opts.trials,
                static_cast<unsigned long long>(opts.measure_cycles));

    stats::table t({"refresh", "scrub", "hammer", "hard miss", "BE miss",
                    "p99 (cyc)", "stolen (cyc)", "shortfalls", "dl alarms",
                    "shed/rest", "feas"});
    for (const auto& rf : k_refresh) {
        for (const auto& sc : k_scrub) {
            for (const auto& hm : k_hammer) {
                maintenance_exp_config cfg;
                cfg.trials = opts.trials;
                cfg.measure_cycles = opts.measure_cycles;
                cfg.seed = opts.seed;
                cfg.threads = opts.threads;
                cfg.maintenance_aware = aware;
                cfg.memctrl.timing.t_refi = rf.t_refi;
                cfg.memctrl.timing.t_rfc = rf.t_rfc;
                cfg.memctrl.maintenance.scrub_interval = sc.interval;
                cfg.memctrl.maintenance.scrub_duration = sc.duration;
                cfg.memctrl.maintenance.hammer_threshold = hm.threshold;
                cfg.memctrl.maintenance.hammer_mitigation_cycles =
                    hm.mitigation;
                // Fixed unmodeled-interference floor: rare short storms
                // the corrected bound does NOT budget for, so the
                // watchdog columns stay meaningful in aware mode too.
                cfg.storm_intensity = 0.02;

                const maintenance_exp_result r =
                    run_maintenance_experiment(cfg);

                t.add_row(
                    {rf.name, sc.name, hm.name,
                     stats::table::pct(r.hard_miss_ratio.mean(), 2),
                     stats::table::pct(r.best_effort_miss_ratio.mean(), 2),
                     stats::table::num(r.p99_latency_cycles.mean(), 1),
                     std::to_string(r.maintenance_stolen_cycles),
                     std::to_string(r.supply_shortfall_alarms),
                     std::to_string(r.deadline_alarms),
                     std::to_string(r.shed_events) + "/" +
                         std::to_string(r.restore_events),
                     std::to_string(r.feasible_trials)});
                if (csv != nullptr) {
                    // Raw aggregate cells come off the experiment's
                    // metric snapshot through the one exporter path; only
                    // the sweep coordinates are composed here.
                    std::vector<std::string> row{
                        aware ? "aware" : "unaware",
                        std::to_string(rf.t_refi),
                        std::to_string(sc.interval),
                        std::to_string(hm.threshold)};
                    for (auto& cell : obs::metric_cells(
                             r.totals,
                             {"maintenance/hard_miss_ratio",
                              "maintenance/hard_miss_ratio:sd",
                              "maintenance/best_effort_miss_ratio",
                              "maintenance/p99_latency_cycles",
                              "maintenance/hard_misses",
                              "maintenance/best_effort_misses",
                              "maintenance/refreshes",
                              "maintenance/scrubs",
                              "maintenance/hammer_mitigations",
                              "maintenance/maintenance_stolen_cycles",
                              "maintenance/maintenance_storm_cycles",
                              "maintenance/injected_storms",
                              "maintenance/windows_checked",
                              "maintenance/supply_shortfall_alarms",
                              "maintenance/deadline_alarms",
                              "maintenance/shed_events",
                              "maintenance/restore_events",
                              "maintenance/shed_client_cycles",
                              "maintenance/feasible_trials"})) {
                        row.push_back(std::move(cell));
                    }
                    csv->add_row(row);
                }
            }
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 6;
    defaults.measure_cycles = 40'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Maintenance: deadline misses and watchdog alarms under DRAM "
        "refresh/scrub/RowHammer interference");

    const auto csv = open_bench_csv(
        opts, {"mode", "t_refi", "scrub_interval", "hammer_threshold",
               "hard_miss_ratio", "hard_miss_sd", "be_miss_ratio",
               "p99_cycles", "hard_misses", "best_effort_misses",
               "refreshes", "scrubs", "hammer_mitigations",
               "stolen_cycles", "storm_cycles", "injected_storms",
               "windows_checked", "supply_shortfall_alarms",
               "deadline_alarms", "shed_events", "restore_events",
               "shed_client_cycles", "feasible_trials"});

    std::printf("DRAM maintenance: maintenance-aware vs -unaware "
                "admission under refresh/scrub/RowHammer\n");
    run_mode(false, opts, csv.get());
    run_mode(true, opts, csv.get());
    return 0;
}
