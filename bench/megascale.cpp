// Mega-scale whole-tree interface selection (ROADMAP item 2; the
// analysis-side companion of Fig. 5's hardware scalability curves).
// Sweeps the quadtree depth d (4^d clients; depth 8 = 65,536 leaves) and
// reports, per depth:
//
//   (a) selection time with the cheap-first test ladder + selection
//       cache (the mega-scale configuration), plus the deterministic
//       work counters that machine-independently proxy that time;
//   (b) feasibility at a fixed light load: the root bandwidth the
//       selection actually provisions vs the offered utilization -- the
//       compounding price of hierarchical composition at scale;
//   (c) ladder parity: at depths <= 4 the laddered+cached selection is
//       byte-compared against the exact-only selector (they must be
//       bit-identical wherever the exact test never aborts);
//   (d) threads determinism: byte-identical selections for every
//       --threads value.
//
//   $ ./bench/megascale [--depth N] [--feas-depth N] [--parity-depth N]
//                       [--threads N] [--json PATH] [--check]
//
// --json dumps the per-depth counters (BENCH_megascale.json via
// scripts/bench_snapshot.sh). --check is the CI perf-smoke leg: shallow
// depths, exits nonzero on any parity or determinism violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/selection_cache.hpp"
#include "analysis/tree_analysis.hpp"
#include "obs/profile.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using analysis::analysis_context;
using analysis::selection_cache;
using analysis::task_set;
using analysis::tree_selection;

namespace {

// The mega-tree workload profile. wcet matters at scale: wcet=1 server
// tasks degenerate (integer budgets + the blackout bound force every
// interface to ~2x its load, doubling bandwidth per level); a few cycles
// of wcet amortize the quantization. Clients draw from a small pool of
// distinct profiles round-robin, so the selection cache collapses the
// tree to O(pool) distinct problems per level.
constexpr std::uint64_t k_wcet = 4;
constexpr double k_u_nominal = 0.15;  // timing/parity sweeps
constexpr double k_u_feas = 0.10;     // feasibility curve (uniform)
constexpr std::uint32_t k_pool = 64;
constexpr std::uint64_t k_max_period = 1u << 26;

struct mega_options {
    std::uint32_t depth = 8;
    std::uint32_t feas_depth = 10;
    std::uint32_t parity_depth = 4;
    unsigned threads = 1;
    std::string json_path;
    bool check = false;
};

mega_options parse_cli(int argc, char** argv) {
    mega_options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "megascale: %s needs a value\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--depth") {
            o.depth = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (a == "--feas-depth") {
            o.feas_depth = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (a == "--parity-depth") {
            o.parity_depth = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (a == "--threads") {
            o.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--json") {
            o.json_path = next();
        } else if (a == "--check") {
            o.check = true;
        } else {
            std::fprintf(stderr,
                         "usage: megascale [--depth N] [--feas-depth N] "
                         "[--parity-depth N] [--threads N] [--json PATH] "
                         "[--check]\n");
            std::exit(a == "--help" ? 0 : 2);
        }
    }
    if (o.check) {
        // CI smoke: shallow but covering every leg.
        o.depth = std::min(o.depth, 5u);
        o.feas_depth = std::min(o.feas_depth, 6u);
        o.parity_depth = std::min(o.parity_depth, 3u);
    }
    return o;
}

std::uint32_t clients_at_depth(std::uint32_t d) { return 1u << (2 * d); }

/// Round-robin pool of distinct single-task profiles, scaled so the
/// total utilization is ~k_u_nominal at any tree size.
std::vector<task_set> pool_clients(std::uint32_t n) {
    const double base =
        static_cast<double>(k_wcet) * static_cast<double>(n) / k_u_nominal;
    std::vector<task_set> clients(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const double stretch =
            1.0 + static_cast<double>(i % k_pool) / k_pool;
        clients[i] = task_set{
            {static_cast<std::uint64_t>(base * stretch), k_wcet}};
    }
    return clients;
}

/// Uniform profile for the feasibility curve (one distinct selection
/// problem per level: the deepest points stay cheap).
std::vector<task_set> uniform_clients(std::uint32_t n) {
    const auto period = static_cast<std::uint64_t>(
        static_cast<double>(k_wcet) * static_cast<double>(n) / k_u_feas);
    return std::vector<task_set>(n, task_set{{period, k_wcet}});
}

double total_utilization(const std::vector<task_set>& clients) {
    double u = 0.0;
    for (const auto& s : clients) u += analysis::utilization(s);
    return u;
}

analysis_context mega_context(selection_cache* cache, unsigned threads,
                              analysis::sched_test_stats* stats) {
    analysis_context ctx;
    ctx.max_period = k_max_period;
    ctx.sched.cheap_first = cache != nullptr;
    ctx.cache = cache;
    ctx.threads = threads;
    ctx.sched.stats = stats;
    return ctx;
}

/// Canonical byte serialization of everything a selection decides.
std::string canonical(const tree_selection& sel) {
    std::string out;
    out += sel.feasible ? "feasible;" : "infeasible;";
    out += sel.failure.to_string();
    char bw[64];
    std::snprintf(bw, sizeof bw, ";root=%a;", sel.root_bandwidth);
    out += bw;
    for (const auto& level : sel.levels) {
        for (const auto& se : level) {
            for (const auto& port : se.ports) {
                if (port) {
                    out += std::to_string(port->period);
                    out += '/';
                    out += std::to_string(port->budget);
                } else {
                    out += '-';
                }
                out += ';';
            }
        }
    }
    return out;
}

struct depth_result {
    std::uint32_t depth = 0;
    bool feasible = false;
    double root_bw = 0.0;
    double offered_u = 0.0;
    double wall_ms = 0.0;
    std::uint64_t cache_misses = 0;
    std::uint64_t tests_run = 0;
    std::uint64_t points_checked = 0;
    std::uint64_t ladder_fallbacks = 0;
};

depth_result run_depth(const std::vector<task_set>& clients,
                       std::uint32_t d, unsigned threads, bool cached) {
    selection_cache cache;
    analysis::sched_test_stats work;
    const auto ctx =
        mega_context(cached ? &cache : nullptr, threads, &work);
    obs::stopwatch sw;
    const auto sel = select_tree_interfaces(clients, ctx);
    depth_result r;
    r.depth = d;
    r.feasible = sel.feasible;
    r.root_bw = sel.root_bandwidth;
    r.offered_u = total_utilization(clients);
    r.wall_ms = sw.seconds() * 1e3;
    r.cache_misses = cache.stats().misses;
    r.tests_run = work.tests_run;
    r.points_checked = work.points_checked;
    r.ladder_fallbacks = work.ladder_exact_fallbacks;
    return r;
}

void write_json(const mega_options& opts,
                const std::vector<depth_result>& timing,
                const std::vector<depth_result>& feas, bool parity_ok,
                bool determinism_ok) {
    if (opts.json_path.empty()) return;
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "megascale: cannot write %s\n",
                     opts.json_path.c_str());
        std::exit(1);
    }
    auto emit_curve = [&](const char* name,
                          const std::vector<depth_result>& rs) {
        std::fprintf(f, "  \"%s\": {\n", name);
        for (std::size_t i = 0; i < rs.size(); ++i) {
            const auto& r = rs[i];
            // tests_run / points_checked are the deterministic,
            // machine-independent proxy for selection time (cache hits
            // replay the original counters, so totals are exact for any
            // --threads); wall_ms is recorded for trend-reading only.
            std::fprintf(
                f,
                "    \"d%u\": {\"feasible\": %s, \"root_bw\": %.6f, "
                "\"offered_u\": %.6f, \"tests_run\": %llu, "
                "\"points_checked\": %llu, \"wall_ms\": %.1f}%s\n",
                r.depth, r.feasible ? "true" : "false", r.root_bw,
                r.offered_u,
                static_cast<unsigned long long>(r.tests_run),
                static_cast<unsigned long long>(r.points_checked),
                r.wall_ms, i + 1 < rs.size() ? "," : "");
        }
        std::fprintf(f, "  }");
    };
    std::fprintf(f, "{\n  \"schema\": 1,\n");
    std::fprintf(f,
                 "  \"profile\": {\"wcet\": %llu, \"u_nominal\": %.2f, "
                 "\"u_feas\": %.2f, \"pool\": %u, \"max_period\": %llu},\n",
                 static_cast<unsigned long long>(k_wcet), k_u_nominal,
                 k_u_feas, k_pool,
                 static_cast<unsigned long long>(k_max_period));
    emit_curve("timing", timing);
    std::fprintf(f, ",\n");
    emit_curve("feasibility", feas);
    std::fprintf(f, ",\n  \"parity_ok\": %s,\n  \"determinism_ok\": %s\n}\n",
                 parity_ok ? "true" : "false",
                 determinism_ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", opts.json_path.c_str());
}

} // namespace

int main(int argc, char** argv) {
    const auto opts = parse_cli(argc, argv);

    std::printf("Mega-scale whole-tree interface selection "
                "(cheap-first ladder + selection cache)\n");

    // (a) Selection-time curve.
    std::printf("\n(a) Selection time vs depth (pool of %u profiles, "
                "U~%.2f, threads=%u):\n",
                k_pool, k_u_nominal, opts.threads);
    std::vector<depth_result> timing;
    stats::table t({"depth", "clients", "feasible", "root bw", "wall ms",
                    "cache misses", "exact fallbacks"});
    for (std::uint32_t d = 2; d <= opts.depth; ++d) {
        const auto r = run_depth(pool_clients(clients_at_depth(d)), d,
                                 opts.threads, true);
        t.add_row({std::to_string(d), std::to_string(clients_at_depth(d)),
                   r.feasible ? "yes" : "no",
                   stats::table::num(r.root_bw, 3),
                   stats::table::num(r.wall_ms, 1),
                   std::to_string(r.cache_misses),
                   std::to_string(r.ladder_fallbacks)});
        timing.push_back(r);
    }
    t.print();

    // (b) Feasibility curve at fixed light load.
    std::printf("\n(b) Feasibility vs depth (uniform profile, offered "
                "U=%.2f, threads=1):\n",
                k_u_feas);
    std::vector<depth_result> feas;
    stats::table ft({"depth", "clients", "feasible", "offered U",
                     "root bw", "overhead x", "wall ms"});
    for (std::uint32_t d = 2; d <= opts.feas_depth; ++d) {
        const auto r =
            run_depth(uniform_clients(clients_at_depth(d)), d, 1, true);
        ft.add_row({std::to_string(d), std::to_string(clients_at_depth(d)),
                    r.feasible ? "yes" : "no",
                    stats::table::num(r.offered_u, 3),
                    stats::table::num(r.root_bw, 3),
                    stats::table::num(r.root_bw / r.offered_u, 2),
                    stats::table::num(r.wall_ms, 1)});
        feas.push_back(r);
    }
    ft.print();
    std::printf("The overhead column is the compounding price of "
                "hierarchical composition:\neach level re-quantizes its "
                "children's (Pi, Theta) server tasks.\n");

    // (c) Ladder parity against the exact-only selector.
    std::printf("\n(c) Ladder parity (exact-only vs laddered+cached, "
                "byte-compared):\n");
    bool parity_ok = true;
    for (std::uint32_t d = 2; d <= opts.parity_depth; ++d) {
        const auto clients = pool_clients(clients_at_depth(d));
        analysis_context exact_ctx;
        exact_ctx.max_period = k_max_period;
        exact_ctx.threads = opts.threads;
        obs::stopwatch sw;
        const auto exact = select_tree_interfaces(clients, exact_ctx);
        const double exact_ms = sw.seconds() * 1e3;
        selection_cache cache;
        sw.restart();
        const auto laddered = select_tree_interfaces(
            clients, mega_context(&cache, opts.threads, nullptr));
        const double ladder_ms = sw.seconds() * 1e3;
        const bool same = canonical(exact) == canonical(laddered);
        parity_ok = parity_ok && same;
        std::printf("  depth %u: %s (exact %.1f ms, laddered+cached "
                    "%.1f ms)\n",
                    d, same ? "bit-identical" : "MISMATCH", exact_ms,
                    ladder_ms);
    }

    // (d) Threads determinism.
    const std::uint32_t det_depth = std::min(opts.depth, 6u);
    const auto det_clients = pool_clients(clients_at_depth(det_depth));
    std::printf("\n(d) Threads determinism at depth %u: ", det_depth);
    bool determinism_ok = true;
    std::string reference;
    for (unsigned threads : {1u, 2u, 8u}) {
        selection_cache cache;
        const auto sel = select_tree_interfaces(
            det_clients, mega_context(&cache, threads, nullptr));
        if (reference.empty()) {
            reference = canonical(sel);
        } else {
            determinism_ok =
                determinism_ok && canonical(sel) == reference;
        }
    }
    std::printf("%s (threads 1/2/8)\n",
                determinism_ok ? "byte-identical" : "MISMATCH");

    write_json(opts, timing, feas, parity_ok, determinism_ok);

    if (!parity_ok || !determinism_ok) {
        std::printf("\nmegascale: FAILED (%s%s)\n",
                    parity_ok ? "" : "parity ",
                    determinism_ok ? "" : "determinism");
        return 1;
    }
    if (opts.check) std::printf("\nmegascale --check: all legs passed.\n");
    return 0;
}
