// Micro-benchmarks (google-benchmark) for the simulator's hot paths and
// the analysis kernels: per-cycle cost of a Scale Element, buffer
// arbitration, sbf/dbf evaluation, schedulability testing, and whole-tree
// interface selection.
#include <benchmark/benchmark.h>

#include <functional>

#include "analysis/interface_selection.hpp"
#include "analysis/schedulability.hpp"
#include "analysis/tree_analysis.hpp"
#include "core/random_access_buffer.hpp"
#include "core/scale_element.hpp"
#include "mem/memory_controller.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"

namespace {

using namespace bluescale;

/// Minimal periodic component for engine micro-benchmarks: ticks, counts,
/// and declares its next tick `period` cycles out -- the smallest payload
/// that exercises the scheduler's pop/advance machinery without any
/// model work drowning it out.
class periodic_probe : public component {
public:
    explicit periodic_probe(cycle_t period)
        : component("probe"), period_(period) {}
    void tick(cycle_t) override { ++ticks_; }
    [[nodiscard]] cycle_t next_event(cycle_t now) const override {
        return now + period_;
    }
    [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

private:
    cycle_t period_;
    std::uint64_t ticks_ = 0;
};

/// Per-simulated-cycle cost of the event engine's schedule pop/advance:
/// period 1 steps every cycle (pure per-step engine overhead -- the due
/// scan, horizon refresh, commit scan); larger periods shift the work to
/// the idle-skip path, so items/s shows how cheap a slept-over cycle is.
void bm_event_engine_pop_advance(benchmark::State& state) {
    const auto period = static_cast<cycle_t>(state.range(0));
    constexpr cycle_t k_cycles = 65'536;
    std::uint64_t ticks = 0;
    for (auto _ : state) {
        simulator sim(simulator::engine::event);
        periodic_probe probe(period);
        sim.add(probe);
        sim.run(k_cycles);
        ticks += probe.ticks();
    }
    benchmark::DoNotOptimize(ticks);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_cycles));
}
BENCHMARK(bm_event_engine_pop_advance)->Arg(1)->Arg(16)->Arg(256);

/// The two run_until dispatch flavours over an every-cycle predicate:
/// the template overload inlines the lambda into the stepping loop; the
/// std::function overload pays a type-erased call per evaluation. The
/// gap between these two cases is the satellite the template overload
/// was added to close.
void bm_run_until_template_predicate(benchmark::State& state) {
    constexpr std::uint64_t k_target = 32'768;
    for (auto _ : state) {
        simulator sim(simulator::engine::event);
        periodic_probe probe(1);
        sim.add(probe);
        const bool fired = sim.run_until(
            [&probe] { return probe.ticks() >= k_target; }, k_target * 2);
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_target));
}
BENCHMARK(bm_run_until_template_predicate);

void bm_run_until_std_function_predicate(benchmark::State& state) {
    constexpr std::uint64_t k_target = 32'768;
    for (auto _ : state) {
        simulator sim(simulator::engine::event);
        periodic_probe probe(1);
        sim.add(probe);
        const std::function<bool()> done = [&probe] {
            return probe.ticks() >= k_target;
        };
        const bool fired = sim.run_until(done, k_target * 2);
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_target));
}
BENCHMARK(bm_run_until_std_function_predicate);

void bm_random_access_buffer_fetch(benchmark::State& state) {
    const auto depth = static_cast<std::size_t>(state.range(0));
    core::random_access_buffer buf(depth);
    rng gen(1);
    for (auto _ : state) {
        while (buf.can_load()) {
            mem_request r;
            r.level_deadline = gen.uniform_u64(0, 1000);
            buf.load(r);
        }
        buf.commit();
        while (!buf.empty()) {
            benchmark::DoNotOptimize(buf.fetch_earliest());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(depth));
}
BENCHMARK(bm_random_access_buffer_fetch)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void bm_scale_element_tick(benchmark::State& state) {
    core::scale_element se("SE", {});
    for (std::uint32_t p = 0; p < 4; ++p) se.configure_port(p, 8, 2);
    std::uint64_t sunk = 0;
    se.bind_sink([] { return true; }, [&](mem_request) { ++sunk; });
    rng gen(2);
    cycle_t now = 0;
    for (auto _ : state) {
        for (std::uint32_t p = 0; p < 4; ++p) {
            if (se.port_can_accept(p)) {
                mem_request r;
                r.level_deadline = now + gen.uniform_u64(10, 500);
                se.port_push(p, r);
            }
        }
        se.tick(now);
        se.commit();
        ++now;
    }
    benchmark::DoNotOptimize(sunk);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_scale_element_tick);

void bm_memory_controller_tick(benchmark::State& state) {
    memory_controller mc;
    rng gen(3);
    std::uint64_t seq = 0;
    cycle_t now = 0;
    for (auto _ : state) {
        while (mc.can_accept()) {
            mem_request r;
            r.id = seq;
            r.addr = (seq++ % 4096) * 64;
            r.level_deadline = now + 500;
            mc.push(r);
        }
        mc.tick(now);
        while (mc.has_response()) benchmark::DoNotOptimize(mc.pop_response());
        mc.commit();
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_memory_controller_tick);

/// Controller tick under DRAM maintenance: arg 0 runs maintenance-off
/// (same shape as bm_memory_controller_tick -- the perf-smoke hot path),
/// arg 1 enables refresh + scrub + hammer tracking so the delta prices
/// the maintenance engine's closed-form catch-up on the tick path.
void bm_dram_maintenance(benchmark::State& state) {
    memctrl_config cfg;
    if (state.range(0) != 0) {
        cfg.timing.t_refi = 975;
        cfg.timing.t_rfc = 65;
        cfg.maintenance.scrub_interval = 2048;
        cfg.maintenance.scrub_duration = 32;
        cfg.maintenance.hammer_threshold = 256;
        cfg.maintenance.hammer_mitigation_cycles = 32;
    }
    memory_controller mc(cfg);
    std::uint64_t seq = 0;
    cycle_t now = 0;
    for (auto _ : state) {
        while (mc.can_accept()) {
            mem_request r;
            r.id = seq;
            r.addr = (seq++ % 4096) * 64;
            r.level_deadline = now + 500;
            mc.push(r);
        }
        mc.tick(now);
        while (mc.has_response()) benchmark::DoNotOptimize(mc.pop_response());
        mc.commit();
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_dram_maintenance)->Arg(0)->Arg(1);

void bm_sbf(benchmark::State& state) {
    const analysis::resource_interface iface{97, 31};
    std::uint64_t t = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::sbf(t, iface));
        t = (t * 1103515245 + 12345) % 100000;
    }
}
BENCHMARK(bm_sbf);

void bm_dbf_taskset(benchmark::State& state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    rng gen(4);
    analysis::task_set tasks;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t period = gen.uniform_u64(50, 2000);
        tasks.push_back({period, gen.uniform_u64(1, period / 4)});
    }
    std::uint64_t t = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::dbf(t, tasks));
        t = (t * 48271) % 100000 + 1;
    }
}
BENCHMARK(bm_dbf_taskset)->Arg(4)->Arg(16)->Arg(64);

void bm_schedulability_test(benchmark::State& state) {
    rng gen(5);
    analysis::task_set tasks;
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t period = gen.uniform_u64(100, 2000);
        tasks.push_back({period, gen.uniform_u64(1, period / 16)});
    }
    const analysis::resource_interface iface{64, 24};
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::is_schedulable(tasks, iface));
    }
}
BENCHMARK(bm_schedulability_test);

void bm_select_interface(benchmark::State& state) {
    rng gen(6);
    analysis::task_set tasks;
    for (int i = 0; i < 4; ++i) {
        const std::uint64_t period = gen.uniform_u64(100, 1000);
        tasks.push_back({period, gen.uniform_u64(1, period / 16)});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis::select_interface(tasks, 0.8));
    }
}
BENCHMARK(bm_select_interface);

void bm_tree_selection_16_clients(benchmark::State& state) {
    rng gen(7);
    auto sets = workload::make_client_tasksets(gen, 16, 0.8, 0.8);
    std::vector<analysis::task_set> rt;
    for (const auto& s : sets) rt.push_back(workload::to_rt_tasks(s));
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::select_tree_interfaces(rt));
    }
}
BENCHMARK(bm_tree_selection_16_clients);

} // namespace

BENCHMARK_MAIN();
