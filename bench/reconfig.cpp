// Runtime admission control and transactional reconfiguration
// (robustness extension, not a paper figure): sweeps the request rate of
// a seed-driven reconfiguration schedule (client task-set scale-ups and
// -downs, joins, leaves) over the Fig. 6 synthetic workload and reports,
// per design, the admission ratio by outcome, the modeled
// reconfiguration latency, deadline misses during transitions, and
// overload shed/restore activity. BlueScale routes every request through
// the online Sec. 5 admission test with transactional commit; the
// BlueTree baseline applies every change unconditionally with zero
// latency.
//
//   $ ./bench/reconfig [--trials N] [--cycles N] [--threads N]
//                      [--seed N] [--csv out.csv]
//                      [--metrics out.csv] [--trace out.json]
//
// --csv dumps one row per (design, rate) with the raw aggregates (cells
// rendered through obs::metric_cells off the experiment's metric
// snapshot); the file is byte-identical for any --threads setting.
// --metrics dumps the BlueScale design's merged per-trial obs::registry
// snapshot and --trace its trial-0 event trace, both at the highest
// request rate; the metrics file is likewise byte-identical for any
// --threads setting.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/reconfig_experiment.hpp"
#include "obs/registry.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

/// Reconfiguration requests per 1000 cycles.
constexpr double k_rates[] = {0.05, 0.2, 0.5};
constexpr ic_kind k_designs[] = {ic_kind::bluetree, ic_kind::bluescale};

void run_design(ic_kind kind, const bench_options& opts,
                stats::csv_writer* csv) {
    std::printf("\n=== %s: request-rate sweep, %u trials, %llu "
                "cycles/trial ===\n",
                kind_name(kind), opts.trials,
                static_cast<unsigned long long>(opts.measure_cycles));

    stats::table t({"rate", "submitted", "admit%", "commit", "rollbk",
                    "rej inf/over/haz", "lat (cyc)", "trans miss",
                    "miss ratio", "hard miss", "BE miss", "shed/rest"});
    for (double rate : k_rates) {
        reconfig_exp_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.seed = opts.seed;
        cfg.threads = opts.threads;
        cfg.events_per_kcycle = rate;
        // Obs exports cover the BlueScale design at the highest request
        // rate (the most eventful run on a timeline).
        const bool export_obs =
            kind == ic_kind::bluescale && rate == k_rates[2];
        cfg.collect_metrics = export_obs && !opts.metrics_path.empty();
        cfg.collect_trace = export_obs && !opts.trace_path.empty();

        const reconfig_result r = run_reconfig(kind, cfg);
        if (cfg.collect_metrics) write_bench_metrics(opts, r.metrics);
        if (cfg.collect_trace) write_bench_trace(opts, r.trace);
        t.add_row({stats::table::num(rate, 2),
                   std::to_string(r.submitted + r.applied_unchecked),
                   stats::table::pct(r.admission_ratio(), 1),
                   std::to_string(r.committed),
                   std::to_string(r.rolled_back),
                   std::to_string(r.rejected_infeasible) + "/" +
                       std::to_string(r.rejected_overutilized) + "/" +
                       std::to_string(r.rejected_path_hazard),
                   stats::table::num(r.reconfig_latency_cycles.mean(), 0),
                   std::to_string(r.transition_misses),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   std::to_string(r.hard_misses),
                   std::to_string(r.best_effort_misses),
                   std::to_string(r.shed_events) + "/" +
                       std::to_string(r.restore_events)});
        if (csv != nullptr) {
            // Raw aggregate cells come off the experiment's metric
            // snapshot through the one exporter path; only the design
            // key and the sweep coordinate are composed here.
            std::vector<std::string> row{kind_name(kind),
                                         std::to_string(rate)};
            for (auto& cell : obs::metric_cells(
                     r.totals,
                     {"reconfig_exp/submitted",
                      "reconfig_exp/applied_unchecked",
                      "reconfig_exp/admitted", "reconfig_exp/committed",
                      "reconfig_exp/rolled_back",
                      "reconfig_exp/rejected_infeasible",
                      "reconfig_exp/rejected_overutilized",
                      "reconfig_exp/rejected_path_hazard",
                      "reconfig_exp/admission_ratio",
                      "reconfig_exp/latency_cycles",
                      "reconfig_exp/latency_cycles:max",
                      "reconfig_exp/transition_misses",
                      "reconfig_exp/miss_ratio",
                      "reconfig_exp/miss_ratio:sd",
                      "reconfig_exp/hard_misses",
                      "reconfig_exp/best_effort_misses",
                      "reconfig_exp/live_reconfigurations",
                      "reconfig_exp/windows_checked",
                      "reconfig_exp/violating_windows",
                      "reconfig_exp/supply_shortfall_alarms",
                      "reconfig_exp/shed_events",
                      "reconfig_exp/restore_events",
                      "reconfig_exp/shed_client_cycles",
                      "reconfig_exp/shed_deferrals",
                      "reconfig_exp/feasible_trials"})) {
                row.push_back(std::move(cell));
            }
            csv->add_row(row);
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 100'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Reconfig: online admission control, transactional (Pi, Theta) "
        "reconfiguration and overload shedding");

    const auto csv = open_bench_csv(
        opts,
        {"design", "rate", "submitted", "applied_unchecked", "admitted",
         "committed", "rolled_back", "rejected_infeasible",
         "rejected_overutilized", "rejected_path_hazard", "admission_ratio",
         "mean_latency_cycles", "max_latency_cycles", "transition_misses",
         "miss_ratio", "miss_sd", "hard_misses", "best_effort_misses",
         "live_reconfigurations", "windows_checked", "violating_windows",
         "supply_shortfall_alarms", "shed_events", "restore_events",
         "shed_client_cycles", "shed_deferrals", "feasible_trials"});

    std::printf("Runtime admission control and transactional "
                "reconfiguration under churn\n");
    for (ic_kind kind : k_designs) {
        run_design(kind, opts, csv.get());
    }
    return 0;
}
