// Runtime admission control and transactional reconfiguration
// (robustness extension, not a paper figure): sweeps the request rate of
// a seed-driven reconfiguration schedule (client task-set scale-ups and
// -downs, joins, leaves) over the Fig. 6 synthetic workload and reports,
// per design, the admission ratio by outcome, the modeled
// reconfiguration latency, deadline misses during transitions, and
// overload shed/restore activity. BlueScale routes every request through
// the online Sec. 5 admission test with transactional commit; the
// BlueTree baseline applies every change unconditionally with zero
// latency.
//
//   $ ./bench/reconfig [--trials N] [--cycles N] [--threads N]
//                      [--seed N] [--csv out.csv]
//
// --csv dumps one row per (design, rate) with the raw aggregates; the
// file is byte-identical for any --threads setting.
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/reconfig_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

/// Reconfiguration requests per 1000 cycles.
constexpr double k_rates[] = {0.05, 0.2, 0.5};
constexpr ic_kind k_designs[] = {ic_kind::bluetree, ic_kind::bluescale};

void run_design(ic_kind kind, const bench_options& opts,
                stats::csv_writer* csv) {
    std::printf("\n=== %s: request-rate sweep, %u trials, %llu "
                "cycles/trial ===\n",
                kind_name(kind), opts.trials,
                static_cast<unsigned long long>(opts.measure_cycles));

    stats::table t({"rate", "submitted", "admit%", "commit", "rollbk",
                    "rej inf/over/haz", "lat (cyc)", "trans miss",
                    "miss ratio", "hard miss", "BE miss", "shed/rest"});
    for (double rate : k_rates) {
        reconfig_exp_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.seed = opts.seed;
        cfg.threads = opts.threads;
        cfg.events_per_kcycle = rate;

        const reconfig_result r = run_reconfig(kind, cfg);
        t.add_row({stats::table::num(rate, 2),
                   std::to_string(r.submitted + r.applied_unchecked),
                   stats::table::pct(r.admission_ratio(), 1),
                   std::to_string(r.committed),
                   std::to_string(r.rolled_back),
                   std::to_string(r.rejected_infeasible) + "/" +
                       std::to_string(r.rejected_overutilized) + "/" +
                       std::to_string(r.rejected_path_hazard),
                   stats::table::num(r.reconfig_latency_cycles.mean(), 0),
                   std::to_string(r.transition_misses),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   std::to_string(r.hard_misses),
                   std::to_string(r.best_effort_misses),
                   std::to_string(r.shed_events) + "/" +
                       std::to_string(r.restore_events)});
        if (csv != nullptr) {
            csv->add_row(
                {kind_name(kind), std::to_string(rate),
                 std::to_string(r.submitted),
                 std::to_string(r.applied_unchecked),
                 std::to_string(r.admitted), std::to_string(r.committed),
                 std::to_string(r.rolled_back),
                 std::to_string(r.rejected_infeasible),
                 std::to_string(r.rejected_overutilized),
                 std::to_string(r.rejected_path_hazard),
                 std::to_string(r.admission_ratio()),
                 std::to_string(r.reconfig_latency_cycles.mean()),
                 std::to_string(r.reconfig_latency_cycles.max()),
                 std::to_string(r.transition_misses),
                 std::to_string(r.miss_ratio.mean()),
                 std::to_string(r.miss_ratio.stddev()),
                 std::to_string(r.hard_misses),
                 std::to_string(r.best_effort_misses),
                 std::to_string(r.live_reconfigurations),
                 std::to_string(r.windows_checked),
                 std::to_string(r.violating_windows),
                 std::to_string(r.supply_shortfall_alarms),
                 std::to_string(r.shed_events),
                 std::to_string(r.restore_events),
                 std::to_string(r.shed_client_cycles),
                 std::to_string(r.shed_deferrals),
                 std::to_string(r.feasible_trials)});
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 100'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Reconfig: online admission control, transactional (Pi, Theta) "
        "reconfiguration and overload shedding");

    const auto csv = open_bench_csv(
        opts,
        {"design", "rate", "submitted", "applied_unchecked", "admitted",
         "committed", "rolled_back", "rejected_infeasible",
         "rejected_overutilized", "rejected_path_hazard", "admission_ratio",
         "mean_latency_cycles", "max_latency_cycles", "transition_misses",
         "miss_ratio", "miss_sd", "hard_misses", "best_effort_misses",
         "live_reconfigurations", "windows_checked", "violating_windows",
         "supply_shortfall_alarms", "shed_events", "restore_events",
         "shed_client_cycles", "shed_deferrals", "feasible_trials"});

    std::printf("Runtime admission control and transactional "
                "reconfiguration under churn\n");
    for (ic_kind kind : k_designs) {
        run_design(kind, opts, csv.get());
    }
    return 0;
}
