// Resilience under fault injection (robustness extension, not a paper
// figure): sweeps a seed-driven fault campaign's intensity over the Fig. 6
// synthetic workload and reports, per design, the deadline-miss ratio,
// p99 and worst-case latency inflation relative to the healthy run,
// recovery counter totals, and the mean time-to-recover of degraded
// BlueScale elements.
//
//   $ ./bench/resilience [--trials N] [--cycles N] [--threads N]
//                        [--seed N] [--csv out.csv]
//                        [--metrics out.csv] [--trace out.json]
//
// --csv dumps one row per (design, intensity) with the raw aggregates
// (cells rendered through obs::metric_cells off the experiment's metric
// snapshot); the file is byte-identical for any --threads setting.
// --metrics dumps the BlueScale design's merged per-trial obs::registry
// snapshot and --trace its trial-0 event trace, both at the highest
// fault intensity; the metrics file is likewise byte-identical for any
// --threads setting.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/resilience_experiment.hpp"
#include "obs/registry.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

constexpr double k_intensities[] = {0.0, 0.2, 0.5, 1.0};
constexpr ic_kind k_designs[] = {ic_kind::bluetree,
                                 ic_kind::bluetree_smooth,
                                 ic_kind::bluescale};

void run_design(ic_kind kind, const bench_options& opts,
                stats::csv_writer* csv) {
    std::printf("\n=== %s: fault-intensity sweep, %u trials, %llu "
                "cycles/trial ===\n",
                kind_name(kind), opts.trials,
                static_cast<unsigned long long>(opts.measure_cycles));

    stats::table t({"intensity", "miss ratio", "p99 (cyc)", "p99 infl",
                    "worst (cyc)", "retries", "timeouts", "ecc", "drops",
                    "degr/recov", "mean TTR"});
    double healthy_p99 = 0.0;
    double healthy_worst = 0.0;
    for (double intensity : k_intensities) {
        resilience_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.seed = opts.seed;
        cfg.threads = opts.threads;
        cfg.fault_intensity = intensity;
        // Obs exports cover the BlueScale design at the highest intensity
        // (the most eventful run on a timeline).
        const bool export_obs = kind == ic_kind::bluescale &&
                                intensity == k_intensities[3];
        cfg.collect_metrics = export_obs && !opts.metrics_path.empty();
        cfg.collect_trace = export_obs && !opts.trace_path.empty();

        const resilience_result r = run_resilience(kind, cfg);
        if (cfg.collect_metrics) write_bench_metrics(opts, r.metrics);
        if (cfg.collect_trace) write_bench_trace(opts, r.trace);
        if (intensity == 0.0) {
            healthy_p99 = r.p99_latency_cycles.mean();
            healthy_worst = r.worst_latency_cycles.mean();
        }
        const double p99_inflation =
            healthy_p99 == 0.0 ? 0.0
                               : r.p99_latency_cycles.mean() / healthy_p99;
        const double worst_inflation =
            healthy_worst == 0.0
                ? 0.0
                : r.worst_latency_cycles.mean() / healthy_worst;

        t.add_row({stats::table::num(intensity, 1),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   stats::table::num(r.p99_latency_cycles.mean(), 1),
                   stats::table::num(p99_inflation, 2),
                   stats::table::num(r.worst_latency_cycles.mean(), 1),
                   std::to_string(r.retries), std::to_string(r.timeouts),
                   std::to_string(r.ecc_retries),
                   std::to_string(r.link_drops),
                   std::to_string(r.degrade_events) + "/" +
                       std::to_string(r.recovery_events),
                   stats::table::num(r.time_to_recover_cycles.mean(), 0)});
        if (csv != nullptr) {
            // Raw aggregate cells come off the experiment's metric
            // snapshot through the one exporter path; only the design
            // key, the sweep coordinate and the cross-run inflation
            // ratios are composed here.
            std::vector<std::string> row{kind_name(kind),
                                         std::to_string(intensity)};
            const auto append = [&](std::vector<std::string> names) {
                for (auto& cell : obs::metric_cells(r.totals, names)) {
                    row.push_back(std::move(cell));
                }
            };
            append({"resilience/miss_ratio", "resilience/miss_ratio:sd",
                    "resilience/p99_latency_cycles"});
            row.push_back(std::to_string(p99_inflation));
            append({"resilience/worst_latency_cycles"});
            row.push_back(std::to_string(worst_inflation));
            append({"resilience/injected_events",
                    "resilience/stall_windows",
                    "resilience/se_stall_cycles", "resilience/link_drops",
                    "resilience/ecc_retries",
                    "resilience/uncorrected_errors",
                    "resilience/storm_cycles", "resilience/retries",
                    "resilience/timeouts", "resilience/retry_exhausted",
                    "resilience/stale_responses",
                    "resilience/failed_responses",
                    "resilience/degrade_events",
                    "resilience/recovery_events",
                    "resilience/degraded_se_cycles",
                    "resilience/time_to_recover_cycles",
                    "resilience/feasible_trials"});
            csv->add_row(row);
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 100'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Resilience: deadline misses and latency inflation under "
        "fault-injection campaigns");

    const auto csv = open_bench_csv(
        opts,
        {"design", "intensity", "miss_ratio", "miss_sd", "p99_cycles",
         "p99_inflation", "worst_cycles", "worst_inflation",
         "injected_events", "stall_windows", "se_stall_cycles",
         "link_drops", "ecc_retries", "uncorrected_errors", "storm_cycles",
         "retries", "timeouts", "retry_exhausted", "stale_responses",
         "failed_responses", "degrade_events", "recovery_events",
         "degraded_se_cycles", "mean_time_to_recover", "feasible_trials"});

    std::printf("Resilience under fault injection: retry/timeout recovery "
                "and graceful degradation\n");
    for (ic_kind kind : k_designs) {
        run_design(kind, opts, csv.get());
    }
    return 0;
}
