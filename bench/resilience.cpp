// Resilience under fault injection (robustness extension, not a paper
// figure): sweeps a seed-driven fault campaign's intensity over the Fig. 6
// synthetic workload and reports, per design, the deadline-miss ratio,
// p99 and worst-case latency inflation relative to the healthy run,
// recovery counter totals, and the mean time-to-recover of degraded
// BlueScale elements.
//
//   $ ./bench/resilience [--trials N] [--cycles N] [--threads N]
//                        [--seed N] [--csv out.csv]
//
// --csv dumps one row per (design, intensity) with the raw aggregates;
// the file is byte-identical for any --threads setting.
#include <cstdio>

#include "harness/bench_cli.hpp"
#include "harness/resilience_experiment.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

constexpr double k_intensities[] = {0.0, 0.2, 0.5, 1.0};
constexpr ic_kind k_designs[] = {ic_kind::bluetree,
                                 ic_kind::bluetree_smooth,
                                 ic_kind::bluescale};

void run_design(ic_kind kind, const bench_options& opts,
                stats::csv_writer* csv) {
    std::printf("\n=== %s: fault-intensity sweep, %u trials, %llu "
                "cycles/trial ===\n",
                kind_name(kind), opts.trials,
                static_cast<unsigned long long>(opts.measure_cycles));

    stats::table t({"intensity", "miss ratio", "p99 (cyc)", "p99 infl",
                    "worst (cyc)", "retries", "timeouts", "ecc", "drops",
                    "degr/recov", "mean TTR"});
    double healthy_p99 = 0.0;
    double healthy_worst = 0.0;
    for (double intensity : k_intensities) {
        resilience_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.seed = opts.seed;
        cfg.threads = opts.threads;
        cfg.fault_intensity = intensity;

        const resilience_result r = run_resilience(kind, cfg);
        if (intensity == 0.0) {
            healthy_p99 = r.p99_latency_cycles.mean();
            healthy_worst = r.worst_latency_cycles.mean();
        }
        const double p99_inflation =
            healthy_p99 == 0.0 ? 0.0
                               : r.p99_latency_cycles.mean() / healthy_p99;
        const double worst_inflation =
            healthy_worst == 0.0
                ? 0.0
                : r.worst_latency_cycles.mean() / healthy_worst;

        t.add_row({stats::table::num(intensity, 1),
                   stats::table::pct(r.miss_ratio.mean(), 2),
                   stats::table::num(r.p99_latency_cycles.mean(), 1),
                   stats::table::num(p99_inflation, 2),
                   stats::table::num(r.worst_latency_cycles.mean(), 1),
                   std::to_string(r.retries), std::to_string(r.timeouts),
                   std::to_string(r.ecc_retries),
                   std::to_string(r.link_drops),
                   std::to_string(r.degrade_events) + "/" +
                       std::to_string(r.recovery_events),
                   stats::table::num(r.time_to_recover_cycles.mean(), 0)});
        if (csv != nullptr) {
            csv->add_row(
                {kind_name(kind), std::to_string(intensity),
                 std::to_string(r.miss_ratio.mean()),
                 std::to_string(r.miss_ratio.stddev()),
                 std::to_string(r.p99_latency_cycles.mean()),
                 std::to_string(p99_inflation),
                 std::to_string(r.worst_latency_cycles.mean()),
                 std::to_string(worst_inflation),
                 std::to_string(r.injected_events),
                 std::to_string(r.stall_windows),
                 std::to_string(r.se_stall_cycles),
                 std::to_string(r.link_drops),
                 std::to_string(r.ecc_retries),
                 std::to_string(r.uncorrected_errors),
                 std::to_string(r.storm_cycles),
                 std::to_string(r.retries), std::to_string(r.timeouts),
                 std::to_string(r.retry_exhausted),
                 std::to_string(r.stale_responses),
                 std::to_string(r.failed_responses),
                 std::to_string(r.degrade_events),
                 std::to_string(r.recovery_events),
                 std::to_string(r.degraded_se_cycles),
                 std::to_string(r.time_to_recover_cycles.mean()),
                 std::to_string(r.feasible_trials)});
        }
    }
    t.print();
}

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 100'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Resilience: deadline misses and latency inflation under "
        "fault-injection campaigns");

    const auto csv = open_bench_csv(
        opts,
        {"design", "intensity", "miss_ratio", "miss_sd", "p99_cycles",
         "p99_inflation", "worst_cycles", "worst_inflation",
         "injected_events", "stall_windows", "se_stall_cycles",
         "link_drops", "ecc_retries", "uncorrected_errors", "storm_cycles",
         "retries", "timeouts", "retry_exhausted", "stale_responses",
         "failed_responses", "degrade_events", "recovery_events",
         "degraded_se_cycles", "mean_time_to_recover", "feasible_trials"});

    std::printf("Resilience under fault injection: retry/timeout recovery "
                "and graceful degradation\n");
    for (ic_kind kind : k_designs) {
        run_design(kind, opts, csv.get());
    }
    return 0;
}
