// Hardened analysis-as-a-service under admission storms (robustness
// extension, not a paper figure): sweeps the request rate of a
// seed-driven storm of client task-change requests fired at
// svc::analysis_service -- the bounded-queue, multi-worker admission
// server fronting core::reconfig_manager -- while worker crash/stall
// faults and fabric path hazards run concurrently. Reports, per rate,
// the outcome mix (committed / rejected / expired / shed), retry and
// crash-requeue activity, result-cache hit rate, circuit-breaker trips
// with degraded-precision answers, and the conservation + hard-client
// acceptance checks.
//
//   $ ./bench/svc_storm [--trials N] [--cycles N] [--threads N]
//                       [--seed N] [--csv out.csv]
//                       [--metrics out.csv] [--trace out.json]
//
// --csv dumps one row per rate with the raw aggregates (cells rendered
// through obs::metric_cells off the experiment's metric snapshot); the
// file is byte-identical for any --threads setting and for the event vs
// lockstep engines. --metrics dumps the merged per-trial obs::registry
// snapshot and --trace the trial-0 event trace, both at the highest
// rate.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/analysis_service_experiment.hpp"
#include "harness/bench_cli.hpp"
#include "obs/registry.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::harness;

namespace {

/// Service requests per 1000 cycles (the storm intensity).
constexpr double k_rates[] = {0.5, 2.0, 8.0};

} // namespace

int main(int argc, char** argv) {
    bench_options defaults;
    defaults.trials = 8;
    defaults.measure_cycles = 60'000;
    const auto opts = parse_bench_cli(
        argc, argv, defaults,
        {bench_arg::trials, bench_arg::cycles, bench_arg::csv},
        "Svc storm: bounded-queue multi-worker admission service under "
        "overload, worker faults and path hazards");

    const auto csv = open_bench_csv(
        opts,
        {"rate", "submitted", "shed", "expired", "committed", "rejected",
         "rejected_infeasible", "rejected_overutilized",
         "rejected_path_hazard", "rolled_back", "retries", "requeues",
         "worker_crashes", "worker_stall_cycles", "cache_hits",
         "cache_misses", "cache_hit_ratio", "cache_invalidations",
         "degraded_evals", "degraded_requests", "breaker_trips",
         "stale_reevals", "mean_latency_cycles", "max_latency_cycles",
         "mean_eval_cycles", "miss_ratio", "hard_misses",
         "best_effort_misses", "live_reconfigurations", "feasible_trials",
         "drained_trials", "conserved_trials"});

    std::printf("Hardened analysis service under admission storms, "
                "worker faults and path hazards\n");
    std::printf("\n=== request-rate sweep, %u trials, %llu cycles/trial "
                "===\n",
                opts.trials,
                static_cast<unsigned long long>(opts.measure_cycles));

    stats::table t({"rate", "submitted", "shed", "expired", "commit",
                    "reject", "retry/requeue", "cache hit%", "degraded",
                    "breaker", "lat (cyc)", "hard miss", "conserved"});
    for (double rate : k_rates) {
        svc_storm_config cfg;
        cfg.trials = opts.trials;
        cfg.measure_cycles = opts.measure_cycles;
        cfg.seed = opts.seed;
        cfg.threads = opts.threads;
        cfg.requests_per_kcycle = rate;
        cfg.service.default_deadline = 20'000;
        cfg.worker_fault_intensity = 0.05;
        cfg.path_fault_intensity = 0.05;
        const bool export_obs = rate == k_rates[2];
        cfg.collect_metrics = export_obs && !opts.metrics_path.empty();
        cfg.collect_trace = export_obs && !opts.trace_path.empty();

        const svc_storm_result r = run_svc_storm(cfg);
        if (cfg.collect_metrics) write_bench_metrics(opts, r.metrics);
        if (cfg.collect_trace) write_bench_trace(opts, r.trace);
        t.add_row({stats::table::num(rate, 1),
                   std::to_string(r.submitted), std::to_string(r.shed),
                   std::to_string(r.expired), std::to_string(r.committed),
                   std::to_string(r.rejected),
                   std::to_string(r.retries) + "/" +
                       std::to_string(r.requeues),
                   stats::table::pct(r.cache_hit_ratio(), 1),
                   std::to_string(r.degraded_requests),
                   std::to_string(r.breaker_trips),
                   stats::table::num(r.latency_cycles.mean(), 0),
                   std::to_string(r.hard_misses),
                   std::to_string(r.conserved_trials) + "/" +
                       std::to_string(r.trials)});
        if (csv != nullptr) {
            std::vector<std::string> row{std::to_string(rate)};
            for (auto& cell : obs::metric_cells(
                     r.totals,
                     {"svc_exp/submitted", "svc_exp/shed",
                      "svc_exp/expired", "svc_exp/committed",
                      "svc_exp/rejected", "svc_exp/rejected_infeasible",
                      "svc_exp/rejected_overutilized",
                      "svc_exp/rejected_path_hazard",
                      "svc_exp/rolled_back", "svc_exp/retries",
                      "svc_exp/requeues", "svc_exp/worker_crashes",
                      "svc_exp/worker_stall_cycles", "svc_exp/cache_hits",
                      "svc_exp/cache_misses", "svc_exp/cache_hit_ratio",
                      "svc_exp/cache_invalidations",
                      "svc_exp/degraded_evals",
                      "svc_exp/degraded_requests",
                      "svc_exp/breaker_trips", "svc_exp/stale_reevals",
                      "svc_exp/latency_cycles",
                      "svc_exp/latency_cycles:max",
                      "svc_exp/eval_cycles", "svc_exp/miss_ratio",
                      "svc_exp/hard_misses",
                      "svc_exp/best_effort_misses",
                      "svc_exp/live_reconfigurations",
                      "svc_exp/feasible_trials", "svc_exp/drained_trials",
                      "svc_exp/conserved_trials"})) {
                row.push_back(std::move(cell));
            }
            csv->add_row(row);
        }
    }
    t.print();
    return 0;
}
