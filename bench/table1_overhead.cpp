// Reproduces Table 1: hardware overhead of the evaluated designs at 16
// clients (LUTs, registers, DSPs, RAMs, power), from the analytic cost
// model calibrated against the paper's Vivado synthesis (see DESIGN.md,
// substitution table).
#include <cstdio>

#include "hwcost/cost_model.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::hwcost;

int main() {
    std::printf("Table 1 reproduction: hardware overhead at 16 clients "
                "(RAM unit: KB; power unit: mW)\n\n");

    const design rows[] = {
        design::axi_icrt,  design::bluetree, design::bluetree_smooth,
        design::gsmtree,   design::microblaze, design::riscv,
        design::bluescale,
    };

    stats::table t({"design", "LUTs", "Registers", "DSPs", "RAMs",
                    "Power"});
    for (design d : rows) {
        const auto e = estimate(d, 16);
        t.add_row({d == design::bluescale ? "Proposed" : design_name(d),
                   stats::table::num(e.luts, 0),
                   stats::table::num(e.registers, 0),
                   stats::table::num(e.dsps, 0),
                   stats::table::num(e.ram_kb, 0),
                   stats::table::num(e.power_mw, 0)});
    }
    t.print();

    std::printf("\nObs 1 ratios (BlueScale vs. baselines):\n");
    const auto bs = estimate(design::bluescale, 16);
    for (design d : {design::bluetree, design::bluetree_smooth,
                     design::gsmtree, design::axi_icrt,
                     design::microblaze, design::riscv}) {
        const auto e = estimate(d, 16);
        std::printf("  vs %-16s %5.1f%% LUTs, %5.1f%% registers, "
                    "%5.1f%% power\n",
                    design_name(d), 100.0 * bs.luts / e.luts,
                    100.0 * bs.registers / e.registers,
                    100.0 * bs.power_mw / e.power_mw);
    }
    return 0;
}
