// Theory validation (extension experiment A6 in DESIGN.md): the paper's
// compositional analysis promises that a *feasible* interface selection
// makes every memory transaction meet its implicit deadline. This bench
// drives configured BlueScale fabrics hard and checks that promise
// directly (zero misses over every feasible trial), and reports the
// structural backlog-drain bound (analysis/wcrt.hpp) next to the observed
// maximum latency as a pessimism diagnostic.
//
// It also surfaces a real quantization effect: with integer (Pi, Theta)
// at 1-unit granularity, each port's minimum bandwidth overshoots its
// clients' utilization, so at 64+ clients and high load the selection is
// often infeasible even though the raw utilization fits -- the trials
// column records this.
//
//   $ ./bench/wcrt_validation [--trials N] [--cycles N] [--threads N]
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/wcrt.hpp"
#include "core/bluescale_ic.hpp"
#include "harness/bench_cli.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "sim/trial_runner.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

namespace {

struct trial_result {
    bool feasible = false;
    std::uint64_t missed = 0;
    std::uint64_t missed_beyond_margin = 0;
    std::uint64_t completed = 0;
    double worst_observed = 0.0;
    std::uint64_t largest_bound = 0;
};

trial_result run_trial(std::uint32_t n_clients, double util_lo,
                       double util_hi, cycle_t cycles,
                       std::uint64_t seed) {
    rng gen(seed);
    workload::taskset_params params;
    params.min_period_units = 40;
    params.max_period_units = 600;
    auto tasksets = workload::make_client_tasksets(gen, n_clients,
                                                   util_lo, util_hi);
    std::vector<analysis::task_set> rt;
    for (const auto& ts : tasksets) {
        rt.push_back(workload::to_rt_tasks(ts));
    }
    const auto selection = analysis::select_tree_interfaces(rt);

    trial_result out;
    out.feasible = selection.feasible;
    if (!out.feasible) return out;

    core::bluescale_config bs_cfg;
    core::bluescale_ic fabric(n_clients, bs_cfg);
    fabric.configure(selection);
    memory_controller mem;
    fabric.attach_memory(mem);

    // Grant the constant overhead the unit-rate abstraction omits:
    // draining the memory queue, the FR-FCFS bypass allowance (a queued
    // request may lose up to bypass_cap further start slots to row hits),
    // the worst single access, and the response-path hops.
    workload::traffic_gen_config tg_cfg;
    tg_cfg.validation_margin_cycles =
        (mem.config().request_queue_depth +
         mem.config().fr_fcfs_bypass_cap + 1) *
            mem.config().initiation_interval +
        24 + 2ull * fabric.depth_of(0);
    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, seed + c, tg_cfg));
    }
    fabric.set_response_handler([&](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });

    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.run(cycles);

    analysis::wcrt_memory_model mm;
    mm.queue_depth = mem.config().request_queue_depth;
    mm.initiation_interval = mem.config().initiation_interval;
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        clients[c]->finalize(sim.now());
        out.missed += clients[c]->stats().missed();
        out.missed_beyond_margin +=
            clients[c]->stats().missed_beyond_margin();
        out.completed += clients[c]->stats().completed();
        out.worst_observed = std::max(
            out.worst_observed, clients[c]->stats().latency_cycles().max());
        const auto bound = analysis::wcrt_bound(
            selection, c, bs_cfg.se.buffer_depth, mm);
        if (bound.bounded) {
            out.largest_bound =
                std::max(out.largest_bound,
                         bound.total_cycles(bs_cfg.se.unit_cycles));
        }
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    harness::bench_options defaults;
    defaults.trials = 10;
    defaults.measure_cycles = 80'000;
    const auto opts = harness::parse_bench_cli(
        argc, argv, defaults,
        {harness::bench_arg::trials, harness::bench_arg::cycles},
        "Analysis validation: feasible selection => zero misses");
    const sim::trial_runner runner(opts.threads);

    std::printf("Analysis validation: feasible interface selection => "
                "zero deadline misses (BlueScale)\n\n");

    struct scale {
        std::uint32_t clients;
        double util_lo, util_hi;
    };
    // 64 clients run at lower utilization: integer (Pi, Theta)
    // quantization makes 70-90%% selections mostly infeasible there.
    const scale scales[] = {{16, 0.70, 0.90}, {64, 0.50, 0.70}};

    stats::table t({"clients", "utilization", "feasible trials",
                    "missed/completed", "beyond margin",
                    "worst latency (cyc)", "drain bound (cyc)"});
    for (const auto& s : scales) {
        const auto results =
            runner.run(opts.trials, [&](std::uint32_t i) {
                return run_trial(s.clients, s.util_lo, s.util_hi,
                                 opts.measure_cycles, 7000 + i);
            });

        std::uint32_t feasible = 0;
        std::uint64_t missed = 0, beyond = 0, completed = 0;
        double worst = 0.0;
        std::uint64_t bound = 0;
        for (const auto& r : results) {
            if (!r.feasible) continue;
            ++feasible;
            missed += r.missed;
            beyond += r.missed_beyond_margin;
            completed += r.completed;
            worst = std::max(worst, r.worst_observed);
            bound = std::max(bound, r.largest_bound);
        }
        t.add_row({std::to_string(s.clients),
                   stats::table::num(s.util_lo, 2) + "-" +
                       stats::table::num(s.util_hi, 2),
                   std::to_string(feasible) + "/" +
                       std::to_string(opts.trials),
                   std::to_string(missed) + "/" + std::to_string(completed),
                   std::to_string(beyond),
                   stats::table::num(worst, 0), std::to_string(bound)});
    }
    t.print();
    std::printf("\nThe compositional guarantee covers transaction "
                "scheduling on the unit-rate memory abstraction;\n"
                "'beyond margin' counts misses after granting the "
                "constant memory/response overhead that abstraction\n"
                "omits -- it must be 0. The drain bound's gap to the "
                "worst latency is analysis pessimism.\n");
    return 0;
}
