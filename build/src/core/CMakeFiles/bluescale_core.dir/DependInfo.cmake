
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bluescale_ic.cpp" "src/core/CMakeFiles/bluescale_core.dir/bluescale_ic.cpp.o" "gcc" "src/core/CMakeFiles/bluescale_core.dir/bluescale_ic.cpp.o.d"
  "/root/repo/src/core/interface_selector.cpp" "src/core/CMakeFiles/bluescale_core.dir/interface_selector.cpp.o" "gcc" "src/core/CMakeFiles/bluescale_core.dir/interface_selector.cpp.o.d"
  "/root/repo/src/core/meshed_bluescale.cpp" "src/core/CMakeFiles/bluescale_core.dir/meshed_bluescale.cpp.o" "gcc" "src/core/CMakeFiles/bluescale_core.dir/meshed_bluescale.cpp.o.d"
  "/root/repo/src/core/parameter_path.cpp" "src/core/CMakeFiles/bluescale_core.dir/parameter_path.cpp.o" "gcc" "src/core/CMakeFiles/bluescale_core.dir/parameter_path.cpp.o.d"
  "/root/repo/src/core/scale_element.cpp" "src/core/CMakeFiles/bluescale_core.dir/scale_element.cpp.o" "gcc" "src/core/CMakeFiles/bluescale_core.dir/scale_element.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bluescale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bluescale_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bluescale_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/bluescale_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bluescale_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
