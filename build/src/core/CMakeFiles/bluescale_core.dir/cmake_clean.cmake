file(REMOVE_RECURSE
  "CMakeFiles/bluescale_core.dir/bluescale_ic.cpp.o"
  "CMakeFiles/bluescale_core.dir/bluescale_ic.cpp.o.d"
  "CMakeFiles/bluescale_core.dir/interface_selector.cpp.o"
  "CMakeFiles/bluescale_core.dir/interface_selector.cpp.o.d"
  "CMakeFiles/bluescale_core.dir/meshed_bluescale.cpp.o"
  "CMakeFiles/bluescale_core.dir/meshed_bluescale.cpp.o.d"
  "CMakeFiles/bluescale_core.dir/parameter_path.cpp.o"
  "CMakeFiles/bluescale_core.dir/parameter_path.cpp.o.d"
  "CMakeFiles/bluescale_core.dir/scale_element.cpp.o"
  "CMakeFiles/bluescale_core.dir/scale_element.cpp.o.d"
  "libbluescale_core.a"
  "libbluescale_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
