file(REMOVE_RECURSE
  "libbluescale_core.a"
)
