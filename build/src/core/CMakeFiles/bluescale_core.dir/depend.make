# Empty dependencies file for bluescale_core.
# This may be replaced when dependencies are built.
