file(REMOVE_RECURSE
  "CMakeFiles/ablation_channels.dir/ablation_channels.cpp.o"
  "CMakeFiles/ablation_channels.dir/ablation_channels.cpp.o.d"
  "ablation_channels"
  "ablation_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
