# Empty dependencies file for ablation_channels.
# This may be replaced when dependencies are built.
