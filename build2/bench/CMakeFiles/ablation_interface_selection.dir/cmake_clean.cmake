file(REMOVE_RECURSE
  "CMakeFiles/ablation_interface_selection.dir/ablation_interface_selection.cpp.o"
  "CMakeFiles/ablation_interface_selection.dir/ablation_interface_selection.cpp.o.d"
  "ablation_interface_selection"
  "ablation_interface_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interface_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
