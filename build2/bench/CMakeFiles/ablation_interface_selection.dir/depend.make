# Empty dependencies file for ablation_interface_selection.
# This may be replaced when dependencies are built.
