file(REMOVE_RECURSE
  "CMakeFiles/ablation_memctrl.dir/ablation_memctrl.cpp.o"
  "CMakeFiles/ablation_memctrl.dir/ablation_memctrl.cpp.o.d"
  "ablation_memctrl"
  "ablation_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
