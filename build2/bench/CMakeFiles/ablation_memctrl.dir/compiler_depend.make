# Empty compiler generated dependencies file for ablation_memctrl.
# This may be replaced when dependencies are built.
