file(REMOVE_RECURSE
  "CMakeFiles/ablation_server_policy.dir/ablation_server_policy.cpp.o"
  "CMakeFiles/ablation_server_policy.dir/ablation_server_policy.cpp.o.d"
  "ablation_server_policy"
  "ablation_server_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_server_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
