# Empty compiler generated dependencies file for ablation_server_policy.
# This may be replaced when dependencies are built.
