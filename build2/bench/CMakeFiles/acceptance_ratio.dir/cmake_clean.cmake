file(REMOVE_RECURSE
  "CMakeFiles/acceptance_ratio.dir/acceptance_ratio.cpp.o"
  "CMakeFiles/acceptance_ratio.dir/acceptance_ratio.cpp.o.d"
  "acceptance_ratio"
  "acceptance_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acceptance_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
