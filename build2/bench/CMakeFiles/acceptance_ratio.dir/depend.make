# Empty dependencies file for acceptance_ratio.
# This may be replaced when dependencies are built.
