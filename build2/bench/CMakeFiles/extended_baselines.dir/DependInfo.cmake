
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extended_baselines.cpp" "bench/CMakeFiles/extended_baselines.dir/extended_baselines.cpp.o" "gcc" "bench/CMakeFiles/extended_baselines.dir/extended_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/harness/CMakeFiles/bluescale_harness.dir/DependInfo.cmake"
  "/root/repo/build2/src/workload/CMakeFiles/bluescale_workload.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/bluescale_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/bluescale_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/analysis/CMakeFiles/bluescale_analysis.dir/DependInfo.cmake"
  "/root/repo/build2/src/interconnect/CMakeFiles/bluescale_interconnect.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/bluescale_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/bluescale_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/hwcost/CMakeFiles/bluescale_hwcost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
