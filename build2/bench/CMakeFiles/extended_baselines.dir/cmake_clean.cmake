file(REMOVE_RECURSE
  "CMakeFiles/extended_baselines.dir/extended_baselines.cpp.o"
  "CMakeFiles/extended_baselines.dir/extended_baselines.cpp.o.d"
  "extended_baselines"
  "extended_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
