# Empty compiler generated dependencies file for extended_baselines.
# This may be replaced when dependencies are built.
