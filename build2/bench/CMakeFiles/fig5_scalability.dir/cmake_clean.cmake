file(REMOVE_RECURSE
  "CMakeFiles/fig5_scalability.dir/fig5_scalability.cpp.o"
  "CMakeFiles/fig5_scalability.dir/fig5_scalability.cpp.o.d"
  "fig5_scalability"
  "fig5_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
