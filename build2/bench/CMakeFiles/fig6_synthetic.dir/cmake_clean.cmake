file(REMOVE_RECURSE
  "CMakeFiles/fig6_synthetic.dir/fig6_synthetic.cpp.o"
  "CMakeFiles/fig6_synthetic.dir/fig6_synthetic.cpp.o.d"
  "fig6_synthetic"
  "fig6_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
