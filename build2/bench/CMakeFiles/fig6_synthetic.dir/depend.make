# Empty dependencies file for fig6_synthetic.
# This may be replaced when dependencies are built.
