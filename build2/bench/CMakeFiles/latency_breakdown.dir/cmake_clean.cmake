file(REMOVE_RECURSE
  "CMakeFiles/latency_breakdown.dir/latency_breakdown.cpp.o"
  "CMakeFiles/latency_breakdown.dir/latency_breakdown.cpp.o.d"
  "latency_breakdown"
  "latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
