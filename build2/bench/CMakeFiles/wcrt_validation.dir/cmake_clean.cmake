file(REMOVE_RECURSE
  "CMakeFiles/wcrt_validation.dir/wcrt_validation.cpp.o"
  "CMakeFiles/wcrt_validation.dir/wcrt_validation.cpp.o.d"
  "wcrt_validation"
  "wcrt_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcrt_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
