# Empty compiler generated dependencies file for wcrt_validation.
# This may be replaced when dependencies are built.
