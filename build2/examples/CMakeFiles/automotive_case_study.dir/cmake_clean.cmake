file(REMOVE_RECURSE
  "CMakeFiles/automotive_case_study.dir/automotive_case_study.cpp.o"
  "CMakeFiles/automotive_case_study.dir/automotive_case_study.cpp.o.d"
  "automotive_case_study"
  "automotive_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
