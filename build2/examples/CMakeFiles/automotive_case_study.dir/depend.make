# Empty dependencies file for automotive_case_study.
# This may be replaced when dependencies are built.
