file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reconfiguration.dir/dynamic_reconfiguration.cpp.o"
  "CMakeFiles/dynamic_reconfiguration.dir/dynamic_reconfiguration.cpp.o.d"
  "dynamic_reconfiguration"
  "dynamic_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
