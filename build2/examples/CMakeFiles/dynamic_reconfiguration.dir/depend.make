# Empty dependencies file for dynamic_reconfiguration.
# This may be replaced when dependencies are built.
