file(REMOVE_RECURSE
  "CMakeFiles/interface_selection_tour.dir/interface_selection_tour.cpp.o"
  "CMakeFiles/interface_selection_tour.dir/interface_selection_tour.cpp.o.d"
  "interface_selection_tour"
  "interface_selection_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_selection_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
