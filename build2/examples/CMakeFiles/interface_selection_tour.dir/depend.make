# Empty dependencies file for interface_selection_tour.
# This may be replaced when dependencies are built.
