file(REMOVE_RECURSE
  "CMakeFiles/scaling_out.dir/scaling_out.cpp.o"
  "CMakeFiles/scaling_out.dir/scaling_out.cpp.o.d"
  "scaling_out"
  "scaling_out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
