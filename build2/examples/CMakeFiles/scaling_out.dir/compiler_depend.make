# Empty compiler generated dependencies file for scaling_out.
# This may be replaced when dependencies are built.
