
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/demand_bound.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/demand_bound.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/demand_bound.cpp.o.d"
  "/root/repo/src/analysis/exact_test.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/exact_test.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/exact_test.cpp.o.d"
  "/root/repo/src/analysis/interface_selection.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/interface_selection.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/interface_selection.cpp.o.d"
  "/root/repo/src/analysis/periodic_resource.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/periodic_resource.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/periodic_resource.cpp.o.d"
  "/root/repo/src/analysis/schedulability.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/schedulability.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/schedulability.cpp.o.d"
  "/root/repo/src/analysis/tree_analysis.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/tree_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/tree_analysis.cpp.o.d"
  "/root/repo/src/analysis/wcrt.cpp" "src/analysis/CMakeFiles/bluescale_analysis.dir/wcrt.cpp.o" "gcc" "src/analysis/CMakeFiles/bluescale_analysis.dir/wcrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
