file(REMOVE_RECURSE
  "CMakeFiles/bluescale_analysis.dir/demand_bound.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/demand_bound.cpp.o.d"
  "CMakeFiles/bluescale_analysis.dir/exact_test.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/exact_test.cpp.o.d"
  "CMakeFiles/bluescale_analysis.dir/interface_selection.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/interface_selection.cpp.o.d"
  "CMakeFiles/bluescale_analysis.dir/periodic_resource.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/periodic_resource.cpp.o.d"
  "CMakeFiles/bluescale_analysis.dir/schedulability.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/schedulability.cpp.o.d"
  "CMakeFiles/bluescale_analysis.dir/tree_analysis.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/tree_analysis.cpp.o.d"
  "CMakeFiles/bluescale_analysis.dir/wcrt.cpp.o"
  "CMakeFiles/bluescale_analysis.dir/wcrt.cpp.o.d"
  "libbluescale_analysis.a"
  "libbluescale_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
