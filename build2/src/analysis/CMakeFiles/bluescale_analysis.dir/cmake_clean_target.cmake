file(REMOVE_RECURSE
  "libbluescale_analysis.a"
)
