# Empty compiler generated dependencies file for bluescale_analysis.
# This may be replaced when dependencies are built.
