file(REMOVE_RECURSE
  "CMakeFiles/bluescale_harness.dir/bench_cli.cpp.o"
  "CMakeFiles/bluescale_harness.dir/bench_cli.cpp.o.d"
  "CMakeFiles/bluescale_harness.dir/factory.cpp.o"
  "CMakeFiles/bluescale_harness.dir/factory.cpp.o.d"
  "CMakeFiles/bluescale_harness.dir/fig6_experiment.cpp.o"
  "CMakeFiles/bluescale_harness.dir/fig6_experiment.cpp.o.d"
  "CMakeFiles/bluescale_harness.dir/fig7_experiment.cpp.o"
  "CMakeFiles/bluescale_harness.dir/fig7_experiment.cpp.o.d"
  "CMakeFiles/bluescale_harness.dir/testbench.cpp.o"
  "CMakeFiles/bluescale_harness.dir/testbench.cpp.o.d"
  "libbluescale_harness.a"
  "libbluescale_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
