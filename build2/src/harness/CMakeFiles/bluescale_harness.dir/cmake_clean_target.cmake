file(REMOVE_RECURSE
  "libbluescale_harness.a"
)
