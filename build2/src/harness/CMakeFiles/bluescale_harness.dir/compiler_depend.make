# Empty compiler generated dependencies file for bluescale_harness.
# This may be replaced when dependencies are built.
