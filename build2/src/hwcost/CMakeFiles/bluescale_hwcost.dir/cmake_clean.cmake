file(REMOVE_RECURSE
  "CMakeFiles/bluescale_hwcost.dir/cost_model.cpp.o"
  "CMakeFiles/bluescale_hwcost.dir/cost_model.cpp.o.d"
  "libbluescale_hwcost.a"
  "libbluescale_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
