file(REMOVE_RECURSE
  "libbluescale_hwcost.a"
)
