# Empty compiler generated dependencies file for bluescale_hwcost.
# This may be replaced when dependencies are built.
