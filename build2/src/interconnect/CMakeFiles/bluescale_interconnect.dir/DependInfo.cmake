
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/axi_hyperconnect.cpp" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/axi_hyperconnect.cpp.o" "gcc" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/axi_hyperconnect.cpp.o.d"
  "/root/repo/src/interconnect/axi_icrt.cpp" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/axi_icrt.cpp.o" "gcc" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/axi_icrt.cpp.o.d"
  "/root/repo/src/interconnect/bluetree.cpp" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/bluetree.cpp.o" "gcc" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/bluetree.cpp.o.d"
  "/root/repo/src/interconnect/gsmtree.cpp" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/gsmtree.cpp.o" "gcc" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/gsmtree.cpp.o.d"
  "/root/repo/src/interconnect/interconnect.cpp" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/interconnect.cpp.o" "gcc" "src/interconnect/CMakeFiles/bluescale_interconnect.dir/interconnect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/bluescale_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/bluescale_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
