file(REMOVE_RECURSE
  "CMakeFiles/bluescale_interconnect.dir/axi_hyperconnect.cpp.o"
  "CMakeFiles/bluescale_interconnect.dir/axi_hyperconnect.cpp.o.d"
  "CMakeFiles/bluescale_interconnect.dir/axi_icrt.cpp.o"
  "CMakeFiles/bluescale_interconnect.dir/axi_icrt.cpp.o.d"
  "CMakeFiles/bluescale_interconnect.dir/bluetree.cpp.o"
  "CMakeFiles/bluescale_interconnect.dir/bluetree.cpp.o.d"
  "CMakeFiles/bluescale_interconnect.dir/gsmtree.cpp.o"
  "CMakeFiles/bluescale_interconnect.dir/gsmtree.cpp.o.d"
  "CMakeFiles/bluescale_interconnect.dir/interconnect.cpp.o"
  "CMakeFiles/bluescale_interconnect.dir/interconnect.cpp.o.d"
  "libbluescale_interconnect.a"
  "libbluescale_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
