file(REMOVE_RECURSE
  "libbluescale_interconnect.a"
)
