# Empty dependencies file for bluescale_interconnect.
# This may be replaced when dependencies are built.
