
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram_model.cpp" "src/mem/CMakeFiles/bluescale_mem.dir/dram_model.cpp.o" "gcc" "src/mem/CMakeFiles/bluescale_mem.dir/dram_model.cpp.o.d"
  "/root/repo/src/mem/memory_controller.cpp" "src/mem/CMakeFiles/bluescale_mem.dir/memory_controller.cpp.o" "gcc" "src/mem/CMakeFiles/bluescale_mem.dir/memory_controller.cpp.o.d"
  "/root/repo/src/mem/memory_subsystem.cpp" "src/mem/CMakeFiles/bluescale_mem.dir/memory_subsystem.cpp.o" "gcc" "src/mem/CMakeFiles/bluescale_mem.dir/memory_subsystem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/bluescale_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
