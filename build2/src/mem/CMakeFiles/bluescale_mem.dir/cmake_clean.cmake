file(REMOVE_RECURSE
  "CMakeFiles/bluescale_mem.dir/dram_model.cpp.o"
  "CMakeFiles/bluescale_mem.dir/dram_model.cpp.o.d"
  "CMakeFiles/bluescale_mem.dir/memory_controller.cpp.o"
  "CMakeFiles/bluescale_mem.dir/memory_controller.cpp.o.d"
  "CMakeFiles/bluescale_mem.dir/memory_subsystem.cpp.o"
  "CMakeFiles/bluescale_mem.dir/memory_subsystem.cpp.o.d"
  "libbluescale_mem.a"
  "libbluescale_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
