file(REMOVE_RECURSE
  "libbluescale_mem.a"
)
