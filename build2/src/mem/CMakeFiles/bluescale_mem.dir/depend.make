# Empty dependencies file for bluescale_mem.
# This may be replaced when dependencies are built.
