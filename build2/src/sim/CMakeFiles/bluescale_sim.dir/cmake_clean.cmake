file(REMOVE_RECURSE
  "CMakeFiles/bluescale_sim.dir/simulator.cpp.o"
  "CMakeFiles/bluescale_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/bluescale_sim.dir/trial_runner.cpp.o"
  "CMakeFiles/bluescale_sim.dir/trial_runner.cpp.o.d"
  "libbluescale_sim.a"
  "libbluescale_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
