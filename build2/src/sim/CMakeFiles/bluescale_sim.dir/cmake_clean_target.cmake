file(REMOVE_RECURSE
  "libbluescale_sim.a"
)
