# Empty compiler generated dependencies file for bluescale_sim.
# This may be replaced when dependencies are built.
