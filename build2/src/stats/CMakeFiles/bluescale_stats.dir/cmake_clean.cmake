file(REMOVE_RECURSE
  "CMakeFiles/bluescale_stats.dir/csv.cpp.o"
  "CMakeFiles/bluescale_stats.dir/csv.cpp.o.d"
  "CMakeFiles/bluescale_stats.dir/histogram.cpp.o"
  "CMakeFiles/bluescale_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/bluescale_stats.dir/summary.cpp.o"
  "CMakeFiles/bluescale_stats.dir/summary.cpp.o.d"
  "CMakeFiles/bluescale_stats.dir/table.cpp.o"
  "CMakeFiles/bluescale_stats.dir/table.cpp.o.d"
  "libbluescale_stats.a"
  "libbluescale_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
