file(REMOVE_RECURSE
  "libbluescale_stats.a"
)
