# Empty dependencies file for bluescale_stats.
# This may be replaced when dependencies are built.
