
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/automotive_profiles.cpp" "src/workload/CMakeFiles/bluescale_workload.dir/automotive_profiles.cpp.o" "gcc" "src/workload/CMakeFiles/bluescale_workload.dir/automotive_profiles.cpp.o.d"
  "/root/repo/src/workload/dnn_accelerator.cpp" "src/workload/CMakeFiles/bluescale_workload.dir/dnn_accelerator.cpp.o" "gcc" "src/workload/CMakeFiles/bluescale_workload.dir/dnn_accelerator.cpp.o.d"
  "/root/repo/src/workload/processor_client.cpp" "src/workload/CMakeFiles/bluescale_workload.dir/processor_client.cpp.o" "gcc" "src/workload/CMakeFiles/bluescale_workload.dir/processor_client.cpp.o.d"
  "/root/repo/src/workload/taskset_gen.cpp" "src/workload/CMakeFiles/bluescale_workload.dir/taskset_gen.cpp.o" "gcc" "src/workload/CMakeFiles/bluescale_workload.dir/taskset_gen.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/bluescale_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/bluescale_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/traffic_generator.cpp" "src/workload/CMakeFiles/bluescale_workload.dir/traffic_generator.cpp.o" "gcc" "src/workload/CMakeFiles/bluescale_workload.dir/traffic_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/bluescale_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/bluescale_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/bluescale_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/analysis/CMakeFiles/bluescale_analysis.dir/DependInfo.cmake"
  "/root/repo/build2/src/interconnect/CMakeFiles/bluescale_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
