file(REMOVE_RECURSE
  "CMakeFiles/bluescale_workload.dir/automotive_profiles.cpp.o"
  "CMakeFiles/bluescale_workload.dir/automotive_profiles.cpp.o.d"
  "CMakeFiles/bluescale_workload.dir/dnn_accelerator.cpp.o"
  "CMakeFiles/bluescale_workload.dir/dnn_accelerator.cpp.o.d"
  "CMakeFiles/bluescale_workload.dir/processor_client.cpp.o"
  "CMakeFiles/bluescale_workload.dir/processor_client.cpp.o.d"
  "CMakeFiles/bluescale_workload.dir/taskset_gen.cpp.o"
  "CMakeFiles/bluescale_workload.dir/taskset_gen.cpp.o.d"
  "CMakeFiles/bluescale_workload.dir/trace.cpp.o"
  "CMakeFiles/bluescale_workload.dir/trace.cpp.o.d"
  "CMakeFiles/bluescale_workload.dir/traffic_generator.cpp.o"
  "CMakeFiles/bluescale_workload.dir/traffic_generator.cpp.o.d"
  "libbluescale_workload.a"
  "libbluescale_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluescale_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
