file(REMOVE_RECURSE
  "libbluescale_workload.a"
)
