# Empty dependencies file for bluescale_workload.
# This may be replaced when dependencies are built.
