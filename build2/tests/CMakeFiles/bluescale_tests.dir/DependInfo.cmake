
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_demand_bound.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_demand_bound.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_demand_bound.cpp.o.d"
  "/root/repo/tests/analysis/test_exact_test.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_exact_test.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_exact_test.cpp.o.d"
  "/root/repo/tests/analysis/test_interface_selection.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_interface_selection.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_interface_selection.cpp.o.d"
  "/root/repo/tests/analysis/test_periodic_resource.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_periodic_resource.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_periodic_resource.cpp.o.d"
  "/root/repo/tests/analysis/test_quadtree.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_quadtree.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_quadtree.cpp.o.d"
  "/root/repo/tests/analysis/test_schedulability.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_schedulability.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_schedulability.cpp.o.d"
  "/root/repo/tests/analysis/test_tree_analysis.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_tree_analysis.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_tree_analysis.cpp.o.d"
  "/root/repo/tests/analysis/test_wcrt.cpp" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_wcrt.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/analysis/test_wcrt.cpp.o.d"
  "/root/repo/tests/core/test_bluescale_ic.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_bluescale_ic.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_bluescale_ic.cpp.o.d"
  "/root/repo/tests/core/test_counters.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_counters.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_counters.cpp.o.d"
  "/root/repo/tests/core/test_interface_selector.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_interface_selector.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_interface_selector.cpp.o.d"
  "/root/repo/tests/core/test_local_scheduler.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_local_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_local_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_meshed_bluescale.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_meshed_bluescale.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_meshed_bluescale.cpp.o.d"
  "/root/repo/tests/core/test_parameter_path.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_parameter_path.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_parameter_path.cpp.o.d"
  "/root/repo/tests/core/test_random_access_buffer.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_random_access_buffer.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_random_access_buffer.cpp.o.d"
  "/root/repo/tests/core/test_scale_element.cpp" "tests/CMakeFiles/bluescale_tests.dir/core/test_scale_element.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/core/test_scale_element.cpp.o.d"
  "/root/repo/tests/harness/test_factory.cpp" "tests/CMakeFiles/bluescale_tests.dir/harness/test_factory.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/harness/test_factory.cpp.o.d"
  "/root/repo/tests/harness/test_fig6.cpp" "tests/CMakeFiles/bluescale_tests.dir/harness/test_fig6.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/harness/test_fig6.cpp.o.d"
  "/root/repo/tests/harness/test_fig7.cpp" "tests/CMakeFiles/bluescale_tests.dir/harness/test_fig7.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/harness/test_fig7.cpp.o.d"
  "/root/repo/tests/harness/test_testbench.cpp" "tests/CMakeFiles/bluescale_tests.dir/harness/test_testbench.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/harness/test_testbench.cpp.o.d"
  "/root/repo/tests/hwcost/test_cost_model.cpp" "tests/CMakeFiles/bluescale_tests.dir/hwcost/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/hwcost/test_cost_model.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/bluescale_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_fault_injection.cpp" "tests/CMakeFiles/bluescale_tests.dir/integration/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/integration/test_fault_injection.cpp.o.d"
  "/root/repo/tests/integration/test_metric_consistency.cpp" "tests/CMakeFiles/bluescale_tests.dir/integration/test_metric_consistency.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/integration/test_metric_consistency.cpp.o.d"
  "/root/repo/tests/integration/test_supply_conformance.cpp" "tests/CMakeFiles/bluescale_tests.dir/integration/test_supply_conformance.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/integration/test_supply_conformance.cpp.o.d"
  "/root/repo/tests/interconnect/test_axi_hyperconnect.cpp" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_axi_hyperconnect.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_axi_hyperconnect.cpp.o.d"
  "/root/repo/tests/interconnect/test_axi_icrt.cpp" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_axi_icrt.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_axi_icrt.cpp.o.d"
  "/root/repo/tests/interconnect/test_bluetree.cpp" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_bluetree.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_bluetree.cpp.o.d"
  "/root/repo/tests/interconnect/test_gsmtree.cpp" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_gsmtree.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_gsmtree.cpp.o.d"
  "/root/repo/tests/interconnect/test_interconnect_base.cpp" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_interconnect_base.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/interconnect/test_interconnect_base.cpp.o.d"
  "/root/repo/tests/mem/test_dram_model.cpp" "tests/CMakeFiles/bluescale_tests.dir/mem/test_dram_model.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/mem/test_dram_model.cpp.o.d"
  "/root/repo/tests/mem/test_memory_controller.cpp" "tests/CMakeFiles/bluescale_tests.dir/mem/test_memory_controller.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/mem/test_memory_controller.cpp.o.d"
  "/root/repo/tests/mem/test_memory_subsystem.cpp" "tests/CMakeFiles/bluescale_tests.dir/mem/test_memory_subsystem.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/mem/test_memory_subsystem.cpp.o.d"
  "/root/repo/tests/sim/test_fixed_queue.cpp" "tests/CMakeFiles/bluescale_tests.dir/sim/test_fixed_queue.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/sim/test_fixed_queue.cpp.o.d"
  "/root/repo/tests/sim/test_latched_queue.cpp" "tests/CMakeFiles/bluescale_tests.dir/sim/test_latched_queue.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/sim/test_latched_queue.cpp.o.d"
  "/root/repo/tests/sim/test_log.cpp" "tests/CMakeFiles/bluescale_tests.dir/sim/test_log.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/sim/test_log.cpp.o.d"
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/bluescale_tests.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/bluescale_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_trial_runner.cpp" "tests/CMakeFiles/bluescale_tests.dir/sim/test_trial_runner.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/sim/test_trial_runner.cpp.o.d"
  "/root/repo/tests/stats/test_csv.cpp" "tests/CMakeFiles/bluescale_tests.dir/stats/test_csv.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/stats/test_csv.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/bluescale_tests.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_summary.cpp" "tests/CMakeFiles/bluescale_tests.dir/stats/test_summary.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/stats/test_summary.cpp.o.d"
  "/root/repo/tests/stats/test_table.cpp" "tests/CMakeFiles/bluescale_tests.dir/stats/test_table.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/stats/test_table.cpp.o.d"
  "/root/repo/tests/workload/test_dnn_accelerator.cpp" "tests/CMakeFiles/bluescale_tests.dir/workload/test_dnn_accelerator.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/workload/test_dnn_accelerator.cpp.o.d"
  "/root/repo/tests/workload/test_processor_client.cpp" "tests/CMakeFiles/bluescale_tests.dir/workload/test_processor_client.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/workload/test_processor_client.cpp.o.d"
  "/root/repo/tests/workload/test_taskset_gen.cpp" "tests/CMakeFiles/bluescale_tests.dir/workload/test_taskset_gen.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/workload/test_taskset_gen.cpp.o.d"
  "/root/repo/tests/workload/test_trace.cpp" "tests/CMakeFiles/bluescale_tests.dir/workload/test_trace.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/workload/test_trace.cpp.o.d"
  "/root/repo/tests/workload/test_traffic_generator.cpp" "tests/CMakeFiles/bluescale_tests.dir/workload/test_traffic_generator.cpp.o" "gcc" "tests/CMakeFiles/bluescale_tests.dir/workload/test_traffic_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/harness/CMakeFiles/bluescale_harness.dir/DependInfo.cmake"
  "/root/repo/build2/src/workload/CMakeFiles/bluescale_workload.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/bluescale_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/bluescale_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/analysis/CMakeFiles/bluescale_analysis.dir/DependInfo.cmake"
  "/root/repo/build2/src/interconnect/CMakeFiles/bluescale_interconnect.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/bluescale_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/bluescale_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/hwcost/CMakeFiles/bluescale_hwcost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
