# Empty dependencies file for bluescale_tests.
# This may be replaced when dependencies are built.
