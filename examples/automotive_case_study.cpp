// Automotive case study (paper Sec. 6.4 scenario): a 16-core system plus
// two DNN accelerators runs 10 safety + 10 function tasks with
// interference load, behind a BlueScale fabric programmed from the
// interface selection. Prints per-task outcomes and the HA's progress.
//
//   $ ./examples/automotive_case_study [target_utilization]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/bluescale_ic.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/automotive_profiles.hpp"
#include "workload/dnn_accelerator.hpp"
#include "workload/processor_client.hpp"

using namespace bluescale;

int main(int argc, char** argv) {
    const double target_util = argc > 1 ? std::atof(argv[1]) : 0.6;
    constexpr std::uint32_t n_processors = 16;
    constexpr std::uint32_t n_has = 2;
    constexpr std::uint32_t n_clients = n_processors + n_has;
    constexpr std::uint32_t unit_cycles = 4;

    rng gen(2022);

    // 1. Build the software: 20 automotive tasks spread round-robin over
    //    the processors, topped up with interference tasks.
    auto app = workload::make_case_study_tasks(gen, n_processors);
    std::vector<workload::compute_task_set> per_proc(n_processors);
    for (std::size_t i = 0; i < app.size(); ++i) {
        per_proc[i % n_processors].push_back(app[i]);
    }
    task_id_t next_id = 100;
    for (auto& tasks : per_proc) {
        double u = workload::compute_utilization(tasks);
        while (u + 0.02 < target_util) {
            auto t = workload::make_interference_task(gen, next_id++,
                                                      0.1);
            u += t.compute_utilization();
            tasks.push_back(std::move(t));
        }
    }

    // 2. Interface selection from the memory-demand view of every client.
    std::vector<analysis::task_set> rt(n_clients);
    for (std::uint32_t c = 0; c < n_processors; ++c) {
        for (const auto& t : per_proc[c]) {
            rt[c].push_back({t.period / unit_cycles, t.mem_requests});
        }
    }
    workload::dnn_config ha_cfg;
    ha_cfg.bandwidth_share = 1.0 / n_clients;
    for (std::uint32_t h = 0; h < n_has; ++h) {
        rt[n_processors + h].push_back(
            {static_cast<std::uint64_t>(
                 static_cast<double>(ha_cfg.burst_requests) /
                 ha_cfg.bandwidth_share),
             ha_cfg.burst_requests});
    }
    const auto selection = analysis::select_tree_interfaces(rt);
    std::printf("interface selection: %s (root bandwidth %.3f, "
                "%u clients -> %u-capacity quadtree)\n",
                selection.feasible ? "feasible" : "infeasible",
                selection.root_bandwidth, n_clients,
                selection.shape.padded_clients);

    // 3. Assemble the system.
    core::bluescale_ic fabric(n_clients);
    if (selection.feasible) fabric.configure(selection);
    memory_controller mem;
    fabric.attach_memory(mem);

    std::vector<std::unique_ptr<workload::processor_client>> procs;
    for (std::uint32_t c = 0; c < n_processors; ++c) {
        procs.push_back(std::make_unique<workload::processor_client>(
            c, per_proc[c], fabric, 77 + c));
    }
    std::vector<std::unique_ptr<workload::dnn_accelerator>> has;
    for (std::uint32_t h = 0; h < n_has; ++h) {
        has.push_back(std::make_unique<workload::dnn_accelerator>(
            n_processors + h, ha_cfg, fabric, 991 + h));
    }
    fabric.set_response_handler([&](mem_request&& r) {
        if (r.client < n_processors) {
            procs[r.client]->on_response(std::move(r));
        } else {
            has[r.client - n_processors]->on_response(std::move(r));
        }
    });

    simulator sim;
    for (auto& p : procs) sim.add(*p);
    for (auto& h : has) sim.add(*h);
    sim.add(fabric);
    sim.add(mem);
    sim.run(200'000);

    // 4. Report.
    stats::table t({"core", "safety done/miss", "function done/miss",
                    "interference done/miss", "mem requests"});
    bool success = true;
    for (auto& p : procs) {
        p->finalize(sim.now());
        if (p->app_deadline_missed()) success = false;
        auto fmt = [&](workload::task_category c) {
            const auto& s = p->stats(c);
            return std::to_string(s.completed) + "/" +
                   std::to_string(s.missed);
        };
        t.add_row({std::to_string(p->id()),
                   fmt(workload::task_category::safety),
                   fmt(workload::task_category::function),
                   fmt(workload::task_category::interference),
                   std::to_string(p->mem_requests_issued())});
    }
    t.print();
    for (auto& h : has) {
        std::printf("HA %u: %llu requests, %llu inferences\n", h->id(),
                    static_cast<unsigned long long>(h->requests_issued()),
                    static_cast<unsigned long long>(
                        h->inferences_completed()));
    }
    std::printf("\ntarget utilization %.2f -> trial %s (success = no "
                "safety/function deadline missed)\n",
                target_util, success ? "SUCCEEDED" : "FAILED");
    return 0;
}
