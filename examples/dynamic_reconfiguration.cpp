// Dynamic reconfiguration (paper Sec. 3.2, third property): when tasks
// join or leave one client, only the server tasks on that client's
// request path are re-parameterized -- every other SE keeps running
// untouched. This example changes a live system's workload mid-run,
// reselects the affected interfaces, reprograms the fabric, and shows
// (a) how few SEs changed and (b) that deadlines keep being met.
//
//   $ ./examples/dynamic_reconfiguration
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/bluescale_ic.hpp"
#include "core/interface_selector.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

namespace {

std::uint64_t total_missed(
    const std::vector<std::unique_ptr<workload::traffic_generator>>& cs) {
    std::uint64_t n = 0;
    for (const auto& c : cs) n += c->stats().missed;
    return n;
}

} // namespace

int main() {
    constexpr std::uint32_t n_clients = 64;
    rng rand(7);

    // Moderate load so there is headroom for the workload change.
    auto tasksets = workload::make_client_tasksets(rand, n_clients, 0.6,
                                                   0.6);
    std::vector<analysis::task_set> rt;
    for (const auto& ts : tasksets) {
        rt.push_back(workload::to_rt_tasks(ts));
    }
    auto selection = analysis::select_tree_interfaces(rt);
    std::printf("initial selection: %s, root bandwidth %.3f, %u SEs\n",
                selection.feasible ? "feasible" : "infeasible",
                selection.root_bandwidth, selection.shape.total_ses());

    core::bluescale_ic fabric(n_clients);
    fabric.configure(selection);
    memory_controller mem;
    fabric.attach_memory(mem);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 500 + c));
    }
    fabric.set_response_handler([&](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });

    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);

    sim.run(50'000);
    std::printf("phase 1 (50k cycles): %llu missed deadlines\n",
                static_cast<unsigned long long>(total_missed(clients)));

    // --- workload change on client 17: a heavier task set joins --------
    workload::taskset_params heavier;
    heavier.n_tasks = 6;
    heavier.total_utilization = 0.03; // tripled demand for this client
    rng change_rng(99);
    auto new_tasks = workload::make_taskset(change_rng, heavier);

    const std::uint32_t changed = analysis::update_client_tasks(
        selection, rt, 17, workload::to_rt_tasks(new_tasks));
    std::printf("\nclient 17 workload changed: %u of %u SEs "
                "re-parameterized (request path only), selection %s\n",
                changed, selection.shape.total_ses(),
                selection.feasible ? "feasible" : "infeasible");

    // Reprogram the live fabric (the paper's parameter path delivers the
    // new (Pi, Theta) values without stopping traffic) and swap the
    // client's task set.
    fabric.configure(selection);
    // Model the interface-selector FSM cost of the change:
    core::interface_selector sel_model(16);
    for (const auto& t : rt[17]) {
        sel_model.load_task(1, 1, static_cast<std::uint32_t>(t.period),
                            static_cast<std::uint32_t>(t.wcet));
    }
    const auto cost = sel_model.select(selection.root_bandwidth);
    std::printf("estimated interface-selector FSM time for the change: "
                "%llu cycles\n",
                static_cast<unsigned long long>(cost.estimated_cycles));

    const std::uint64_t missed_before = total_missed(clients);
    sim.run(50'000);
    std::printf("\nphase 2 (50k cycles after reconfiguration): %llu new "
                "missed deadlines\n",
                static_cast<unsigned long long>(total_missed(clients) -
                                                missed_before));
    std::printf("memory transactions serviced: %llu\n",
                static_cast<unsigned long long>(mem.serviced()));
    return 0;
}
