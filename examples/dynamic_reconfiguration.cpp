// Dynamic reconfiguration (paper Sec. 3.2, third property), driven
// through the runtime admission-control subsystem: a live system's
// workload change is SUBMITTED to core::reconfig_manager, which runs the
// Sec. 5 admission test online over the request path only, stages the
// new (Pi, Theta) set for the parameter-path propagation latency, and
// commits it transactionally -- traffic keeps flowing on the old
// parameters until the commit instant. An infeasible request is rejected
// with a structured reason and zero perturbation.
//
//   $ ./examples/dynamic_reconfiguration
#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/bluescale_ic.hpp"
#include "core/reconfig_manager.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

namespace {

std::uint64_t total_missed(
    const std::vector<std::unique_ptr<workload::traffic_generator>>& cs) {
    std::uint64_t n = 0;
    for (const auto& c : cs) n += c->stats().missed();
    return n;
}

void print_record(const core::admission_record& rec) {
    std::printf("  request %llu (client %u): %s",
                static_cast<unsigned long long>(rec.id), rec.client,
                core::admission_outcome_name(rec.outcome));
    if (rec.outcome == core::admission_outcome::committed) {
        std::printf(" -- %u SEs re-parameterized (request path only), "
                    "%llu cycles staging latency, root bandwidth %.3f",
                    rec.ses_involved,
                    static_cast<unsigned long long>(rec.latency_cycles),
                    rec.root_bandwidth);
    } else if (!rec.detail.empty()) {
        std::printf(" -- %s", rec.detail.c_str());
    }
    std::printf("\n");
}

} // namespace

int main() {
    constexpr std::uint32_t n_clients = 64;
    rng gen(7);

    // Moderate load so there is headroom for the workload change.
    auto tasksets = workload::make_client_tasksets(gen, n_clients, 0.6,
                                                   0.6);
    std::vector<analysis::task_set> rt;
    for (const auto& ts : tasksets) {
        rt.push_back(workload::to_rt_tasks(ts));
    }
    auto selection = analysis::select_tree_interfaces(rt);
    std::printf("initial selection: %s, root bandwidth %.3f, %u SEs\n",
                selection.feasible ? "feasible" : "infeasible",
                selection.root_bandwidth, selection.shape.total_ses());

    core::bluescale_ic fabric(n_clients);
    fabric.configure(selection);
    memory_controller mem;
    fabric.attach_memory(mem);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 500 + c));
    }
    fabric.set_response_handler([&](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });

    // The manager owns the committed selection from here on; the resolve
    // hook swaps the client's live task set at exactly the commit
    // instant (a rejected or rolled-back request swaps nothing).
    core::reconfig_manager mgr(fabric, selection, rt);
    std::map<std::uint64_t, workload::memory_task_set> staged;
    mgr.set_resolve_hook([&](const core::admission_record& rec,
                             const analysis::task_set&) {
        auto it = staged.find(rec.id);
        if (rec.outcome == core::admission_outcome::committed &&
            it != staged.end()) {
            clients[rec.client]->reconfigure_tasks(std::move(it->second),
                                                   rec.resolved_at);
        }
        if (it != staged.end()) staged.erase(it);
    });

    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.add(mgr);

    sim.run(50'000);
    std::printf("phase 1 (50k cycles): %llu missed deadlines\n\n",
                static_cast<unsigned long long>(total_missed(clients)));

    // --- workload change on client 17: a heavier task set joins --------
    workload::taskset_params heavier;
    heavier.n_tasks = 6;
    heavier.total_utilization = 0.03; // tripled demand for this client
    rng change_rng(99);
    auto new_tasks = workload::make_taskset(change_rng, heavier);
    const std::uint64_t ok_id =
        mgr.submit(17, workload::to_rt_tasks(new_tasks));
    staged.emplace(ok_id, new_tasks);

    // --- and one absurd request: 150% of the whole fabric for client 3.
    workload::taskset_params absurd;
    absurd.n_tasks = 4;
    absurd.total_utilization = 1.5;
    rng absurd_rng(100);
    const std::uint64_t bad_id = mgr.submit(
        3, workload::to_rt_tasks(workload::make_taskset(absurd_rng,
                                                        absurd)));

    const std::uint64_t missed_before = total_missed(clients);
    sim.run(50'000);

    std::printf("admission decisions (online, Sec. 5 test over the "
                "request path):\n");
    print_record(mgr.record(ok_id));
    print_record(mgr.record(bad_id));
    std::printf("manager: %llu submitted, %llu admitted, %llu committed, "
                "%llu rejected, %llu rolled back\n",
                static_cast<unsigned long long>(mgr.stats().submitted),
                static_cast<unsigned long long>(mgr.stats().admitted),
                static_cast<unsigned long long>(mgr.stats().committed),
                static_cast<unsigned long long>(mgr.stats().rejected),
                static_cast<unsigned long long>(mgr.stats().rolled_back));

    std::printf("\nphase 2 (50k cycles spanning the reconfiguration): "
                "%llu new missed deadlines\n",
                static_cast<unsigned long long>(total_missed(clients) -
                                                missed_before));
    std::printf("memory transactions serviced: %llu\n",
                static_cast<unsigned long long>(mem.serviced()));
    return 0;
}
