// A guided tour of the Sec. 5 analysis machinery: supply/demand bound
// functions, Theorem 1's finite test bound, Theorem 2's period range,
// per-VE interface selection and the whole-tree bottom-up resolution.
//
//   $ ./examples/interface_selection_tour
#include <cstdio>

#include "analysis/tree_analysis.hpp"
#include "stats/table.hpp"

using namespace bluescale;
using namespace bluescale::analysis;

int main() {
    // --- 1. One VE, one task set ---------------------------------------
    const task_set tasks{{50, 5}, {100, 10}, {200, 20}};
    std::printf("task set: (50,5) (100,10) (200,20)  ->  U = %.3f\n",
                utilization(tasks));

    // --- 2. sbf / dbf side by side -------------------------------------
    const resource_interface trial{10, 4};
    std::printf("\nsupply (Pi=10, Theta=4) vs demand, t = 0..100:\n");
    stats::table sd({"t", "dbf(t)", "sbf(t)", "ok?"});
    for (std::uint64_t t = 0; t <= 100; t += 10) {
        const auto demand = dbf(t, tasks);
        const auto supply = sbf(t, trial);
        sd.add_row({std::to_string(t), std::to_string(demand),
                    std::to_string(supply),
                    demand <= supply ? "yes" : "NO"});
    }
    sd.print();

    // --- 3. Theorem 1: the finite bound --------------------------------
    std::printf("\nTheorem 1 bound beta = %.1f: checking dbf <= sbf below "
                "it suffices for all t\n",
                theorem1_beta(trial, utilization(tasks)));
    std::printf("is_schedulable((50,5)(100,10)(200,20) on (10,4)): %s\n",
                is_schedulable(tasks, trial) == sched_result::schedulable
                    ? "yes"
                    : "no");

    // --- 4. Theorem 2 + binary search: minimum-bandwidth interface -----
    std::printf("\nTheorem 2 period bound with sibling load 0.8: Pi <= "
                "%llu\n",
                static_cast<unsigned long long>(
                    theorem2_max_period(tasks, 0.8)));
    stats::table mins({"Pi", "min Theta", "bandwidth"});
    for (std::uint64_t pi : {2ull, 5ull, 10ull, 20ull, 40ull}) {
        const auto theta = min_budget_for_period(tasks, pi);
        mins.add_row({std::to_string(pi),
                      theta ? std::to_string(*theta) : "-",
                      theta ? stats::table::num(
                                  static_cast<double>(*theta) /
                                      static_cast<double>(pi),
                                  3)
                            : "-"});
    }
    mins.print();
    const auto best = select_interface(tasks, 0.8);
    if (best) {
        std::printf("selected interface: (Pi=%llu, Theta=%llu), bandwidth "
                    "%.3f (minimum over the whole range)\n",
                    static_cast<unsigned long long>(best->period),
                    static_cast<unsigned long long>(best->budget),
                    best->bandwidth());
    }

    // --- 5. Whole-tree resolution for 16 clients -----------------------
    std::printf("\nwhole-tree selection, 16 identical clients "
                "(each one task (200, 4)):\n");
    std::vector<task_set> clients(16, task_set{{200, 4}});
    const auto sel = select_tree_interfaces(clients);
    std::printf("feasible: %s, root bandwidth %.3f <= 1\n",
                sel.feasible ? "yes" : "no", sel.root_bandwidth);
    for (std::uint32_t l = 0; l < sel.levels.size(); ++l) {
        std::printf("  level %u:", l);
        for (std::uint32_t y = 0; y < sel.levels[l].size(); ++y) {
            const auto& iface = sel.levels[l][y].ports[0];
            if (iface && iface->budget > 0) {
                std::printf(" SE(%u,%u).A=(%llu,%llu)", l, y,
                            static_cast<unsigned long long>(iface->period),
                            static_cast<unsigned long long>(iface->budget));
            }
        }
        std::printf("\n");
    }
    return 0;
}
