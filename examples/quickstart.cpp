// Quickstart: build a 16-client BlueScale fabric, program it from the
// interface selection analysis, drive it with random real-time memory
// traffic, and print latency/deadline statistics.
//
//   $ ./examples/quickstart [n_clients] [utilization]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/bluescale_ic.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

int main(int argc, char** argv) {
    const std::uint32_t n_clients =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
    const double total_util = argc > 2 ? std::atof(argv[2]) : 0.8;

    // 1. Generate a random real-time workload: each client runs a few
    //    periodic tasks; together they demand `total_util` of the memory
    //    system's throughput.
    rng gen(42);
    auto tasksets = workload::make_client_tasksets(gen, n_clients,
                                                   total_util, total_util);

    // 2. Resolve the interface selection problems bottom-up (Sec. 5):
    //    every SE port gets the minimum-bandwidth (Pi, Theta) interface
    //    that keeps its sub-tree schedulable.
    std::vector<analysis::task_set> rt_sets;
    for (const auto& ts : tasksets) {
        rt_sets.push_back(workload::to_rt_tasks(ts));
    }
    const auto selection = analysis::select_tree_interfaces(rt_sets);
    std::printf("interface selection: %s (root bandwidth %.3f)\n",
                selection.feasible ? "feasible" : "INFEASIBLE",
                selection.root_bandwidth);
    if (selection.feasible) {
        const auto& root = selection.levels[0][0];
        for (std::uint32_t p = 0; p < 4; ++p) {
            if (root.ports[p] && root.ports[p]->budget > 0) {
                std::printf("  root server tau_%c: Pi=%llu Theta=%llu "
                            "(bandwidth %.3f)\n",
                            "ABCD"[p],
                            static_cast<unsigned long long>(
                                root.ports[p]->period),
                            static_cast<unsigned long long>(
                                root.ports[p]->budget),
                            root.ports[p]->bandwidth());
            }
        }
    }

    // 3. Build the system: BlueScale quadtree + memory controller +
    //    traffic-generator clients.
    core::bluescale_ic fabric(n_clients);
    if (selection.feasible) fabric.configure(selection);
    std::printf("fabric: %u clients, %u scale elements, depth %u\n",
                n_clients, fabric.total_ses(), fabric.depth_of(0));

    memory_controller mem;
    fabric.attach_memory(mem);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 1000 + c));
    }
    fabric.set_response_handler([&clients](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });

    // 4. Simulate.
    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.run(200'000);

    // 5. Report.
    stats::table report({"client", "issued", "completed", "missed",
                         "avg latency (cyc)", "p99 latency (cyc)",
                         "avg blocking (cyc)"});
    std::uint64_t missed = 0, completed = 0;
    for (auto& c : clients) {
        c->finalize(sim.now());
        const auto& s = c->stats();
        missed += s.missed();
        completed += s.completed();
        report.add_row({std::to_string(c->id()), std::to_string(s.issued()),
                        std::to_string(s.completed()),
                        std::to_string(s.missed()),
                        stats::table::num(s.latency_cycles().mean(), 1),
                        stats::table::num(s.latency_cycles().percentile(99), 1),
                        stats::table::num(s.blocking_cycles().mean(), 2)});
    }
    report.print();
    std::printf("\nmemory transactions serviced: %llu (row hit rate %.1f%%)\n",
                static_cast<unsigned long long>(mem.serviced()),
                100.0 * static_cast<double>(mem.dram().hits()) /
                    static_cast<double>(mem.dram().hits() +
                                        mem.dram().misses()));
    std::printf("total missed deadlines: %llu / %llu requests\n",
                static_cast<unsigned long long>(missed),
                static_cast<unsigned long long>(completed));
    return 0;
}
