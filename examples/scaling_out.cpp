// Scaling out: BlueScale's hardware story is that the same SE tile scales
// from 16 to 256+ clients. This example builds fabrics at every scale,
// shows the structural growth (SEs, depth, cost model), runs a short
// simulation at each scale, and finishes with a 2-channel Meshed
// BlueScale at 256 clients to lift the memory ceiling.
//
//   $ ./examples/scaling_out
#include <cstdio>
#include <memory>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "core/meshed_bluescale.hpp"
#include "hwcost/cost_model.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

namespace {

struct scale_result {
    std::uint64_t completed = 0;
    double mean_latency = 0.0;
    std::uint64_t missed = 0;
};

scale_result run_scale(std::uint32_t n_clients, double total_util,
                       cycle_t cycles) {
    rng gen(77);
    auto tasksets = workload::make_client_tasksets(gen, n_clients,
                                                   total_util, total_util);
    core::bluescale_ic fabric(n_clients);
    memory_controller mem;
    fabric.attach_memory(mem);
    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 40 + c));
    }
    fabric.set_response_handler([&](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });
    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.run(cycles);

    scale_result out;
    stats::running_summary latency;
    for (auto& c : clients) {
        c->finalize(sim.now());
        out.completed += c->stats().completed();
        out.missed += c->stats().missed();
        for (double v : c->stats().latency_cycles().samples()) {
            latency.add(v);
        }
    }
    out.mean_latency = latency.mean();
    return out;
}

} // namespace

int main() {
    std::printf("structural scaling of the BlueScale fabric:\n");
    stats::table s({"clients", "SEs", "depth", "LUTs (model)",
                    "fmax (MHz)"});
    for (std::uint32_t n : {16u, 64u, 256u}) {
        core::bluescale_ic fabric(n);
        s.add_row({std::to_string(n), std::to_string(fabric.total_ses()),
                   std::to_string(fabric.depth_of(0)),
                   stats::table::num(
                       hwcost::estimate(hwcost::design::bluescale, n).luts,
                       0),
                   stats::table::num(
                       hwcost::fmax_mhz(hwcost::design::bluescale, n), 0)});
    }
    s.print();

    std::printf("\nbehavior at 60%% utilization, 60k cycles:\n");
    stats::table b({"clients", "completed", "mean latency (cyc)",
                    "missed"});
    for (std::uint32_t n : {16u, 64u, 256u}) {
        const auto r = run_scale(n, 0.6, 60'000);
        b.add_row({std::to_string(n), std::to_string(r.completed),
                   stats::table::num(r.mean_latency, 1),
                   std::to_string(r.missed)});
    }
    b.print();

    // One memory channel caps the whole tree at 1 transaction per
    // initiation interval; Meshed BlueScale interleaves the address space
    // over independent channels.
    std::printf("\n256 clients at 140%% of one channel's capacity:\n");
    for (std::uint32_t channels : {1u, 2u}) {
        rng gen(99);
        auto tasksets =
            workload::make_client_tasksets(gen, 256, 1.4, 1.4);
        core::meshed_config cfg;
        cfg.channels = channels;
        cfg.interleave_bytes = 64;
        core::meshed_bluescale_ic fabric(256, cfg);
        std::vector<std::unique_ptr<workload::traffic_generator>> clients;
        for (std::uint32_t c = 0; c < 256; ++c) {
            clients.push_back(
                std::make_unique<workload::traffic_generator>(
                    c, tasksets[c], fabric, 700 + c));
        }
        fabric.set_response_handler([&](mem_request&& r) {
            clients[r.client]->on_response(std::move(r));
        });
        simulator sim;
        for (auto& c : clients) sim.add(*c);
        sim.add(fabric);
        sim.run(40'000);
        std::printf("  %u channel(s): %llu transactions serviced "
                    "(%.3f tx/cycle)\n",
                    channels,
                    static_cast<unsigned long long>(
                        fabric.total_serviced()),
                    static_cast<double>(fabric.total_serviced()) /
                        40'000.0);
    }
    return 0;
}
