// Trace capture and replay: record one trial's memory traffic behind a
// BlueScale fabric, save it as CSV, then replay the identical trace
// against a BlueTree baseline and compare latencies -- the
// apples-to-apples comparison workflow traces enable.
//
//   $ ./examples/trace_replay [trace.csv]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "interconnect/bluetree.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/trace.hpp"
#include "workload/traffic_generator.hpp"

using namespace bluescale;

namespace {

constexpr std::uint32_t k_clients = 16;
constexpr cycle_t k_cycles = 30'000;

/// Phase 1: run a synthetic workload on BlueScale and record every
/// completed transaction.
workload::trace record_phase(double utilization) {
    rng gen(31);
    auto tasksets = workload::make_client_tasksets(gen, k_clients,
                                                   utilization, utilization);
    core::bluescale_ic fabric(k_clients);
    memory_controller mem;
    fabric.attach_memory(mem);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < k_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 600 + c));
    }
    std::vector<mem_request> done;
    fabric.set_response_handler([&](mem_request&& r) {
        done.push_back(r);
        clients[r.client]->on_response(std::move(r));
    });

    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.run(k_cycles);
    return workload::trace_from_requests(done);
}

/// Phase 2: replay a trace against any interconnect, returning the mean
/// latency and miss count.
template <typename Net>
std::pair<double, std::uint64_t> replay_phase(Net& net,
                                              const workload::trace& t) {
    memory_controller mem;
    net.attach_memory(mem);
    std::vector<std::unique_ptr<workload::trace_player>> players;
    for (std::uint32_t c = 0; c < k_clients; ++c) {
        players.push_back(
            std::make_unique<workload::trace_player>(c, t, net));
    }
    net.set_response_handler([&](mem_request&& r) {
        players[r.client]->on_response(std::move(r));
    });
    simulator sim;
    for (auto& p : players) sim.add(*p);
    sim.add(net);
    sim.add(mem);
    sim.run(k_cycles + 10'000);

    stats::running_summary latency;
    std::uint64_t missed = 0;
    for (auto& p : players) {
        p->finalize(sim.now());
        for (double v : p->stats().latency_cycles().samples()) {
            latency.add(v);
        }
        missed += p->stats().missed();
    }
    return {latency.mean(), missed};
}

} // namespace

int main(int argc, char** argv) {
    const std::string path =
        argc > 1 ? argv[1] : "bluescale_trace.csv";

    std::printf("recording a 16-client, 80%%-utilization trial behind "
                "BlueScale...\n");
    const auto recorded = record_phase(0.8);
    std::printf("captured %zu transactions; saving to %s\n",
                recorded.size(), path.c_str());
    if (!workload::save_trace(path, recorded)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }

    const auto loaded = workload::load_trace(path);
    std::printf("reloaded %zu transactions\n\n", loaded.size());

    core::bluescale_ic bluescale_net(k_clients);
    const auto [bs_lat, bs_miss] = replay_phase(bluescale_net, loaded);
    std::printf("replay on BlueScale: mean latency %.1f cycles, %llu "
                "misses\n",
                bs_lat, static_cast<unsigned long long>(bs_miss));

    bluetree bluetree_net(k_clients);
    const auto [bt_lat, bt_miss] = replay_phase(bluetree_net, loaded);
    std::printf("replay on BlueTree:  mean latency %.1f cycles, %llu "
                "misses\n",
                bt_lat, static_cast<unsigned long long>(bt_miss));

    std::printf("\nidentical traffic, different fabrics: the latency "
                "delta is attributable to the interconnect alone.\n");
    std::remove(path.c_str());
    return 0;
}
