#!/usr/bin/env bash
# Captures the committed micro-benchmark snapshot, BENCH_micro_hotpaths.json
# at the repo root: every bench/micro_hotpaths case, machine-normalized
# against the bm_sbf arithmetic kernel so two snapshots taken on different
# hardware (or a noisy CI runner) stay comparable -- the guarded quantity
# is each case's cost in bm_sbf units, not raw nanoseconds. Keys are
# sorted, values rounded, so regenerating on the same machine produces a
# minimal diff.
#
#   $ scripts/bench_snapshot.sh [build-dir]          # refresh the snapshot
#   $ scripts/bench_snapshot.sh --check [build-dir]  # CI perf-smoke gate
#
# --check reruns the benches and fails (exit 1) when an idle-heavy engine
# case (the event scheduler's pop/advance and predicate-dispatch paths)
# regresses more than 25% against the committed snapshot.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="snapshot"
if [[ "${1:-}" == "--check" ]]; then
    mode="check"
    shift
fi
build_dir="${1:-build}"
snapshot="BENCH_micro_hotpaths.json"

cmake --build "$build_dir" --target micro_hotpaths -j"$(nproc)" >/dev/null

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
"$build_dir/bench/micro_hotpaths" \
    --benchmark_out="$raw" --benchmark_out_format=json >/dev/null

python3 - "$raw" "$snapshot" "$mode" <<'PY'
import json
import sys

raw_path, snapshot_path, mode = sys.argv[1], sys.argv[2], sys.argv[3]

BASELINE = "bm_sbf"
# The perf-smoke gate: engine paths this PR is accountable for. Model-
# level cases (SE tick, memory controller) drift with model features and
# are recorded for trend-reading, not gated.
GUARDED_PREFIXES = (
    "bm_event_engine_pop_advance",
    "bm_run_until_template_predicate",
)
TOLERANCE = 0.25

with open(raw_path) as f:
    runs = [b for b in json.load(f)["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"]

by_name = {b["name"]: float(b["real_time"]) for b in runs}
if BASELINE not in by_name:
    sys.exit(f"bench run is missing the {BASELINE} baseline case")
base_ns = by_name[BASELINE]

snap = {
    "schema": 1,
    "baseline_case": BASELINE,
    "baseline_ns": round(base_ns, 2),
    "cases": {
        name: {
            "ns": round(ns, 1),
            "vs_baseline": round(ns / base_ns, 3),
        }
        for name, ns in sorted(by_name.items())
        if name != BASELINE
    },
}

if mode == "snapshot":
    with open(snapshot_path, "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {snapshot_path} ({len(snap['cases'])} cases, "
          f"{BASELINE} = {snap['baseline_ns']} ns)")
    sys.exit(0)

with open(snapshot_path) as f:
    committed = json.load(f)

failures = []
for name, fresh in sorted(snap["cases"].items()):
    if not name.startswith(GUARDED_PREFIXES):
        continue
    old = committed["cases"].get(name)
    if old is None:
        failures.append(f"{name}: not in committed snapshot "
                        f"(refresh {snapshot_path})")
        continue
    ratio = fresh["vs_baseline"] / old["vs_baseline"]
    verdict = "FAIL" if ratio > 1.0 + TOLERANCE else "ok"
    print(f"{verdict:4} {name}: {old['vs_baseline']} -> "
          f"{fresh['vs_baseline']} x{BASELINE} ({ratio - 1.0:+.1%})")
    if verdict == "FAIL":
        failures.append(name)

if failures:
    print(f"perf-smoke: {len(failures)} guarded case(s) regressed more "
          f"than {TOLERANCE:.0%}:")
    for f_ in failures:
        print(f"  {f_}")
    sys.exit(1)
print("perf-smoke: guarded engine cases within tolerance.")
PY
