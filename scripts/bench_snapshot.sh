#!/usr/bin/env bash
# Captures the committed micro-benchmark snapshot, BENCH_micro_hotpaths.json
# at the repo root: every bench/micro_hotpaths case, machine-normalized
# against the bm_sbf arithmetic kernel so two snapshots taken on different
# hardware (or a noisy CI runner) stay comparable -- the guarded quantity
# is each case's cost in bm_sbf units, not raw nanoseconds. Keys are
# sorted, values rounded, so regenerating on the same machine produces a
# minimal diff.
#
# Also captures BENCH_megascale.json from bench/megascale: the mega-scale
# whole-tree selection curves. There the guarded quantities are the
# deterministic work counters (tests_run / points_checked per depth) --
# bit-identical across machines and thread counts by construction, so the
# gate needs no normalization and no tolerance for machine noise: a drift
# means the selection algorithm itself changed its work. Wall-clock ms in
# that snapshot is trend-reading only, never gated.
#
#   $ scripts/bench_snapshot.sh [build-dir]          # refresh the snapshots
#   $ scripts/bench_snapshot.sh --check [build-dir]  # CI perf-smoke gate
#
# --check reruns the benches and fails (exit 1) when an idle-heavy engine
# case (the event scheduler's pop/advance and predicate-dispatch paths)
# regresses more than 25% against the committed snapshot, or when a
# megascale work counter grows more than 25% over the committed curve
# (compared at the depths the shallow --check run shares with the
# snapshot). The full megascale refresh sweeps to depth 8/10 and takes
# minutes; --check stays shallow.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="snapshot"
if [[ "${1:-}" == "--check" ]]; then
    mode="check"
    shift
fi
build_dir="${1:-build}"
snapshot="BENCH_micro_hotpaths.json"
mega_snapshot="BENCH_megascale.json"

cmake --build "$build_dir" --target micro_hotpaths megascale \
    -j"$(nproc)" >/dev/null

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
"$build_dir/bench/micro_hotpaths" \
    --benchmark_out="$raw" --benchmark_out_format=json >/dev/null

python3 - "$raw" "$snapshot" "$mode" <<'PY'
import json
import sys

raw_path, snapshot_path, mode = sys.argv[1], sys.argv[2], sys.argv[3]

BASELINE = "bm_sbf"
# The perf-smoke gate: engine paths this PR is accountable for. Model-
# level cases (SE tick, memory controller) drift with model features and
# are recorded for trend-reading, not gated.
GUARDED_PREFIXES = (
    "bm_event_engine_pop_advance",
    "bm_run_until_template_predicate",
)
TOLERANCE = 0.25

with open(raw_path) as f:
    runs = [b for b in json.load(f)["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"]

by_name = {b["name"]: float(b["real_time"]) for b in runs}
if BASELINE not in by_name:
    sys.exit(f"bench run is missing the {BASELINE} baseline case")
base_ns = by_name[BASELINE]

snap = {
    "schema": 1,
    "baseline_case": BASELINE,
    "baseline_ns": round(base_ns, 2),
    "cases": {
        name: {
            "ns": round(ns, 1),
            "vs_baseline": round(ns / base_ns, 3),
        }
        for name, ns in sorted(by_name.items())
        if name != BASELINE
    },
}

if mode == "snapshot":
    with open(snapshot_path, "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {snapshot_path} ({len(snap['cases'])} cases, "
          f"{BASELINE} = {snap['baseline_ns']} ns)")
    sys.exit(0)

with open(snapshot_path) as f:
    committed = json.load(f)

failures = []
for name, fresh in sorted(snap["cases"].items()):
    if not name.startswith(GUARDED_PREFIXES):
        continue
    old = committed["cases"].get(name)
    if old is None:
        failures.append(f"{name}: not in committed snapshot "
                        f"(refresh {snapshot_path})")
        continue
    ratio = fresh["vs_baseline"] / old["vs_baseline"]
    verdict = "FAIL" if ratio > 1.0 + TOLERANCE else "ok"
    print(f"{verdict:4} {name}: {old['vs_baseline']} -> "
          f"{fresh['vs_baseline']} x{BASELINE} ({ratio - 1.0:+.1%})")
    if verdict == "FAIL":
        failures.append(name)

if failures:
    print(f"perf-smoke: {len(failures)} guarded case(s) regressed more "
          f"than {TOLERANCE:.0%}:")
    for f_ in failures:
        print(f"  {f_}")
    sys.exit(1)
print("perf-smoke: guarded engine cases within tolerance.")
PY

# --- mega-scale whole-tree selection ---------------------------------------

if [[ "$mode" == "snapshot" ]]; then
    # Full curves: depth 8 timing, depth 10 feasibility, depth-4 parity.
    # Takes minutes; that is the price of the committed snapshot.
    "$build_dir/bench/megascale" --json "$mega_snapshot"
    exit 0
fi

mega_raw="$(mktemp)"
trap 'rm -f "$raw" "$mega_raw"' EXIT
# The bench itself exits nonzero on a parity or determinism violation.
"$build_dir/bench/megascale" --check --json "$mega_raw"

python3 - "$mega_raw" "$mega_snapshot" <<'PY'
import json
import sys

fresh_path, snapshot_path = sys.argv[1], sys.argv[2]
# Deterministic work counters: identical on every machine and for every
# --threads (cache hits replay the miss's counters), so growth is a real
# algorithmic regression in the selection ladder/cache, not noise.
GUARDED_KEYS = ("tests_run", "points_checked")
TOLERANCE = 0.25

with open(fresh_path) as f:
    fresh = json.load(f)
with open(snapshot_path) as f:
    committed = json.load(f)

failures = []
for curve in ("timing", "feasibility"):
    # --check runs shallow; gate only the depths both runs share.
    for depth, got in sorted(fresh[curve].items()):
        want = committed[curve].get(depth)
        if want is None:
            continue
        for key in GUARDED_KEYS:
            old, new = want[key], got[key]
            ratio = new / old if old else (1.0 if new == 0 else 2.0)
            verdict = "FAIL" if ratio > 1.0 + TOLERANCE else "ok"
            print(f"{verdict:4} megascale {curve}/{depth}/{key}: "
                  f"{old} -> {new} ({ratio - 1.0:+.1%})")
            if verdict == "FAIL":
                failures.append(f"{curve}/{depth}/{key}")

if failures:
    print(f"perf-smoke: {len(failures)} megascale counter(s) grew more "
          f"than {TOLERANCE:.0%}:")
    for f_ in failures:
        print(f"  {f_}")
    sys.exit(1)
print("perf-smoke: megascale selection work within tolerance.")
PY
