#!/usr/bin/env bash
# Build the test suite under AddressSanitizer + UndefinedBehaviorSanitizer
# and run the allocation- and churn-heavy surfaces: the fault-injection
# campaigns, retry bookkeeping, and the reconfiguration subsystem, whose
# transactional staging/rollback swaps whole tree selections and task
# sets at runtime. A clean run demonstrates the rollback paths leak and
# corrupt nothing.
#
#   $ scripts/check_asan_ubsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-asan}"

cmake -B "$build_dir" -S . -DBLUESCALE_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" --target bluescale_tests \
    bluescale_resilience_tests -j"$(nproc)"

export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

# Core fabric + analysis surfaces the reconfiguration layer leans on.
"$build_dir/tests/bluescale_tests" \
    --gtest_filter='parameter_path.*:bluescale_ic.*:scale_element.*:testbench.*'

# The whole resilience suite: fault campaigns, retries, health monitor,
# admission control, transactional rollback, watchdog shedding, and the
# parallel reconfiguration sweeps.
"$build_dir/tests/bluescale_resilience_tests"

echo "ASan/UBSan check passed."
