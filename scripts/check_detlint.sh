#!/usr/bin/env bash
# Static-analysis gate, runnable locally exactly like check_tsan.sh /
# check_asan_ubsan.sh:
#   1. builds with the hardened warning profile (BLUESCALE_WERROR=ON:
#      -Wall -Wextra -Wpedantic -Wshadow -Wconversion, all -Werror);
#   2. runs detlint (the project's determinism & real-time-safety lint)
#      over src/, bench/ and examples/ -- zero unsuppressed findings is
#      the merge bar;
#   3. if clang-tidy is installed, runs the curated .clang-tidy profile
#      against compile_commands.json (skipped with a notice otherwise, so
#      the script stays usable in minimal containers).
#
#   $ scripts/check_detlint.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-lint}"

cmake -B "$build_dir" -S . -DBLUESCALE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)"

# Absolute paths, matching the detlint_tree ctest gate: the path-scoped
# rule exemptions (e.g. cycle-step staying out of "/bench/") key on
# directory components, which a bare relative "bench" prefix lacks.
"$build_dir/tools/detlint/detlint" "$PWD/src" "$PWD/bench" "$PWD/examples"

"$build_dir/tests/bluescale_lint_tests" --gtest_brief=1

if command -v clang-tidy >/dev/null 2>&1; then
    # clang-tidy reads the check list from .clang-tidy at the repo root;
    # compile_commands.json is always exported (see top CMakeLists.txt).
    mapfile -t sources < <(find src bench examples -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p "$build_dir" "${sources[@]}"
    else
        clang-tidy -quiet -p "$build_dir" "${sources[@]}"
    fi
else
    echo "clang-tidy not installed; skipping the clang-tidy pass" \
         "(detlint + BLUESCALE_WERROR still enforced)."
fi

echo "detlint check passed."
