#!/usr/bin/env bash
# Static-analysis gate, runnable locally exactly like check_tsan.sh /
# check_asan_ubsan.sh:
#   1. builds with the hardened warning profile (BLUESCALE_WERROR=ON:
#      -Wall -Wextra -Wpedantic -Wshadow -Wconversion, all -Werror);
#   2. runs detlint (the project's determinism & real-time-safety lint)
#      over src/, bench/, examples/, tests/ and tools/ (detlint lints
#      itself) -- zero unsuppressed findings is the merge bar, a SARIF
#      report is left in the build dir for code-scanning upload, and the
#      scan must finish inside a fixed wall-clock budget;
#   3. if clang-tidy is installed, runs the curated .clang-tidy profile
#      against compile_commands.json (skipped with a notice otherwise, so
#      the script stays usable in minimal containers).
#
#   $ scripts/check_detlint.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-lint}"

cmake -B "$build_dir" -S . -DBLUESCALE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)"

# Absolute paths, matching the detlint_tree ctest gate: the path-scoped
# rule exemptions (e.g. cycle-step staying out of "/bench/") key on
# directory components, which a bare relative "bench" prefix lacks.
# tests/lint/fixtures stays excluded -- those files are seeded violations
# by design. The elapsed-time assertion is the analyzer's performance
# budget: the call-graph phase must never quietly make this gate slow
# (the full tree takes well under a second today).
start_ns=$(date +%s%N)
"$build_dir/tools/detlint/detlint" \
    --exclude=tests/lint/fixtures \
    --sarif "$build_dir/detlint.sarif" \
    "$PWD/src" "$PWD/bench" "$PWD/examples" "$PWD/tests" "$PWD/tools"
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
budget_ms=20000
echo "detlint full-tree scan: ${elapsed_ms} ms (budget: ${budget_ms} ms)"
if [ "$elapsed_ms" -gt "$budget_ms" ]; then
    echo "error: detlint exceeded its wall-clock budget" >&2
    exit 1
fi

"$build_dir/tests/bluescale_lint_tests" --gtest_brief=1

if command -v clang-tidy >/dev/null 2>&1; then
    # clang-tidy reads the check list from .clang-tidy at the repo root;
    # compile_commands.json is always exported (see top CMakeLists.txt).
    mapfile -t sources < <(find src bench examples -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p "$build_dir" "${sources[@]}"
    else
        clang-tidy -quiet -p "$build_dir" "${sources[@]}"
    fi
else
    echo "clang-tidy not installed; skipping the clang-tidy pass" \
         "(detlint + BLUESCALE_WERROR still enforced)."
fi

echo "detlint check passed."
