#!/usr/bin/env bash
# Guard against re-committing generated build trees. A batch of build*/
# artifacts was once committed by accident and later purged; .gitignore
# now masks build*/, but an explicit `git add -f` would still slip
# through review. This check fails when any tracked path lives under a
# build*/ directory. It is wired into ctest (label: hygiene) and safe to
# run standalone:
#
#   $ scripts/check_no_build_artifacts.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    echo "check_no_build_artifacts: not a git checkout; skipping."
    exit 0
fi

tracked=$(git ls-files | grep -E '^build[^/]*/' || true)
if [[ -n "$tracked" ]]; then
    echo "check_no_build_artifacts: tracked build artifacts detected:" >&2
    echo "$tracked" | head -n 20 >&2
    echo "(run: git rm -r --cached <dir> and keep build*/ in .gitignore)" >&2
    exit 1
fi

echo "check_no_build_artifacts: no tracked build artifacts."
