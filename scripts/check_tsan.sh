#!/usr/bin/env bash
# Build the test suite under ThreadSanitizer and run the concurrency-
# relevant tests (trial runner, parallel fig6/fig7 sweeps, testbench).
# A clean run demonstrates the determinism contract is not hiding a data
# race: trials share no mutable state, so TSan should stay silent.
#
#   $ scripts/check_tsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-tsan}"

cmake -B "$build_dir" -S . -DBLUESCALE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" --target bluescale_tests \
    bluescale_resilience_tests bluescale_svc_tests -j"$(nproc)"

# megascale_determinism drives the depth-8 parallel whole-tree selection
# (ordered-merge worker pool + sharded selection cache) -- the byte-
# identical-across-threads claim must hold without hiding a race.
"$build_dir/tests/bluescale_tests" \
    --gtest_filter='trial_runner.*:rng_substream.*:testbench.*:fig6.parallel*:fig7.parallel*:export_determinism.*:engine_equivalence.*:maintenance_determinism.*:megascale_determinism.*'

# Fault campaigns run inside parallel trial sweeps: the injection windows,
# retry bookkeeping, health monitoring and DRAM-maintenance accounting
# must all stay trial-local.
"$build_dir/tests/bluescale_resilience_tests" \
    --gtest_filter='resilience.*:maintenance_experiment.*'

# The analysis-service storm runs its trial sweep on a thread pool and
# asserts byte-identical results across thread counts; the service suite
# exercises the shared obs/trace plumbing under worker faults. Both must
# be race-free for that determinism claim to mean anything.
"$build_dir/tests/bluescale_svc_tests" \
    --gtest_filter='svc_storm.*:analysis_service.conservation*'

echo "TSan check passed."
