#!/usr/bin/env python3
"""Plot the CSV exports of the figure benches.

Usage:
    ./build/bench/fig6_synthetic 10 100000 fig6.csv
    ./build/bench/fig7_case_study 8 60000 fig7.csv
    python3 scripts/plot_results.py fig6.csv fig6.png
    python3 scripts/plot_results.py fig7.csv fig7.png

The file kind is auto-detected from the CSV header. Requires matplotlib.
"""
import csv
import sys
from collections import defaultdict


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"{path}: empty CSV")
    return rows


def plot_fig6(rows, out, plt):
    scales = sorted({int(r["clients"]) for r in rows})
    fig, axes = plt.subplots(1, 2 * len(scales), figsize=(6 * len(scales), 4))
    for i, n in enumerate(scales):
        sub = [r for r in rows if int(r["clients"]) == n]
        designs = [r["design"] for r in sub]
        ax = axes[2 * i]
        ax.bar(designs, [float(r["blocking_us"]) for r in sub],
               yerr=[float(r["blocking_sd"]) for r in sub])
        ax.set_title(f"blocking latency (us), {n} clients")
        ax.tick_params(axis="x", rotation=45)
        ax = axes[2 * i + 1]
        ax.bar(designs, [100 * float(r["miss_ratio"]) for r in sub],
               yerr=[100 * float(r["miss_sd"]) for r in sub])
        ax.set_title(f"deadline miss ratio (%), {n} clients")
        ax.tick_params(axis="x", rotation=45)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_fig7(rows, out, plt):
    scales = sorted({int(r["processors"]) for r in rows})
    fig, axes = plt.subplots(1, len(scales), figsize=(6 * len(scales), 4))
    if len(scales) == 1:
        axes = [axes]
    for ax, n in zip(axes, scales):
        series = defaultdict(list)
        for r in rows:
            if int(r["processors"]) == n:
                series[r["design"]].append(
                    (float(r["target_utilization"]),
                     float(r["success_ratio"])))
        for design, points in series.items():
            points.sort()
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=design)
        ax.set_title(f"{n}-core system")
        ax.set_xlabel("target utilization")
        ax.set_ylabel("success ratio")
        ax.set_ylim(-0.05, 1.05)
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    rows = load(sys.argv[1])
    if "blocking_us" in rows[0]:
        plot_fig6(rows, sys.argv[2], plt)
    elif "success_ratio" in rows[0]:
        plot_fig7(rows, sys.argv[2], plt)
    else:
        sys.exit("unrecognized CSV header")


if __name__ == "__main__":
    main()
