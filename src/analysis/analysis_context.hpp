// Unified configuration for the analysis stack (ROADMAP item 2).
//
// One struct carries every knob a caller can turn -- schedulability test
// configuration (including the optional work counters), the interface
// selection search bounds, the shared selection cache, and the
// parallelism degree -- so `schedulability`, `interface_selection`,
// `tree_analysis`, `core::reconfig_manager` and `svc::analysis_service`
// all thread the SAME context instead of growing parallel default-arg
// chains. A default-constructed context reproduces the paper-faithful
// serial exact-test behaviour bit-for-bit.
#pragma once

#include <cstdint>

#include "analysis/schedulability.hpp"

namespace bluescale::analysis {

class selection_cache;

struct analysis_context {
    /// Hard cap on candidate periods enumerated by select_interface
    /// (Theorem 2's range can be huge when the rest of the level is
    /// almost idle).
    std::uint64_t max_period = 1u << 16;
    /// Extension beyond the paper: accept up to this much extra bandwidth
    /// over the true minimum in exchange for the largest feasible period.
    /// 0 (the paper-faithful default) selects the strict minimum. A small
    /// tolerance counters compositional inflation: a child interface with
    /// a tiny period forces its parent to supply very frequently (the
    /// sbf-blackout constraint), so each level of strict minimization
    /// inflates total bandwidth by ~7-10%; trading a few percent at the
    /// leaves relaxes every level above (see bench/acceptance_ratio).
    double bandwidth_tolerance = 0.0;
    /// Schedulability test knobs, including the cheap-first ladder switch
    /// and the optional sched_test_stats work counters.
    sched_test_config sched = {};
    /// Optional memoization of select_interface results, keyed on the
    /// full inputs (task set + level utilization + analysis knobs). May
    /// be shared across whole-tree selection, incremental reselection and
    /// the analysis service; nullptr disables caching. Selected
    /// interfaces and accumulated work counters are bit-identical with
    /// the cache on or off (a hit replays the cached work counters).
    selection_cache* cache = nullptr;
    /// Worker threads for per-subtree parallel selection in
    /// select_tree_interfaces. Sibling subtrees below the root bandwidth
    /// check are independent, and results are merged in subtree index
    /// order, so the selection is bit-identical for any value. 0 means
    /// hardware concurrency; 1 (the default) stays serial.
    unsigned threads = 1;
};

} // namespace bluescale::analysis
