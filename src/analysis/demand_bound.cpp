#include "analysis/demand_bound.hpp"

#include <algorithm>

namespace bluescale::analysis {

double utilization(const task_set& tasks) {
    double u = 0.0;
    for (const auto& t : tasks) u += t.utilization();
    return u;
}

std::uint64_t min_period(const task_set& tasks) {
    std::uint64_t m = 0;
    for (const auto& t : tasks) {
        if (t.period != 0 && (m == 0 || t.period < m)) m = t.period;
    }
    return m;
}

std::uint64_t dbf(std::uint64_t t, const rt_task& task) {
    if (task.period == 0) return 0;
    return (t / task.period) * task.wcet;
}

std::uint64_t dbf(std::uint64_t t, const task_set& tasks) {
    std::uint64_t demand = 0;
    for (const auto& task : tasks) demand += dbf(t, task);
    return demand;
}

std::vector<std::uint64_t> dbf_step_points(const task_set& tasks,
                                           std::uint64_t horizon) {
    std::vector<std::uint64_t> points;
    for (const auto& task : tasks) {
        if (task.period == 0 || task.wcet == 0) continue;
        for (std::uint64_t t = task.period; t <= horizon; t += task.period) {
            points.push_back(t);
        }
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    return points;
}

} // namespace bluescale::analysis
