// EDF demand bound functions (paper Sec. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/rt_task.hpp"

namespace bluescale::analysis {

/// dbf(t, tau_i) = floor(t / T_i) * C_i  (implicit deadlines, D_i = T_i).
[[nodiscard]] std::uint64_t dbf(std::uint64_t t, const rt_task& task);

/// dbf(t, T) = sum over tasks.
[[nodiscard]] std::uint64_t dbf(std::uint64_t t, const task_set& tasks);

/// All values of t in (0, horizon] at which dbf(t, tasks) changes, in
/// ascending order without duplicates: the multiples of every period.
/// These are the only points a schedulability test needs to check.
[[nodiscard]] std::vector<std::uint64_t>
dbf_step_points(const task_set& tasks, std::uint64_t horizon);

} // namespace bluescale::analysis
