#include "analysis/exact_test.hpp"

#include <deque>
#include <numeric>
#include <vector>

namespace bluescale::analysis {

namespace {

/// lcm with saturation at `cap` (returns 0 on overflow past cap).
std::uint64_t saturating_lcm(std::uint64_t a, std::uint64_t b,
                             std::uint64_t cap) {
    if (a == 0 || b == 0) return std::max(a, b);
    const std::uint64_t g = std::gcd(a, b);
    const std::uint64_t q = a / g;
    if (q > cap / b) return 0;
    return q * b;
}

} // namespace

std::uint64_t exact_test_horizon(const task_set& tasks,
                                 const resource_interface& iface,
                                 std::uint64_t max_horizon) {
    std::uint64_t h = iface.period;
    for (const auto& t : tasks) {
        if (t.period == 0 || t.wcet == 0) continue;
        h = saturating_lcm(h, t.period, max_horizon);
        if (h == 0 || h > max_horizon) return 0;
    }
    // One extra resource period of warm-up covers the early-then-late
    // supply transition.
    if (h > max_horizon - iface.period) return 0;
    return h + iface.period;
}

sched_result exact_edf_test(const task_set& tasks,
                            const resource_interface& iface,
                            std::uint64_t max_horizon) {
    if (tasks.empty()) return sched_result::schedulable;
    if (iface.period == 0 || iface.budget == 0) {
        return sched_result::unschedulable;
    }

    const std::uint64_t horizon =
        exact_test_horizon(tasks, iface, max_horizon);
    if (horizon == 0) return sched_result::aborted;

    struct job {
        std::uint64_t deadline;
        std::uint64_t remaining;
    };
    std::vector<std::deque<job>> queues(tasks.size());

    for (std::uint64_t t = 0; t < horizon; ++t) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (tasks[i].period != 0 && t % tasks[i].period == 0 &&
                tasks[i].wcet > 0) {
                queues[i].push_back({t + tasks[i].period, tasks[i].wcet});
            }
        }
        const std::uint64_t phase = t % iface.period;
        const bool supplied =
            t < iface.period
                ? phase < iface.budget                  // first: early
                : phase >= iface.period - iface.budget; // later: late
        if (supplied) {
            int best = -1;
            std::uint64_t best_deadline = ~0ull;
            for (std::size_t i = 0; i < queues.size(); ++i) {
                if (!queues[i].empty() &&
                    queues[i].front().deadline < best_deadline) {
                    best_deadline = queues[i].front().deadline;
                    best = static_cast<int>(i);
                }
            }
            if (best >= 0) {
                auto& q = queues[static_cast<std::size_t>(best)];
                if (--q.front().remaining == 0) q.pop_front();
            }
        }
        for (const auto& q : queues) {
            if (!q.empty() && q.front().deadline <= t + 1 &&
                q.front().remaining > 0) {
                return sched_result::unschedulable;
            }
        }
    }
    return sched_result::schedulable;
}

} // namespace bluescale::analysis
