// Exact (simulation-based) EDF schedulability on a periodic resource.
//
// Complements the Theorem-1 test (sufficient, fast) with a slow oracle:
// brute-force EDF simulation over the hyperperiod on the worst-case
// supply pattern. Useful for small task sets, for validating the analytic
// test, and for quantifying its pessimism.
#pragma once

#include <cstdint>

#include "analysis/periodic_resource.hpp"
#include "analysis/rt_task.hpp"
#include "analysis/schedulability.hpp"

namespace bluescale::analysis {

/// Worst-case supply pattern simulated by the oracle: the first resource
/// period delivers its budget as early as possible and every later period
/// as late as possible, realizing the model's maximal blackout
/// 2(Pi - Theta). All tasks release synchronously at time 0 (the critical
/// instant for synchronous periodic EDF).
///
/// Returns:
///  * schedulable   -- no deadline missed across the simulated horizon
///                     (hyperperiod of all periods and Pi, plus one extra
///                     resource period of warm-up),
///  * unschedulable -- a deadline miss was observed (a definitive
///                     counterexample under this supply pattern),
///  * aborted       -- the hyperperiod exceeds `max_horizon` slots.
[[nodiscard]] sched_result
exact_edf_test(const task_set& tasks, const resource_interface& iface,
               std::uint64_t max_horizon = 1u << 22);

/// The simulated horizon the oracle would use (hyperperiod + warm-up);
/// 0 when it would overflow max_horizon.
[[nodiscard]] std::uint64_t
exact_test_horizon(const task_set& tasks, const resource_interface& iface,
                   std::uint64_t max_horizon = 1u << 22);

} // namespace bluescale::analysis
