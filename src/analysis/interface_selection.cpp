#include "analysis/interface_selection.hpp"

#include <algorithm>
#include <cmath>

namespace bluescale::analysis {

std::uint64_t theorem2_max_period(const task_set& tasks,
                                  double level_utilization) {
    const std::uint64_t t_min = min_period(tasks);
    if (t_min == 0) return 0;
    const double slack = level_utilization - utilization(tasks);
    if (slack <= 0.0) return t_min;
    const double bound = static_cast<double>(t_min) / (2.0 * slack);
    if (bound >= static_cast<double>(t_min)) return t_min;
    return static_cast<std::uint64_t>(std::floor(bound));
}

std::optional<std::uint64_t>
min_budget_for_period(const task_set& tasks, std::uint64_t period,
                      const sched_test_config& cfg) {
    if (period == 0) return std::nullopt;
    if (tasks.empty()) return 0;

    const double u = utilization(tasks);
    // Theta/Pi > U is necessary (Theorem 1's precondition).
    auto lo = static_cast<std::uint64_t>(
                  std::floor(u * static_cast<double>(period))) +
              1;
    if (lo > period) return std::nullopt;

    if (is_schedulable(tasks, {period, period}, cfg) !=
        sched_result::schedulable) {
        return std::nullopt;
    }

    std::uint64_t hi = period; // known schedulable
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (is_schedulable(tasks, {period, mid}, cfg) ==
            sched_result::schedulable) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return hi;
}

std::optional<resource_interface>
select_interface(const task_set& tasks, double level_utilization,
                 const selection_config& cfg) {
    if (tasks.empty()) return resource_interface{0, 0};

    const std::uint64_t pi_max =
        std::min(theorem2_max_period(tasks, level_utilization),
                 cfg.max_period);
    if (pi_max == 0) return std::nullopt;

    const double u = utilization(tasks);
    const double tol = std::max(0.0, cfg.bandwidth_tolerance);
    std::vector<resource_interface> candidates;
    double best_bw = 2.0; // anything beats this

    for (std::uint64_t pi = 1; pi <= pi_max; ++pi) {
        // Cheapest budget this period could possibly achieve; skip the
        // binary search when it cannot land within tolerance of the best
        // bandwidth found so far.
        const auto theta_floor =
            static_cast<std::uint64_t>(
                std::floor(u * static_cast<double>(pi))) +
            1;
        if (theta_floor > pi) continue;
        const double bw_floor =
            static_cast<double>(theta_floor) / static_cast<double>(pi);
        if (bw_floor >= best_bw * (1.0 + tol) + 1e-12) continue;

        const auto theta = min_budget_for_period(tasks, pi, cfg.sched);
        if (!theta) continue;
        const resource_interface candidate{pi, *theta};
        candidates.push_back(candidate);
        best_bw = std::min(best_bw, candidate.bandwidth());
    }
    if (candidates.empty()) return std::nullopt;

    // Paper-faithful: strict minimum bandwidth, ties toward smaller Pi
    // (the enumeration order). With a tolerance, prefer the largest
    // period within (1 + tol) of the minimum: the resulting server task
    // is a friendlier task for the parent level (larger T relaxes the
    // sbf-blackout and Theorem-2 constraints up the tree).
    std::optional<resource_interface> best;
    for (const auto& c : candidates) {
        const double bw = c.bandwidth();
        if (bw > best_bw * (1.0 + tol) + 1e-12) continue;
        if (!best) {
            best = c;
        } else if (tol > 0.0 ? c.period > best->period
                             : bw < best->bandwidth() - 1e-12) {
            best = c;
        }
    }
    return best;
}

} // namespace bluescale::analysis
