#include "analysis/interface_selection.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "analysis/selection_cache.hpp"

namespace bluescale::analysis {

std::uint64_t theorem2_max_period(const task_set& tasks,
                                  double level_utilization) {
    const std::uint64_t t_min = min_period(tasks);
    if (t_min == 0) return 0;
    const double slack = level_utilization - utilization(tasks);
    if (slack <= 0.0) return t_min;
    const double bound = static_cast<double>(t_min) / (2.0 * slack);
    if (bound >= static_cast<double>(t_min)) return t_min;
    return static_cast<std::uint64_t>(std::floor(bound));
}

std::optional<std::uint64_t>
min_budget_for_period(const task_set& tasks, std::uint64_t period,
                      const analysis_context& ctx) {
    if (period == 0) return std::nullopt;
    if (tasks.empty()) return 0;

    const double u = utilization(tasks);
    // Theta/Pi > U is necessary (Theorem 1's precondition).
    auto lo = static_cast<std::uint64_t>(
                  std::floor(u * static_cast<double>(period))) +
              1;
    if (lo > period) return std::nullopt;

    if (is_schedulable(tasks, {period, period}, ctx.sched) !=
        sched_result::schedulable) {
        return std::nullopt;
    }

    std::uint64_t hi = period; // known schedulable
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (is_schedulable(tasks, {period, mid}, ctx.sched) ==
            sched_result::schedulable) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return hi;
}

namespace {

std::optional<resource_interface>
select_interface_uncached(const task_set& tasks, double level_utilization,
                          const analysis_context& ctx) {
    if (tasks.empty()) return resource_interface{0, 0};

    const std::uint64_t pi_max =
        std::min(theorem2_max_period(tasks, level_utilization),
                 ctx.max_period);
    if (pi_max == 0) return std::nullopt;

    const double u = utilization(tasks);
    const double tol = std::max(0.0, ctx.bandwidth_tolerance);
    std::vector<resource_interface> candidates;
    double best_bw = 2.0; // anything beats this

    for (std::uint64_t pi = 1; pi <= pi_max; ++pi) {
        // Cheapest budget this period could possibly achieve; skip the
        // binary search when it cannot land within tolerance of the best
        // bandwidth found so far.
        const auto theta_floor =
            static_cast<std::uint64_t>(
                std::floor(u * static_cast<double>(pi))) +
            1;
        if (theta_floor > pi) continue;
        const double bw_floor =
            static_cast<double>(theta_floor) / static_cast<double>(pi);
        if (bw_floor >= best_bw * (1.0 + tol) + 1e-12) continue;

        const auto theta = min_budget_for_period(tasks, pi, ctx);
        if (!theta) continue;
        const resource_interface candidate{pi, *theta};
        candidates.push_back(candidate);
        best_bw = std::min(best_bw, candidate.bandwidth());
    }
    if (candidates.empty()) return std::nullopt;

    // Paper-faithful: strict minimum bandwidth, ties toward smaller Pi
    // (the enumeration order). With a tolerance, prefer the largest
    // period within (1 + tol) of the minimum: the resulting server task
    // is a friendlier task for the parent level (larger T relaxes the
    // sbf-blackout and Theorem-2 constraints up the tree).
    std::optional<resource_interface> best;
    for (const auto& c : candidates) {
        const double bw = c.bandwidth();
        if (bw > best_bw * (1.0 + tol) + 1e-12) continue;
        if (!best) {
            best = c;
        } else if (tol > 0.0 ? c.period > best->period
                             : bw < best->bandwidth() - 1e-12) {
            best = c;
        }
    }
    return best;
}

} // namespace

std::optional<resource_interface>
select_interface(const task_set& tasks, double level_utilization,
                 const analysis_context& ctx) {
    if (ctx.cache == nullptr) {
        return select_interface_uncached(tasks, level_utilization, ctx);
    }

    const selection_key key = make_selection_key(tasks, level_utilization, ctx);
    if (auto hit = ctx.cache->lookup(key)) {
        if (ctx.sched.stats != nullptr) {
            ++ctx.sched.stats->cache_hits;
            *ctx.sched.stats += hit->work; // replay the original work
        }
        return hit->iface;
    }

    // Compute with a private stats sink so the entry can replay the exact
    // work on later hits, keeping totals identical with the cache on/off.
    sched_test_stats work;
    analysis_context local = ctx;
    local.cache = nullptr;
    local.sched.stats = &work;
    const auto iface = select_interface_uncached(tasks, level_utilization,
                                                 local);
    ctx.cache->insert(key, selection_entry{iface, work});
    if (ctx.sched.stats != nullptr) {
        ++ctx.sched.stats->cache_misses;
        *ctx.sched.stats += work;
    }
    return iface;
}

} // namespace bluescale::analysis
