// Interface selection algorithm (paper Sec. 5): for one Virtual Element,
// find the (Pi, Theta) pair with minimum bandwidth Theta/Pi such that the
// VE's task set stays EDF-schedulable on the periodic supply.
#pragma once

#include <cstdint>
#include <optional>

#include "analysis/periodic_resource.hpp"
#include "analysis/rt_task.hpp"
#include "analysis/schedulability.hpp"

namespace bluescale::analysis {

struct selection_config {
    /// Hard cap on candidate periods enumerated (Theorem 2's range can be
    /// huge when the rest of the level is almost idle).
    std::uint64_t max_period = 1u << 16;
    /// Extension beyond the paper: accept up to this much extra bandwidth
    /// over the true minimum in exchange for the largest feasible period.
    /// 0 (the paper-faithful default) selects the strict minimum. A small
    /// tolerance counters compositional inflation: a child interface with
    /// a tiny period forces its parent to supply very frequently (the
    /// sbf-blackout constraint), so each level of strict minimization
    /// inflates total bandwidth by ~7-10%; trading a few percent at the
    /// leaves relaxes every level above (see bench/acceptance_ratio).
    double bandwidth_tolerance = 0.0;
    sched_test_config sched = {};
};

/// Theorem 2's necessary upper bound on Pi_X:
///   Pi_X <= min_{tau_i in T_X} T_i / (2 (U_level - U_X))
/// where U_level is the total utilization of *all* tasks at this level
/// (across sibling VEs) and U_X that of T_X alone. When U_level == U_X the
/// bound is vacuous and min period is returned (a larger Pi cannot reduce
/// bandwidth below what some Pi <= min T_i achieves, since the supply
/// blackout 2(Pi - Theta) must stay under the smallest period).
[[nodiscard]] std::uint64_t theorem2_max_period(const task_set& tasks,
                                                double level_utilization);

/// Minimum schedulable budget for a fixed period, found by binary search
/// (schedulability is monotone in Theta). Returns nullopt when even
/// Theta == Pi is unschedulable.
[[nodiscard]] std::optional<std::uint64_t>
min_budget_for_period(const task_set& tasks, std::uint64_t period,
                      const sched_test_config& cfg = {});

/// Full interface selection for one VE: enumerate feasible periods
/// (1 .. Theorem-2 bound), binary-search the budget for each, and return
/// the minimum-bandwidth interface (ties broken toward smaller Pi, which
/// minimizes supply jitter). Returns nullopt when no feasible pair exists.
///
/// An empty task set yields the null interface {0, 0} (bandwidth 0).
[[nodiscard]] std::optional<resource_interface>
select_interface(const task_set& tasks, double level_utilization,
                 const selection_config& cfg = {});

} // namespace bluescale::analysis
