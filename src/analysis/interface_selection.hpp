// Interface selection algorithm (paper Sec. 5): for one Virtual Element,
// find the (Pi, Theta) pair with minimum bandwidth Theta/Pi such that the
// VE's task set stays EDF-schedulable on the periodic supply.
#pragma once

#include <cstdint>
#include <optional>

#include "analysis/analysis_context.hpp"
#include "analysis/periodic_resource.hpp"
#include "analysis/rt_task.hpp"
#include "analysis/schedulability.hpp"

namespace bluescale::analysis {

/// Theorem 2's necessary upper bound on Pi_X:
///   Pi_X <= min_{tau_i in T_X} T_i / (2 (U_level - U_X))
/// where U_level is the total utilization of *all* tasks at this level
/// (across sibling VEs) and U_X that of T_X alone. When U_level == U_X the
/// bound is vacuous and min period is returned (a larger Pi cannot reduce
/// bandwidth below what some Pi <= min T_i achieves, since the supply
/// blackout 2(Pi - Theta) must stay under the smallest period).
[[nodiscard]] std::uint64_t theorem2_max_period(const task_set& tasks,
                                                double level_utilization);

/// Minimum schedulable budget for a fixed period, found by binary search
/// (schedulability is monotone in Theta). Returns nullopt when even
/// Theta == Pi is unschedulable. Uses ctx.sched only.
[[nodiscard]] std::optional<std::uint64_t>
min_budget_for_period(const task_set& tasks, std::uint64_t period,
                      const analysis_context& ctx = {});

/// Full interface selection for one VE: enumerate feasible periods
/// (1 .. Theorem-2 bound), binary-search the budget for each, and return
/// the minimum-bandwidth interface (ties broken toward smaller Pi, which
/// minimizes supply jitter). Returns nullopt when no feasible pair exists.
///
/// An empty task set yields the null interface {0, 0} (bandwidth 0).
///
/// With ctx.cache set, the result (and the sched_test_stats work the
/// computation performed, replayed into ctx.sched.stats on a hit) is
/// memoized on the full inputs -- see selection_cache.hpp for why no
/// invalidation is needed and why the result is bit-identical either way.
[[nodiscard]] std::optional<resource_interface>
select_interface(const task_set& tasks, double level_utilization,
                 const analysis_context& ctx = {});

} // namespace bluescale::analysis
