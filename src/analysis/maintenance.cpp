#include "analysis/maintenance.hpp"

namespace bluescale::analysis {

bool maintenance_model::empty() const {
    for (const auto& op : ops) {
        if (op.period > 0 && op.cost > 0) return false;
    }
    return true;
}

std::uint64_t maintenance_model::stolen(std::uint64_t t) const {
    if (t == 0) return 0;
    std::uint64_t total = 0;
    for (const auto& op : ops) {
        if (op.period == 0 || op.cost == 0) continue;
        total += (t / op.period + 1) * op.cost;
    }
    return total;
}

double maintenance_model::utilization() const {
    double u = 0.0;
    for (const auto& op : ops) {
        if (op.period == 0 || op.cost == 0) continue;
        u += static_cast<double>(op.cost) / static_cast<double>(op.period);
    }
    return u;
}

std::uint64_t maintenance_model::burst() const {
    std::uint64_t b = 0;
    for (const auto& op : ops) {
        if (op.period == 0 || op.cost == 0) continue;
        b += op.cost;
    }
    return b;
}

std::uint64_t maintenance_sbf(std::uint64_t t, const resource_interface& r,
                              const maintenance_model& m) {
    const std::uint64_t theft = m.stolen(t);
    return sbf(t > theft ? t - theft : 0, r);
}

double maintenance_beta(const resource_interface& iface,
                        double task_utilization, const maintenance_model& m) {
    const double bw = iface.bandwidth();
    const double mu = m.utilization();
    if (bw * (1.0 - mu) <= task_utilization) return 0.0;
    const double gap =
        static_cast<double>(iface.period) - static_cast<double>(iface.budget);
    const double burst = static_cast<double>(m.burst());
    return bw * (burst + 2.0 * gap) / (bw * (1.0 - mu) - task_utilization);
}

} // namespace bluescale::analysis
