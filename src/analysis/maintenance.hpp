// Maintenance-aware supply analysis (ROADMAP item 3).
//
// DRAM maintenance -- refresh, background ECC scrubbing, RowHammer
// mitigation -- periodically steals service from the memory device, so a
// (Pi, Theta) supply contract provisioned against the raw sbf() is
// optimistic on real hardware. Per-bank regulation (Sullivan et al.) and
// bounded-latency SDRAM arbitration (Shah et al., DPQ) both show the fix:
// fold the device-level stall budget into the *analysis*, not just the
// simulator. This header models each maintenance mechanism as a sporadic
// interference source with a minimum inter-arrival `period` and a
// worst-case stolen-time `cost`, and corrects the supply bound function
// by the worst-case stolen time in any sliding window.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/periodic_resource.hpp"

namespace bluescale::analysis {

/// One maintenance mechanism: up to `cost` time units are stolen from the
/// supply at most once per `period` time units (both in the same time
/// units as resource_interface). A zero period or cost disables the op.
struct maintenance_op {
    std::uint64_t period = 0;
    std::uint64_t cost = 0;

    friend bool operator==(const maintenance_op&,
                           const maintenance_op&) = default;
};

/// The set of maintenance mechanisms charged against one memory device.
/// An empty model reproduces the uncorrected analysis exactly.
struct maintenance_model {
    std::vector<maintenance_op> ops;

    [[nodiscard]] bool empty() const;

    /// Worst-case stolen time in any sliding window of length t:
    ///   stolen(t) = sum_ops (floor(t / period) + 1) * cost
    /// The +1 term is the critical-instant alignment: a window can open
    /// right as one instance begins and close right as another ends, so
    /// up to ceil boundary effects one extra instance fits. Monotone
    /// non-decreasing in t; stolen(0) = 0.
    [[nodiscard]] std::uint64_t stolen(std::uint64_t t) const;

    /// Long-run fraction of supply consumed: sum_ops cost / period.
    [[nodiscard]] double utilization() const;

    /// Window-independent stolen-time offset: sum_ops cost. Bounds the
    /// "+1" critical-instant terms of stolen(t) for the linear analysis.
    [[nodiscard]] std::uint64_t burst() const;
};

/// Maintenance-corrected supply bound function:
///   sbf_m(t) = sbf(max(0, t - stolen(t)), r)
/// The device is unavailable for at most stolen(t) of any window of
/// length t, so the interface's periodic guarantee is honored over the
/// remaining device-available time: the supply slips but is not consumed
/// by another port (the controller blocks ALL service during a
/// maintenance window and catches up after it). Each port therefore
/// loses only its own share of the stolen time in steady state --
/// essential for whole-tree feasibility, where charging every port the
/// full stolen service (sbf(t) - stolen(t)) would multiply the device's
/// maintenance utilization by the port count and blow past unit
/// capacity. Reduces to sbf() for an empty model.
[[nodiscard]] std::uint64_t maintenance_sbf(std::uint64_t t,
                                            const resource_interface& r,
                                            const maintenance_model& m);

/// Theorem 1's test bound, corrected for maintenance: stolen(t) is at
/// most mu*t + burst, so
///   lsbf_m(t) >= bw*((1 - mu)*t - burst - 2*(Pi-Theta))
/// and a dbf excursion above sbf_m past beta_m implies one before it,
/// where
///   beta_m = bw*(burst + 2*gap) / (bw*(1 - mu) - U),   gap = Pi - Theta.
/// Only defined when bw*(1 - mu) > U; returns 0 otherwise. Reduces to
/// theorem1_beta for an empty model.
[[nodiscard]] double maintenance_beta(const resource_interface& iface,
                                      double task_utilization,
                                      const maintenance_model& m);

} // namespace bluescale::analysis
