#include "analysis/periodic_resource.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::analysis {

std::uint64_t sbf(std::uint64_t t, const resource_interface& r) {
    assert(r.budget <= r.period);
    if (r.period == 0 || r.budget == 0) return 0;
    const std::uint64_t gap = r.period - r.budget;
    if (t < gap) return 0;
    const std::uint64_t t_prime = t - gap;
    const std::uint64_t whole_periods = t_prime / r.period;
    const std::uint64_t remainder = t_prime - whole_periods * r.period;
    const std::uint64_t eps = remainder > gap ? remainder - gap : 0;
    return whole_periods * r.budget + std::min<std::uint64_t>(eps, r.budget);
}

double lsbf(std::uint64_t t, const resource_interface& r) {
    if (r.period == 0) return 0.0;
    const double bw = r.bandwidth();
    const double shifted = static_cast<double>(t) -
                           2.0 * static_cast<double>(r.period - r.budget);
    return std::max(0.0, bw * shifted);
}

} // namespace bluescale::analysis
