// Shin & Lee's periodic resource model (RTSS'03), as used by the paper to
// characterize a Virtual Element's supply.
#pragma once

#include <cstdint>

namespace bluescale::analysis {

/// The interface of a Virtual Element: at least `budget` (Theta) time units
/// of service are guaranteed every `period` (Pi) time units.
struct resource_interface {
    std::uint64_t period = 0; ///< Pi
    std::uint64_t budget = 0; ///< Theta (<= Pi)

    [[nodiscard]] double bandwidth() const {
        return period == 0 ? 0.0
                           : static_cast<double>(budget) /
                                 static_cast<double>(period);
    }

    friend bool operator==(const resource_interface&,
                           const resource_interface&) = default;
};

/// Supply bound function: the minimum service guaranteed to the VE in any
/// interval of length t (paper Sec. 5, from [17]):
///
///   sbf(t) = 0                                   if t' < 0
///   sbf(t) = floor(t'/Pi) * Theta + eps          if t' >= 0
///   where t'  = t - (Pi - Theta)
///         eps = max(t' - Pi*floor(t'/Pi) - (Pi - Theta), 0)
[[nodiscard]] std::uint64_t sbf(std::uint64_t t, const resource_interface& r);

/// Linear lower bound on sbf used in Theorem 1's proof:
///   lsbf(t) = (Theta/Pi) * (t - 2(Pi - Theta)), clamped at 0.
[[nodiscard]] double lsbf(std::uint64_t t, const resource_interface& r);

} // namespace bluescale::analysis
