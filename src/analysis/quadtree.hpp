// Quadtree indexing shared by the analysis framework and the BlueScale
// hardware model (paper Sec. 3: SE(x, y) where x is depth, y the order).
#pragma once

#include <cstdint>

namespace bluescale::analysis {

/// Branching factor of BlueScale's tree (4-to-1 Scale Elements).
inline constexpr std::uint32_t k_se_fanin = 4;

/// Static shape of a BlueScale quadtree serving `clients` leaves.
struct quadtree_shape {
    std::uint32_t clients = 0;       ///< requested client count
    std::uint32_t leaf_level = 0;    ///< L: deepest SE level
    std::uint32_t padded_clients = 0; ///< 4^(L+1), >= clients

    /// Number of SEs at level l (full tree): 4^l.
    [[nodiscard]] std::uint32_t ses_at_level(std::uint32_t level) const {
        return 1u << (2 * level);
    }

    /// Total SEs in the full tree: sum of 4^l for l in [0, L], which equals
    /// (4^(L+1) - 1) / 3 = (padded_clients - 1) / 3.
    [[nodiscard]] std::uint32_t total_ses() const {
        return (padded_clients - 1) / 3;
    }

    /// Leaf SE serving client c.
    [[nodiscard]] std::uint32_t leaf_se_of_client(std::uint32_t c) const {
        return c / k_se_fanin;
    }

    /// Port of the leaf SE that client c occupies.
    [[nodiscard]] std::uint32_t leaf_port_of_client(std::uint32_t c) const {
        return c % k_se_fanin;
    }

    /// Child SE order at level (l+1) behind port p of SE(l, y).
    [[nodiscard]] static std::uint32_t child_order(std::uint32_t y,
                                                   std::uint32_t p) {
        return y * k_se_fanin + p;
    }

    /// Parent SE order at level (l-1) of SE(l, y).
    [[nodiscard]] static std::uint32_t parent_order(std::uint32_t y) {
        return y / k_se_fanin;
    }

    /// Parent port that SE(l, y) plugs into.
    [[nodiscard]] static std::uint32_t parent_port(std::uint32_t y) {
        return y % k_se_fanin;
    }
};

/// Computes the shape for `clients` leaves (clients >= 1). The tree is the
/// smallest full quadtree with capacity >= clients; surplus leaf ports are
/// left unconnected.
[[nodiscard]] inline quadtree_shape make_quadtree_shape(std::uint32_t clients) {
    quadtree_shape s;
    s.clients = clients;
    s.leaf_level = 0;
    std::uint32_t capacity = k_se_fanin; // one SE, 4 clients
    while (capacity < clients) {
        capacity *= k_se_fanin;
        ++s.leaf_level;
    }
    s.padded_clients = capacity;
    return s;
}

} // namespace bluescale::analysis
