// Sporadic/periodic task abstraction used by the schedulability analysis.
#pragma once

#include <cstdint>
#include <vector>

namespace bluescale::analysis {

/// A periodic task with implicit deadline: period T (== relative deadline)
/// and worst-case execution time C, both in integer time units (cycles), as
/// the paper assumes discrete time.
///
/// At the leaf level these are the Local Tasks' given parameters; at inner
/// levels a server task with interface (Pi, Theta) is treated as the task
/// (T = Pi, C = Theta).
struct rt_task {
    std::uint64_t period = 0; ///< T_i (and relative deadline D_i)
    std::uint64_t wcet = 0;   ///< C_i

    [[nodiscard]] double utilization() const {
        return period == 0 ? 0.0
                           : static_cast<double>(wcet) /
                                 static_cast<double>(period);
    }

    friend bool operator==(const rt_task&, const rt_task&) = default;
};

using task_set = std::vector<rt_task>;

/// Sum of C_i / T_i over the set.
[[nodiscard]] double utilization(const task_set& tasks);

/// Smallest period in the set; 0 for an empty set.
[[nodiscard]] std::uint64_t min_period(const task_set& tasks);

} // namespace bluescale::analysis
