#include "analysis/schedulability.hpp"

#include <cmath>

namespace bluescale::analysis {

double theorem1_beta(const resource_interface& iface,
                     double task_utilization) {
    const double bw = iface.bandwidth();
    if (bw <= task_utilization) return 0.0;
    const double gap =
        static_cast<double>(iface.period) - static_cast<double>(iface.budget);
    return 2.0 * bw * gap / (bw - task_utilization);
}

sched_result is_schedulable(const task_set& tasks,
                            const resource_interface& iface,
                            const sched_test_config& cfg) {
    if (cfg.stats != nullptr) ++cfg.stats->tests_run;
    if (tasks.empty()) return sched_result::schedulable;
    if (iface.period == 0 || iface.budget == 0) {
        return sched_result::unschedulable;
    }

    const double u = utilization(tasks);
    const maintenance_model& maint = cfg.maintenance;
    if (iface.bandwidth() * (1.0 - maint.utilization()) <= u) {
        return sched_result::unschedulable;
    }

    // No task may have a period shorter than the worst-case supply delay
    // (sbf is 0 up to 2(Pi - Theta)), otherwise its first job can miss.
    const std::uint64_t blackout = 2 * (iface.period - iface.budget);
    for (const auto& task : tasks) {
        if (task.wcet > 0 && task.period < blackout + task.wcet) {
            // sbf(period) < wcet is guaranteed: cheap necessary filter.
            if (maintenance_sbf(task.period, iface, maint) < task.wcet) {
                return sched_result::unschedulable;
            }
        }
    }

    const double beta = maintenance_beta(iface, u, maint);
    // Testing slightly beyond beta is sound (a violation past beta implies
    // one before it), so round the horizon up.
    const auto horizon = static_cast<std::uint64_t>(std::ceil(beta)) + 1;

    // Bound the work before enumerating.
    std::uint64_t point_estimate = 0;
    for (const auto& task : tasks) {
        if (task.period == 0 || task.wcet == 0) continue;
        point_estimate += horizon / task.period;
        if (point_estimate > cfg.max_test_points) return sched_result::aborted;
    }

    for (const std::uint64_t t : dbf_step_points(tasks, horizon)) {
        if (cfg.stats != nullptr) ++cfg.stats->points_checked;
        if (dbf(t, tasks) > maintenance_sbf(t, iface, maint)) {
            return sched_result::unschedulable;
        }
    }
    return sched_result::schedulable;
}

} // namespace bluescale::analysis
