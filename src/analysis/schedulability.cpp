#include "analysis/schedulability.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace bluescale::analysis {

double theorem1_beta(const resource_interface& iface,
                     double task_utilization) {
    const double bw = iface.bandwidth();
    if (bw <= task_utilization) return 0.0;
    const double gap =
        static_cast<double>(iface.period) - static_cast<double>(iface.budget);
    return 2.0 * bw * gap / (bw - task_utilization);
}

sched_result is_schedulable_sufficient(const task_set& tasks,
                                       const resource_interface& iface,
                                       const sched_test_config& cfg) {
    if (cfg.stats != nullptr) ++cfg.stats->tests_run;
    if (tasks.empty()) return sched_result::schedulable;
    if (iface.period == 0 || iface.budget == 0) {
        return sched_result::unschedulable;
    }

    const double u = utilization(tasks);
    const maintenance_model& maint = cfg.maintenance;
    const double mu = maint.utilization();
    const double bw = iface.bandwidth();
    if (bw * (1.0 - mu) <= u) return sched_result::unschedulable;

    // Necessary blackout filter, shared with the exact test: a first job
    // that cannot fit before its deadline is a proof of unschedulability.
    const std::uint64_t blackout = 2 * (iface.period - iface.budget);
    for (const auto& task : tasks) {
        if (task.wcet > 0 && task.period < blackout + task.wcet) {
            if (maintenance_sbf(task.period, iface, maint) < task.wcet) {
                return sched_result::unschedulable;
            }
        }
    }

    // Horizon collapse: Theorem 1 confines violations to t <= beta, and
    // dbf steps only at period multiples, so a minimum period beyond beta
    // leaves nothing to check.
    const double beta = maintenance_beta(iface, u, maint);
    std::uint64_t min_period = 0;
    std::vector<std::pair<std::uint64_t, double>> steps;
    steps.reserve(tasks.size());
    for (const auto& task : tasks) {
        if (task.wcet == 0 || task.period == 0) continue;
        if (min_period == 0 || task.period < min_period) {
            min_period = task.period;
        }
        steps.emplace_back(task.period,
                           static_cast<double>(task.wcet) /
                               static_cast<double>(task.period));
    }
    if (min_period == 0 || static_cast<double>(min_period) > beta) {
        return sched_result::schedulable;
    }

    // Linear demand vs. linear supply. dbf(t) <= sum_{T_i <= t} U_i * t
    // (floor(t/T_i)*C_i <= U_i*t, and a task contributes nothing before
    // its first period). The supply obeys
    //   sbf_m(t) >= bw*((1 - mu)*t - burst - 2*(Pi - Theta))
    // (see maintenance_beta). Between distinct periods the demand bound's
    // slope is at most u < bw*(1 - mu), so the supply-demand margin only
    // shrinks at the period breakpoints -- checking each one covers all t.
    std::sort(steps.begin(), steps.end());
    const double offset = static_cast<double>(maint.burst()) +
                          static_cast<double>(blackout);
    double u_acc = 0.0;
    bool proven = true;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        u_acc += steps[i].second;
        // Only evaluate at the last task sharing this period (u_acc must
        // include every task activated by t = p).
        if (i + 1 < steps.size() && steps[i + 1].first == steps[i].first) {
            continue;
        }
        if (cfg.stats != nullptr) ++cfg.stats->points_checked;
        const auto p = static_cast<double>(steps[i].first);
        if (u_acc * p > bw * ((1.0 - mu) * p - offset)) {
            proven = false;
            break;
        }
    }
    if (proven) return sched_result::schedulable;
    return sched_result::aborted; // undecided: no proof either way
}

sched_result is_schedulable(const task_set& tasks,
                            const resource_interface& iface,
                            const sched_test_config& cfg) {
    if (cfg.sufficient_only) {
        return is_schedulable_sufficient(tasks, iface, cfg);
    }
    if (cfg.cheap_first) {
        // Cheap-first ladder: both rungs are sound, so the portfolio's
        // verdict (when it has one) is final and the exact enumeration is
        // skipped entirely. Only `aborted` (undecided) falls through.
        const sched_result quick = is_schedulable_sufficient(tasks, iface, cfg);
        if (quick != sched_result::aborted) {
            if (cfg.stats != nullptr) ++cfg.stats->ladder_cheap_decided;
            return quick;
        }
        if (cfg.stats != nullptr) ++cfg.stats->ladder_exact_fallbacks;
    }
    if (cfg.stats != nullptr) ++cfg.stats->tests_run;
    if (tasks.empty()) return sched_result::schedulable;
    if (iface.period == 0 || iface.budget == 0) {
        return sched_result::unschedulable;
    }

    const double u = utilization(tasks);
    const maintenance_model& maint = cfg.maintenance;
    if (iface.bandwidth() * (1.0 - maint.utilization()) <= u) {
        return sched_result::unschedulable;
    }

    // No task may have a period shorter than the worst-case supply delay
    // (sbf is 0 up to 2(Pi - Theta)), otherwise its first job can miss.
    const std::uint64_t blackout = 2 * (iface.period - iface.budget);
    for (const auto& task : tasks) {
        if (task.wcet > 0 && task.period < blackout + task.wcet) {
            // sbf(period) < wcet is guaranteed: cheap necessary filter.
            if (maintenance_sbf(task.period, iface, maint) < task.wcet) {
                return sched_result::unschedulable;
            }
        }
    }

    const double beta = maintenance_beta(iface, u, maint);
    // Testing slightly beyond beta is sound (a violation past beta implies
    // one before it), so round the horizon up.
    const auto horizon = static_cast<std::uint64_t>(std::ceil(beta)) + 1;

    // Bound the work before enumerating.
    std::uint64_t point_estimate = 0;
    for (const auto& task : tasks) {
        if (task.period == 0 || task.wcet == 0) continue;
        point_estimate += horizon / task.period;
        if (point_estimate > cfg.max_test_points) return sched_result::aborted;
    }

    for (const std::uint64_t t : dbf_step_points(tasks, horizon)) {
        if (cfg.stats != nullptr) ++cfg.stats->points_checked;
        if (dbf(t, tasks) > maintenance_sbf(t, iface, maint)) {
            return sched_result::unschedulable;
        }
    }
    return sched_result::schedulable;
}

} // namespace bluescale::analysis
