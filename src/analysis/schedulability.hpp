// Compositional EDF schedulability test on a periodic resource
// (paper Sec. 5, Theorem 1).
#pragma once

#include <cstdint>

#include "analysis/demand_bound.hpp"
#include "analysis/maintenance.hpp"
#include "analysis/periodic_resource.hpp"
#include "analysis/rt_task.hpp"

namespace bluescale::analysis {

/// Outcome of a schedulability test, distinguishing "provably schedulable"
/// from both "provably not" and "test aborted" (bound too large to check
/// exhaustively -- treated as unschedulable, which is conservative).
enum class sched_result : std::uint8_t {
    schedulable,
    unschedulable,
    aborted,
};

/// Work counters for estimating the hardware interface selector's FSM
/// runtime (core::interface_selector) and for test assertions.
struct sched_test_stats {
    std::uint64_t tests_run = 0;      ///< schedulability tests invoked
    std::uint64_t points_checked = 0; ///< dbf/sbf comparisons performed
};

struct sched_test_config {
    /// Upper limit on the number of dbf step points inspected before the
    /// test conservatively aborts. Theorem 1's bound beta explodes as the
    /// interface bandwidth approaches the task-set utilization; aborting
    /// keeps the interface-selection search total.
    std::uint64_t max_test_points = 1u << 20;
    /// Optional work counters, accumulated across calls when set.
    sched_test_stats* stats = nullptr;
    /// Device maintenance charged against the supply. The test compares
    /// dbf against the maintenance-corrected sbf and uses the corrected
    /// Theorem 1 bound; an empty model (the default) reproduces the
    /// uncorrected test bit-for-bit.
    maintenance_model maintenance = {};
};

/// Theorem 1 test bound:
///   beta = 2*(Theta/Pi)*(Pi - Theta) / (Theta/Pi - U)
/// Only defined when bandwidth > U; returns 0 otherwise.
[[nodiscard]] double theorem1_beta(const resource_interface& iface,
                                   double task_utilization);

/// Checks dbf(t, tasks) <= sbf(t, iface) for all t < beta (sufficient by
/// Theorem 1 for all t). Requires iface.bandwidth() > utilization(tasks)
/// as a necessary precondition; returns unschedulable when violated.
[[nodiscard]] sched_result is_schedulable(const task_set& tasks,
                                          const resource_interface& iface,
                                          const sched_test_config& cfg = {});

} // namespace bluescale::analysis
