// Compositional EDF schedulability test on a periodic resource
// (paper Sec. 5, Theorem 1).
#pragma once

#include <cstdint>

#include "analysis/demand_bound.hpp"
#include "analysis/maintenance.hpp"
#include "analysis/periodic_resource.hpp"
#include "analysis/rt_task.hpp"

namespace bluescale::analysis {

/// Outcome of a schedulability test, distinguishing "provably schedulable"
/// from both "provably not" and "test aborted" (bound too large to check
/// exhaustively -- treated as unschedulable, which is conservative).
enum class sched_result : std::uint8_t {
    schedulable,
    unschedulable,
    aborted,
};

/// Work counters for estimating the hardware interface selector's FSM
/// runtime (core::interface_selector) and for test assertions.
struct sched_test_stats {
    std::uint64_t tests_run = 0;      ///< schedulability tests invoked
    std::uint64_t points_checked = 0; ///< dbf/sbf comparisons performed
    /// Cheap-first ladder outcomes: candidates the O(n log n) sufficient
    /// portfolio decided outright vs. those that fell through (`aborted`)
    /// to the pseudo-polynomial exact test. Only advanced when
    /// sched_test_config::cheap_first is set.
    std::uint64_t ladder_cheap_decided = 0;
    std::uint64_t ladder_exact_fallbacks = 0;
    /// Selection-cache outcomes (analysis::selection_cache). A hit replays
    /// the cached entry's tests_run/points_checked/ladder counters into
    /// this struct, so the work totals are identical with the cache on or
    /// off; only these two counters reveal the cache.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;

    sched_test_stats& operator+=(const sched_test_stats& other) {
        tests_run += other.tests_run;
        points_checked += other.points_checked;
        ladder_cheap_decided += other.ladder_cheap_decided;
        ladder_exact_fallbacks += other.ladder_exact_fallbacks;
        cache_hits += other.cache_hits;
        cache_misses += other.cache_misses;
        return *this;
    }

    friend bool operator==(const sched_test_stats&,
                           const sched_test_stats&) = default;
};

struct sched_test_config {
    /// Upper limit on the number of dbf step points inspected before the
    /// test conservatively aborts. Theorem 1's bound beta explodes as the
    /// interface bandwidth approaches the task-set utilization; aborting
    /// keeps the interface-selection search total.
    std::uint64_t max_test_points = 1u << 20;
    /// Optional work counters, accumulated across calls when set.
    sched_test_stats* stats = nullptr;
    /// Device maintenance charged against the supply. The test compares
    /// dbf against the maintenance-corrected sbf and uses the corrected
    /// Theorem 1 bound; an empty model (the default) reproduces the
    /// uncorrected test bit-for-bit.
    maintenance_model maintenance = {};
    /// Degraded-precision mode (the analysis service's circuit breaker):
    /// is_schedulable() answers with the linear-time sufficient-test
    /// portfolio only and never enumerates dbf points. Sound -- a
    /// `schedulable` verdict is still a proof -- but incomplete: task sets
    /// the portfolio cannot decide come back `aborted` (conservatively
    /// treated as unschedulable by every caller). Default false reproduces
    /// the pseudo-polynomial exact test bit-for-bit.
    bool sufficient_only = false;
    /// Cheap-first test ladder: is_schedulable() tries the O(n log n)
    /// sufficient portfolio first and runs the pseudo-polynomial exact
    /// test only when the portfolio returns `aborted` (undecided). Both
    /// rungs are sound, so a laddered verdict can differ from the
    /// exact-only verdict only where the exact test itself would abort
    /// (work cap) -- there the ladder may still prove schedulability.
    /// Ignored when sufficient_only is set. Default false reproduces the
    /// exact test bit-for-bit.
    bool cheap_first = false;
};

/// Theorem 1 test bound:
///   beta = 2*(Theta/Pi)*(Pi - Theta) / (Theta/Pi - U)
/// Only defined when bandwidth > U; returns 0 otherwise.
[[nodiscard]] double theorem1_beta(const resource_interface& iface,
                                   double task_utilization);

/// Checks dbf(t, tasks) <= sbf(t, iface) for all t < beta (sufficient by
/// Theorem 1 for all t). Requires iface.bandwidth() > utilization(tasks)
/// as a necessary precondition; returns unschedulable when violated.
/// With cfg.sufficient_only set, delegates to is_schedulable_sufficient.
[[nodiscard]] sched_result is_schedulable(const task_set& tasks,
                                          const resource_interface& iface,
                                          const sched_test_config& cfg = {});

/// Linear-time sufficient-test portfolio (the cheap half of the
/// cheap-first test ladder; also the circuit breaker's degraded mode):
///
///  1. necessary filters shared with the exact test: effective bandwidth
///     above utilization, and the first-job blackout check -- a failure
///     here is a proof of unschedulability;
///  2. horizon collapse: when every task period exceeds the Theorem 1
///     bound beta, no dbf step point exists inside the test horizon and
///     the set is schedulable outright;
///  3. linear demand vs. linear supply: dbf(t) <= (sum of utilizations of
///     tasks with T_i <= t) * t, checked against the linear supply lower
///     bound bw*((1 - mu)*t - burst - 2*(Pi - Theta)) at each distinct
///     period (the only points where the demand bound's slope jumps; in
///     between, supply grows strictly faster than demand).
///
/// Sound in both directions but incomplete: returns `aborted` when no
/// test decides (callers treat that as unschedulable, conservatively).
/// Work is O(n log n) in the task count with no dependence on beta.
[[nodiscard]] sched_result
is_schedulable_sufficient(const task_set& tasks,
                          const resource_interface& iface,
                          const sched_test_config& cfg = {});

} // namespace bluescale::analysis
