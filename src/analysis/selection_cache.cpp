#include "analysis/selection_cache.hpp"

#include <bit>
#include <utility>

#include "analysis/analysis_context.hpp"

namespace bluescale::analysis {

namespace {

constexpr std::uint64_t k_fnv_offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t k_fnv_prime = 0x100000001b3ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= k_fnv_prime;
    }
    return h;
}

} // namespace

std::uint64_t selection_key_hash(const selection_key& key) {
    std::uint64_t h = k_fnv_offset;
    h = fnv_mix(h, key.tasks.size());
    for (const rt_task& t : key.tasks) {
        h = fnv_mix(h, t.period);
        h = fnv_mix(h, t.wcet);
    }
    h = fnv_mix(h, key.u_level_bits);
    h = fnv_mix(h, key.knobs);
    return h;
}

selection_key make_selection_key(const task_set& tasks,
                                 double level_utilization,
                                 const analysis_context& ctx) {
    selection_key key;
    key.tasks = tasks;
    key.u_level_bits = std::bit_cast<std::uint64_t>(level_utilization);

    std::uint64_t k = k_fnv_offset;
    k = fnv_mix(k, ctx.max_period);
    k = fnv_mix(k, std::bit_cast<std::uint64_t>(ctx.bandwidth_tolerance));
    k = fnv_mix(k, ctx.sched.max_test_points);
    k = fnv_mix(k, static_cast<std::uint64_t>(ctx.sched.sufficient_only));
    k = fnv_mix(k, static_cast<std::uint64_t>(ctx.sched.cheap_first));
    k = fnv_mix(k, ctx.sched.maintenance.ops.size());
    for (const maintenance_op& op : ctx.sched.maintenance.ops) {
        k = fnv_mix(k, op.period);
        k = fnv_mix(k, op.cost);
    }
    key.knobs = k;
    return key;
}

selection_cache::selection_cache(std::size_t capacity)
    : shard_capacity_((capacity + k_shards - 1) / k_shards) {
    if (shard_capacity_ == 0) shard_capacity_ = 1;
}

selection_cache::shard& selection_cache::shard_of(const selection_key& key) {
    return shards_[selection_key_hash(key) % k_shards];
}

std::optional<selection_entry>
selection_cache::lookup(const selection_key& key) {
    shard& s = shard_of(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    // detlint:allow(unordered-iter): point lookup via find(), no iteration
    if (it == s.map.end()) {
        ++s.misses;
        return std::nullopt;
    }
    ++s.hits;
    return it->second;
}

void selection_cache::insert(const selection_key& key,
                             selection_entry entry) {
    shard& s = shard_of(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    // detlint:allow(unordered-iter): point lookup via find(), no iteration
    if (it != s.map.end()) {
        it->second = std::move(entry);
        return;
    }
    while (s.map.size() >= shard_capacity_ && !s.fifo.empty()) {
        s.map.erase(s.fifo.front());
        s.fifo.pop_front();
        ++s.evictions;
    }
    s.fifo.push_back(key);
    s.map.emplace(key, std::move(entry));
}

selection_cache_stats selection_cache::stats() const {
    selection_cache_stats out;
    for (const shard& s : shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        out.hits += s.hits;
        out.misses += s.misses;
        out.evictions += s.evictions;
    }
    return out;
}

std::size_t selection_cache::size() const {
    std::size_t n = 0;
    for (const shard& s : shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        n += s.map.size();
    }
    return n;
}

void selection_cache::clear() {
    for (shard& s : shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        s.map.clear();
        s.fifo.clear();
    }
}

} // namespace bluescale::analysis
