// Memoization of select_interface() results (ROADMAP item 2).
//
// select_interface is a pure function of (task set, level utilization,
// analysis knobs), so a cache keyed on the FULL inputs needs no
// invalidation protocol: an entry can never go stale, only unused. Keys
// compare by value -- the task vector itself, not just a hash -- so a
// hash collision cannot silently substitute another subtree's interface;
// the hash only picks the bucket. Each entry also stores the
// sched_test_stats the original computation performed, and a hit replays
// those counters into the caller's stats, keeping the accumulated work
// totals (and therefore core::parameter_path's modeled selection
// latency) bit-identical with the cache on or off.
//
// Thread safety: the map is sharded 16 ways by key hash with one mutex
// per shard, sized for the deterministic parallel tree selection where
// sibling subtrees look up concurrently. Bounded FIFO eviction per
// shard keeps memory use proportional to the configured capacity.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "analysis/periodic_resource.hpp"
#include "analysis/rt_task.hpp"
#include "analysis/schedulability.hpp"

namespace bluescale::analysis {

struct analysis_context;

/// Full-input identity of one select_interface() call. `u_level_bits` is
/// the raw bit pattern of the level-utilization double (exact equality,
/// no epsilon -- a different bit pattern may legitimately select a
/// different interface). `knobs` fingerprints every analysis_context
/// field that can influence the result.
struct selection_key {
    task_set tasks;
    std::uint64_t u_level_bits = 0;
    std::uint64_t knobs = 0;

    friend bool operator==(const selection_key&,
                           const selection_key&) = default;
};

/// FNV-1a over the key's full contents; bucket placement only (equality
/// is by value).
[[nodiscard]] std::uint64_t selection_key_hash(const selection_key& key);

/// Builds the cache key for one select_interface(tasks, u_level, ctx)
/// call, fingerprinting every knob of `ctx` that can change the result
/// (max_period, bandwidth_tolerance, the sched test mode and work cap,
/// and the maintenance model).
[[nodiscard]] selection_key make_selection_key(const task_set& tasks,
                                               double level_utilization,
                                               const analysis_context& ctx);

/// One memoized result: the selected interface (nullopt == infeasible is
/// cached too) plus the test work the original computation performed.
struct selection_entry {
    std::optional<resource_interface> iface;
    sched_test_stats work;
};

struct selection_cache_stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

class selection_cache {
  public:
    /// `capacity` bounds the total entry count across shards (rounded up
    /// to a multiple of the shard count).
    explicit selection_cache(std::size_t capacity = 1u << 16);

    selection_cache(const selection_cache&) = delete;
    selection_cache& operator=(const selection_cache&) = delete;

    /// Returns a copy of the entry, or nullopt on miss. Counts a hit or
    /// miss in stats().
    [[nodiscard]] std::optional<selection_entry>
    lookup(const selection_key& key);

    /// Inserts (or overwrites) the entry, evicting the oldest entry of
    /// the shard when full.
    void insert(const selection_key& key, selection_entry entry);

    [[nodiscard]] selection_cache_stats stats() const;
    [[nodiscard]] std::size_t size() const;
    void clear();

  private:
    static constexpr std::size_t k_shards = 16;

    struct key_hasher {
        std::size_t operator()(const selection_key& key) const {
            return static_cast<std::size_t>(selection_key_hash(key));
        }
    };

    struct shard {
        mutable std::mutex mu;
        std::unordered_map<selection_key, selection_entry, key_hasher> map;
        std::deque<selection_key> fifo; ///< insertion order for eviction
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    shard& shard_of(const selection_key& key);

    std::size_t shard_capacity_;
    std::array<shard, k_shards> shards_;
};

} // namespace bluescale::analysis
