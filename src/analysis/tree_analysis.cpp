#include "analysis/tree_analysis.hpp"

#include <cassert>

namespace bluescale::analysis {

namespace {

/// The task set a non-leaf SE port sees: the child SE's engaged server
/// tasks, each treated as the task (T = Pi, C = Theta).
task_set child_server_tasks(const se_interfaces& child) {
    task_set tasks;
    for (const auto& port : child.ports) {
        if (port && port->budget > 0) {
            tasks.push_back(rt_task{port->period, port->budget});
        }
    }
    return tasks;
}

/// Total selected bandwidth across a level (the next level's U_{l+2}).
double level_bandwidth(const std::vector<se_interfaces>& level) {
    double bw = 0.0;
    for (const auto& se : level) bw += se.total_bandwidth();
    return bw;
}

task_set tasks_of_client(const std::vector<task_set>& client_tasks,
                         std::uint32_t client) {
    if (client < client_tasks.size()) return client_tasks[client];
    return {};
}

void finalize(tree_selection& sel) {
    sel.root_bandwidth = sel.levels[0][0].total_bandwidth();
    if (sel.failure.empty() && sel.root_bandwidth > 1.0 + 1e-9) {
        sel.failure = "root resource over-utilized: total level-1 server "
                      "bandwidth exceeds 1";
    }
    sel.feasible = sel.failure.empty();
}

std::string port_failure(std::uint32_t level, std::uint32_t order,
                         std::uint32_t port) {
    return "no feasible interface for SE(" + std::to_string(level) + "," +
           std::to_string(order) + ") port " + std::to_string(port);
}

} // namespace

tree_selection
select_tree_interfaces(const std::vector<task_set>& client_tasks,
                       const selection_config& cfg) {
    tree_selection sel;
    sel.shape = make_quadtree_shape(
        static_cast<std::uint32_t>(std::max<std::size_t>(client_tasks.size(), 1)));
    const std::uint32_t depth = sel.shape.leaf_level;
    sel.levels.resize(depth + 1);
    for (std::uint32_t l = 0; l <= depth; ++l) {
        sel.levels[l].resize(sel.shape.ses_at_level(l));
    }

    // Level L: VEs are system clients; tasks are the Local Tasks.
    double u_level = 0.0;
    for (const auto& tasks : client_tasks) u_level += utilization(tasks);

    for (std::uint32_t y = 0; y < sel.levels[depth].size(); ++y) {
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            const std::uint32_t client = quadtree_shape::child_order(y, p);
            const task_set tasks = tasks_of_client(client_tasks, client);
            auto iface = select_interface(tasks, u_level, cfg);
            if (!iface && sel.failure.empty()) {
                sel.failure = port_failure(depth, y, p);
            }
            sel.levels[depth][y].ports[p] = iface;
        }
    }

    // Levels L-1 .. 0: VEs are child SEs; tasks are their server tasks.
    for (std::uint32_t l = depth; l-- > 0;) {
        const double u_children = level_bandwidth(sel.levels[l + 1]);
        for (std::uint32_t y = 0; y < sel.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
                const std::uint32_t child = quadtree_shape::child_order(y, p);
                const task_set tasks =
                    child_server_tasks(sel.levels[l + 1][child]);
                auto iface = select_interface(tasks, u_children, cfg);
                if (!iface && sel.failure.empty()) {
                    sel.failure = port_failure(l, y, p);
                }
                sel.levels[l][y].ports[p] = iface;
            }
        }
    }

    finalize(sel);
    return sel;
}

std::uint32_t update_client_tasks(tree_selection& sel,
                                  std::vector<task_set>& client_tasks,
                                  std::uint32_t client,
                                  task_set new_tasks,
                                  const selection_config& cfg) {
    assert(client < sel.shape.padded_clients);
    if (client >= client_tasks.size()) client_tasks.resize(client + 1);
    client_tasks[client] = std::move(new_tasks);
    sel.failure.clear();

    const std::uint32_t depth = sel.shape.leaf_level;
    std::uint32_t changed_ses = 0;

    // Leaf level: only this client's port is reselected.
    double u_level = 0.0;
    for (const auto& tasks : client_tasks) u_level += utilization(tasks);

    std::uint32_t order = sel.shape.leaf_se_of_client(client);
    std::uint32_t port = sel.shape.leaf_port_of_client(client);
    {
        auto iface = select_interface(client_tasks[client], u_level, cfg);
        if (!iface) sel.failure = port_failure(depth, order, port);
        if (sel.levels[depth][order].ports[port] != iface) {
            sel.levels[depth][order].ports[port] = iface;
            ++changed_ses;
        }
    }

    // Walk the request path to the root, reselecting the single affected
    // port at each level. All SEs off the path keep their parameters.
    for (std::uint32_t l = depth; l-- > 0;) {
        const double u_children = level_bandwidth(sel.levels[l + 1]);
        const std::uint32_t child_order = order;
        order = quadtree_shape::parent_order(child_order);
        port = quadtree_shape::parent_port(child_order);
        const task_set tasks =
            child_server_tasks(sel.levels[l + 1][child_order]);
        auto iface = select_interface(tasks, u_children, cfg);
        if (!iface && sel.failure.empty()) {
            sel.failure = port_failure(l, order, port);
        }
        if (sel.levels[l][order].ports[port] != iface) {
            sel.levels[l][order].ports[port] = iface;
            ++changed_ses;
        }
    }

    finalize(sel);
    return changed_ses;
}

client_update
evaluate_client_update(const tree_selection& selection,
                       const std::vector<task_set>& client_tasks,
                       std::uint32_t client, task_set new_tasks,
                       const selection_config& cfg) {
    client_update out;
    out.selection = selection;
    out.client_tasks = client_tasks;
    out.ses_changed = update_client_tasks(out.selection, out.client_tasks,
                                          client, std::move(new_tasks), cfg);
    return out;
}

namespace {

inline constexpr std::uint64_t k_fnv_offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t k_fnv_prime = 0x100000001b3ull;

void fnv1a(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= k_fnv_prime;
    }
}

void fnv1a_real(std::uint64_t& h, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    fnv1a(h, bits);
}

} // namespace

std::uint64_t subtree_signature(const tree_selection& selection,
                                const std::vector<task_set>& client_tasks,
                                std::uint32_t client) {
    std::uint64_t h = k_fnv_offset;
    fnv1a(h, selection.shape.padded_clients);
    fnv1a(h, selection.shape.leaf_level);
    fnv1a(h, client);

    double u_level = 0.0;
    for (const auto& tasks : client_tasks) u_level += utilization(tasks);
    fnv1a_real(h, u_level);

    if (selection.levels.empty()) return h;
    std::uint32_t order = selection.shape.leaf_se_of_client(client);
    for (std::uint32_t l = selection.shape.leaf_level;; --l) {
        fnv1a_real(h, level_bandwidth(selection.levels[l]));
        for (const auto& port : selection.levels[l][order].ports) {
            if (port) {
                fnv1a(h, 1);
                fnv1a(h, port->period);
                fnv1a(h, port->budget);
            } else {
                fnv1a(h, 0);
            }
        }
        if (l == 0) break;
        order = quadtree_shape::parent_order(order);
    }
    return h;
}

} // namespace bluescale::analysis
