#include "analysis/tree_analysis.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace bluescale::analysis {

std::string selection_failure::to_string() const {
    switch (reason) {
    case selection_failure_reason::none:
        return "";
    case selection_failure_reason::port_infeasible:
        return "no feasible interface for SE(" + std::to_string(level) +
               "," + std::to_string(order) + ") port " +
               std::to_string(port);
    case selection_failure_reason::root_overutilized:
        return "root resource over-utilized: total level-1 server "
               "bandwidth exceeds 1";
    }
    return "";
}

namespace {

/// The task set a non-leaf SE port sees: the child SE's engaged server
/// tasks, each treated as the task (T = Pi, C = Theta). Unused child
/// ports (engaged {0,0}) and failed child ports (nullopt) both vanish
/// from the parent's task set; the latter has already latched a
/// port_infeasible failure, so the parent-level numbers are only
/// reported, never trusted, on that path.
task_set child_server_tasks(const se_interfaces& child) {
    task_set tasks;
    for (const auto& port : child.ports) {
        if (port && port->budget > 0) {
            tasks.push_back(rt_task{port->period, port->budget});
        }
    }
    return tasks;
}

/// Total selected bandwidth across a level (the next level's U_{l+2}).
double level_bandwidth(const std::vector<se_interfaces>& level) {
    double bw = 0.0;
    for (const auto& se : level) bw += se.total_bandwidth();
    return bw;
}

task_set tasks_of_client(const std::vector<task_set>& client_tasks,
                         std::uint32_t client) {
    if (client < client_tasks.size()) return client_tasks[client];
    return {};
}

void finalize(tree_selection& sel) {
    sel.root_bandwidth = sel.levels[0][0].total_bandwidth();
    if (sel.failure.empty() && sel.root_bandwidth > 1.0 + 1e-9) {
        sel.failure.reason = selection_failure_reason::root_overutilized;
    }
    sel.feasible = sel.failure.empty();
}

/// trial_runner-style deterministic work sharing: workers claim SE
/// indices from an atomic counter and write results into index-addressed
/// slots only, so the merge order (and therefore every output bit) is
/// independent of thread scheduling. The first worker exception is
/// rethrown after the join.
void parallel_for(std::uint32_t n, unsigned threads,
                  const std::function<void(std::uint32_t)>& fn) {
    unsigned workers = threads == 0 ? std::thread::hardware_concurrency()
                                    : threads;
    if (workers == 0) workers = 1;
    if (workers > n) workers = n;
    if (workers <= 1) {
        for (std::uint32_t i = 0; i < n; ++i) fn(i);
        return;
    }

    std::atomic<std::uint32_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    auto body = [&] {
        for (;;) {
            const std::uint32_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error) first_error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) pool.emplace_back(body);
    body();
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

/// Resolves one level's selections: each SE's four ports serially, SEs in
/// parallel. Per-SE work counters land in index-addressed slots and merge
/// in ascending order; the first failure latches in ascending (order,
/// port) position -- both identical to the serial scan.
void select_level(tree_selection& sel, std::uint32_t l, double u_level,
                  const analysis_context& ctx,
                  const std::function<task_set(std::uint32_t, std::uint32_t)>&
                      port_tasks) {
    const auto n = static_cast<std::uint32_t>(sel.levels[l].size());
    std::vector<sched_test_stats> slot_stats(
        ctx.sched.stats != nullptr ? n : 0);

    parallel_for(n, ctx.threads, [&](std::uint32_t y) {
        analysis_context local = ctx;
        local.sched.stats =
            ctx.sched.stats != nullptr ? &slot_stats[y] : nullptr;
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            sel.levels[l][y].ports[p] =
                select_interface(port_tasks(y, p), u_level, local);
        }
    });

    if (ctx.sched.stats != nullptr) {
        for (std::uint32_t y = 0; y < n; ++y) {
            *ctx.sched.stats += slot_stats[y];
        }
    }
    if (sel.failure.empty()) {
        for (std::uint32_t y = 0; y < n && sel.failure.empty(); ++y) {
            for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
                if (!sel.levels[l][y].ports[p]) {
                    sel.failure = selection_failure{
                        selection_failure_reason::port_infeasible, l, y, p};
                    break;
                }
            }
        }
    }
}

/// Shared core of the incremental reselection: mutates `sel` and
/// `client_tasks` along the client's request path. Both public entry
/// points (the const evaluate + apply pair and the deprecated mutating
/// form) funnel here.
std::uint32_t reselect_client_path(tree_selection& sel,
                                   std::vector<task_set>& client_tasks,
                                   std::uint32_t client, task_set new_tasks,
                                   const analysis_context& ctx) {
    assert(client < sel.shape.padded_clients);
    if (client >= client_tasks.size()) client_tasks.resize(client + 1);
    client_tasks[client] = std::move(new_tasks);
    sel.failure = {};

    const std::uint32_t depth = sel.shape.leaf_level;
    std::uint32_t changed_ses = 0;

    // Leaf level: only this client's port is reselected.
    double u_level = 0.0;
    for (const auto& tasks : client_tasks) u_level += utilization(tasks);

    std::uint32_t order = sel.shape.leaf_se_of_client(client);
    std::uint32_t port = sel.shape.leaf_port_of_client(client);
    {
        auto iface = select_interface(client_tasks[client], u_level, ctx);
        if (!iface) {
            sel.failure = selection_failure{
                selection_failure_reason::port_infeasible, depth, order,
                port};
        }
        if (sel.levels[depth][order].ports[port] != iface) {
            sel.levels[depth][order].ports[port] = iface;
            ++changed_ses;
        }
    }

    // Walk the request path to the root, reselecting the single affected
    // port at each level. All SEs off the path keep their parameters.
    for (std::uint32_t l = depth; l-- > 0;) {
        const double u_children = level_bandwidth(sel.levels[l + 1]);
        const std::uint32_t child_order = order;
        order = quadtree_shape::parent_order(child_order);
        port = quadtree_shape::parent_port(child_order);
        const task_set tasks =
            child_server_tasks(sel.levels[l + 1][child_order]);
        auto iface = select_interface(tasks, u_children, ctx);
        if (!iface && sel.failure.empty()) {
            sel.failure = selection_failure{
                selection_failure_reason::port_infeasible, l, order, port};
        }
        if (sel.levels[l][order].ports[port] != iface) {
            sel.levels[l][order].ports[port] = iface;
            ++changed_ses;
        }
    }

    finalize(sel);
    return changed_ses;
}

} // namespace

tree_selection
select_tree_interfaces(const std::vector<task_set>& client_tasks,
                       const analysis_context& ctx) {
    tree_selection sel;
    sel.shape = make_quadtree_shape(
        static_cast<std::uint32_t>(std::max<std::size_t>(client_tasks.size(), 1)));
    const std::uint32_t depth = sel.shape.leaf_level;
    sel.levels.resize(depth + 1);
    for (std::uint32_t l = 0; l <= depth; ++l) {
        sel.levels[l].resize(sel.shape.ses_at_level(l));
    }

    // Level L: VEs are system clients; tasks are the Local Tasks.
    double u_level = 0.0;
    for (const auto& tasks : client_tasks) u_level += utilization(tasks);

    select_level(sel, depth, u_level, ctx,
                 [&](std::uint32_t y, std::uint32_t p) {
                     const std::uint32_t client =
                         quadtree_shape::child_order(y, p);
                     return tasks_of_client(client_tasks, client);
                 });

    // Levels L-1 .. 0: VEs are child SEs; tasks are their server tasks.
    // Levels stay serial with respect to each other (level l reads level
    // l+1's results); only the SEs within a level run in parallel.
    for (std::uint32_t l = depth; l-- > 0;) {
        const double u_children = level_bandwidth(sel.levels[l + 1]);
        select_level(sel, l, u_children, ctx,
                     [&](std::uint32_t y, std::uint32_t p) {
                         const std::uint32_t child =
                             quadtree_shape::child_order(y, p);
                         return child_server_tasks(sel.levels[l + 1][child]);
                     });
    }

    finalize(sel);
    return sel;
}

std::uint32_t update_client_tasks(tree_selection& sel,
                                  std::vector<task_set>& client_tasks,
                                  std::uint32_t client,
                                  task_set new_tasks,
                                  const analysis_context& ctx) {
    return reselect_client_path(sel, client_tasks, client,
                                std::move(new_tasks), ctx);
}

client_update
evaluate_client_update(const tree_selection& selection,
                       const std::vector<task_set>& client_tasks,
                       std::uint32_t client, task_set new_tasks,
                       const analysis_context& ctx) {
    client_update out;
    out.selection = selection;
    out.client_tasks = client_tasks;
    out.ses_changed =
        reselect_client_path(out.selection, out.client_tasks, client,
                             std::move(new_tasks), ctx);
    return out;
}

void apply_client_update(client_update&& update, tree_selection& selection,
                         std::vector<task_set>& client_tasks) {
    selection = std::move(update.selection);
    client_tasks = std::move(update.client_tasks);
}

namespace {

inline constexpr std::uint64_t k_fnv_offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t k_fnv_prime = 0x100000001b3ull;

void fnv1a(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= k_fnv_prime;
    }
}

void fnv1a_real(std::uint64_t& h, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    fnv1a(h, bits);
}

} // namespace

std::uint64_t subtree_signature(const tree_selection& selection,
                                const std::vector<task_set>& client_tasks,
                                std::uint32_t client) {
    std::uint64_t h = k_fnv_offset;
    fnv1a(h, selection.shape.padded_clients);
    fnv1a(h, selection.shape.leaf_level);
    fnv1a(h, client);

    double u_level = 0.0;
    for (const auto& tasks : client_tasks) u_level += utilization(tasks);
    fnv1a_real(h, u_level);

    if (selection.levels.empty()) return h;
    std::uint32_t order = selection.shape.leaf_se_of_client(client);
    for (std::uint32_t l = selection.shape.leaf_level;; --l) {
        fnv1a_real(h, level_bandwidth(selection.levels[l]));
        for (const auto& port : selection.levels[l][order].ports) {
            if (port) {
                fnv1a(h, 1);
                fnv1a(h, port->period);
                fnv1a(h, port->budget);
            } else {
                fnv1a(h, 0);
            }
        }
        if (l == 0) break;
        order = quadtree_shape::parent_order(order);
    }
    return h;
}

} // namespace bluescale::analysis
