// Whole-tree interface selection: resolves the paper's per-level interface
// selection problems bottom-up (level L down to level 0) and verifies the
// root resource is not over-utilized (paper Sec. 5, closing paragraph).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "analysis/interface_selection.hpp"
#include "analysis/quadtree.hpp"
#include "analysis/rt_task.hpp"

namespace bluescale::analysis {

/// Interfaces of one SE's four local client ports (the parameters of its
/// four server tasks tau_A..tau_D). nullopt means selection failed for that
/// port; an engaged {0,0} means the port is unused (no tasks behind it).
struct se_interfaces {
    std::array<std::optional<resource_interface>, k_se_fanin> ports;

    /// Sum of the engaged ports' bandwidths.
    [[nodiscard]] double total_bandwidth() const {
        double bw = 0.0;
        for (const auto& p : ports) {
            if (p) bw += p->bandwidth();
        }
        return bw;
    }
};

/// Result of resolving every level's interface selection problem.
struct tree_selection {
    quadtree_shape shape;
    /// levels[l][y] = interfaces of SE(l, y); l in [0, L].
    std::vector<std::vector<se_interfaces>> levels;
    bool feasible = false;
    /// Sum of level-1 server bandwidths at the root; must be <= 1.
    double root_bandwidth = 0.0;
    /// Human-readable reason when infeasible.
    std::string failure;

    [[nodiscard]] const std::optional<resource_interface>&
    port_interface(std::uint32_t level, std::uint32_t order,
                   std::uint32_t port) const {
        return levels[level][order].ports[port];
    }
};

/// Resolves all interface selection problems for a quadtree whose leaves
/// run the given per-client task sets (client_tasks[c] is client mu.c's
/// local task set; missing/extra leaf ports are treated as empty).
[[nodiscard]] tree_selection
select_tree_interfaces(const std::vector<task_set>& client_tasks,
                       const selection_config& cfg = {});

/// Incremental reselection after tasks join/leave one client: recomputes
/// interfaces only along that client's request path (paper Sec. 3.2's
/// third property). Returns the number of SEs whose parameters changed;
/// `selection` is updated in place (including feasibility/root bandwidth).
std::uint32_t update_client_tasks(tree_selection& selection,
                                  std::vector<task_set>& client_tasks,
                                  std::uint32_t client,
                                  task_set new_tasks,
                                  const selection_config& cfg = {});

/// Result of a const, re-entrant incremental reselection.
struct client_update {
    tree_selection selection;
    std::vector<task_set> client_tasks;
    std::uint32_t ses_changed = 0;
};

/// Const, re-entrant form of update_client_tasks: the committed state is
/// read through const references and never mutated; the updated selection
/// and client set come back by value. Safe for concurrent evaluators
/// (e.g. the analysis service's worker pool) sharing one committed state.
[[nodiscard]] client_update
evaluate_client_update(const tree_selection& selection,
                       const std::vector<task_set>& client_tasks,
                       std::uint32_t client, task_set new_tasks,
                       const selection_config& cfg = {});

/// FNV-1a signature of everything an incremental reselection for `client`
/// reads from the committed state: the tree shape, the client id, the
/// total client utilization (every selector's level-utilization context),
/// each level's total server bandwidth, and the (Pi, Theta) interfaces of
/// every port of every SE on the client's request path (sibling ports
/// included -- they feed the parent's server task set). Two committed
/// states with equal signatures resolve the same request to the same
/// selection, so the signature is a sound result-cache key; any committed
/// reconfiguration perturbs it.
[[nodiscard]] std::uint64_t
subtree_signature(const tree_selection& selection,
                  const std::vector<task_set>& client_tasks,
                  std::uint32_t client);

} // namespace bluescale::analysis
