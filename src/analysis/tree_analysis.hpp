// Whole-tree interface selection: resolves the paper's per-level interface
// selection problems bottom-up (level L down to level 0) and verifies the
// root resource is not over-utilized (paper Sec. 5, closing paragraph).
//
// Selection scales to mega-trees (ROADMAP item 2): with
// analysis_context::threads > 1 the per-SE selections of one level run in
// parallel (sibling subtrees are independent below the root bandwidth
// check) under the trial_runner-style ordered-merge discipline, and with
// a selection_cache attached identical (task set, level context) subtree
// profiles are resolved once. Both are bit-identical to the serial,
// uncached selection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis_context.hpp"
#include "analysis/interface_selection.hpp"
#include "analysis/quadtree.hpp"
#include "analysis/rt_task.hpp"

namespace bluescale::analysis {

/// Interfaces of one SE's four local client ports (the parameters of its
/// four server tasks tau_A..tau_D). nullopt means selection failed for that
/// port; an engaged {0,0} means the port is unused (no tasks behind it).
struct se_interfaces {
    std::array<std::optional<resource_interface>, k_se_fanin> ports;

    /// Sum of the engaged ports' bandwidths. An engaged {0,0} (unused
    /// port) contributes exactly 0 (resource_interface::bandwidth()
    /// defines Theta/Pi as 0 when Pi == 0), and a failed port (nullopt)
    /// also contributes 0 -- the sum alone cannot distinguish them, which
    /// is why feasibility is tracked separately by selection_failure:
    /// a failed port marks the tree infeasible even though every
    /// bandwidth sum (level context, root check) still adds up.
    [[nodiscard]] double total_bandwidth() const {
        double bw = 0.0;
        for (const auto& p : ports) {
            if (p) bw += p->bandwidth();
        }
        return bw;
    }
};

/// Why a whole-tree selection is infeasible.
enum class selection_failure_reason : std::uint8_t {
    none,              ///< feasible
    port_infeasible,   ///< no feasible interface for one SE port
    root_overutilized, ///< total level-1 server bandwidth exceeds 1
};

/// Structured infeasibility report: the failing reason plus, for
/// port_infeasible, the exact SE(level, order) port. Replaces the old
/// free-form failure string; use to_string() for human-readable output.
struct selection_failure {
    selection_failure_reason reason = selection_failure_reason::none;
    std::uint32_t level = 0;
    std::uint32_t order = 0;
    std::uint32_t port = 0;

    [[nodiscard]] bool empty() const {
        return reason == selection_failure_reason::none;
    }
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const selection_failure&,
                           const selection_failure&) = default;
};

/// Result of resolving every level's interface selection problem.
struct tree_selection {
    quadtree_shape shape;
    /// levels[l][y] = interfaces of SE(l, y); l in [0, L].
    std::vector<std::vector<se_interfaces>> levels;
    bool feasible = false;
    /// Sum of level-1 server bandwidths at the root; must be <= 1.
    double root_bandwidth = 0.0;
    /// First failure encountered (levels scanned leaf-to-root, SEs and
    /// ports in ascending order), or reason == none when feasible.
    selection_failure failure;

    [[nodiscard]] const std::optional<resource_interface>&
    port_interface(std::uint32_t level, std::uint32_t order,
                   std::uint32_t port) const {
        return levels[level][order].ports[port];
    }
};

/// Resolves all interface selection problems for a quadtree whose leaves
/// run the given per-client task sets (client_tasks[c] is client mu.c's
/// local task set; missing/extra leaf ports are treated as empty).
///
/// ctx.threads parallelizes the per-SE selections within each level;
/// ctx.cache memoizes per-port selections. The selected interfaces, the
/// failure report and the accumulated sched_test_stats work totals are
/// bit-identical for every threads value and with the cache on or off
/// (only the cache_hits/cache_misses split depends on scheduling).
[[nodiscard]] tree_selection
select_tree_interfaces(const std::vector<task_set>& client_tasks,
                       const analysis_context& ctx = {});

/// Result of a const, re-entrant incremental reselection (paper
/// Sec. 3.2's third property: tasks joining/leaving one client only
/// perturb that client's request path). Produced by
/// evaluate_client_update; committed by apply_client_update.
struct client_update {
    tree_selection selection;
    std::vector<task_set> client_tasks;
    std::uint32_t ses_changed = 0;
};

/// Incremental reselection after tasks join/leave one client, without
/// touching the committed state: interfaces are recomputed only along
/// that client's request path, reading `selection`/`client_tasks` through
/// const references. Safe for concurrent evaluators (e.g. the analysis
/// service's worker pool) sharing one committed state. Commit the result
/// with apply_client_update.
[[nodiscard]] client_update
evaluate_client_update(const tree_selection& selection,
                       const std::vector<task_set>& client_tasks,
                       std::uint32_t client, task_set new_tasks,
                       const analysis_context& ctx = {});

/// The explicit apply step: moves an evaluated update into the committed
/// state. Purely a state swap -- no reselection happens here, so commit
/// cost is O(1) in analysis work regardless of tree size.
void apply_client_update(client_update&& update, tree_selection& selection,
                         std::vector<task_set>& client_tasks);

/// Deprecated mutating form: evaluates and applies in one step on the
/// committed state. Not re-entrant (mutates in place); new code should
/// call evaluate_client_update + apply_client_update.
[[deprecated("use evaluate_client_update + apply_client_update")]]
std::uint32_t update_client_tasks(tree_selection& selection,
                                  std::vector<task_set>& client_tasks,
                                  std::uint32_t client,
                                  task_set new_tasks,
                                  const analysis_context& ctx = {});

/// FNV-1a signature of everything an incremental reselection for `client`
/// reads from the committed state: the tree shape, the client id, the
/// total client utilization (every selector's level-utilization context),
/// each level's total server bandwidth, and the (Pi, Theta) interfaces of
/// every port of every SE on the client's request path (sibling ports
/// included -- they feed the parent's server task set). Two committed
/// states with equal signatures resolve the same request to the same
/// selection, so the signature is a sound result-cache key; any committed
/// reconfiguration perturbs it.
[[nodiscard]] std::uint64_t
subtree_signature(const tree_selection& selection,
                  const std::vector<task_set>& client_tasks,
                  std::uint32_t client);

} // namespace bluescale::analysis
