#include "analysis/wcrt.hpp"

namespace bluescale::analysis {

std::uint64_t inverse_sbf(std::uint64_t demand,
                          const resource_interface& iface) {
    if (demand == 0) return 0;
    if (iface.budget == 0 || iface.period == 0) return k_no_supply;

    // sbf is non-decreasing and reaches `demand` within
    // ceil(demand/Theta)+1 periods plus the initial blackout, so binary
    // search over that range is exact and cheap.
    std::uint64_t lo = 0;
    std::uint64_t hi = (demand / iface.budget + 2) * iface.period +
                       2 * (iface.period - iface.budget);
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (sbf(mid, iface) >= demand) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return lo;
}

wcrt_breakdown wcrt_bound(const tree_selection& selection,
                          std::uint32_t client, std::uint64_t buffer_depth,
                          const wcrt_memory_model& mem) {
    wcrt_breakdown out;
    out.bounded = true;

    const quadtree_shape& shape = selection.shape;
    std::uint32_t order = shape.leaf_se_of_client(client);
    std::uint32_t port = shape.leaf_port_of_client(client);

    // Walk the request path from the leaf SE to the root. At each level
    // the transaction drains behind at most (buffer_depth - 1) queued
    // transactions, all of which may have earlier deadlines, so the
    // worst-case wait is the time for the port's supply to deliver
    // buffer_depth units.
    for (std::uint32_t level = shape.leaf_level;; --level) {
        const auto& iface = selection.levels[level][order].ports[port];
        if (!iface || iface->budget == 0) {
            out.bounded = false;
            out.per_level_units.push_back(0);
        } else {
            out.per_level_units.push_back(
                inverse_sbf(buffer_depth, *iface));
        }
        if (level == 0) break;
        port = quadtree_shape::parent_port(order);
        order = quadtree_shape::parent_order(order);
    }

    // Memory: a full controller queue of earlier transactions plus this
    // one, each occupying a start slot, plus the worst single access.
    out.memory_cycles = (mem.queue_depth + 1) * mem.initiation_interval +
                        mem.worst_access_cycles;
    // One cycle per request hop plus the response-path demux crossings.
    out.hop_cycles = 2ull * (shape.leaf_level + 1);
    return out;
}

} // namespace bluescale::analysis
