// Backlog-drain latency bounds for memory transactions traversing a
// configured BlueScale tree.
//
// The compositional guarantee gives every SE port a supply bound function;
// inverting it bounds how long a backlog of k transactions takes to drain
// through that port *absent further higher-priority arrivals*. Summing the
// per-level drain bounds along a client's request path -- each level's
// backlog bounded by the SE buffer depth -- plus the memory controller's
// worst case yields a structural latency estimate.
//
// NOTE: this is not a hard per-request WCRT under sustained EDF traffic
// (later-arriving earlier-deadline requests may pass a queued one). The
// hard guarantee the paper's analysis gives is job-level: a feasible
// interface selection makes every request meet its implicit deadline,
// which the `wcrt_validation` bench checks directly; the drain bound is
// reported there as a structural pessimism diagnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/periodic_resource.hpp"
#include "analysis/tree_analysis.hpp"

namespace bluescale::analysis {

/// Smallest t with sbf(t, iface) >= demand (the worst-case time to
/// receive `demand` time units of service). Returns k_no_supply when the
/// interface cannot supply at all (budget == 0).
inline constexpr std::uint64_t k_no_supply = ~0ull;
[[nodiscard]] std::uint64_t inverse_sbf(std::uint64_t demand,
                                        const resource_interface& iface);

/// Parameters of the downstream memory system for the end-to-end bound.
struct wcrt_memory_model {
    std::uint64_t queue_depth = 16;       ///< controller queue, transactions
    std::uint64_t initiation_interval = 4; ///< cycles per start slot
    std::uint64_t worst_access_cycles = 20; ///< bank conflict + write
};

/// Per-level breakdown of the bound, in time units (level 0 = the leaf SE
/// the client plugs into; last = the root SE).
struct wcrt_breakdown {
    std::vector<std::uint64_t> per_level_units;
    std::uint64_t memory_cycles = 0;
    std::uint64_t hop_cycles = 0; ///< request forwarding + response path
    bool bounded = false;         ///< false if any level lacks supply

    [[nodiscard]] std::uint64_t total_cycles(std::uint32_t unit_cycles) const {
        std::uint64_t units = 0;
        for (auto u : per_level_units) units += u;
        return units * unit_cycles + memory_cycles + hop_cycles;
    }
};

/// Bound for client `client`'s transactions under `selection`, assuming
/// at most `buffer_depth` transactions queue at each SE port (the
/// hardware buffer depth provides this bound via backpressure).
[[nodiscard]] wcrt_breakdown
wcrt_bound(const tree_selection& selection, std::uint32_t client,
           std::uint64_t buffer_depth, const wcrt_memory_model& mem = {});

} // namespace bluescale::analysis
