#include "core/bluescale_ic.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::core {

bluescale_ic::bluescale_ic(std::uint32_t n_clients, bluescale_config cfg,
                           std::string name)
    : interconnect(std::move(name), n_clients), cfg_(cfg),
      shape_(analysis::make_quadtree_shape(n_clients)) {
    const std::uint32_t depth = shape_.leaf_level;
    levels_.resize(depth + 1);
    for (std::uint32_t l = 0; l <= depth; ++l) {
        const std::uint32_t count = shape_.ses_at_level(l);
        levels_[l].reserve(count);
        for (std::uint32_t y = 0; y < count; ++y) {
            levels_[l].push_back(std::make_unique<scale_element>(
                "SE(" + std::to_string(l) + "," + std::to_string(y) + ")",
                cfg_.se));
            levels_[l].back()->set_tree_level(l);
        }
    }

    if (cfg_.responses == response_model::demux_network) {
        resp_q_.resize(depth + 1);
        for (std::uint32_t l = 0; l <= depth; ++l) {
            const std::uint32_t count = shape_.ses_at_level(l);
            resp_q_[l].reserve(count);
            for (std::uint32_t y = 0; y < count; ++y) {
                resp_q_[l].emplace_back(cfg_.response_buffer_depth);
            }
        }
    }

    // Every SE wake bubbles up to the fabric so the simulator re-arms it
    // (client pushes reach the SE buffers directly, bypassing tick()).
    // The flat view + SoA wake schedule keep the per-cycle walks on
    // sequential memory; SEs start armed (wake_at == 0).
    se_ticked_.assign(shape_.total_ses(), 0);
    se_flat_.reserve(shape_.total_ses());
    se_wake_.assign(shape_.total_ses(), 0);
    for (auto& level : levels_) {
        for (auto& se : level) {
            se->set_wake_hook(sim::wake_of(*this));
            se->bind_wake_cell(&se_wake_[se_flat_.size()]);
            se_flat_.push_back(se.get());
        }
    }

    // Wire provider ports: SE(l, y) feeds port (y % 4) of SE(l-1, y/4);
    // the root feeds the memory controller. Each push first crosses the
    // SE's provider link, which an injected link fault may eat.
    link_faults_.resize(shape_.total_ses());
    levels_[0][0]->bind_sink([this] { return memory_can_accept(); },
                             [this](mem_request r) {
                                 if (link_faults_[0].active(now_)) {
                                     note_dropped();
                                     return;
                                 }
                                 forward_to_memory(now_, std::move(r));
                             });
    for (std::uint32_t l = 1; l <= depth; ++l) {
        for (std::uint32_t y = 0; y < levels_[l].size(); ++y) {
            scale_element* parent =
                levels_[l - 1][analysis::quadtree_shape::parent_order(y)]
                    .get();
            const std::uint32_t port =
                analysis::quadtree_shape::parent_port(y);
            const std::uint32_t link_idx = se_linear_index(l, y);
            levels_[l][y]->bind_sink(
                [parent, port] { return parent->port_can_accept(port); },
                [this, parent, port, link_idx](mem_request r) {
                    if (link_faults_[link_idx].active(now_)) {
                        note_dropped();
                        return;
                    }
                    parent->port_push(port, std::move(r));
                });
        }
    }
}

void bluescale_ic::inject_campaign(const sim::fault_campaign& campaign) {
    const std::uint32_t n = shape_.total_ses();
    std::vector<std::vector<sim::fault_event>> stall(n);
    std::vector<std::vector<sim::fault_event>> drop(n);
    for (const auto& e : campaign.events()) {
        if (e.kind == sim::fault_kind::se_stall) {
            stall[e.target % n].push_back(e);
        } else if (e.kind == sim::fault_kind::link_drop) {
            drop[e.target % n].push_back(e);
        }
    }
    std::uint32_t idx = 0;
    for (auto& level : levels_) {
        for (auto& se : level) {
            se->set_stall_faults(sim::fault_window(std::move(stall[idx])));
            link_faults_[idx] = sim::fault_window(std::move(drop[idx]));
            ++idx;
        }
    }
}

void bluescale_ic::bind_observability(obs::registry& reg,
                                      obs::trace_sink& sink) {
    for (std::uint32_t l = 0; l <= shape_.leaf_level; ++l) {
        for (std::uint32_t y = 0; y < shape_.ses_at_level(l); ++y) {
            const std::string prefix =
                "se." + std::to_string(l) + "." + std::to_string(y);
            levels_[l][y]->bind_observability(
                reg, prefix, sink.register_component(prefix));
        }
    }
}

void bluescale_ic::configure(const analysis::tree_selection& selection) {
    assert(selection.shape.leaf_level == shape_.leaf_level);
    for (std::uint32_t l = 0; l < selection.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < selection.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < analysis::k_se_fanin; ++p) {
                const auto& iface = selection.levels[l][y].ports[p];
                if (iface && iface->budget > 0) {
                    levels_[l][y]->configure_port(
                        p, static_cast<std::uint32_t>(iface->period),
                        static_cast<std::uint32_t>(iface->budget));
                } else {
                    levels_[l][y]->configure_port(p, 0, 0);
                }
            }
        }
    }
}

bool bluescale_ic::client_can_accept(client_id_t c) const {
    return leaf_of(c).port_can_accept(shape_.leaf_port_of_client(c));
}

void bluescale_ic::client_push(client_id_t c, mem_request r) {
    note_injected();
    leaf_of(c).port_push(shape_.leaf_port_of_client(c), std::move(r));
}

std::uint32_t bluescale_ic::depth_of(client_id_t) const {
    return shape_.leaf_level + 1;
}

void bluescale_ic::tick_response_network(cycle_t now) {
    // Pull finished transactions into the root SE's response port.
    while (resp_q_[0][0].can_push() && memory_has_response()) {
        resp_q_[0][0].push(pop_memory_response());
        ++resp_in_network_;
    }

    // Each SE forwards one response per cycle down its demux.
    const std::uint32_t depth = shape_.leaf_level;
    for (std::uint32_t l = 0; l <= depth; ++l) {
        for (std::uint32_t y = 0; y < resp_q_[l].size(); ++y) {
            auto& q = resp_q_[l][y];
            if (q.empty()) continue;
            const client_id_t c = q.front().client;
            if (l == depth) {
                // Leaf demux: hand the response to the client port.
                mem_request r = q.pop();
                --resp_in_network_;
                r.complete_cycle = now;
                deliver_response_now(std::move(r));
            } else {
                const std::uint32_t port = response_port(l, c);
                const std::uint32_t child =
                    analysis::quadtree_shape::child_order(y, port);
                if (resp_q_[l + 1][child].can_push()) {
                    resp_q_[l + 1][child].push(q.pop());
                }
            }
        }
    }
}

void bluescale_ic::tick(cycle_t now) {
    now_ = now;
    // Selective SE walk: the simulator's wake/horizon protocol, one level
    // down. An element whose cached wakeup is still in the future would
    // tick as a pure no-op (its own next_event() said so, and anything
    // that changed since then fired a wake), so skipping it is exact.
    // Lockstep ticks everything and skips the horizon bookkeeping.
    if (!selective_) {
        for (scale_element* se : se_flat_) se->tick(now);
    } else {
        for (std::size_t i = 0; i < se_flat_.size(); ++i) {
            if (se_wake_[i] <= now) {
                scale_element* se = se_flat_[i];
                se->tick(now);
                // detlint:allow(cycle-step): wake-protocol floor clamp
                se_wake_[i] = std::max(now + 1, se->next_event(now));
                se_ticked_[i] = 1;
            } else {
                se_ticked_[i] = 0;
            }
        }
    }
    if (cfg_.responses == response_model::demux_network) {
        // A provable no-op with nothing to pull and nothing en route.
        if (memory_has_response() || resp_in_network_ > 0) {
            tick_response_network(now);
        }
    } else {
        drain_memory_responses(now);
        deliver_due_responses(now);
    }
}

void bluescale_ic::commit() {
    if (!selective_) {
        for (scale_element* se : se_flat_) se->commit();
    } else {
        for (std::size_t i = 0; i < se_flat_.size(); ++i) {
            // An element woken after the walk (e.g. a child staged a push
            // into its buffers this cycle) must still latch on this edge.
            if (se_ticked_[i] || se_wake_[i] <= now_) {
                se_flat_[i]->commit();
            }
        }
    }
    for (auto& level : resp_q_) {
        for (auto& q : level) q.commit();
    }
}

cycle_t bluescale_ic::next_event(cycle_t now) const {
    // Request path: the earliest cached SE wakeup (the same horizons the
    // selective walk in tick() trusts). Requests parked at the memory
    // controller hold no SE awake; their responses re-arm the fabric via
    // the attach_memory() wake.
    cycle_t due = k_cycle_never;
    for (const cycle_t at : se_wake_) due = std::min(due, at);
    // Response path: the demux network forwards one response per SE per
    // cycle while anything is en route; the delay-line model exposes its
    // horizon directly.
    if (cfg_.responses == response_model::demux_network) {
        if (memory_has_response() || resp_in_network_ > 0) {
            due = std::min(due, now + 1);
        }
    } else {
        due = std::min(due, response_horizon(now));
    }
    return due;
}

void bluescale_ic::reset() {
    interconnect::reset();
    now_ = 0;
    resp_in_network_ = 0;
    se_ticked_.assign(shape_.total_ses(), 0);
    for (auto& w : link_faults_) w.reset();
    for (auto& level : levels_) {
        for (auto& se : level) se->reset();
    }
    for (auto& level : resp_q_) {
        for (auto& q : level) q.clear();
    }
}

} // namespace bluescale::core
