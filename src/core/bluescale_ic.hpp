// BlueScale memory interconnect (paper Sec. 3, Fig. 2(a)/(d)): a quadtree
// of isomorphic Scale Elements between the clients (leaves) and the shared
// memory sub-system (root). Each SE needs only local information, yet the
// per-SE compositional schedulers together guarantee system-wide real-time
// performance once the interface selection (Sec. 5) has programmed every
// server task.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/quadtree.hpp"
#include "analysis/tree_analysis.hpp"
#include "core/scale_element.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "interconnect/interconnect.hpp"

namespace bluescale::core {

/// How the response path (memory -> client) is simulated.
enum class response_model : std::uint8_t {
    /// Contention-free fixed latency of depth hops (upper-bound-accurate
    /// for response rates below one per cycle per subtree).
    ideal_latency,
    /// Cycle-accurate demux network: each SE's response port forwards one
    /// response per cycle into per-child buffers with backpressure
    /// (paper Fig. 2(b)'s DeMux).
    demux_network,
};

struct bluescale_config {
    se_params se = {};
    response_model responses = response_model::demux_network;
    /// Per-SE response buffer depth (demux_network model).
    std::size_t response_buffer_depth = 4;
};

class bluescale_ic : public interconnect {
public:
    bluescale_ic(std::uint32_t n_clients, bluescale_config cfg = {},
                 std::string name = "bluescale");

    /// Programs every SE's server tasks from a resolved interface
    /// selection (analysis::select_tree_interfaces). Ports whose selection
    /// is missing or zero-bandwidth are disabled.
    void configure(const analysis::tree_selection& selection);

    [[nodiscard]] bool client_can_accept(client_id_t c) const override;
    void client_push(client_id_t c, mem_request r) override;
    [[nodiscard]] std::uint32_t depth_of(client_id_t c) const override;
    bool bind_client_drain(client_id_t c, sim::wake_hook hook) override {
        leaf_of(c).set_port_drain_hook(shape_.leaf_port_of_client(c), hook);
        return true;
    }

    void tick(cycle_t now) override;
    void commit() override;
    void reset() override;

    /// Event-engine horizon: per-cycle while transactions are in flight
    /// (request arbitration, the response network, and the root link all
    /// move every cycle); otherwise the earliest SE wakeup -- a quiescent
    /// tree sleeps until a client push or a scheduled SE stall window.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    /// The SE walk inside tick() skips elements whose cached wakeup lies
    /// in the future, using the same wake/horizon protocol as the
    /// simulator -- exact by the same argument, and active in both
    /// engines. The testbench switches it off under BLUESCALE_LOCKSTEP so
    /// the fallback engine is a true tick-everything reference.
    void set_selective_ticking(bool on) { selective_ = on; }

    /// Re-homes every SE's counters into `reg` ("se.<level>.<order>/...")
    /// and registers one trace stream per element; call before the trial
    /// starts.
    void bind_observability(obs::registry& reg, obs::trace_sink& sink);

    /// Distributes a campaign over the fabric: se_stall events go to the
    /// targeted SE's stall window, link_drop events to the targeted SE's
    /// provider link (index 0 = root SE -> memory). Targets use the
    /// level-major linear numbering of se_linear_index(); out-of-range
    /// targets wrap modulo total_ses().
    void inject_campaign(const sim::fault_campaign& campaign) override;

    /// Level-major linear SE numbering shared by fault targeting and the
    /// health monitor: root is 0, then level 1 left-to-right, and so on.
    [[nodiscard]] std::uint32_t se_linear_index(std::uint32_t level,
                                               std::uint32_t order) const {
        std::uint32_t base = 0;
        for (std::uint32_t l = 0; l < level; ++l) {
            base += shape_.ses_at_level(l);
        }
        return base + order;
    }

    [[nodiscard]] const analysis::quadtree_shape& shape() const {
        return shape_;
    }
    [[nodiscard]] std::uint32_t total_ses() const {
        return shape_.total_ses();
    }
    [[nodiscard]] const scale_element& se_at(std::uint32_t level,
                                             std::uint32_t order) const {
        return *levels_[level][order];
    }
    [[nodiscard]] scale_element& se_at(std::uint32_t level,
                                       std::uint32_t order) {
        return *levels_[level][order];
    }

private:
    [[nodiscard]] scale_element& leaf_of(client_id_t c) {
        return *levels_.back()[shape_.leaf_se_of_client(c)];
    }
    [[nodiscard]] const scale_element& leaf_of(client_id_t c) const {
        return *levels_.back()[shape_.leaf_se_of_client(c)];
    }

    /// Child port of SE(level, ·) on client c's path (the demux select).
    [[nodiscard]] std::uint32_t
    response_port(std::uint32_t level, client_id_t c) const {
        std::uint32_t shift = shape_.leaf_level - level;
        std::uint32_t divisor = 1;
        while (shift-- > 0) divisor *= analysis::k_se_fanin;
        return (c / divisor) % analysis::k_se_fanin;
    }

    /// Demux-network step: move responses one SE hop toward the clients.
    void tick_response_network(cycle_t now);

    bluescale_config cfg_;
    analysis::quadtree_shape shape_;
    /// Clock latched at tick() entry so the SE sink lambdas (which have
    /// no time argument) can evaluate link-fault windows.
    cycle_t now_ = 0;
    bool selective_ = true;
    /// Level-major flags: did SE i tick this cycle? commit() re-checks
    /// the wakeup so an element woken after the walk still latches its
    /// staged pushes on the same edge.
    std::vector<std::uint8_t> se_ticked_;
    /// Responses inside resp_q_ (visible + staged): incremented when the
    /// root pulls a completion from the memory, decremented at leaf
    /// delivery. Gates the response-network walk in both engines (a
    /// provable no-op at zero).
    std::uint64_t resp_in_network_ = 0;
    /// Per-SE provider-link drop windows, indexed by se_linear_index.
    std::vector<sim::fault_window> link_faults_;
    /// levels_[l][y] owns SE(l, y); level 0 is the root.
    std::vector<std::vector<std::unique_ptr<scale_element>>> levels_;
    /// Level-major flat view of every SE, paired with the SoA wake
    /// schedule se_wake_ (each SE's wake slot is relocated into it via
    /// component::bind_wake_cell), so the selective walk and the horizon
    /// scan in next_event() read sequential memory.
    std::vector<scale_element*> se_flat_;
    std::vector<cycle_t> se_wake_;
    /// resp_q_[l][y]: responses waiting at SE(l, y)'s provider-side
    /// response port (demux_network model only).
    std::vector<std::vector<latched_queue<mem_request>>> resp_q_;
};

} // namespace bluescale::core
