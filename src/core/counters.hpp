// Countdown counters and server tasks (paper Sec. 4.2, Fig. 3(b)).
//
// A server task realizes one Virtual Element with a Period-counter
// (P-counter) holding Pi and a Budget-counter (B-counter) holding Theta.
// The P-counter free-runs; when it wraps, both counters reload -- the
// server's budget is replenished at every period boundary. The scheduling
// circuits treat the server as eligible while the B-counter is non-zero
// (the paper's XOR-against-0 check).
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace bluescale::core {

/// One countdown counter with the paper's four ports: program (set reset
/// value), resetn (reload), clock (decrement) and value (read).
class countdown_counter {
public:
    /// Program port: set the reload value (takes effect at next reload).
    void program(std::uint32_t reset_value) { reset_value_ = reset_value; }

    /// Resetn port (active): reload current from the programmed value.
    void reload() { current_ = reset_value_; }

    /// Clock port: decrement toward zero (saturating).
    void decrement() {
        if (current_ > 0) --current_;
    }

    /// Clock port applied k times at once (saturating): the closed form
    /// the event engine uses to catch a slept counter up without looping.
    void advance(std::uint64_t k) {
        current_ = k >= current_ ? 0
                                 : current_ - static_cast<std::uint32_t>(k);
    }

    /// Value port.
    [[nodiscard]] std::uint32_t value() const { return current_; }
    [[nodiscard]] std::uint32_t reset_value() const { return reset_value_; }

private:
    std::uint32_t reset_value_ = 0;
    std::uint32_t current_ = 0;
};

/// A server task tau_X = (Pi_X, Theta_X): the upper-level schedulable
/// entity of one SE local client port.
class server_task {
public:
    /// Programs (Pi, Theta) in time units and restarts the period.
    void configure(std::uint32_t period, std::uint32_t budget) {
        p_.program(period);
        b_.program(budget);
        p_.reload();
        b_.reload();
    }

    /// Advances one time unit. At a period boundary both counters reload
    /// (budget replenishment). Returns true when a new period started.
    bool tick_unit() {
        if (p_.reset_value() == 0) return false; // unconfigured / disabled
        p_.decrement();
        if (p_.value() == 0) {
            p_.reload();
            b_.reload();
            return true;
        }
        return false;
    }

    /// Closed form for `k` consecutive tick_unit() calls with no
    /// consume() in between -- how the event engine catches a server up
    /// over slept time units. Exactly equivalent to the loop: the
    /// P-counter wraps modulo the period and the budget reloads in full
    /// at the last boundary crossed (intermediate reloads are
    /// unobservable without grants).
    void advance_units(std::uint64_t k) {
        if (p_.reset_value() == 0 || k == 0) return;
        const std::uint64_t p0 = p_.value();
        if (k < p0) {
            p_.advance(k);
            return;
        }
        const std::uint64_t rest = (k - p0) % p_.reset_value();
        p_.reload();
        b_.reload();
        p_.advance(rest);
    }

    /// Eligibility check of the scheduling circuits: budget remaining?
    [[nodiscard]] bool has_budget() const { return b_.value() > 0; }

    /// Consumes one time unit of budget (one forwarded transaction).
    void consume() { b_.decrement(); }

    /// Time units until the current period ends == the server job's
    /// relative deadline, for GEDF among servers (Algorithm 1).
    [[nodiscard]] std::uint32_t units_to_deadline() const {
        return p_.value();
    }

    [[nodiscard]] std::uint32_t period() const { return p_.reset_value(); }
    [[nodiscard]] std::uint32_t budget() const { return b_.reset_value(); }
    [[nodiscard]] std::uint32_t budget_left() const { return b_.value(); }
    [[nodiscard]] bool enabled() const {
        return p_.reset_value() > 0 && b_.reset_value() > 0;
    }

private:
    countdown_counter p_;
    countdown_counter b_;
};

} // namespace bluescale::core
