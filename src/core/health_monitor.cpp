#include "core/health_monitor.hpp"

#include "core/bluescale_ic.hpp"

namespace bluescale::core {

health_monitor::health_monitor(bluescale_ic& fabric, health_config cfg)
    : component("health_monitor"), fabric_(fabric), cfg_(cfg),
      next_check_(cfg.check_period), state_(fabric.total_ses()),
      own_(std::make_unique<obs::registry>()) {
    bind_observability(*own_, obs::tracer{});
}

void health_monitor::bind_observability(obs::registry& reg,
                                        obs::tracer tracer) {
    degrade_events_ = reg.make_counter("health/degrade_events");
    recovery_events_ = reg.make_counter("health/recovery_events");
    time_to_recover_ = reg.make_sample("health/time_to_recover_cycles");
    trace_ = tracer;
}

void health_monitor::tick(cycle_t now) {
    if (now < next_check_) return;
    next_check_ = now + cfg_.check_period;
    check(now);
}

void health_monitor::check(cycle_t now) {
    const auto& shape = fabric_.shape();
    for (std::uint32_t level = 0; level <= shape.leaf_level; ++level) {
        for (std::uint32_t order = 0; order < shape.ses_at_level(level);
             ++order) {
            scale_element& se = fabric_.se_at(level, order);
            element_state& st =
                state_[fabric_.se_linear_index(level, order)];
            const std::uint64_t stalls = se.fault_stall_cycles();
            const double ratio =
                static_cast<double>(stalls - st.last_stall_cycles) /
                static_cast<double>(cfg_.check_period);
            st.last_stall_cycles = stalls;

            if (!se.degraded()) {
                if (ratio >= cfg_.stall_enter) {
                    se.set_degraded(true);
                    st.degraded_since = now;
                    st.healthy_windows = 0;
                    degrade_events_.inc();
                }
                continue;
            }
            // Degraded: count consecutive quiet windows toward recovery.
            if (ratio <= cfg_.stall_exit) {
                if (++st.healthy_windows >= cfg_.recovery_windows) {
                    se.set_degraded(false);
                    st.healthy_windows = 0;
                    recovery_events_.inc();
                    time_to_recover_.add(
                        static_cast<double>(now - st.degraded_since));
                }
            } else {
                st.healthy_windows = 0;
            }
        }
    }
}

health_report health_monitor::report() const {
    health_report out;
    out.degrade_events = degrade_events_.value();
    out.recovery_events = recovery_events_.value();
    out.time_to_recover = time_to_recover_.values();
    const auto& shape = fabric_.shape();
    for (std::uint32_t level = 0; level <= shape.leaf_level; ++level) {
        for (std::uint32_t order = 0; order < shape.ses_at_level(level);
             ++order) {
            out.degraded_se_cycles +=
                fabric_.se_at(level, order).degraded_cycles();
        }
    }
    return out;
}

void health_monitor::reset() {
    next_check_ = cfg_.check_period;
    wake(); // drop any cached horizon from the previous trial
    for (auto& st : state_) st = element_state{};
    degrade_events_.reset();
    recovery_events_.reset();
    time_to_recover_.reset();
}

} // namespace bluescale::core
