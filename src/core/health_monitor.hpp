// Health monitor (fault & recovery subsystem): a lightweight supervisor
// that samples every Scale Element's stall counter on a fixed cadence and
// flips unhealthy elements into degraded mode (work-conserving nested EDF,
// see scale_element::set_degraded). Hysteresis -- a higher enter threshold
// than exit threshold plus a required run of consecutive healthy windows --
// keeps a marginal element from oscillating between modes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "stats/summary.hpp"

namespace bluescale::core {

class bluescale_ic;

struct health_config {
    /// Cycles between health checks (one stall-ratio sample per window).
    cycle_t check_period = 1024;
    /// Stall-cycle ratio (stalled cycles / window) at or above which a
    /// healthy element is degraded.
    double stall_enter = 0.05;
    /// Ratio at or below which a degraded element's window counts as
    /// healthy. Must be below stall_enter for hysteresis.
    double stall_exit = 0.01;
    /// Consecutive healthy windows required before a degraded element is
    /// restored to budgeted compositional mode.
    std::uint32_t recovery_windows = 3;
};

/// Aggregate outcome of a trial's health supervision (values read out of
/// obs handles; a result type, not mutable storage).
struct health_report {
    std::uint64_t degrade_events = 0;  ///< healthy -> degraded transitions
    std::uint64_t recovery_events = 0; ///< degraded -> healthy transitions
    /// Total SE-cycles spent degraded (summed over elements).
    std::uint64_t degraded_se_cycles = 0;
    /// Degrade -> recovery spans, in cycles (recovered episodes only).
    stats::sample_set time_to_recover;
};

class health_monitor : public component {
public:
    health_monitor(bluescale_ic& fabric, health_config cfg = {});

    void tick(cycle_t now) override;

    /// Event-engine horizon: a pure cadence -- nothing happens between
    /// checks, so the next one is the only wakeup needed.
    [[nodiscard]] cycle_t next_event(cycle_t) const override {
        return next_check_;
    }

    /// Re-homes the supervision counters into `reg` under "health/..."
    /// and attaches the trace stream; call before the trial starts.
    void bind_observability(obs::registry& reg, obs::tracer tracer);

    /// Clears per-element tracking and the report (between trials).
    void reset();

    [[nodiscard]] const health_config& config() const { return cfg_; }
    /// Report with degraded_se_cycles refreshed from the fabric.
    [[nodiscard]] health_report report() const;
    [[nodiscard]] std::uint64_t degrade_events() const {
        return degrade_events_.value();
    }
    [[nodiscard]] std::uint64_t recovery_events() const {
        return recovery_events_.value();
    }

private:
    struct element_state {
        std::uint64_t last_stall_cycles = 0;
        std::uint32_t healthy_windows = 0;
        cycle_t degraded_since = 0;
    };

    void check(cycle_t now);

    bluescale_ic& fabric_;
    health_config cfg_;
    cycle_t next_check_;
    std::vector<element_state> state_; ///< indexed by se_linear_index
    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    obs::counter degrade_events_;
    obs::counter recovery_events_;
    obs::sample time_to_recover_;
    obs::tracer trace_;
};

} // namespace bluescale::core
