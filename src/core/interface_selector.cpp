#include "core/interface_selector.hpp"

namespace bluescale::core {

bool interface_selector::load_task(std::uint8_t client_port,
                                   std::uint8_t task_id,
                                   std::uint32_t period,
                                   std::uint32_t wcet) {
    if (table_.size() >= table_depth_) return false;
    table_.push_back({static_cast<std::uint8_t>(client_port & 0x3), task_id,
                      period, wcet});
    return true;
}

selector_result
interface_selector::select(double level_utilization,
                           const analysis::analysis_context& ctx) const {
    selector_result result;

    analysis::analysis_context counted = ctx;
    counted.sched.stats = &result.work;

    for (std::uint8_t port = 0; port < 4; ++port) {
        analysis::task_set tasks;
        for (const auto& entry : table_) {
            if (entry.client == port) {
                tasks.push_back({entry.period, entry.wcet});
            }
        }
        result.interfaces[port] =
            analysis::select_interface(tasks, level_utilization, counted);
    }

    result.estimated_cycles = result.work.tests_run * k_cycles_per_test +
                              result.work.points_checked * k_cycles_per_point;
    return result;
}

} // namespace bluescale::core
