// Interface selector (paper Sec. 4.3, Fig. 4): the per-SE unit on the
// parameter path. A task parameter table (74-bit entries: 2-bit client ID,
// 8-bit task ID, 32-bit period, 32-bit execution time) holds the local
// clients' task parameters; computation circuits (ALU + 2 KB scratchpad +
// FSM) run the interface selection algorithm of Sec. 5 and deliver the
// selected (Pi, Theta) to the next SE.
//
// This model computes the same selection the hardware would (via
// analysis::select_interface) and estimates the FSM's runtime in cycles
// from the work the algorithm performed, so reconfiguration latency can be
// studied (ablation A3 in DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/interface_selection.hpp"
#include "analysis/rt_task.hpp"

namespace bluescale::core {

/// One 74-bit row of the task parameter table.
struct task_table_entry {
    std::uint8_t client = 0; ///< local client port, 2 bits
    std::uint8_t task = 0;   ///< task ID, 8 bits
    std::uint32_t period = 0;
    std::uint32_t wcet = 0;
};

struct selector_result {
    /// Selected interface per local client port; nullopt = infeasible.
    std::array<std::optional<analysis::resource_interface>, 4> interfaces;
    /// Estimated FSM cycles to run the selection (see header comment).
    std::uint64_t estimated_cycles = 0;
    /// Raw algorithm work counters behind the estimate.
    analysis::sched_test_stats work;
    [[nodiscard]] bool feasible() const {
        for (const auto& i : interfaces) {
            if (!i) return false;
        }
        return true;
    }
};

class interface_selector {
public:
    /// `table_depth` 16 suffices for SEs whose local clients are other SEs
    /// (four server tasks each); leaf SEs facing many-task clients need
    /// deeper tables (customizable depth, per the paper).
    explicit interface_selector(std::size_t table_depth = 16)
        : table_depth_(table_depth) {}

    /// Loads one task's parameters. Returns false (and ignores the entry)
    /// when the table is full -- the hardware analogue of exceeding the
    /// configured depth.
    bool load_task(std::uint8_t client_port, std::uint8_t task_id,
                   std::uint32_t period, std::uint32_t wcet);

    void clear_table() { table_.clear(); }
    [[nodiscard]] std::size_t table_size() const { return table_.size(); }
    [[nodiscard]] std::size_t table_depth() const { return table_depth_; }
    [[nodiscard]] const std::vector<task_table_entry>& table() const {
        return table_;
    }

    /// Runs the Sec. 5 selection for all four local clients given the
    /// currently loaded table. `level_utilization` is U_{l+2}: the total
    /// utilization of all tasks at this level across the sibling SEs.
    [[nodiscard]] selector_result
    select(double level_utilization,
           const analysis::analysis_context& ctx = {}) const;

    /// FSM cycles charged per dbf/sbf comparison: table fetch, two ALU
    /// evaluations, one compare-and-branch.
    static constexpr std::uint64_t k_cycles_per_point = 4;
    /// FSM cycles charged per schedulability test setup (beta computation,
    /// counters initialization).
    static constexpr std::uint64_t k_cycles_per_test = 8;

private:
    std::size_t table_depth_;
    std::vector<task_table_entry> table_;
};

} // namespace bluescale::core
