// Local scheduler (paper Sec. 4.2, Fig. 3(a)): the SE's upper-level
// priority queue. Four server tasks -- one per local client port -- are
// realized with P-/B-counter pairs; pure combinational scheduling circuits
// pick the next port to serve in a single cycle.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/counters.hpp"
#include "core/random_access_buffer.hpp"
#include "sim/types.hpp"

namespace bluescale::core {

/// Number of local client ports per Scale Element.
inline constexpr std::uint32_t k_se_ports = 4;

/// Upper-level queue policy. The paper schedules server tasks GEDF
/// (Algorithm 1); fixed priority is provided as an ablation of the design
/// choice (port index == priority, lower wins).
enum class server_policy : std::uint8_t { gedf, fixed_priority };

class local_scheduler {
public:
    explicit local_scheduler(server_policy policy = server_policy::gedf)
        : policy_(policy) {}

    /// Programs server tau_p with (Pi, Theta) in time units. A port with
    /// budget 0 is disabled (unused / empty client).
    void configure_port(std::uint32_t port, std::uint32_t period_units,
                        std::uint32_t budget_units) {
        servers_[port].configure(period_units, budget_units);
        configured_ = true;
    }

    /// True once any port has been given an interface: the scheduler then
    /// runs in budgeted (compositional) mode.
    [[nodiscard]] bool configured() const { return configured_; }

    /// Advances every server by one time unit (period/budget refresh).
    void tick_unit() {
        for (auto& s : servers_) s.tick_unit();
    }

    /// Advances every server by `k` time units in closed form (the event
    /// engine's catch-up over slept unit boundaries; no grants happened
    /// in between, so this is exactly k tick_unit() calls).
    void advance_units(std::uint64_t k) {
        for (auto& s : servers_) s.advance_units(k);
    }

    /// Algorithm 1's outer pick: among server tasks that are ready (have
    /// budget and a pending request in their buffer), the one with the
    /// earliest deadline. Returns the port index, or nullopt when no
    /// budgeted server is ready.
    [[nodiscard]] std::optional<std::uint32_t>
    pick_budgeted(const std::array<random_access_buffer, k_se_ports>& bufs)
        const {
        std::optional<std::uint32_t> best;
        std::uint32_t best_deadline = 0;
        for (std::uint32_t p = 0; p < k_se_ports; ++p) {
            const server_task& s = servers_[p];
            if (!s.enabled() || !s.has_budget() || bufs[p].empty()) continue;
            if (!best) {
                best = p;
                best_deadline = s.units_to_deadline();
                if (policy_ == server_policy::fixed_priority) break;
            } else if (s.units_to_deadline() < best_deadline) {
                best = p;
                best_deadline = s.units_to_deadline();
            }
        }
        return best;
    }

    [[nodiscard]] const server_task& server(std::uint32_t port) const {
        return servers_[port];
    }
    [[nodiscard]] server_task& server(std::uint32_t port) {
        return servers_[port];
    }

    void reset_counters() {
        for (auto& s : servers_) s.configure(s.period(), s.budget());
    }

private:
    server_policy policy_;
    std::array<server_task, k_se_ports> servers_{};
    bool configured_ = false;
};

} // namespace bluescale::core
