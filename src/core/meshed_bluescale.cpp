#include "core/meshed_bluescale.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::core {

meshed_bluescale_ic::meshed_bluescale_ic(std::uint32_t n_clients,
                                         meshed_config cfg)
    : interconnect("meshed_bluescale", n_clients), cfg_(cfg) {
    assert(cfg_.channels >= 1);
    for (std::uint32_t k = 0; k < cfg_.channels; ++k) {
        trees_.push_back(std::make_unique<bluescale_ic>(
            n_clients, cfg_.tree,
            "bluescale_ch" + std::to_string(k)));
        controllers_.push_back(
            std::make_unique<memory_controller>(cfg_.memctrl));
        trees_[k]->attach_memory(*controllers_[k]);
        // Channel trees hand completed responses straight up; this
        // wrapper owns the client-facing bookkeeping.
        trees_[k]->set_response_handler([this](mem_request&& r) {
            deliver_response_now(std::move(r));
        });
        // Channel-tree wakes (SE stalls, pushes) bubble up to the mesh.
        trees_[k]->set_wake_hook(sim::wake_of(*this));
    }
}

cycle_t meshed_bluescale_ic::next_event(cycle_t now) const {
    if (in_flight() > 0) return now + 1;
    cycle_t due = k_cycle_never;
    for (const auto& tree : trees_) {
        due = std::min(due, tree->next_event(now));
    }
    return due;
}

void meshed_bluescale_ic::configure(
    const analysis::tree_selection& selection) {
    for (auto& tree : trees_) tree->configure(selection);
}

bool meshed_bluescale_ic::client_can_accept(client_id_t c) const {
    // Conservative: the client must be able to inject regardless of which
    // channel the next address maps to (prevents head-of-line surprises
    // at the client, which does not know the steering).
    for (const auto& tree : trees_) {
        if (!tree->client_can_accept(c)) return false;
    }
    return true;
}

void meshed_bluescale_ic::client_push(client_id_t c, mem_request r) {
    note_injected();
    trees_[channel_of(r.addr)]->client_push(c, std::move(r));
}

std::uint32_t meshed_bluescale_ic::depth_of(client_id_t c) const {
    return trees_.front()->depth_of(c);
}

void meshed_bluescale_ic::tick(cycle_t now) {
    for (std::uint32_t k = 0; k < cfg_.channels; ++k) {
        trees_[k]->tick(now);
        controllers_[k]->tick(now);
    }
}

void meshed_bluescale_ic::commit() {
    for (std::uint32_t k = 0; k < cfg_.channels; ++k) {
        trees_[k]->commit();
        controllers_[k]->commit();
    }
}

void meshed_bluescale_ic::reset() {
    interconnect::reset();
    for (std::uint32_t k = 0; k < cfg_.channels; ++k) {
        trees_[k]->reset();
        controllers_[k]->reset();
    }
}

std::uint64_t meshed_bluescale_ic::total_serviced() const {
    std::uint64_t n = 0;
    for (const auto& mc : controllers_) n += mc->serviced();
    return n;
}

} // namespace bluescale::core
