// Meshed BlueScale: a multi-memory extension in the spirit of Meshed
// BlueTree (Wang et al. [20], the paper's Sec. 2 lineage). K independent
// memory channels each sit behind their own BlueScale quadtree; a client
// port steers each transaction to the channel owning its address
// (interleaved mapping), multiplying aggregate memory bandwidth while
// every channel keeps BlueScale's per-channel compositional guarantees.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "mem/memory_controller.hpp"

namespace bluescale::core {

struct meshed_config {
    std::uint32_t channels = 2;
    /// Consecutive chunks of this many bytes alternate across channels.
    std::uint64_t interleave_bytes = 4096;
    bluescale_config tree = {};
    memctrl_config memctrl = {};
};

/// Owns `channels` BlueScale trees and their memory controllers; presents
/// the standard interconnect interface (the memory side is internal, so
/// attach_memory must not be called).
class meshed_bluescale_ic : public interconnect {
public:
    meshed_bluescale_ic(std::uint32_t n_clients, meshed_config cfg = {});

    /// Programs every channel tree with the same per-channel selection
    /// (each channel serves 1/K of the address space, so a selection
    /// computed from per-channel demand applies to all by symmetry).
    void configure(const analysis::tree_selection& selection);

    [[nodiscard]] std::uint32_t channel_of(std::uint64_t addr) const {
        return static_cast<std::uint32_t>(
            (addr / cfg_.interleave_bytes) % cfg_.channels);
    }

    [[nodiscard]] bool client_can_accept(client_id_t c) const override;
    void client_push(client_id_t c, mem_request r) override;
    [[nodiscard]] std::uint32_t depth_of(client_id_t c) const override;

    void tick(cycle_t now) override;
    void commit() override;
    void reset() override;

    /// Event-engine horizon: per-cycle while any transaction is in
    /// flight anywhere in the mesh; otherwise the earliest wakeup among
    /// the channel trees (channel controllers are idle whenever the mesh
    /// is -- they carry no fault schedules of their own).
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    /// Forwards to every channel tree (see
    /// bluescale_ic::set_selective_ticking).
    void set_selective_ticking(bool on) {
        for (auto& tree : trees_) tree->set_selective_ticking(on);
    }

    [[nodiscard]] std::uint32_t channels() const { return cfg_.channels; }
    [[nodiscard]] const memory_controller& controller(std::uint32_t k) const {
        return *controllers_[k];
    }
    [[nodiscard]] const bluescale_ic& tree(std::uint32_t k) const {
        return *trees_[k];
    }
    /// Total transactions serviced across all channels.
    [[nodiscard]] std::uint64_t total_serviced() const;

private:
    meshed_config cfg_;
    std::vector<std::unique_ptr<bluescale_ic>> trees_;
    std::vector<std::unique_ptr<memory_controller>> controllers_;
};

} // namespace bluescale::core
