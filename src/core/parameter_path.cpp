#include "core/parameter_path.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::core {

namespace {

using analysis::k_se_fanin;
using analysis::quadtree_shape;
using analysis::resource_interface;
using analysis::se_interfaces;
using analysis::select_interface;
using analysis::task_set;

/// Server tasks a parent-port selector sees from one child SE.
task_set child_server_tasks(const se_interfaces& child) {
    task_set tasks;
    for (const auto& port : child.ports) {
        if (port && port->budget > 0) {
            // Control-plane admission modeling: runs once per
            // reconfiguration request (amortized over the propagation
            // latency it computes), bounded by the SE fan-in -- not
            // per-cycle work, even though reconfig_manager::tick drives it.
            // detlint:allow(hotpath-alloc): amortized admission-time work
            tasks.push_back({port->period, port->budget});
        }
    }
    return tasks;
}

/// FSM cycles for one port's selection, counted from the algorithm work.
/// A selection_cache in `ctx` does not perturb the price: a hit replays
/// the original computation's counters, so the modeled latency is
/// identical with the cache on or off.
std::uint64_t selection_cycles(const task_set& tasks,
                               double level_utilization,
                               const analysis::analysis_context& ctx,
                               const reconfig_costs& costs,
                               std::optional<resource_interface>* out) {
    analysis::sched_test_stats work;
    analysis::analysis_context counted = ctx;
    counted.sched.stats = &work;
    auto iface = select_interface(tasks, level_utilization, counted);
    if (out != nullptr) *out = iface;
    return work.tests_run * costs.cycles_per_test +
           work.points_checked * costs.cycles_per_point;
}

/// Rebuilds root bandwidth, the structured failure and feasibility from a
/// fully-populated selection, latching the first failed port in the same
/// leaf-to-root, ascending (order, port) scan order tree_analysis uses.
void refresh_feasibility(analysis::tree_selection& sel) {
    sel.failure = {};
    const std::uint32_t depth = sel.shape.leaf_level;
    for (std::uint32_t l = depth;; --l) {
        const auto n = static_cast<std::uint32_t>(sel.levels[l].size());
        for (std::uint32_t y = 0; y < n && sel.failure.empty(); ++y) {
            for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
                if (!sel.levels[l][y].ports[p]) {
                    sel.failure = analysis::selection_failure{
                        analysis::selection_failure_reason::port_infeasible,
                        l, y, p};
                    break;
                }
            }
        }
        if (l == 0 || !sel.failure.empty()) break;
    }
    sel.root_bandwidth = sel.levels[0][0].total_bandwidth();
    if (sel.failure.empty() && sel.root_bandwidth > 1.0 + 1e-9) {
        sel.failure.reason =
            analysis::selection_failure_reason::root_overutilized;
    }
    sel.feasible = sel.failure.empty();
}

} // namespace

reconfig_report
model_full_reconfiguration(const std::vector<analysis::task_set>& clients,
                           const analysis::analysis_context& ctx,
                           const reconfig_costs& costs) {
    reconfig_report report;
    const auto shape = analysis::make_quadtree_shape(
        static_cast<std::uint32_t>(std::max<std::size_t>(clients.size(), 1)));
    const std::uint32_t depth = shape.leaf_level;

    report.selection.shape = shape;
    report.selection.levels.resize(depth + 1);
    for (std::uint32_t l = 0; l <= depth; ++l) {
        report.selection.levels[l].resize(shape.ses_at_level(l));
    }
    report.level_finish_cycles.assign(depth + 1, 0);

    // finish[l][y] = cycle SE(l, y)'s selector delivers its result.
    std::vector<std::vector<std::uint64_t>> finish(depth + 1);

    // Leaf level: load the clients' task parameters, then select.
    double u_level = 0.0;
    for (const auto& tasks : clients) {
        u_level += analysis::utilization(tasks);
    }
    finish[depth].resize(shape.ses_at_level(depth), 0);
    for (std::uint32_t y = 0; y < finish[depth].size(); ++y) {
        std::uint64_t entries = 0;
        std::uint64_t compute = 0;
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            const std::uint32_t c = quadtree_shape::child_order(y, p);
            const task_set tasks =
                c < clients.size() ? clients[c] : task_set{};
            entries += tasks.size();
            compute += selection_cycles(
                tasks, u_level, ctx, costs,
                &report.selection.levels[depth][y].ports[p]);
        }
        finish[depth][y] = entries * costs.cycles_per_entry + compute;
        ++report.ses_involved;
    }

    // Inner levels: wait for the children, receive their interfaces,
    // then select.
    for (std::uint32_t l = depth; l-- > 0;) {
        double u_children = 0.0;
        for (const auto& se : report.selection.levels[l + 1]) {
            u_children += se.total_bandwidth();
        }
        finish[l].resize(shape.ses_at_level(l), 0);
        for (std::uint32_t y = 0; y < finish[l].size(); ++y) {
            std::uint64_t start = 0;
            std::uint64_t entries = 0;
            std::uint64_t compute = 0;
            for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
                const std::uint32_t child =
                    quadtree_shape::child_order(y, p);
                start = std::max(start, finish[l + 1][child]);
                const task_set tasks = child_server_tasks(
                    report.selection.levels[l + 1][child]);
                entries += tasks.size();
                compute += selection_cycles(
                    tasks, u_children, ctx, costs,
                    &report.selection.levels[l][y].ports[p]);
            }
            finish[l][y] =
                start + entries * costs.cycles_per_entry + compute;
            ++report.ses_involved;
        }
    }

    for (std::uint32_t l = 0; l <= depth; ++l) {
        for (auto f : finish[l]) {
            report.level_finish_cycles[l] =
                std::max(report.level_finish_cycles[l], f);
        }
    }
    report.total_cycles = report.level_finish_cycles[0];

    refresh_feasibility(report.selection);
    report.feasible = report.selection.feasible;
    return report;
}

reconfig_report
model_client_update(const analysis::tree_selection& committed,
                    const std::vector<analysis::task_set>& committed_clients,
                    std::uint32_t client, analysis::task_set new_tasks,
                    const analysis::analysis_context& ctx,
                    const reconfig_costs& costs) {
    // The update is modeled on copies; the committed inputs stay
    // untouched (re-entrancy for concurrent evaluators, and the rejection
    // path's zero-perturbation property for the reconfig manager).
    analysis::tree_selection selection = committed;
    std::vector<analysis::task_set> clients = committed_clients;
    reconfig_report report;
    const auto& shape = selection.shape;
    assert(client < shape.padded_clients);
    // Control-plane copy-update: one admission evaluation per request,
    // amortized over the modeled reconfiguration latency.
    // detlint:allow(hotpath-alloc): amortized admission-time work
    if (client >= clients.size()) clients.resize(client + 1);
    clients[client] = std::move(new_tasks);

    const std::uint32_t depth = shape.leaf_level;
    report.level_finish_cycles.assign(depth + 1, 0);

    double u_level = 0.0;
    for (const auto& tasks : clients) {
        u_level += analysis::utilization(tasks);
    }

    // Serial wave up the request path: each selector reloads the changed
    // entries, recomputes the single affected port, and forwards.
    std::uint64_t wave_cycles = 0;
    std::uint32_t order = shape.leaf_se_of_client(client);
    std::uint32_t port = shape.leaf_port_of_client(client);
    wave_cycles += clients[client].size() * costs.cycles_per_entry;
    wave_cycles += selection_cycles(clients[client], u_level, ctx, costs,
                              &selection.levels[depth][order].ports[port]);
    report.level_finish_cycles[depth] = wave_cycles;
    ++report.ses_involved;

    for (std::uint32_t l = depth; l-- > 0;) {
        double u_children = 0.0;
        for (const auto& se : selection.levels[l + 1]) {
            u_children += se.total_bandwidth();
        }
        const std::uint32_t child = order;
        order = quadtree_shape::parent_order(child);
        port = quadtree_shape::parent_port(child);
        const task_set tasks =
            child_server_tasks(selection.levels[l + 1][child]);
        wave_cycles += tasks.size() * costs.cycles_per_entry;
        wave_cycles += selection_cycles(tasks, u_children, ctx, costs,
                                  &selection.levels[l][order].ports[port]);
        report.level_finish_cycles[l] = wave_cycles;
        ++report.ses_involved;
    }

    report.total_cycles = wave_cycles;
    refresh_feasibility(selection);
    report.feasible = selection.feasible;
    report.selection = std::move(selection);
    return report;
}

} // namespace bluescale::core
