// Parameter-path timing model (paper Fig. 2(b)'s third path and Sec. 4.3).
//
// When task parameters change, interface selectors recompute (Pi, Theta)
// bottom-up: every SE loads its local clients' parameters into the task
// parameter table, runs the Sec. 5 algorithm on its FSM, and delivers the
// selected interfaces to its parent's selector. SEs at the same level run
// in parallel (the paper's distributed-refresh property), so the total
// reconfiguration latency is the critical path:
//
//   finish(SE) = max over children(finish(child)) + transfer + compute
//
// This model prices compute from the algorithm's actual work (counted
// schedulability tests / dbf points, as core::interface_selector does)
// and transfer from the 74-bit table-entry format.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/interface_selection.hpp"
#include "analysis/tree_analysis.hpp"

namespace bluescale::core {

struct reconfig_costs {
    /// Cycles to deliver one 74-bit task-parameter entry to the next SE.
    std::uint64_t cycles_per_entry = 2;
    /// FSM cycles per schedulability test / per dbf point (matches
    /// interface_selector's constants).
    std::uint64_t cycles_per_test = 8;
    std::uint64_t cycles_per_point = 4;
};

struct reconfig_report {
    /// Latency until the root selector has delivered its result.
    std::uint64_t total_cycles = 0;
    /// Cycle at which each level's selectors finish (index 0 = root).
    std::vector<std::uint64_t> level_finish_cycles;
    /// SEs that recomputed (whole tree for a full reconfiguration; the
    /// request path only for a single-client update).
    std::uint32_t ses_involved = 0;
    bool feasible = false;
    analysis::tree_selection selection;
};

/// Models a full system reconfiguration: every SE reselects.
[[nodiscard]] reconfig_report
model_full_reconfiguration(const std::vector<analysis::task_set>& clients,
                           const analysis::analysis_context& ctx = {},
                           const reconfig_costs& costs = {});

/// Models the paper's incremental case: one client's tasks change, only
/// the SEs on its request path recompute (serially, leaf to root).
/// Const-correct and re-entrant: the committed state is only read (the
/// update is modeled on an internal copy), so concurrent evaluators --
/// the analysis service's worker pool -- may share one committed state.
[[nodiscard]] reconfig_report
model_client_update(const analysis::tree_selection& selection,
                    const std::vector<analysis::task_set>& clients,
                    std::uint32_t client, analysis::task_set new_tasks,
                    const analysis::analysis_context& ctx = {},
                    const reconfig_costs& costs = {});

} // namespace bluescale::core
