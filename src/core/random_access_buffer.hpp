// Random access buffer (paper Sec. 4.1, Fig. 2(c)): the SE's low-level
// priority queue. Unlike a FIFO, the stored requests can be fetched in any
// order: a comparator bank continuously searches the register banks for
// the highest-priority (earliest-deadline) request, and the fetcher
// extracts it for the local scheduler.
//
// Storage is structure-of-arrays over a fixed arena: the mem_request
// payloads live in pre-allocated slots that are recycled through a free
// list (no per-request heap traffic), while the comparator bank scans a
// dense, contiguous deadline array -- the one field the hot EDF pick and
// the blocking-charge loop actually touch. Two-phase visibility matches
// latched_queue: load() stages a slot, commit() publishes it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "mem/request.hpp"
#include "sim/types.hpp"
#include "sim/wake.hpp"

namespace bluescale::core {

class random_access_buffer {
public:
    explicit random_access_buffer(std::size_t depth) : arena_(depth) {
        free_.reserve(depth);
        // Recycle low slots first (pop from the back): load order stays
        // deterministic and the arena stays dense under low occupancy.
        for (std::size_t i = depth; i > 0; --i) {
            free_.push_back(static_cast<std::uint32_t>(i - 1));
        }
        order_.reserve(depth);
        deadlines_.reserve(depth);
        staged_.reserve(depth);
    }

    /// Producer-side wake notification, fired when a load() lands in a
    /// fully quiet buffer -- the one transition that can invalidate the
    /// owning SE's cached horizon (see latched_queue::set_wake_hook).
    void set_wake_hook(sim::wake_hook hook) { wake_ = hook; }

    /// Consumer-side drain notification, fired when fetch_earliest()
    /// frees a slot in a previously full arena (can_load() flips back to
    /// true) -- lets a backpressured client sleep on the port instead of
    /// polling (see latched_queue::set_drain_hook).
    void set_drain_hook(sim::wake_hook hook) { drain_ = hook; }

    // --- loader side (register chain input) -----------------------------
    [[nodiscard]] bool can_load() const { return !free_.empty(); }

    void load(mem_request r) {
        assert(can_load());
        const bool was_quiet = order_.empty() && staged_.empty();
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        arena_[slot] = std::move(r);
        // staged_ is reserved to the arena depth at construction and
        // can_load() (asserted above) bounds occupancy.
        // detlint:allow(hotpath-alloc): push into pre-reserved staging
        staged_.push_back(slot);
        if (was_quiet) wake_.fire();
    }

    // --- arbiter / fetcher side ------------------------------------------
    [[nodiscard]] bool empty() const { return order_.empty(); }
    [[nodiscard]] std::size_t size() const { return order_.size(); }
    [[nodiscard]] std::size_t capacity() const { return arena_.size(); }

    /// Occupancy including loads staged for the next edge -- what a
    /// consumer's quiescence check must consult.
    [[nodiscard]] std::size_t total_size() const {
        return order_.size() + staged_.size();
    }

    [[nodiscard]] bool quiet() const { return total_size() == 0; }

    /// The comparators' result: earliest level deadline currently stored
    /// (nullopt when empty). This is Algorithm 1's inner EDF pick.
    [[nodiscard]] std::optional<cycle_t> min_deadline() const {
        if (deadlines_.empty()) return std::nullopt;
        cycle_t best = deadlines_[0];
        for (std::size_t i = 1; i < deadlines_.size(); ++i) {
            best = std::min(best, deadlines_[i]);
        }
        return best;
    }

    /// Fetches the earliest-deadline request (ties broken by load order,
    /// matching the comparator chain's first-match behaviour).
    mem_request fetch_earliest() {
        assert(!order_.empty());
        std::size_t best = 0;
        for (std::size_t i = 1; i < deadlines_.size(); ++i) {
            if (deadlines_[i] < deadlines_[best]) best = i;
        }
        const std::uint32_t slot = order_[best];
        order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(best));
        deadlines_.erase(deadlines_.begin() +
                         static_cast<std::ptrdiff_t>(best));
        const bool was_full = free_.empty();
        // The free list is reserved to the arena depth at construction and
        // holds at most one entry per slot.
        // detlint:allow(hotpath-alloc): push into pre-reserved free list
        free_.push_back(slot);
        if (was_full) drain_.fire();
        return std::move(arena_[slot]);
    }

    /// Charges one blocking cycle to stored requests with a deadline
    /// earlier than the granted one (measurement hook, not hardware).
    void charge_blocked(cycle_t granted_deadline) {
        for (std::size_t i = 0; i < deadlines_.size(); ++i) {
            if (deadlines_[i] < granted_deadline) {
                ++arena_[order_[i]].blocked_cycles;
            }
        }
    }

    /// Clock edge: loads staged this cycle become visible, in load order.
    void commit() {
        for (const std::uint32_t slot : staged_) {
            // order_/deadlines_ are reserved to the arena depth at
            // construction; visible + staged occupancy never exceeds it.
            // detlint:allow(hotpath-alloc): push into pre-reserved mirror
            order_.push_back(slot);
            // detlint:allow(hotpath-alloc): push into pre-reserved mirror
            deadlines_.push_back(arena_[slot].level_deadline);
        }
        staged_.clear();
    }

    void clear() {
        order_.clear();
        deadlines_.clear();
        staged_.clear();
        free_.clear();
        for (std::size_t i = arena_.size(); i > 0; --i) {
            // clear() is a between-trials reset, hot only through the
            // clear/clear name collision with commit()'s staged_.clear();
            // the free list is pre-reserved to the arena depth regardless.
            // detlint:allow(hotpath-alloc): push into pre-reserved free list
            free_.push_back(static_cast<std::uint32_t>(i - 1));
        }
    }

private:
    /// Fixed request storage; slots are recycled, never reallocated.
    std::vector<mem_request> arena_;
    /// Free arena slots (stack; top = next slot to hand out).
    std::vector<std::uint32_t> free_;
    /// Visible slots in load order (parallel to deadlines_).
    std::vector<std::uint32_t> order_;
    /// Dense deadline mirror of order_ -- the comparator bank's scan
    /// array. deadlines_[i] == arena_[order_[i]].level_deadline, valid
    /// because a stored request's level_deadline is never mutated.
    std::vector<cycle_t> deadlines_;
    /// Slots loaded this cycle, awaiting commit().
    std::vector<std::uint32_t> staged_;
    sim::wake_hook wake_{};
    sim::wake_hook drain_{};
};

} // namespace bluescale::core
