// Random access buffer (paper Sec. 4.1, Fig. 2(c)): the SE's low-level
// priority queue. Unlike a FIFO, the stored requests can be fetched in any
// order: a comparator bank continuously searches the register banks for
// the highest-priority (earliest-deadline) request, and the fetcher
// extracts it for the local scheduler.
#pragma once

#include <cstddef>
#include <optional>

#include "mem/request.hpp"
#include "sim/latched_queue.hpp"
#include "sim/types.hpp"

namespace bluescale::core {

class random_access_buffer {
public:
    explicit random_access_buffer(std::size_t depth) : slots_(depth) {}

    // --- loader side (register chain input) -----------------------------
    [[nodiscard]] bool can_load() const { return slots_.can_push(); }
    void load(mem_request r) { slots_.push(std::move(r)); }

    // --- arbiter / fetcher side ------------------------------------------
    [[nodiscard]] bool empty() const { return slots_.empty(); }
    [[nodiscard]] std::size_t size() const { return slots_.size(); }
    [[nodiscard]] std::size_t capacity() const { return slots_.capacity(); }

    /// The comparators' result: earliest level deadline currently stored
    /// (nullopt when empty). This is Algorithm 1's inner EDF pick.
    [[nodiscard]] std::optional<cycle_t> min_deadline() const {
        if (slots_.empty()) return std::nullopt;
        cycle_t best = slots_.at(0).level_deadline;
        for (std::size_t i = 1; i < slots_.size(); ++i) {
            best = std::min(best, slots_.at(i).level_deadline);
        }
        return best;
    }

    /// Fetches the earliest-deadline request (ties broken by load order,
    /// matching the comparator chain's first-match behaviour).
    mem_request fetch_earliest() {
        std::size_t best = 0;
        for (std::size_t i = 1; i < slots_.size(); ++i) {
            if (slots_.at(i).level_deadline <
                slots_.at(best).level_deadline) {
                best = i;
            }
        }
        return slots_.extract(best);
    }

    /// Charges one blocking cycle to stored requests with a deadline
    /// earlier than the granted one (measurement hook, not hardware).
    void charge_blocked(cycle_t granted_deadline) {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            mem_request& waiting = slots_.at(i);
            if (waiting.level_deadline < granted_deadline) {
                ++waiting.blocked_cycles;
            }
        }
    }

    /// Clock edge: loads staged this cycle become visible.
    void commit() { slots_.commit(); }
    void clear() { slots_.clear(); }

private:
    latched_queue<mem_request> slots_;
};

} // namespace bluescale::core
