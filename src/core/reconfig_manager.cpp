#include "core/reconfig_manager.hpp"

#include <cassert>
#include <utility>

#include "core/bluescale_ic.hpp"

namespace bluescale::core {

const char* admission_outcome_name(admission_outcome o) {
    switch (o) {
    case admission_outcome::pending: return "pending";
    case admission_outcome::rejected_infeasible: return "rejected_infeasible";
    case admission_outcome::rejected_overutilized:
        return "rejected_overutilized";
    case admission_outcome::rejected_path_hazard:
        return "rejected_path_hazard";
    case admission_outcome::rejected_queue_full:
        return "rejected_queue_full";
    case admission_outcome::rejected_deadline_expired:
        return "rejected_deadline_expired";
    case admission_outcome::staged: return "staged";
    case admission_outcome::committed: return "committed";
    case admission_outcome::rolled_back: return "rolled_back";
    }
    return "?";
}

reconfig_manager::reconfig_manager(bluescale_ic& fabric,
                                   analysis::tree_selection committed,
                                   std::vector<analysis::task_set> tasks,
                                   reconfig_config cfg)
    : component("reconfig_manager"), fabric_(fabric), cfg_(std::move(cfg)),
      committed_(std::move(committed)), client_tasks_(std::move(tasks)),
      own_(std::make_unique<obs::registry>()) {
    bind_observability(*own_, obs::tracer{});
    assert(committed_.shape.leaf_level == fabric_.shape().leaf_level);
}

void reconfig_manager::bind_observability(obs::registry& reg,
                                          obs::tracer tracer) {
    submitted_ = reg.make_counter("reconfig/submitted");
    admitted_ = reg.make_counter("reconfig/admitted");
    rejected_ = reg.make_counter("reconfig/rejected");
    committed_count_ = reg.make_counter("reconfig/committed");
    rolled_back_ = reg.make_counter("reconfig/rolled_back");
    queue_full_ = reg.make_counter("reconfig/rejected_queue_full");
    deadline_expired_ =
        reg.make_counter("reconfig/rejected_deadline_expired");
    stale_reevals_ = reg.make_counter("reconfig/stale_reevals");
    reconfig_latency_ = reg.make_sample("reconfig/latency_cycles");
    trace_ = tracer;
}

std::uint64_t reconfig_manager::submit(std::uint32_t client,
                                       analysis::task_set tasks,
                                       cycle_t deadline) {
    queued_request req;
    req.client = client;
    req.tasks = std::move(tasks);
    req.deadline = deadline;
    return enqueue(std::move(req));
}

std::uint64_t reconfig_manager::apply_evaluated(std::uint32_t client,
                                                analysis::task_set tasks,
                                                admission_evaluation eval,
                                                cycle_t deadline) {
    queued_request req;
    req.client = client;
    req.tasks = std::move(tasks);
    req.deadline = deadline;
    req.has_eval = true;
    req.eval_version = eval.version;
    req.eval_report = std::move(eval.report);
    return enqueue(std::move(req));
}

std::uint64_t reconfig_manager::enqueue(queued_request req) {
    assert(req.client < committed_.shape.padded_clients);
    admission_record rec;
    rec.id = records_.size();
    rec.client = req.client;
    rec.submitted_at = now_;
    rec.deadline = req.deadline;
    records_.push_back(rec);
    submitted_.inc();

    // Bounded-queue backpressure: a full queue sheds the request with a
    // structured reason. The admission test never runs and the fabric is
    // never touched, so the run stays bit-identical to one where the
    // request never arrived (zero perturbation).
    if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
        admission_record& r = records_[rec.id];
        r.outcome = admission_outcome::rejected_queue_full;
        r.detail = "request queue full (" + std::to_string(queue_.size()) +
                   "/" + std::to_string(cfg_.max_queue) + ")";
        r.decided_at = now_;
        r.resolved_at = now_;
        rejected_.inc();
        queue_full_.inc();
        admission_record copy = r;
        resolve(copy, req.tasks);
        return rec.id;
    }

    req.id = rec.id;
    queue_.push_back(std::move(req));
    wake(); // a sleeping manager must run the admission test next tick
    return rec.id;
}

admission_evaluation
reconfig_manager::evaluate(std::uint32_t client,
                           const analysis::task_set& tasks,
                           bool sufficient_only) const {
    assert(client < committed_.shape.padded_clients);
    admission_evaluation eval;
    eval.version = version_;
    analysis::analysis_context sel = cfg_.selection;
    sel.sched.sufficient_only = sufficient_only;
    eval.report = model_client_update(committed_, client_tasks_, client,
                                      tasks, sel, cfg_.costs);
    eval.feasible = eval.report.feasible;
    if (!eval.feasible) {
        const analysis::selection_failure& fail =
            eval.report.selection.failure;
        eval.reject_reason =
            fail.reason ==
                    analysis::selection_failure_reason::root_overutilized
                ? admission_outcome::rejected_overutilized
                : admission_outcome::rejected_infeasible;
        eval.detail = fail.empty()
                          ? "no feasible interface on the request path"
                          : fail.to_string();
    }
    return eval;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
reconfig_manager::request_path(std::uint32_t client) const {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> path;
    const auto& shape = committed_.shape;
    std::uint32_t order = shape.leaf_se_of_client(client);
    for (std::uint32_t l = shape.leaf_level;; --l) {
        // Control-plane path enumeration: O(tree depth) per admission
        // transaction, not per cycle.
        // detlint:allow(hotpath-alloc): amortized admission-time work
        path.emplace_back(l, order);
        if (l == 0) break;
        order = analysis::quadtree_shape::parent_order(order);
    }
    return path;
}

bool reconfig_manager::path_hazard(std::uint32_t client,
                                   std::string* why) const {
    for (const auto& [l, y] : request_path(client)) {
        const scale_element& se = fabric_.se_at(l, y);
        if (se.degraded() || se.stalled_now()) {
            if (why != nullptr) {
                *why = std::string(se.degraded() ? "degraded" : "stalled") +
                       " SE(" + std::to_string(l) + "," + std::to_string(y) +
                       ") on the request path";
            }
            return true;
        }
    }
    return false;
}

void reconfig_manager::resolve(admission_record& rec,
                               const analysis::task_set& tasks) {
    records_[rec.id] = rec;
    if (on_resolve_) on_resolve_(records_[rec.id], tasks);
}

void reconfig_manager::start_admission(queued_request req, cycle_t now) {
    admission_record rec = records_[req.id];
    rec.decided_at = now;

    // Deadline cancellation: a request that waited past its deadline is
    // dropped before any work runs (zero perturbation, like queue_full).
    if (now > rec.deadline) {
        rec.outcome = admission_outcome::rejected_deadline_expired;
        rec.detail = "deadline " + std::to_string(rec.deadline) +
                     " expired before admission (now " +
                     std::to_string(now) + ")";
        rec.resolved_at = now;
        rejected_.inc();
        deadline_expired_.inc();
        resolve(rec, req.tasks);
        return;
    }

    // Admission-time hazard gate: reconfiguring through an unhealthy path
    // is refused outright (the selector FSMs on that path cannot be
    // trusted to deliver).
    std::string hazard;
    if (cfg_.reject_degraded_path && path_hazard(req.client, &hazard)) {
        rec.outcome = admission_outcome::rejected_path_hazard;
        rec.detail = hazard;
        rec.resolved_at = now;
        rejected_.inc();
        resolve(rec, req.tasks);
        return;
    }

    // Sec. 5 admission test, incremental: only the request path
    // recomputes. model_client_update copies the committed state, so a
    // rejection leaves it byte-identical. A precomputed evaluation
    // (apply_evaluated) is honored while its version still matches the
    // committed state it was computed against; otherwise it is stale and
    // the test re-runs fresh -- committing a selection evaluated against
    // superseded state is impossible.
    reconfig_report report;
    if (req.has_eval && req.eval_version == version_) {
        report = std::move(req.eval_report);
    } else {
        if (req.has_eval) stale_reevals_.inc();
        report = model_client_update(committed_, client_tasks_, req.client,
                                     req.tasks, cfg_.selection, cfg_.costs);
    }
    rec.latency_cycles = report.total_cycles;
    rec.ses_involved = report.ses_involved;
    rec.root_bandwidth = report.selection.root_bandwidth;

    if (!report.feasible) {
        const analysis::selection_failure& fail = report.selection.failure;
        rec.outcome =
            fail.reason ==
                    analysis::selection_failure_reason::root_overutilized
                ? admission_outcome::rejected_overutilized
                : admission_outcome::rejected_infeasible;
        rec.detail = fail.empty()
                         ? "no feasible interface on the request path"
                         : fail.to_string();
        rec.resolved_at = now;
        rejected_.inc();
        resolve(rec, req.tasks);
        return;
    }

    // Stage: the new selection becomes live only after the parameter
    // path's propagation latency has elapsed.
    staged_selection_ = std::move(report.selection);
    staged_tasks_ = client_tasks_;
    if (req.client >= staged_tasks_.size()) {
        // Admission staging: one snapshot per accepted request, amortized
        // over the reconfiguration latency being charged to it.
        // detlint:allow(hotpath-alloc): amortized admission-time work
        staged_tasks_.resize(req.client + 1);
    }
    staged_tasks_[req.client] = std::move(req.tasks);
    staging_ = true;
    staging_id_ = rec.id;
    commit_at_ = now + report.total_cycles;
    rec.outcome = admission_outcome::staged;
    admitted_.inc();
    reconfig_latency_.add(static_cast<double>(report.total_cycles));
    records_[rec.id] = rec;
}

void reconfig_manager::roll_back(cycle_t now, std::string why,
                                 bool fabric_touched) {
    // Restore the previous committed (Pi, Theta) everywhere. When the
    // fabric was never reprogrammed the configure is a no-op re-assertion
    // of the committed parameters, kept unconditional so a rollback always
    // leaves the fabric provably in the committed state.
    if (fabric_touched) fabric_.configure(committed_);
    admission_record rec = records_[staging_id_];
    rec.outcome = admission_outcome::rolled_back;
    rec.detail = std::move(why);
    rec.resolved_at = now;
    rolled_back_.inc();
    trace_.emit(obs::trace_event_kind::reconfig_rollback, rec.id,
                rec.client);
    staging_ = false;
    const analysis::task_set& tasks =
        rec.client < client_tasks_.size() ? client_tasks_[rec.client]
                                          : analysis::task_set{};
    resolve(rec, tasks);
    staged_selection_ = {};
    staged_tasks_.clear();
}

void reconfig_manager::commit(cycle_t now) {
    admission_record rec = records_[staging_id_];
    // The parameter path has delivered: reprogram the fabric's servers.
    fabric_.configure(staged_selection_);

    // Commit-instant hazard: a fault window or degradation overlapping the
    // moment the new parameters land invalidates the distributed delivery
    // -- restore the prior selection everywhere.
    std::string hazard;
    if (path_hazard(rec.client, &hazard)) {
        roll_back(now, "commit hazard: " + hazard, /*fabric_touched=*/true);
        return;
    }

    committed_ = std::move(staged_selection_);
    client_tasks_ = std::move(staged_tasks_);
    ++version_; // invalidates outstanding evaluations and result caches
    staging_ = false;
    staged_selection_ = {};
    staged_tasks_.clear();
    rec.outcome = admission_outcome::committed;
    rec.resolved_at = now;
    committed_count_.inc();
    trace_.emit(obs::trace_event_kind::reconfig_commit, rec.id, rec.client);
    const std::uint32_t c = rec.client;
    resolve(rec, c < client_tasks_.size() ? client_tasks_[c]
                                          : analysis::task_set{});
}

void reconfig_manager::tick(cycle_t now) {
    now_ = now;
    if (staging_) {
        // At the commit instant the fabric is reprogrammed first and the
        // hazard check runs after (commit()): a fault window landing
        // exactly then forces the fabric-restoring rollback path.
        if (now >= commit_at_) {
            commit(now);
            return;
        }
        // Deadline cancellation extends into staging: the staging
        // latency models the (possibly re-run, pseudo-polynomial)
        // admission test plus the parameter-path wave, so one expensive
        // transaction could otherwise hold the FIFO arbitrarily long
        // while its caller has already given up on the answer. The
        // fabric has not been touched yet, so abandoning is a pure
        // bookkeeping resolution.
        if (now > records_[staging_id_].deadline) {
            admission_record rec = records_[staging_id_];
            rec.outcome = admission_outcome::rejected_deadline_expired;
            rec.detail = "deadline " + std::to_string(rec.deadline) +
                         " expired mid-staging (now " +
                         std::to_string(now) + ")";
            rec.resolved_at = now;
            rejected_.inc();
            deadline_expired_.inc();
            staging_ = false;
            staged_selection_ = {};
            staged_tasks_.clear();
            const analysis::task_set& tasks =
                rec.client < client_tasks_.size()
                    ? client_tasks_[rec.client]
                    : analysis::task_set{};
            resolve(rec, tasks);
            return;
        }
        // Mid-flight hazard watch: a request-path SE going degraded or
        // stalled while the selectors are recomputing aborts the
        // transaction before it can land.
        std::string hazard;
        if (path_hazard(records_[staging_id_].client, &hazard)) {
            roll_back(now, "staging hazard: " + std::move(hazard),
                      /*fabric_touched=*/false);
        }
        return;
    }
    if (!queue_.empty()) {
        queued_request req = std::move(queue_.front());
        queue_.pop_front();
        start_admission(std::move(req), now);
    }
}

void reconfig_manager::donate_client_budget(std::uint32_t client) {
    const auto& shape = committed_.shape;
    fabric_
        .se_at(shape.leaf_level, shape.leaf_se_of_client(client))
        .configure_port(shape.leaf_port_of_client(client), 0, 0);
}

void reconfig_manager::restore_client_budget(std::uint32_t client) {
    const auto& shape = committed_.shape;
    const std::uint32_t order = shape.leaf_se_of_client(client);
    const std::uint32_t port = shape.leaf_port_of_client(client);
    const auto& iface = committed_.levels[shape.leaf_level][order].ports[port];
    if (iface && iface->budget > 0) {
        fabric_.se_at(shape.leaf_level, order)
            .configure_port(port, static_cast<std::uint32_t>(iface->period),
                            static_cast<std::uint32_t>(iface->budget));
    } else {
        fabric_.se_at(shape.leaf_level, order).configure_port(port, 0, 0);
    }
}

} // namespace bluescale::core
