// Runtime admission control and transactional (Pi, Theta) reconfiguration
// (paper Sec. 3.2, third property, promoted from an offline model to a
// guarded runtime subsystem).
//
// The manager accepts client join/leave/task-change requests mid-
// simulation and runs the Sec. 5 admission test online, reusing the
// incremental request-path reselection (core::model_client_update): only
// the SEs between the changed client and the root recompute. An
// infeasible request is REJECTED with a structured reason and zero
// perturbation of the running system -- the committed selection, the
// fabric's programmed servers, and every other client are untouched, so a
// rejected run is bit-identical to one where the request never arrived.
//
// A feasible request is applied TRANSACTIONALLY:
//
//   idle -> staging -> committed
//                 \-> rolled_back
//
// The new (Pi, Theta) set is staged and takes effect only after the
// parameter-path-modeled propagation latency has elapsed in simulated
// time (the distributed selector FSMs are recomputing during the staging
// window; traffic keeps flowing on the old parameters). If a mid-flight
// hazard fires -- the health monitor flips a request-path SE into
// degraded mode, or an injected fault window overlaps the commit instant
// -- the transaction rolls back: the fabric is reprogrammed with the
// previous committed selection everywhere and the request is reported
// rolled_back. Requests queue FIFO; one transaction is in flight at a
// time.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <string>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/parameter_path.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "stats/summary.hpp"

namespace bluescale::core {

class bluescale_ic;

/// Lifecycle of one admission request, also the structured reject reason.
enum class admission_outcome : std::uint8_t {
    /// Queued; the admission test has not run yet.
    pending,
    /// Rejected: some request-path SE port has no feasible interface for
    /// the new demand.
    rejected_infeasible,
    /// Rejected: the new selection would over-utilize the root resource.
    rejected_overutilized,
    /// Rejected: a request-path SE was degraded or stalled when the
    /// admission test ran (reconfig_config::reject_degraded_path).
    rejected_path_hazard,
    /// Rejected at submission: the bounded request queue
    /// (reconfig_config::max_queue) was full. The admission test never
    /// ran, so the running system is untouched (zero perturbation).
    rejected_queue_full,
    /// Rejected: the request's deadline passed before the admission test
    /// could run. The test never ran (zero perturbation).
    rejected_deadline_expired,
    /// Admitted; the new selection is propagating (commit pending).
    staged,
    /// The new (Pi, Theta) set is live.
    committed,
    /// A hazard fired during staging or at commit; the previous committed
    /// selection was restored everywhere.
    rolled_back,
};

[[nodiscard]] const char* admission_outcome_name(admission_outcome o);

struct reconfig_config {
    /// Unified analysis knobs (selection bounds, sched test mode, shared
    /// selection cache, parallelism) threaded into every admission test.
    analysis::analysis_context selection = {};
    reconfig_costs costs = {};
    /// Run the admission-time hazard check: reject a request outright when
    /// a request-path SE is already degraded or stalled (otherwise the
    /// request stages and takes its chances with a mid-flight rollback).
    bool reject_degraded_path = true;
    /// Bound on the FIFO request queue (0 = unbounded, the historical
    /// behavior). A submit() against a full queue is rejected
    /// queue_full without running the admission test.
    std::size_t max_queue = 0;
};

/// Full audit record of one request, kept for every submission.
struct admission_record {
    std::uint64_t id = 0;
    std::uint32_t client = 0;
    admission_outcome outcome = admission_outcome::pending;
    /// Failure/hazard reason for rejected or rolled-back requests.
    std::string detail;
    cycle_t submitted_at = 0;
    /// Absolute cycle by which the request must resolve (k_cycle_never =
    /// none). Expiry is enforced while queued AND while staged: a
    /// transaction whose deadline passes mid-staging is abandoned before
    /// the fabric is touched (the commit instant, when reached first,
    /// wins).
    cycle_t deadline = k_cycle_never;
    /// Cycle the admission test ran.
    cycle_t decided_at = 0;
    /// Cycle the transaction left the staging state (commit or rollback).
    cycle_t resolved_at = 0;
    /// Modeled parameter-path propagation latency (staging duration).
    std::uint64_t latency_cycles = 0;
    /// SEs on the recomputed request path.
    std::uint32_t ses_involved = 0;
    /// Root bandwidth of the candidate selection.
    double root_bandwidth = 0.0;
};

/// Counter snapshot of the manager's lifetime activity (values read out
/// of obs handles; a result type, not mutable storage).
struct reconfig_manager_stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;   ///< passed the admission test (staged)
    std::uint64_t rejected = 0;
    std::uint64_t committed = 0;
    std::uint64_t rolled_back = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline_expired = 0;
    /// apply_evaluated() submissions whose evaluation was stale (the
    /// committed version moved) and had to be re-run fresh.
    std::uint64_t stale_reevals = 0;
    /// Modeled propagation latency of admitted requests, in cycles.
    stats::sample_set reconfig_latency;
};

/// Result of a detached admission evaluation (reconfig_manager::evaluate).
struct admission_evaluation {
    bool feasible = false;
    /// rejected_infeasible or rejected_overutilized when not feasible.
    admission_outcome reject_reason = admission_outcome::pending;
    std::string detail;
    /// committed_version() at evaluation time. apply_evaluated() stages
    /// the precomputed selection only while the version still matches;
    /// a stale evaluation is transparently re-run, so a commit can never
    /// apply a selection computed against superseded state.
    std::uint64_t version = 0;
    reconfig_report report;
};

class reconfig_manager : public component {
public:
    /// Fired when a request resolves (committed, rejected or rolled
    /// back); the harness uses the commit notification to swap the
    /// client's live workload at exactly the commit instant.
    using resolve_hook =
        std::function<void(const admission_record&,
                           const analysis::task_set& tasks)>;

    reconfig_manager(bluescale_ic& fabric,
                     analysis::tree_selection committed,
                     std::vector<analysis::task_set> client_tasks,
                     reconfig_config cfg = {});

    /// Queues a task-change request for `client` (empty set = leave; a
    /// previously empty client = join). Returns the request id; the
    /// admission test runs at the manager's next tick. `deadline` is the
    /// absolute cycle by which the test must start (k_cycle_never =
    /// none); a request still queued past it is rejected
    /// deadline_expired. With cfg.max_queue set, a submit against a full
    /// queue is rejected queue_full immediately. Both rejection paths
    /// never run the test and never touch the fabric. Thread-safety: the
    /// manager is trial-local, like every other component.
    std::uint64_t submit(std::uint32_t client, analysis::task_set tasks,
                         cycle_t deadline = k_cycle_never);

    /// Const, re-entrant admission evaluation against the current
    /// committed state: runs the Sec. 5 incremental test without queuing,
    /// staging, or touching any manager state. The analysis service's
    /// workers call this concurrently (it only reads committed state) and
    /// feed feasible results back through apply_evaluated().
    /// `sufficient_only` swaps the pseudo-polynomial exact test for the
    /// cheap sufficient portfolio (degraded precision: sound, may reject
    /// feasible requests) -- the service's circuit breaker trips to it.
    [[nodiscard]] admission_evaluation
    evaluate(std::uint32_t client, const analysis::task_set& tasks,
             bool sufficient_only = false) const;

    /// Queues a request carrying a precomputed evaluation. While the
    /// committed version still matches eval.version at admission time the
    /// expensive test is skipped and the evaluated selection stages
    /// directly; a stale evaluation (any commit in between) is re-run
    /// fresh -- a half-applied commit is impossible either way. The
    /// queue bound, deadline, and hazard gates all still apply.
    std::uint64_t apply_evaluated(std::uint32_t client,
                                  analysis::task_set tasks,
                                  admission_evaluation eval,
                                  cycle_t deadline = k_cycle_never);

    /// Monotone commit counter: bumped once per committed transaction.
    /// Evaluations and result caches key their validity on it.
    [[nodiscard]] std::uint64_t committed_version() const {
        return version_;
    }

    void tick(cycle_t now) override;

    /// Event-engine horizon: per-cycle while a transaction is staged
    /// (hazard watch) or requests are queued; otherwise fully quiescent
    /// -- submit() wakes the manager.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override {
        return staging_ || !queue_.empty() ? now + 1 : k_cycle_never;
    }

    void set_resolve_hook(resolve_hook h) { on_resolve_ = std::move(h); }

    /// Overload-shedding budget donation: disables the client's leaf
    /// server (Pi, Theta) -> (0, 0) so its slack flows to the admitted
    /// clients; the shed client's requests ride work-conserving slack
    /// only. The committed selection is NOT changed -- restore reprograms
    /// the port from it.
    void donate_client_budget(std::uint32_t client);
    void restore_client_budget(std::uint32_t client);

    /// True while a transaction is staged (commit pending).
    [[nodiscard]] bool staging() const { return staging_; }
    /// Requests submitted but not yet resolved (queued + staged).
    [[nodiscard]] std::size_t backlog() const {
        return queue_.size() + (staging_ ? 1 : 0);
    }

    [[nodiscard]] const analysis::tree_selection& committed() const {
        return committed_;
    }
    [[nodiscard]] const std::vector<analysis::task_set>& client_tasks()
        const {
        return client_tasks_;
    }
    [[nodiscard]] reconfig_manager_stats stats() const {
        return {submitted_.value(),        admitted_.value(),
                rejected_.value(),         committed_count_.value(),
                rolled_back_.value(),      queue_full_.value(),
                deadline_expired_.value(), stale_reevals_.value(),
                reconfig_latency_.values()};
    }

    /// Re-homes the admission counters into `reg` under "reconfig/..."
    /// and attaches the trace stream; call before the trial starts.
    void bind_observability(obs::registry& reg, obs::tracer tracer);
    [[nodiscard]] const std::vector<admission_record>& records() const {
        return records_;
    }
    [[nodiscard]] const admission_record& record(std::uint64_t id) const {
        return records_[id];
    }

private:
    struct queued_request {
        std::uint64_t id = 0;
        std::uint32_t client = 0;
        analysis::task_set tasks;
        cycle_t deadline = k_cycle_never;
        /// Precomputed evaluation (apply_evaluated); valid while
        /// eval_version matches the committed version.
        bool has_eval = false;
        std::uint64_t eval_version = 0;
        reconfig_report eval_report;
    };

    /// (level, order) of every SE on `client`'s request path, leaf first.
    [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
    request_path(std::uint32_t client) const;
    /// A path SE is degraded or inside an injected stall window.
    [[nodiscard]] bool path_hazard(std::uint32_t client,
                                   std::string* why) const;

    std::uint64_t enqueue(queued_request req);
    void start_admission(queued_request req, cycle_t now);
    void commit(cycle_t now);
    void roll_back(cycle_t now, std::string why, bool fabric_touched);
    void resolve(admission_record& rec, const analysis::task_set& tasks);

    bluescale_ic& fabric_;
    reconfig_config cfg_;
    analysis::tree_selection committed_;
    std::vector<analysis::task_set> client_tasks_;

    /// Clock latched at tick() so submit() can stamp submission times.
    cycle_t now_ = 0;
    std::deque<queued_request> queue_;
    bool staging_ = false;
    std::uint64_t staging_id_ = 0;
    cycle_t commit_at_ = 0;
    analysis::tree_selection staged_selection_;
    std::vector<analysis::task_set> staged_tasks_;

    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    std::uint64_t version_ = 0;
    obs::counter submitted_;
    obs::counter admitted_;
    obs::counter rejected_;
    obs::counter committed_count_;
    obs::counter rolled_back_;
    obs::counter queue_full_;
    obs::counter deadline_expired_;
    obs::counter stale_reevals_;
    obs::sample reconfig_latency_;
    obs::tracer trace_;
    std::vector<admission_record> records_;
    resolve_hook on_resolve_;
};

} // namespace bluescale::core
