#include "core/scale_element.hpp"

#include <cassert>

namespace bluescale::core {

namespace {
std::array<random_access_buffer, k_se_ports>
make_buffers(std::size_t depth) {
    return {random_access_buffer(depth), random_access_buffer(depth),
            random_access_buffer(depth), random_access_buffer(depth)};
}
} // namespace

scale_element::scale_element(std::string name, se_params params)
    : component(std::move(name), /*latches=*/true), params_(params),
      buffers_(make_buffers(params.buffer_depth)), sched_(params.policy),
      own_(std::make_unique<obs::registry>()) {
    bind_observability(*own_, this->name(), obs::tracer{});
    // A push into any port buffer re-arms this element (and, through the
    // component wake hook, whatever fabric drives it).
    for (auto& buf : buffers_) buf.set_wake_hook(sim::wake_of(*this));
}

void scale_element::bind_sink(sink_ready_fn ready, sink_push_fn push) {
    sink_ready_ = std::move(ready);
    sink_push_ = std::move(push);
}

void scale_element::bind_observability(obs::registry& reg,
                                       const std::string& prefix,
                                       obs::tracer tracer) {
    forwarded_ = reg.make_counter(prefix + "/forwarded");
    forwarded_budgeted_ = reg.make_counter(prefix + "/forwarded_budgeted");
    fault_stall_cycles_ = reg.make_counter(prefix + "/fault_stall_cycles");
    degraded_cycles_ = reg.make_counter(prefix + "/degraded_cycles");
    wait_stats_ = reg.make_sample(prefix + "/wait_cycles");
    for (std::uint32_t p = 0; p < k_se_ports; ++p) {
        const std::string port = prefix + "/port" + std::to_string(p);
        port_forwarded_[p] = reg.make_counter(port + "/forwarded");
        port_backlogged_cycles_[p] =
            reg.make_counter(port + "/backlogged_cycles");
        port_queue_depth_[p] = reg.make_gauge(port + "/queue_depth");
    }
    trace_ = tracer;
}

void scale_element::configure_port(std::uint32_t port,
                                   std::uint32_t period_units,
                                   std::uint32_t budget_units) {
    sched_.configure_port(port, period_units, budget_units);
    // The counters restarted: boundaries accumulated while this element
    // slept predate the reprogramming and must not be applied to the
    // fresh values. Resync at the next tick (which the wake guarantees
    // happens on the next cycle).
    pending_resync_ = true;
    wake();
}

std::optional<std::uint32_t> scale_element::pick_fallback() const {
    std::optional<std::uint32_t> best;
    cycle_t best_deadline = k_cycle_never;
    for (std::uint32_t p = 0; p < k_se_ports; ++p) {
        const auto deadline = buffers_[p].min_deadline();
        if (deadline && *deadline < best_deadline) {
            best_deadline = *deadline;
            best = p;
        }
    }
    return best;
}

void scale_element::tick(cycle_t now) {
    assert(sink_ready_ && sink_push_);

    if (pending_resync_) {
        // configure_port() restarted the counters mid-run: drop any
        // boundary backlog from before the reprogramming. In lockstep
        // (tick every cycle) this recomputes the mark it would have had
        // anyway, so both engines stay identical.
        next_unit_mark_ =
            (now + params_.unit_cycles - 1) / params_.unit_cycles *
            params_.unit_cycles;
        pending_resync_ = false;
    }

    // Engagement gate for the replenish trace: an element with no work
    // and no per-cycle accounting replenishes silently (the event engine
    // sleeps straight over those boundaries; emitting from catch-up would
    // stamp the wrong cycle, so neither engine emits them).
    bool engaged = degraded_ || stalled_now_;
    for (std::uint32_t p = 0; !engaged && p < k_se_ports; ++p) {
        engaged = !buffers_[p].quiet();
    }

    // Time-unit boundaries: the P-counters decrement; expired periods
    // reload budgets before this cycle's scheduling decision. Boundaries
    // slept over by the event engine are applied in closed form (no
    // grants happened, so the wraps are unobservable); a boundary landing
    // on this very cycle runs the per-port path, traced per server so
    // budget starvation is visible on a timeline.
    if (now >= next_unit_mark_) {
        const bool on_boundary = now % params_.unit_cycles == 0;
        const std::uint64_t boundaries =
            (now - next_unit_mark_) / params_.unit_cycles + 1;
        const std::uint64_t slept = boundaries - (on_boundary ? 1 : 0);
        if (slept > 0) sched_.advance_units(slept);
        if (on_boundary) {
            for (std::uint32_t p = 0; p < k_se_ports; ++p) {
                if (sched_.server(p).tick_unit() && engaged) {
                    trace_.emit(obs::trace_event_kind::server_replenish, p,
                                sched_.server(p).budget());
                }
            }
        }
        next_unit_mark_ =
            (now / params_.unit_cycles + 1) * params_.unit_cycles;
    }

    if (degraded_) degraded_cycles_.inc();

    // Per-port demand accounting for the supply-conformance watchdog: a
    // port is backlogged while its buffer holds work, stalled or not --
    // supply lost to a fault is still owed to the backlogged port.
    for (std::uint32_t p = 0; p < k_se_ports; ++p) {
        if (!buffers_[p].empty()) port_backlogged_cycles_[p].inc();
        port_queue_depth_[p].set(
            static_cast<std::int64_t>(buffers_[p].size()));
    }

    // Injected campaign stall window: the element forwards nothing
    // (counters keep running: the supply lost to the fault is genuinely
    // lost).
    const bool stalled = stall_faults_.active(now);
    if (stalled != stalled_now_) {
        trace_.emit(stalled ? obs::trace_event_kind::fault_inject
                            : obs::trace_event_kind::fault_recover);
    }
    stalled_now_ = stalled;
    if (stalled_now_) {
        fault_stall_cycles_.inc();
        return;
    }

    if (!sink_ready_()) return;

    // Degraded mode suspends the budgeted servers entirely: pure
    // work-conserving nested EDF until the health monitor recovers us.
    bool budgeted = !degraded_;
    std::optional<std::uint32_t> pick;
    if (!degraded_) pick = sched_.pick_budgeted(buffers_);
    if (!pick &&
        (degraded_ || params_.work_conserving || !sched_.configured())) {
        pick = pick_fallback();
        budgeted = false;
    }
    if (!pick) return;

    mem_request granted = buffers_[*pick].fetch_earliest();
    wait_stats_.add(static_cast<double>(now - granted.hop_arrival));
    // The next hop sees the grant one cycle later under both engines: a
    // dataflow timestamp on the request, not a scheduling cadence.
    // detlint:allow(cycle-step): one-cycle grant hop latency
    granted.hop_arrival = now + 1;
    granted.hops.stamp_grant(tree_level_, now);
    trace_.emit(obs::trace_event_kind::request_grant, granted.id, *pick);

    // Blocking-latency measurement: requests queued anywhere in this SE
    // with an earlier deadline than the granted one wait a cycle.
    for (auto& buf : buffers_) {
        buf.charge_blocked(granted.level_deadline);
    }

    if (budgeted && sched_.configured()) {
        server_task& server = sched_.server(*pick);
        server.consume();
        if (!server.has_budget()) {
            trace_.emit(obs::trace_event_kind::server_exhaust, *pick);
        }
        // Iterative compositional scheduling: the request now competes at
        // the next level as the forwarding server job, so it inherits the
        // server's current absolute deadline.
        granted.level_deadline =
            now + static_cast<cycle_t>(server.units_to_deadline()) *
                      params_.unit_cycles;
        forwarded_budgeted_.inc();
    }

    forwarded_.inc();
    port_forwarded_[*pick].inc();
    sink_push_(std::move(granted));
}

void scale_element::commit() {
    for (auto& buf : buffers_) buf.commit();
}

cycle_t scale_element::next_event(cycle_t now) const {
    // Per-cycle work pending: buffered/staged requests (arbitration,
    // backlog accounting), degraded-cycle counting, or an open stall
    // window (fault_stall_cycles_ counts per cycle).
    if (degraded_ || stalled_now_) return now + 1;
    for (const auto& buf : buffers_) {
        if (!buf.quiet()) return now + 1;
    }
    // Cool-down tick: the depth gauges are written at tick start, so the
    // tick whose grant drained the last buffer left them one value
    // behind. One more tick records the drained depth -- exactly the
    // write lockstep makes on the following cycle -- before sleeping.
    for (const auto& g : port_queue_depth_) {
        if (g.value() != 0) return now + 1;
    }
    // Otherwise only the stall schedule can touch this element without a
    // push (which wakes it). Server counters catch up on the next tick.
    return stall_faults_.wake_horizon(now);
}

void scale_element::reset() {
    for (auto& buf : buffers_) buf.clear();
    sched_.reset_counters();
    stall_faults_.reset();
    degraded_ = false;
    stalled_now_ = false;
    forwarded_.reset();
    forwarded_budgeted_.reset();
    for (std::uint32_t p = 0; p < k_se_ports; ++p) {
        port_forwarded_[p].reset();
        port_backlogged_cycles_[p].reset();
        port_queue_depth_[p].reset();
    }
    fault_stall_cycles_.reset();
    degraded_cycles_.reset();
    wait_stats_.reset();
    next_unit_mark_ = 0;
    pending_resync_ = false;
    wake();
}

} // namespace bluescale::core
