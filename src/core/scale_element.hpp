// Scale Element (paper Secs. 3-4, Fig. 2(b)): the isomorphic building
// block of BlueScale. Four local client ports feed random access buffers
// (low-level priority queue); a local scheduler of four server tasks
// (upper-level priority queue) decides, every cycle, which buffered
// request to forward to the local provider port.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/local_scheduler.hpp"
#include "core/random_access_buffer.hpp"
#include "mem/request.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "sim/fault.hpp"
#include "stats/summary.hpp"

namespace bluescale::core {

struct se_params {
    /// Interconnect cycles per analysis time unit (server counters tick
    /// once per unit; one transaction consumes one budget unit).
    std::uint32_t unit_cycles = 4;
    /// Depth of each port's random access buffer.
    std::size_t buffer_depth = 8;
    /// When no budgeted server is ready, forward the earliest-deadline
    /// buffered request anyway (slack reclamation). Also the behaviour of
    /// an SE with no configured interfaces (pure nested EDF).
    bool work_conserving = true;
    server_policy policy = server_policy::gedf;
};

class scale_element : public component {
public:
    /// Can the local provider port take one request this cycle?
    using sink_ready_fn = std::function<bool()>;
    /// Hand one request to the local provider.
    using sink_push_fn = std::function<void(mem_request)>;

    scale_element(std::string name, se_params params = {});

    /// Wires the local provider port (parent SE port or the memory).
    void bind_sink(sink_ready_fn ready, sink_push_fn push);

    /// Re-homes this element's counters into `reg` under
    /// "<prefix>/..." / "<prefix>/port<p>/..." (e.g. "se.2.1") and
    /// attaches the trace stream; call before the trial starts.
    void bind_observability(obs::registry& reg, const std::string& prefix,
                            obs::tracer tracer);

    /// Distance from the tree root (root SE = 0); drives the per-level
    /// grant stamps in mem_request::hops.
    void set_tree_level(std::uint32_t level) { tree_level_ = level; }
    [[nodiscard]] std::uint32_t tree_level() const { return tree_level_; }

    // --- local client ports ---------------------------------------------
    [[nodiscard]] bool port_can_accept(std::uint32_t port) const {
        return buffers_[port].can_load();
    }
    /// Arms `hook` on the port buffer's full -> non-full transition (see
    /// random_access_buffer::set_drain_hook); lets the attached client
    /// sleep while the port is backpressured.
    void set_port_drain_hook(std::uint32_t port, sim::wake_hook hook) {
        buffers_[port].set_drain_hook(hook);
    }
    void port_push(std::uint32_t port, mem_request r) {
        // First fabric hop only: stamp the RAB admission cycle (the
        // client stamped hop_arrival when it issued).
        if (r.hops.rab_admit == k_cycle_never) r.hops.rab_admit = r.hop_arrival;
        trace_.emit(obs::trace_event_kind::request_enqueue, r.id, port);
        buffers_[port].load(std::move(r));
    }

    /// Programs server tau_port = (Pi, Theta) in time units; switches the
    /// SE into budgeted compositional mode.
    void configure_port(std::uint32_t port, std::uint32_t period_units,
                        std::uint32_t budget_units);

    void tick(cycle_t now) override;
    void commit() override;

    /// Event-engine horizon. The element must stay on the per-cycle
    /// cadence while it has work or per-cycle accounting (buffered or
    /// staged requests, degraded-mode or stall counters); otherwise the
    /// only thing that can touch it unprompted is the stall-fault
    /// schedule. Server counters are caught up in closed form on the
    /// next tick (see next_unit_mark_), so sleeping over unit boundaries
    /// is exact.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    /// Drops buffered requests and restarts counters (between trials).
    void reset();

    /// Campaign-driven stall schedule (fault_kind::se_stall slice for
    /// this element). The only failure-injection path since the legacy
    /// se_params periodic knob was removed: campaigns are reproducible
    /// under parallel trial sweeps and compose with the other fault kinds.
    void set_stall_faults(sim::fault_window w) {
        stall_faults_ = std::move(w);
        wake(); // the fresh schedule invalidates any cached horizon
    }
    /// Was the element inside an injected stall window at its last tick?
    /// Hazard probe for the reconfiguration manager: a (Pi, Theta) commit
    /// that lands on a stalled element is rolled back.
    [[nodiscard]] bool stalled_now() const { return stalled_now_; }

    /// Degraded mode (graceful degradation): the budgeted compositional
    /// servers are bypassed and the SE runs pure work-conserving nested
    /// EDF. Forwarded requests keep their incoming level deadline -- the
    /// (Pi, Theta) guarantee is suspended, but no supply is wasted while
    /// the element is unhealthy. Flipped by core::health_monitor.
    void set_degraded(bool on) {
        if (on != degraded_) {
            trace_.emit(on ? obs::trace_event_kind::se_degrade
                           : obs::trace_event_kind::se_recover);
            wake(); // degraded-cycle accounting is per-cycle
        }
        degraded_ = on;
    }
    [[nodiscard]] bool degraded() const { return degraded_; }
    /// Cycles this element has spent in degraded mode.
    [[nodiscard]] std::uint64_t degraded_cycles() const {
        return degraded_cycles_.value();
    }
    /// Campaign stall windows entered so far (injected-fault counter).
    [[nodiscard]] std::uint64_t stall_windows_entered() const {
        return stall_faults_.activations();
    }

    [[nodiscard]] const local_scheduler& scheduler() const { return sched_; }
    [[nodiscard]] const random_access_buffer& buffer(std::uint32_t p) const {
        return buffers_[p];
    }
    [[nodiscard]] std::uint64_t forwarded() const {
        return forwarded_.value();
    }
    [[nodiscard]] std::uint64_t forwarded_budgeted() const {
        return forwarded_budgeted_.value();
    }
    /// Requests forwarded on behalf of one local client port (budgeted or
    /// slack). The supply watchdog differences this over sliding windows
    /// against the port's sbf(Pi, Theta) guarantee.
    [[nodiscard]] std::uint64_t port_forwarded(std::uint32_t port) const {
        return port_forwarded_[port].value();
    }
    /// Cycles the port's buffer held at least one request (the port was
    /// demanding supply). A window counts toward supply conformance only
    /// when the port was backlogged throughout -- sbf guarantees service
    /// to pending work, not to an idle client.
    [[nodiscard]] std::uint64_t port_backlogged_cycles(std::uint32_t port)
        const {
        return port_backlogged_cycles_[port].value();
    }
    [[nodiscard]] const se_params& params() const { return params_; }

    /// Queueing time (arrival at this SE -> grant) of forwarded requests.
    [[nodiscard]] const stats::sample_set& wait_stats() const {
        return wait_stats_.values();
    }

    /// Cycles lost to injected stall faults.
    [[nodiscard]] std::uint64_t fault_stall_cycles() const {
        return fault_stall_cycles_.value();
    }

private:
    /// Work-conserving fallback: port whose buffer holds the earliest
    /// deadline request; nullopt if all buffers are empty.
    [[nodiscard]] std::optional<std::uint32_t> pick_fallback() const;

    se_params params_;
    std::array<random_access_buffer, k_se_ports> buffers_;
    local_scheduler sched_;
    /// The next unit boundary this element has not yet accounted for.
    /// tick() catches the server counters up over every boundary in
    /// (previous mark, now] -- slept boundaries in closed form, the
    /// current cycle's boundary (if any) through the traced per-port
    /// path -- so unit accounting is identical whether or not the event
    /// engine let the element sleep.
    cycle_t next_unit_mark_ = 0;
    /// configure_port() during a run wiped the counters; the stale
    /// boundary backlog in next_unit_mark_ must not be applied to them.
    bool pending_resync_ = false;
    sink_ready_fn sink_ready_;
    sink_push_fn sink_push_;
    sim::fault_window stall_faults_;
    bool degraded_ = false;
    bool stalled_now_ = false;
    std::uint32_t tree_level_ = 0;
    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    obs::counter forwarded_;
    obs::counter forwarded_budgeted_;
    std::array<obs::counter, k_se_ports> port_forwarded_;
    std::array<obs::counter, k_se_ports> port_backlogged_cycles_;
    std::array<obs::gauge, k_se_ports> port_queue_depth_;
    obs::counter fault_stall_cycles_;
    obs::counter degraded_cycles_;
    obs::sample wait_stats_;
    obs::tracer trace_;
};

} // namespace bluescale::core
