#include "core/supply_watchdog.hpp"

#include <cassert>
#include <cmath>

#include "analysis/periodic_resource.hpp"
#include "core/bluescale_ic.hpp"

namespace bluescale::core {

const char* watchdog_alarm_name(watchdog_alarm a) {
    switch (a) {
    case watchdog_alarm::supply_shortfall: return "supply_shortfall";
    case watchdog_alarm::hard_deadline_miss: return "hard_deadline_miss";
    case watchdog_alarm::overload_shed: return "overload_shed";
    case watchdog_alarm::overload_restore: return "overload_restore";
    }
    return "?";
}

supply_watchdog::supply_watchdog(bluescale_ic& fabric,
                                 const analysis::tree_selection* selection,
                                 watchdog_config cfg)
    : component("supply_watchdog"), fabric_(fabric), selection_(selection),
      cfg_(cfg), next_check_(cfg.check_period),
      ports_(static_cast<std::size_t>(fabric.total_ses()) * k_se_ports),
      restore_after_(cfg.restore_windows),
      own_(std::make_unique<obs::registry>()) {
    bind_observability(*own_, obs::tracer{});
}

void supply_watchdog::bind_observability(obs::registry& reg,
                                         obs::tracer tracer) {
    windows_checked_ = reg.make_counter("watchdog/windows_checked");
    violating_windows_ = reg.make_counter("watchdog/violating_windows");
    supply_shortfall_alarms_ =
        reg.make_counter("watchdog/supply_shortfall_alarms");
    deadline_alarms_ = reg.make_counter("watchdog/deadline_alarms");
    shed_events_ = reg.make_counter("watchdog/shed_events");
    restore_events_ = reg.make_counter("watchdog/restore_events");
    shed_client_cycles_ = reg.make_counter("watchdog/shed_client_cycles");
    hard_misses_ = reg.make_counter("watchdog/hard_misses");
    best_effort_misses_ = reg.make_counter("watchdog/best_effort_misses");
    trace_ = tracer;
}

void supply_watchdog::track_client(std::uint32_t client, client_class cls,
                                   missed_fn missed, shed_fn shed) {
    tracked_client t;
    t.id = client;
    t.cls = cls;
    t.missed = std::move(missed);
    t.shed = std::move(shed);
    clients_.push_back(std::move(t));
    // Pre-size the shed flags here, at assembly time, so set_shed() -- on
    // the health monitor's tick path -- never has to grow storage.
    if (client >= shed_clients_.size()) shed_clients_.resize(client + 1);
}

void supply_watchdog::raise(watchdog_alarm a, cycle_t now) {
    trace_.emit(obs::trace_event_kind::watchdog_alarm,
                static_cast<std::uint64_t>(a), now);
    if (on_alarm_) on_alarm_(a, now);
}

std::uint64_t supply_watchdog::supply_violations(cycle_t window_cycles) {
    if (selection_ == nullptr || selection_->levels.empty() ||
        window_cycles == 0) {
        return 0;
    }
    const std::uint32_t unit_cycles =
        fabric_.se_at(0, 0).params().unit_cycles;
    const std::uint64_t window_units = window_cycles / unit_cycles;

    std::uint64_t violations = 0;
    const auto& shape = fabric_.shape();
    std::size_t idx = 0;
    for (std::uint32_t l = 0; l <= shape.leaf_level; ++l) {
        for (std::uint32_t y = 0; y < shape.ses_at_level(l); ++y) {
            const scale_element& se = fabric_.se_at(l, y);
            for (std::uint32_t p = 0; p < k_se_ports; ++p, ++idx) {
                port_state& st = ports_[idx];
                const std::uint64_t fwd = se.port_forwarded(p);
                const std::uint64_t bkl = se.port_backlogged_cycles(p);
                const std::uint64_t d_fwd = fwd - st.last_forwarded;
                const std::uint64_t d_bkl = bkl - st.last_backlogged;
                st.last_forwarded = fwd;
                st.last_backlogged = bkl;

                const auto& iface = selection_->levels[l][y].ports[p];
                if (!iface || iface->budget == 0) continue;
                // A shed best-effort client's leaf port runs with its
                // budget donated: its (suspended) contract is exempt.
                if (l == shape.leaf_level && shedding_now_) {
                    const std::uint32_t c =
                        analysis::quadtree_shape::child_order(y, p);
                    if (c < shed_clients_.size() && shed_clients_[c]) {
                        continue;
                    }
                }
                // sbf guarantees service to PENDING work only: the window
                // counts when the port was backlogged throughout. Modeled
                // maintenance is budgeted out of the guarantee, so only
                // interference beyond the maintenance model can alarm.
                if (d_bkl < window_cycles) continue;
                const auto guarantee = static_cast<std::uint64_t>(
                    std::floor(cfg_.supply_margin *
                               static_cast<double>(analysis::maintenance_sbf(
                                   window_units, *iface,
                                   cfg_.maintenance))));
                if (d_fwd < guarantee) ++violations;
            }
        }
    }
    return violations;
}

void supply_watchdog::set_shed(bool on, cycle_t now) {
    if (on == shedding_now_) return;
    shedding_now_ = on;
    if (on) {
        shed_since_ = now;
        shed_events_.inc();
        trace_.emit(obs::trace_event_kind::shed_on);
        raise(watchdog_alarm::overload_shed, now);
    } else {
        restore_events_.inc();
        restore_after_ *= cfg_.restore_backoff;
        trace_.emit(obs::trace_event_kind::shed_off);
        raise(watchdog_alarm::overload_restore, now);
    }
    for (auto& c : clients_) {
        if (c.cls != client_class::best_effort) continue;
        assert(c.id < shed_clients_.size()); // sized in track_client()
        shed_clients_[c.id] = on;
        if (c.shed) c.shed(on);
        if (donate_) donate_(c.id, on);
    }
}

void supply_watchdog::check(cycle_t now) {
    const cycle_t window = now - last_check_;
    last_check_ = now;
    windows_checked_.inc();
    if (shedding_now_) {
        for (const auto& c : clients_) {
            if (c.cls == client_class::best_effort) {
                shed_client_cycles_.inc(window);
            }
        }
    }

    const std::uint64_t shortfalls = supply_violations(window);
    supply_shortfall_alarms_.inc(shortfalls);
    if (shortfalls > 0) raise(watchdog_alarm::supply_shortfall, now);

    std::uint64_t miss_alarms = 0;
    for (auto& c : clients_) {
        if (!c.missed) continue;
        const std::uint64_t m = c.missed();
        const std::uint64_t delta = m - c.last_missed;
        c.last_missed = m;
        c.total_missed = m;
        if (c.cls == client_class::hard) {
            hard_misses_.inc(delta);
            if (delta > cfg_.miss_tolerance) {
                ++miss_alarms;
                raise(watchdog_alarm::hard_deadline_miss, now);
            }
        } else {
            best_effort_misses_.inc(delta);
        }
    }
    deadline_alarms_.inc(miss_alarms);

    const bool violating = shortfalls > 0 || miss_alarms > 0;
    if (violating) {
        violating_windows_.inc();
        ++violating_streak_;
        clean_streak_ = 0;
    } else {
        violating_streak_ = 0;
        ++clean_streak_;
    }

    if (!cfg_.shedding) return;
    if (!shedding_now_ && violating_streak_ >= cfg_.shed_enter_windows) {
        set_shed(true, now);
        violating_streak_ = 0;
    } else if (shedding_now_ && clean_streak_ >= restore_after_) {
        set_shed(false, now);
        clean_streak_ = 0;
    }
}

void supply_watchdog::tick(cycle_t now) {
    if (now < next_check_) return;
    check(now);
    next_check_ = now + cfg_.check_period;
}

void supply_watchdog::reset() {
    for (auto& p : ports_) p = {};
    for (auto& c : clients_) {
        c.last_missed = 0;
        c.total_missed = 0;
    }
    shed_clients_.assign(shed_clients_.size(), false);
    violating_streak_ = 0;
    clean_streak_ = 0;
    restore_after_ = cfg_.restore_windows;
    shedding_now_ = false;
    shed_since_ = 0;
    last_check_ = 0;
    next_check_ = cfg_.check_period;
    wake(); // drop any cached horizon from the previous trial
    windows_checked_.reset();
    violating_windows_.reset();
    supply_shortfall_alarms_.reset();
    deadline_alarms_.reset();
    shed_events_.reset();
    restore_events_.reset();
    shed_client_cycles_.reset();
    hard_misses_.reset();
    best_effort_misses_.reset();
}

} // namespace bluescale::core
