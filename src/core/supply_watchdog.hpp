// Supply-conformance watchdog with overload shedding (robustness axis).
//
// The offline supply-conformance property (a backlogged port configured
// with (Pi, Theta) receives at least sbf(t) service in any window of t
// units -- tests/integration/test_supply_conformance.cpp) is enforced
// ONLINE here: every check window the watchdog differences each SE
// port's forwarded-transaction and backlogged-cycle counters and raises a
// typed supply_shortfall alarm when a fully backlogged port received less
// than its sbf guarantee. It also tracks deadline misses per admitted
// hard real-time client (hard_deadline_miss alarms).
//
// Sustained violation triggers OVERLOAD SHEDDING: every registered
// best-effort client is throttled -- its issue stream deferred (see
// workload::traffic_generator::set_shed) and its leaf server budget
// donated back to the fabric (reconfig_manager::donate_client_budget) --
// while admitted hard real-time clients keep their contracts. Restoration
// is hysteresis-controlled: a run of consecutive clean windows is
// required, and the run length backs off multiplicatively after every
// restore so a persistent overload cannot make the system oscillate
// between shed and restored at the check frequency.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/maintenance.hpp"
#include "analysis/tree_analysis.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"

namespace bluescale::core {

class bluescale_ic;

enum class watchdog_alarm : std::uint8_t {
    /// A fully backlogged SE port received less than margin * sbf(window).
    supply_shortfall,
    /// A hard real-time client missed more than miss_tolerance deadlines
    /// inside one window.
    hard_deadline_miss,
    /// Sustained violation: best-effort clients were shed.
    overload_shed,
    /// Hysteresis satisfied: best-effort clients were restored.
    overload_restore,
};

[[nodiscard]] const char* watchdog_alarm_name(watchdog_alarm a);

/// QoS class of a tracked client.
enum class client_class : std::uint8_t { hard, best_effort };

struct watchdog_config {
    /// Cycles per sliding conformance window (one check per window).
    cycle_t check_period = 1024;
    /// A backlogged port conforms while it receives at least this
    /// fraction of sbf(window) -- headroom for window-phase effects.
    double supply_margin = 0.9;
    /// Hard-client deadline misses tolerated per window.
    std::uint64_t miss_tolerance = 0;
    /// Consecutive violating windows before best-effort clients are shed.
    std::uint32_t shed_enter_windows = 2;
    /// Consecutive clean windows before shed clients are restored.
    std::uint32_t restore_windows = 4;
    /// restore_windows multiplier applied after every restore (hysteresis
    /// backoff: a recurring overload sheds again quickly but restores ever
    /// more cautiously, bounding shed/restore transitions to O(log T)).
    std::uint32_t restore_backoff = 2;
    /// Master switch: false = observe and alarm only, never shed.
    bool shedding = true;
    /// MODELED device maintenance (mem::to_maintenance_model): the
    /// conformance guarantee is the maintenance-corrected
    /// sbf(window - stolen(window)), so budgeted refresh/scrub/mitigation
    /// interference never alarms while *unmodeled* interference (e.g. a
    /// maintenance storm) still does -- and still triggers shedding. In
    /// analysis time units, like the selection's interfaces.
    analysis::maintenance_model maintenance = {};
};

/// Counter snapshot of a trial's supervision outcome (values read out of
/// obs handles; a result type, not mutable storage).
struct watchdog_report {
    std::uint64_t windows_checked = 0;
    std::uint64_t violating_windows = 0;
    std::uint64_t supply_shortfall_alarms = 0; ///< port-windows under sbf
    std::uint64_t deadline_alarms = 0;         ///< hard client-windows over tolerance
    std::uint64_t shed_events = 0;             ///< shed episodes entered
    std::uint64_t restore_events = 0;          ///< shed episodes exited
    /// Client-cycles best-effort clients spent shed (summed).
    std::uint64_t shed_client_cycles = 0;
    /// Deadline misses observed per class while supervised.
    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
};

class supply_watchdog : public component {
public:
    /// Deadline-miss probe for one client (usually client_stats::missed).
    using missed_fn = std::function<std::uint64_t()>;
    /// Throttle signal into the client's workload model.
    using shed_fn = std::function<void(bool)>;
    /// Budget donation hook (reconfig_manager::donate/restore).
    using donate_fn = std::function<void(std::uint32_t client, bool shed)>;
    using alarm_fn = std::function<void(watchdog_alarm, cycle_t)>;

    /// `selection` must outlive the watchdog and always point at the
    /// CURRENT committed selection (the reconfig manager updates it in
    /// place on commit).
    supply_watchdog(bluescale_ic& fabric,
                    const analysis::tree_selection* selection,
                    watchdog_config cfg = {});

    /// Registers a client for deadline tracking and (best-effort only)
    /// overload shedding. Call before the first tick.
    void track_client(std::uint32_t client, client_class cls,
                      missed_fn missed, shed_fn shed = nullptr);

    void set_donate_hook(donate_fn f) { donate_ = std::move(f); }
    void set_alarm_hook(alarm_fn f) { on_alarm_ = std::move(f); }

    void tick(cycle_t now) override;

    /// Event-engine horizon: a pure cadence -- nothing happens between
    /// checks, so the next one is the only wakeup needed.
    [[nodiscard]] cycle_t next_event(cycle_t) const override {
        return next_check_;
    }

    /// Re-homes the supervision counters into `reg` under "watchdog/..."
    /// and attaches the trace stream; call before the trial starts.
    void bind_observability(obs::registry& reg, obs::tracer tracer);

    /// Clears window tracking and the report (between trials).
    void reset();

    [[nodiscard]] const watchdog_config& config() const { return cfg_; }
    [[nodiscard]] watchdog_report report() const {
        return {windows_checked_.value(),      violating_windows_.value(),
                supply_shortfall_alarms_.value(), deadline_alarms_.value(),
                shed_events_.value(),          restore_events_.value(),
                shed_client_cycles_.value(),   hard_misses_.value(),
                best_effort_misses_.value()};
    }
    [[nodiscard]] bool shedding_now() const { return shedding_now_; }

private:
    struct port_state {
        std::uint64_t last_forwarded = 0;
        std::uint64_t last_backlogged = 0;
    };
    struct tracked_client {
        std::uint32_t id = 0;
        client_class cls = client_class::hard;
        missed_fn missed;
        shed_fn shed;
        std::uint64_t last_missed = 0;
        std::uint64_t total_missed = 0;
    };

    void check(cycle_t now);
    [[nodiscard]] std::uint64_t supply_violations(cycle_t window_cycles);
    void raise(watchdog_alarm a, cycle_t now);
    void set_shed(bool on, cycle_t now);

    bluescale_ic& fabric_;
    const analysis::tree_selection* selection_;
    watchdog_config cfg_;
    cycle_t next_check_;
    cycle_t last_check_ = 0;
    /// Per (SE linear index, port) window counters.
    std::vector<port_state> ports_;
    std::vector<tracked_client> clients_;
    std::uint32_t violating_streak_ = 0;
    std::uint32_t clean_streak_ = 0;
    /// Current restore requirement (grows by restore_backoff per restore).
    std::uint32_t restore_after_;
    bool shedding_now_ = false;
    cycle_t shed_since_ = 0;
    /// Indexed by client id: currently shed (supply checks exempt the
    /// donated leaf ports).
    std::vector<bool> shed_clients_;
    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    obs::counter windows_checked_;
    obs::counter violating_windows_;
    obs::counter supply_shortfall_alarms_;
    obs::counter deadline_alarms_;
    obs::counter shed_events_;
    obs::counter restore_events_;
    obs::counter shed_client_cycles_;
    obs::counter hard_misses_;
    obs::counter best_effort_misses_;
    obs::tracer trace_;
    donate_fn donate_;
    alarm_fn on_alarm_;
};

} // namespace bluescale::core
