#include "harness/analysis_service_experiment.hpp"

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "analysis/quadtree.hpp"
#include "harness/testbench.hpp"
#include "sim/fault.hpp"
#include "sim/reconfig_schedule.hpp"
#include "sim/trial_runner.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {

namespace {

struct trial_metrics {
    bool selection_feasible = false;
    bool drained = false;
    bool conserved = false;
    double miss_ratio = 0.0;

    svc::service_stats svc = {};
    std::uint64_t rejected_infeasible = 0;
    std::uint64_t rejected_overutilized = 0;
    std::uint64_t rejected_path_hazard = 0;
    std::uint64_t rolled_back = 0;
    std::uint64_t degraded_requests = 0;
    std::uint64_t stale_reevals = 0;
    std::vector<double> latencies;
    std::vector<double> eval_cycles;

    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
    std::uint64_t live_reconfigurations = 0;

    obs::snapshot metrics;   ///< when cfg.collect_metrics
    obs::trace_export trace; ///< when cfg.collect_trace, trial 0 only
};

/// Concrete task set for one storm event, a pure function of (trial
/// seed, event index) -- identical for every thread count and engine.
workload::memory_task_set
derive_event_taskset(const sim::reconfig_event& ev, double current_util,
                     std::uint64_t trial_seed, std::size_t event_index,
                     const workload::taskset_params& tmpl) {
    if (ev.action == sim::reconfig_action::leave) return {};
    double target = 0.0;
    switch (ev.action) {
    case sim::reconfig_action::scale_up:
    case sim::reconfig_action::scale_down:
        target = current_util * ev.magnitude;
        break;
    case sim::reconfig_action::join:
        target = ev.magnitude;
        break;
    case sim::reconfig_action::leave: break;
    }
    if (target <= 0.0) return {};
    rng er(substream(trial_seed, 0xEC0Full + event_index));
    workload::taskset_params p = tmpl;
    p.total_utilization = target;
    return workload::make_taskset(er, p);
}

trial_metrics run_trial(const svc_storm_config& cfg, std::uint32_t trial,
                        std::uint64_t trial_seed) {
    rng workload_rng(trial_seed);
    auto tasksets = workload::make_client_tasksets(
        workload_rng, cfg.n_clients, cfg.util_lo, cfg.util_hi, cfg.taskset);

    sim::reconfig_schedule_config sc;
    sc.seed = substream(trial_seed, 0x5EC0ull);
    sc.horizon = cfg.measure_cycles;
    sc.warmup = cfg.warmup;
    sc.events_per_kcycle = cfg.requests_per_kcycle;
    sc.n_clients = cfg.n_clients;
    const sim::reconfig_schedule schedule(sc);

    // Fabric faults (path hazards -> retries), a separate substream from
    // the worker faults so intensities can be tuned independently.
    sim::fault_campaign_config pfc;
    pfc.seed = substream(trial_seed, 0xFA171ull);
    pfc.horizon = cfg.measure_cycles;
    pfc.events_per_kcycle = cfg.path_fault_intensity;
    pfc.n_elements = analysis::make_quadtree_shape(cfg.n_clients).total_ses();
    const sim::fault_campaign path_faults(pfc);

    testbench_options opts;
    opts.n_clients = cfg.n_clients;
    opts.memctrl = cfg.memctrl;
    opts.faults = path_faults.empty() ? nullptr : &path_faults;
    opts.client_utilizations.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    std::vector<analysis::task_set> rt_sets;
    rt_sets.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        rt_sets.push_back(workload::to_rt_tasks(ts));
    }
    opts.rt_sets = &rt_sets;
    opts.reconfig = cfg.reconfig;

    testbench tb(ic_kind::bluescale, opts);

    // The service under test, ticking after the manager (later add
    // order), so it observes manager resolutions the same cycle.
    svc::service_config scfg = cfg.service;
    scfg.seed = substream(trial_seed, 0x5E17ull);
    svc::analysis_service service(*tb.reconfig(), scfg);
    service.bind_observability(
        tb.metrics(), tb.trace().register_component("analysis_service"));
    tb.sim().add(service);

    // Worker crash/stall campaign (zero weights for every fabric kind, so
    // these two substreams never interact).
    if (cfg.worker_fault_intensity > 0.0) {
        sim::fault_campaign_config wfc;
        wfc.seed = substream(trial_seed, 0xFA17Cull);
        wfc.horizon = cfg.measure_cycles;
        wfc.events_per_kcycle = cfg.worker_fault_intensity;
        wfc.se_stall_weight = 0.0;
        wfc.link_drop_weight = 0.0;
        wfc.dram_error_weight = 0.0;
        wfc.backpressure_weight = 0.0;
        wfc.worker_crash_weight = cfg.worker_crash_weight;
        wfc.worker_stall_weight = cfg.worker_stall_weight;
        wfc.n_workers = std::max<std::uint32_t>(1, scfg.workers);
        service.install_faults(sim::fault_campaign(wfc));
    }

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    clients.reserve(cfg.n_clients);
    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = tb.unit_cycles();
    tg_cfg.retry_timeout_cycles = cfg.retry_timeout_cycles;
    tg_cfg.max_retries = cfg.max_retries;
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], tb.ic(), substream(trial_seed, c), tg_cfg));
        auto* client = clients.back().get();
        client->bind_observability(tb.metrics());
        tb.add_client(c, *client, [client](mem_request&& r) {
            client->on_response(std::move(r));
        });
    }

    trial_metrics out;
    out.selection_feasible = tb.selection_feasible();

    // Live task-set swap at the committed notification; the service's
    // completion hook keys it by service request id.
    std::map<std::uint64_t, workload::memory_task_set> staged_swaps;
    service.set_complete_hook([&](const svc::request_record& rec,
                                  const analysis::task_set&) {
        auto it = staged_swaps.find(rec.id);
        if (it == staged_swaps.end()) return;
        if (rec.outcome == svc::request_outcome::committed) {
            clients[rec.client]->reconfigure_tasks(std::move(it->second),
                                                   rec.finished_at);
        }
        staged_swaps.erase(it);
    });

    // The storm: run to each scheduled event and submit it to the
    // SERVICE (not the manager directly) -- queue bound, deadlines,
    // retries, breaker and cache all sit in the path.
    for (std::size_t i = 0; i < schedule.events().size(); ++i) {
        const sim::reconfig_event& ev = schedule.events()[i];
        if (ev.at >= cfg.measure_cycles) break;
        if (ev.at > tb.now()) tb.run(ev.at - tb.now());
        auto tasks = derive_event_taskset(
            ev, workload::utilization(clients[ev.client]->tasks()),
            trial_seed, i, cfg.taskset);
        const std::uint64_t id =
            service.submit(ev.client, workload::to_rt_tasks(tasks), tb.now());
        staged_swaps.emplace(id, std::move(tasks));
    }
    if (tb.now() < cfg.measure_cycles) tb.run(cfg.measure_cycles - tb.now());

    // Drain: every request must reach a terminal outcome.
    out.drained = tb.run_until(
        [&] { return service.idle() && tb.reconfig()->backlog() == 0; },
        cfg.drain_cycles);

    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients[c]->finalize(tb.now());
        const auto& s = clients[c]->stats();
        if (c + cfg.best_effort_clients >= cfg.n_clients) {
            out.best_effort_misses += s.missed();
        } else {
            out.hard_misses += s.missed();
        }
        out.live_reconfigurations += s.reconfigurations();
    }
    std::uint64_t missed = 0;
    std::uint64_t accounted = 0;
    for (const auto& c : clients) {
        missed += c->stats().missed();
        accounted += c->stats().completed() + c->stats().abandoned();
    }
    out.miss_ratio = accounted == 0 ? 0.0
                                    : static_cast<double>(missed) /
                                          static_cast<double>(accounted);

    out.svc = service.stats();
    out.stale_reevals = tb.reconfig()->stats().stale_reevals;

    // Conservation: submitted == shed + expired + rejected + committed,
    // and every record carries exactly one terminal outcome.
    out.conserved =
        out.svc.submitted == out.svc.shed + out.svc.expired +
                                 out.svc.rejected + out.svc.committed &&
        out.svc.submitted == service.records().size();
    for (const auto& rec : service.records()) {
        if (rec.outcome == svc::request_outcome::pending) {
            out.conserved = false;
        }
        if (rec.degraded &&
            rec.outcome != svc::request_outcome::shed) {
            ++out.degraded_requests;
        }
        if (rec.outcome == svc::request_outcome::rejected) {
            switch (rec.reject_reason) {
            case core::admission_outcome::rejected_infeasible:
                ++out.rejected_infeasible;
                break;
            case core::admission_outcome::rejected_overutilized:
                ++out.rejected_overutilized;
                break;
            case core::admission_outcome::rejected_path_hazard:
                ++out.rejected_path_hazard;
                break;
            case core::admission_outcome::rolled_back:
                ++out.rolled_back;
                break;
            default: break;
            }
        }
        if (rec.outcome != svc::request_outcome::shed &&
            rec.outcome != svc::request_outcome::pending) {
            out.latencies.push_back(
                static_cast<double>(rec.finished_at - rec.submitted_at));
        }
    }
    for (double x : tb.metrics()
                        .make_sample("svc/eval_cycles")
                        .values()
                        .samples()) {
        out.eval_cycles.push_back(x);
    }

    if (cfg.collect_metrics) out.metrics = tb.metrics().take_snapshot();
    if (cfg.collect_trace && trial == 0) out.trace = tb.trace().export_all();
    return out;
}

} // namespace

svc_storm_result run_svc_storm(const svc_storm_config& cfg) {
    svc_storm_result result;
    result.n_clients = cfg.n_clients;
    result.trials = cfg.trials;

    // Trials are independent and returned in trial order, so this
    // aggregation is bit-identical for any thread count.
    const sim::trial_runner runner(cfg.threads);
    auto per_trial = runner.run(cfg.trials, [&](std::uint32_t t) {
        return run_trial(cfg, t, cfg.seed + t);
    });
    for (const auto& m : per_trial) {
        if (m.selection_feasible) ++result.feasible_trials;
        if (m.drained) ++result.drained_trials;
        if (m.conserved) ++result.conserved_trials;
        result.miss_ratio.add(m.miss_ratio);
        result.submitted += m.svc.submitted;
        result.accepted += m.svc.accepted;
        result.shed += m.svc.shed;
        result.expired += m.svc.expired;
        result.committed += m.svc.committed;
        result.rejected += m.svc.rejected;
        result.rejected_infeasible += m.rejected_infeasible;
        result.rejected_overutilized += m.rejected_overutilized;
        result.rejected_path_hazard += m.rejected_path_hazard;
        result.rolled_back += m.rolled_back;
        result.retries += m.svc.retries;
        result.requeues += m.svc.requeues;
        result.worker_crashes += m.svc.worker_crashes;
        result.worker_stall_cycles += m.svc.worker_stall_cycles;
        result.cache_hits += m.svc.cache_hits;
        result.cache_misses += m.svc.cache_misses;
        result.cache_invalidations += m.svc.cache_invalidations;
        result.degraded_evals += m.svc.degraded_evals;
        result.degraded_requests += m.degraded_requests;
        result.breaker_trips += m.svc.breaker_trips;
        result.stale_reevals += m.stale_reevals;
        for (double l : m.latencies) result.latency_cycles.add(l);
        for (double e : m.eval_cycles) result.eval_cycles.add(e);
        result.hard_misses += m.hard_misses;
        result.best_effort_misses += m.best_effort_misses;
        result.live_reconfigurations += m.live_reconfigurations;
        if (cfg.collect_metrics) result.metrics.merge(m.metrics);
    }
    if (cfg.collect_trace && !per_trial.empty()) {
        result.trace = std::move(per_trial.front().trace);
    }

    obs::registry agg;
    const auto put_counter = [&agg](const char* name, std::uint64_t v) {
        agg.make_counter(std::string("svc_exp/") + name).inc(v);
    };
    const auto put_real = [&agg](const char* name, double v) {
        agg.make_real(std::string("svc_exp/") + name).set(v);
    };
    const auto put_samples = [&agg](const char* name,
                                    const stats::sample_set& s) {
        auto h = agg.make_sample(std::string("svc_exp/") + name);
        for (double x : s.samples()) h.add(x);
    };
    put_counter("submitted", result.submitted);
    put_counter("accepted", result.accepted);
    put_counter("shed", result.shed);
    put_counter("expired", result.expired);
    put_counter("committed", result.committed);
    put_counter("rejected", result.rejected);
    put_counter("rejected_infeasible", result.rejected_infeasible);
    put_counter("rejected_overutilized", result.rejected_overutilized);
    put_counter("rejected_path_hazard", result.rejected_path_hazard);
    put_counter("rolled_back", result.rolled_back);
    put_counter("retries", result.retries);
    put_counter("requeues", result.requeues);
    put_counter("worker_crashes", result.worker_crashes);
    put_counter("worker_stall_cycles", result.worker_stall_cycles);
    put_counter("cache_hits", result.cache_hits);
    put_counter("cache_misses", result.cache_misses);
    put_counter("cache_invalidations", result.cache_invalidations);
    put_real("cache_hit_ratio", result.cache_hit_ratio());
    put_counter("degraded_evals", result.degraded_evals);
    put_counter("degraded_requests", result.degraded_requests);
    put_counter("breaker_trips", result.breaker_trips);
    put_counter("stale_reevals", result.stale_reevals);
    put_samples("latency_cycles", result.latency_cycles);
    put_samples("eval_cycles", result.eval_cycles);
    put_samples("miss_ratio", result.miss_ratio);
    put_counter("hard_misses", result.hard_misses);
    put_counter("best_effort_misses", result.best_effort_misses);
    put_counter("live_reconfigurations", result.live_reconfigurations);
    put_counter("feasible_trials", result.feasible_trials);
    put_counter("drained_trials", result.drained_trials);
    put_counter("conserved_trials", result.conserved_trials);
    result.totals = agg.take_snapshot();
    return result;
}

} // namespace bluescale::harness
