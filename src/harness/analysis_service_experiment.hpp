// Admission-storm experiment for the hardened analysis service
// (robustness extension, not a paper figure): a seed-driven storm of
// client task-change requests is fired at svc::analysis_service -- the
// bounded-queue, multi-worker admission server in front of
// core::reconfig_manager -- while a worker-fault campaign crashes and
// stalls its workers and (optionally) a fabric fault campaign forces
// path-hazard retries. The driver measures the service's overload
// behavior: shedding with hysteresis, deadline expiry, retry/backoff,
// circuit-breaker degraded-precision fallback, result-cache hit rates,
// and exactly-once crash re-queues -- and checks the conservation
// invariant (every request ends in exactly one of committed / rejected /
// expired / shed).
//
// Determinism: the storm schedule, worker faults, and retry jitter are
// all substreams of the trial seed; runs are bit-identical for any
// --threads setting and for the event vs lockstep engines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/reconfig_manager.hpp"
#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"
#include "svc/analysis_service.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::harness {

struct svc_storm_config {
    std::uint32_t n_clients = 16;
    std::uint32_t trials = 8;
    cycle_t measure_cycles = 60'000;
    double util_lo = 0.70;
    double util_hi = 0.90;
    std::uint64_t seed = 1;
    /// Worker threads for the trial sweep (0 = all hardware threads).
    /// Results are bit-identical for any setting; see sim::trial_runner.
    unsigned threads = 1;
    workload::taskset_params taskset = {
        .n_tasks = 4,
        .total_utilization = 0.05, // overridden per trial by util_lo/hi
        .min_period_units = 40,
        .max_period_units = 600,
        .write_fraction = 0.3,
    };
    memctrl_config memctrl = {};

    /// Expected service requests per 1000 cycles (storm intensity).
    double requests_per_kcycle = 2.0;
    cycle_t warmup = 2'000;

    /// Service policy under test (workers, queue bound, deadlines,
    /// retry/backoff, breaker, cache). The service seed is re-derived per
    /// trial.
    svc::service_config service = {};
    core::reconfig_config reconfig = {};

    /// Worker-fault campaign intensity (crash + stall events per 1000
    /// cycles; 0 = reliable workers).
    double worker_fault_intensity = 0.0;
    double worker_crash_weight = 1.0;
    double worker_stall_weight = 1.0;
    /// Fabric fault campaign intensity (SE stalls etc.), to force
    /// path-hazard rejections and exercise the retry path.
    double path_fault_intensity = 0.0;

    /// The LAST this-many client ids are best-effort; the rest are hard
    /// real-time (their deadline misses are the acceptance criterion).
    std::uint32_t best_effort_clients = 4;
    cycle_t retry_timeout_cycles = 2048;
    std::uint32_t max_retries = 3;

    /// Budget for draining the service + manager after the storm ends.
    cycle_t drain_cycles = 50'000;

    /// Snapshot each trial's obs::registry and merge them, in trial
    /// order, into svc_storm_result::metrics (--metrics).
    bool collect_metrics = false;
    /// Export trial 0's event trace into svc_storm_result::trace.
    bool collect_trace = false;
};

struct svc_storm_result {
    std::uint32_t n_clients = 0;
    std::uint32_t trials = 0;
    std::uint32_t feasible_trials = 0;
    /// Trials where the service and manager fully drained inside the
    /// budget (a stuck request would break this and the conservation
    /// check below).
    std::uint32_t drained_trials = 0;
    /// Trials where submitted == shed + expired + rejected + committed
    /// and every record carries a terminal outcome (exactly-once).
    std::uint32_t conserved_trials = 0;

    // --- service outcomes ------------------------------------------------
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t committed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rejected_infeasible = 0;
    std::uint64_t rejected_overutilized = 0;
    std::uint64_t rejected_path_hazard = 0;
    std::uint64_t rolled_back = 0;

    // --- robustness machinery -------------------------------------------
    std::uint64_t retries = 0;
    std::uint64_t requeues = 0;
    std::uint64_t worker_crashes = 0;
    std::uint64_t worker_stall_cycles = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_invalidations = 0;
    std::uint64_t degraded_evals = 0;
    std::uint64_t degraded_requests = 0; ///< requests answered degraded
    std::uint64_t breaker_trips = 0;
    std::uint64_t stale_reevals = 0; ///< manager-side transparent re-runs

    stats::sample_set latency_cycles; ///< submit -> terminal outcome
    stats::sample_set eval_cycles;    ///< modeled worker busy time

    // --- client-side outcome --------------------------------------------
    stats::sample_set miss_ratio;
    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
    std::uint64_t live_reconfigurations = 0;

    /// Aggregates re-expressed as obs metrics ("svc_exp/<name>") for the
    /// bench driver's --csv cells (obs::metric_cells).
    obs::snapshot totals;
    /// Per-trial registry snapshots merged in trial order
    /// (cfg.collect_metrics); byte-identical across --threads settings.
    obs::snapshot metrics;
    /// Trial 0's event trace (cfg.collect_trace).
    obs::trace_export trace;

    [[nodiscard]] double cache_hit_ratio() const {
        const std::uint64_t total = cache_hits + cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(total);
    }
};

/// Runs cfg.trials independent storm trials (BlueScale only -- the
/// service fronts the BlueScale reconfiguration manager).
[[nodiscard]] svc_storm_result run_svc_storm(const svc_storm_config& cfg);

} // namespace bluescale::harness
