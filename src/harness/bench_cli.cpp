#include "harness/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sim/simulator.hpp"

namespace bluescale::harness {

namespace {

[[noreturn]] void usage_and_exit(const char* argv0, const char* what,
                                 const bench_options& defaults, int code) {
    std::fprintf(
        stderr,
        "%s -- %s\n"
        "usage: %s [--trials N] [--cycles N] [--threads N] [--seed N]"
        " [--csv PATH] [--metrics PATH] [--trace PATH] [--profile]"
        " [--lockstep]\n"
        "  --trials N     trials per configuration (default %u)\n"
        "  --cycles N     simulated cycles per trial (default %llu)\n"
        "  --threads N    worker threads for the trial sweep; 0 = all cores"
        " (default %u)\n"
        "  --seed N       base RNG seed (default %llu)\n"
        "  --csv PATH     also write machine-readable rows to PATH\n"
        "  --metrics PATH write the merged obs metrics snapshot (CSV)\n"
        "  --trace PATH   write the trial-0 event trace (.json = Chrome"
        " trace JSON, else CSV)\n"
        "  --profile      report simulator wall-clock profile after the"
        " run\n"
        "  --lockstep     force the cycle-stepped fallback engine"
        " (results are byte-identical to the event engine)\n"
        "Legacy positional arguments are still accepted where the driver"
        " historically took them.\n",
        argv0, what, argv0, defaults.trials,
        static_cast<unsigned long long>(defaults.measure_cycles),
        defaults.threads,
        static_cast<unsigned long long>(defaults.seed));
    std::exit(code);
}

std::uint64_t parse_u64(const char* argv0, const char* what,
                        const bench_options& defaults, const char* flag,
                        const char* text) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: %s expects a non-negative integer, got"
                             " '%s'\n",
                     argv0, flag, text);
        usage_and_exit(argv0, what, defaults, 2);
    }
    return v;
}

} // namespace

bench_options parse_bench_cli(int argc, char** argv,
                              const bench_options& defaults,
                              std::initializer_list<bench_arg> positional,
                              const char* what) {
    bench_options opts = defaults;
    auto next_positional = positional.begin();

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s expects a value\n", argv[0],
                             arg);
                usage_and_exit(argv[0], what, defaults, 2);
            }
            return argv[++i];
        };

        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            usage_and_exit(argv[0], what, defaults, 0);
        } else if (std::strcmp(arg, "--trials") == 0) {
            opts.trials = static_cast<std::uint32_t>(
                parse_u64(argv[0], what, defaults, arg, value()));
        } else if (std::strcmp(arg, "--cycles") == 0) {
            opts.measure_cycles = static_cast<cycle_t>(
                parse_u64(argv[0], what, defaults, arg, value()));
        } else if (std::strcmp(arg, "--threads") == 0) {
            opts.threads = static_cast<unsigned>(
                parse_u64(argv[0], what, defaults, arg, value()));
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.seed = parse_u64(argv[0], what, defaults, arg, value());
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.csv_path = value();
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opts.metrics_path = value();
        } else if (std::strcmp(arg, "--trace") == 0) {
            opts.trace_path = value();
        } else if (std::strcmp(arg, "--profile") == 0) {
            opts.profile = true;
        } else if (std::strcmp(arg, "--lockstep") == 0) {
            opts.lockstep = true;
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
            usage_and_exit(argv[0], what, defaults, 2);
        } else if (next_positional != positional.end()) {
            switch (*next_positional++) {
            case bench_arg::trials:
                opts.trials = static_cast<std::uint32_t>(parse_u64(
                    argv[0], what, defaults, "[trials]", arg));
                break;
            case bench_arg::cycles:
                opts.measure_cycles = static_cast<cycle_t>(parse_u64(
                    argv[0], what, defaults, "[cycles]", arg));
                break;
            case bench_arg::csv:
                opts.csv_path = arg;
                break;
            }
        } else {
            std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                         arg);
            usage_and_exit(argv[0], what, defaults, 2);
        }
    }
    // Applied here so every driver honours the flag without plumbing it
    // through its experiment config: all simulators the run constructs
    // pick the default engine up.
    if (opts.lockstep) {
        simulator::set_default_engine(simulator::engine::lockstep);
    }
    return opts;
}

std::unique_ptr<stats::csv_writer>
open_bench_csv(const bench_options& opts, std::vector<std::string> headers) {
    if (opts.csv_path.empty()) return nullptr;
    auto csv = std::make_unique<stats::csv_writer>(opts.csv_path,
                                                   std::move(headers));
    if (!csv->ok()) {
        std::fprintf(stderr, "cannot write %s\n", opts.csv_path.c_str());
        std::exit(1);
    }
    return csv;
}

namespace {

/// Shared open/verify for the obs exporters (consistent with
/// open_bench_csv: exporting is the point of the flag, so failing to
/// create the file is fatal).
// The bench exporter endpoint: metrics and traces leave the process
// here, through the obs formatters.
// detlint:allow(metrics-bypass): exporter endpoint, writes obs output
std::ofstream open_export_file(const std::string& path) {
    std::ofstream os(path); // detlint:allow(metrics-bypass): same endpoint
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    return os;
}

} // namespace

void write_bench_metrics(const bench_options& opts,
                         const obs::snapshot& snap) {
    if (opts.metrics_path.empty()) return;
    auto os = open_export_file(opts.metrics_path);
    snap.write_csv(os);
}

void write_bench_trace(const bench_options& opts,
                       const obs::trace_export& trace) {
    if (opts.trace_path.empty()) return;
    auto os = open_export_file(opts.trace_path);
    const std::string& p = opts.trace_path;
    const bool json =
        p.size() >= 5 && p.compare(p.size() - 5, 5, ".json") == 0;
    if (json) {
        trace.write_chrome_json(os);
    } else {
        trace.write_csv(os);
    }
}

} // namespace bluescale::harness
