#include "harness/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bluescale::harness {

namespace {

[[noreturn]] void usage_and_exit(const char* argv0, const char* what,
                                 const bench_options& defaults, int code) {
    std::fprintf(
        stderr,
        "%s -- %s\n"
        "usage: %s [--trials N] [--cycles N] [--threads N] [--seed N]"
        " [--csv PATH]\n"
        "  --trials N   trials per configuration (default %u)\n"
        "  --cycles N   simulated cycles per trial (default %llu)\n"
        "  --threads N  worker threads for the trial sweep; 0 = all cores"
        " (default %u)\n"
        "  --seed N     base RNG seed (default %llu)\n"
        "  --csv PATH   also write machine-readable rows to PATH\n"
        "Legacy positional arguments are still accepted where the driver"
        " historically took them.\n",
        argv0, what, argv0, defaults.trials,
        static_cast<unsigned long long>(defaults.measure_cycles),
        defaults.threads,
        static_cast<unsigned long long>(defaults.seed));
    std::exit(code);
}

std::uint64_t parse_u64(const char* argv0, const char* what,
                        const bench_options& defaults, const char* flag,
                        const char* text) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: %s expects a non-negative integer, got"
                             " '%s'\n",
                     argv0, flag, text);
        usage_and_exit(argv0, what, defaults, 2);
    }
    return v;
}

} // namespace

bench_options parse_bench_cli(int argc, char** argv,
                              const bench_options& defaults,
                              std::initializer_list<bench_arg> positional,
                              const char* what) {
    bench_options opts = defaults;
    auto next_positional = positional.begin();

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s expects a value\n", argv[0],
                             arg);
                usage_and_exit(argv[0], what, defaults, 2);
            }
            return argv[++i];
        };

        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            usage_and_exit(argv[0], what, defaults, 0);
        } else if (std::strcmp(arg, "--trials") == 0) {
            opts.trials = static_cast<std::uint32_t>(
                parse_u64(argv[0], what, defaults, arg, value()));
        } else if (std::strcmp(arg, "--cycles") == 0) {
            opts.measure_cycles = static_cast<cycle_t>(
                parse_u64(argv[0], what, defaults, arg, value()));
        } else if (std::strcmp(arg, "--threads") == 0) {
            opts.threads = static_cast<unsigned>(
                parse_u64(argv[0], what, defaults, arg, value()));
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.seed = parse_u64(argv[0], what, defaults, arg, value());
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.csv_path = value();
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
            usage_and_exit(argv[0], what, defaults, 2);
        } else if (next_positional != positional.end()) {
            switch (*next_positional++) {
            case bench_arg::trials:
                opts.trials = static_cast<std::uint32_t>(parse_u64(
                    argv[0], what, defaults, "[trials]", arg));
                break;
            case bench_arg::cycles:
                opts.measure_cycles = static_cast<cycle_t>(parse_u64(
                    argv[0], what, defaults, "[cycles]", arg));
                break;
            case bench_arg::csv:
                opts.csv_path = arg;
                break;
            }
        } else {
            std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                         arg);
            usage_and_exit(argv[0], what, defaults, 2);
        }
    }
    return opts;
}

std::unique_ptr<stats::csv_writer>
open_bench_csv(const bench_options& opts, std::vector<std::string> headers) {
    if (opts.csv_path.empty()) return nullptr;
    auto csv = std::make_unique<stats::csv_writer>(opts.csv_path,
                                                   std::move(headers));
    if (!csv->ok()) {
        std::fprintf(stderr, "cannot write %s\n", opts.csv_path.c_str());
        std::exit(1);
    }
    return csv;
}

} // namespace bluescale::harness
