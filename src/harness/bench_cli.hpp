// Shared command-line handling for the bench/ drivers.
//
// Every driver historically rolled its own positional atoi() parsing;
// this helper gives them one vocabulary:
//
//   --trials N     trials per configuration
//   --cycles N     simulated cycles per trial
//   --threads N    worker threads for the trial sweep (0 = all cores)
//   --seed N       base RNG seed
//   --csv PATH     also dump machine-readable rows to PATH
//   --metrics PATH dump the obs::registry snapshot (deterministic CSV)
//   --trace PATH   dump the event trace (.json = Chrome trace, else CSV)
//   --profile      report simulator wall-clock profile after the run
//   --lockstep     force the cycle-stepped fallback engine
//   --help         usage
//
// The historical positional forms (e.g. `fig6_synthetic 20 100000 out.csv`)
// keep working: each driver declares which options its positionals used to
// mean, in order.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"
#include "stats/csv.hpp"

namespace bluescale::harness {

struct bench_options {
    std::uint32_t trials = 10;
    cycle_t measure_cycles = 100'000;
    /// Worker threads for trial sweeps; 0 = all hardware threads.
    unsigned threads = 1;
    std::uint64_t seed = 1;
    std::string csv_path;     ///< empty = no CSV output
    std::string metrics_path; ///< empty = no metrics snapshot export
    std::string trace_path;   ///< empty = no event-trace export
    bool profile = false;     ///< wall-clock simulator profiling report
    /// Force simulator::engine::lockstep for every simulator the driver
    /// builds (equivalent to BLUESCALE_LOCKSTEP=1; exports are
    /// byte-identical either way -- this is the baseline side of the
    /// engine-equivalence contract).
    bool lockstep = false;
};

/// Legacy positional slots a driver may accept, in declaration order.
enum class bench_arg : std::uint8_t { trials, cycles, csv };

/// Parses the shared bench flags plus the driver's legacy positionals.
/// `defaults` seeds the returned options (pass the bench's historical
/// defaults). On --help or a malformed command line, prints usage for
/// `what` and terminates the process (benches are leaf executables).
[[nodiscard]] bench_options
parse_bench_cli(int argc, char** argv, const bench_options& defaults,
                std::initializer_list<bench_arg> positional,
                const char* what);

/// Opens the CSV sink when --csv was given: returns nullptr when no path
/// was requested, and exits with a diagnostic when the file cannot be
/// created (consistent across drivers).
[[nodiscard]] std::unique_ptr<stats::csv_writer>
open_bench_csv(const bench_options& opts, std::vector<std::string> headers);

/// Writes the merged metrics snapshot when --metrics was given (no-op
/// otherwise). The export is snapshot::write_csv's sorted, deterministic
/// CSV, so the file is byte-identical across --threads settings. Exits
/// with a diagnostic when the file cannot be created.
void write_bench_metrics(const bench_options& opts, const obs::snapshot& snap);

/// Writes the event trace when --trace was given (no-op otherwise): a
/// path ending in ".json" gets Chrome trace-event JSON (chrome://tracing
/// / Perfetto), anything else the CSV form. Exits on I/O failure. When
/// the build has BLUESCALE_TRACE=OFF the export is valid but empty.
void write_bench_trace(const bench_options& opts,
                       const obs::trace_export& trace);

} // namespace bluescale::harness
