#include "harness/factory.hpp"

#include <algorithm>

#include "core/bluescale_ic.hpp"
#include "interconnect/axi_hyperconnect.hpp"
#include "interconnect/axi_icrt.hpp"
#include "interconnect/bluetree.hpp"
#include "interconnect/gsmtree.hpp"

namespace bluescale::harness {

const char* kind_name(ic_kind kind) {
    switch (kind) {
    case ic_kind::axi_icrt: return "AXI-IC^RT";
    case ic_kind::bluetree: return "BlueTree";
    case ic_kind::bluetree_smooth: return "BlueTree-Smooth";
    case ic_kind::gsmtree_tdm: return "GSMTree-TDM";
    case ic_kind::gsmtree_fbsp: return "GSMTree-FBSP";
    case ic_kind::bluescale: return "BlueScale";
    case ic_kind::axi_hyperconnect: return "AXI-HyperConnect";
    }
    return "?";
}

hwcost::design to_design(ic_kind kind) {
    switch (kind) {
    case ic_kind::axi_icrt: return hwcost::design::axi_icrt;
    case ic_kind::bluetree: return hwcost::design::bluetree;
    case ic_kind::bluetree_smooth: return hwcost::design::bluetree_smooth;
    case ic_kind::gsmtree_tdm:
    case ic_kind::gsmtree_fbsp: return hwcost::design::gsmtree;
    case ic_kind::bluescale: return hwcost::design::bluescale;
    case ic_kind::axi_hyperconnect:
        // No Table-1 anchor of its own; structurally a centralized
        // crossbar, so it shares AXI-IC^RT's cost/fmax model.
        return hwcost::design::axi_icrt;
    }
    return hwcost::design::bluescale;
}

std::unique_ptr<interconnect>
make_interconnect(ic_kind kind, const ic_build_options& opts) {
    const std::uint32_t n = opts.n_clients;
    switch (kind) {
    case ic_kind::axi_icrt: {
        axi_icrt_config cfg;
        cfg.arb_latency = axi_icrt::default_arb_latency(n);
        auto ic = std::make_unique<axi_icrt>(n, cfg);
        // "Allocating memory bandwidth to a client based on its workload"
        // [11]: reserve each client's utilization plus headroom.
        if (!opts.client_utilizations.empty()) {
            for (std::uint32_t c = 0; c < n; ++c) {
                const double share =
                    std::min(1.0, opts.client_utilizations[c] * 1.25);
                ic->set_client_share(c, share);
            }
        }
        return ic;
    }
    case ic_kind::bluetree: {
        bluetree_config cfg;
        cfg.alpha = opts.bluetree_alpha;
        return std::make_unique<bluetree>(n, cfg);
    }
    case ic_kind::bluetree_smooth: {
        bluetree_config cfg;
        cfg.alpha = opts.bluetree_alpha;
        cfg.queue_depth = 8;
        cfg.smooth_depth = 4;
        return std::make_unique<bluetree>(n, cfg, "bluetree_smooth");
    }
    case ic_kind::gsmtree_tdm: {
        gsmtree_config cfg;
        cfg.slot_cycles = opts.unit_cycles;
        cfg.reservation = gsm_reservation::tdm;
        return std::make_unique<gsmtree>(n, cfg, "gsmtree_tdm");
    }
    case ic_kind::gsmtree_fbsp: {
        gsmtree_config cfg;
        cfg.slot_cycles = opts.unit_cycles;
        cfg.reservation = gsm_reservation::fbsp;
        cfg.client_weights = opts.client_utilizations;
        if (cfg.client_weights.empty()) {
            cfg.client_weights.assign(n, 1.0);
        }
        return std::make_unique<gsmtree>(n, cfg, "gsmtree_fbsp");
    }
    case ic_kind::axi_hyperconnect: {
        axi_hyperconnect_config cfg;
        return std::make_unique<axi_hyperconnect>(n, cfg);
    }
    case ic_kind::bluescale: {
        core::bluescale_config cfg;
        cfg.se.unit_cycles = opts.unit_cycles;
        auto ic = std::make_unique<core::bluescale_ic>(n, cfg);
        if (opts.selection != nullptr && opts.selection->feasible) {
            ic->configure(*opts.selection);
        }
        return ic;
    }
    }
    return nullptr;
}

} // namespace bluescale::harness
