// Design-agnostic construction of the evaluated interconnects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "hwcost/cost_model.hpp"
#include "interconnect/interconnect.hpp"

namespace bluescale::harness {

/// The six configurations of the paper's evaluation (Sec. 6), plus
/// extended baselines beyond the paper.
enum class ic_kind : std::uint8_t {
    axi_icrt,
    bluetree,
    bluetree_smooth,
    gsmtree_tdm,
    gsmtree_fbsp,
    bluescale,
    axi_hyperconnect, ///< extended baseline [15], not in the paper's six
};

/// The paper's evaluated six (Fig. 6 / Fig. 7 iterate exactly these).
inline constexpr ic_kind k_all_kinds[] = {
    ic_kind::axi_icrt,     ic_kind::bluetree,     ic_kind::bluetree_smooth,
    ic_kind::gsmtree_tdm,  ic_kind::gsmtree_fbsp, ic_kind::bluescale,
};

/// Every buildable design, extended baselines included.
inline constexpr ic_kind k_extended_kinds[] = {
    ic_kind::axi_icrt,     ic_kind::bluetree,
    ic_kind::bluetree_smooth, ic_kind::gsmtree_tdm,
    ic_kind::gsmtree_fbsp, ic_kind::bluescale,
    ic_kind::axi_hyperconnect,
};

[[nodiscard]] const char* kind_name(ic_kind kind);
[[nodiscard]] hwcost::design to_design(ic_kind kind);

struct ic_build_options {
    std::uint32_t n_clients = 16;
    /// Cycles per transaction time unit (matched to the memory
    /// controller's initiation interval).
    std::uint32_t unit_cycles = 4;
    /// Per-client utilization (fraction of memory throughput), used for
    /// GSMTree-FBSP slot weights and AXI-IC^RT bandwidth regulation.
    std::vector<double> client_utilizations;
    /// Resolved interface selection for BlueScale; when null the fabric
    /// runs unconfigured (pure nested EDF, work-conserving).
    const analysis::tree_selection* selection = nullptr;
    /// BlueTree/BlueTree-Smooth blocking factor (paper default: 2).
    std::uint32_t bluetree_alpha = 2;
};

/// Builds an interconnect of the given kind, configured per the paper's
/// evaluation setup.
[[nodiscard]] std::unique_ptr<interconnect>
make_interconnect(ic_kind kind, const ic_build_options& opts);

} // namespace bluescale::harness
