#include "harness/fig6_experiment.hpp"

#include <memory>

#include "core/bluescale_ic.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {

namespace {

/// One simulated trial of one design.
struct trial_metrics {
    double mean_blocking_cycles = 0.0;
    double worst_blocking_cycles = 0.0;
    double miss_ratio = 0.0;
    bool selection_feasible = false;
};

trial_metrics run_trial(ic_kind kind, const fig6_config& cfg,
                        std::uint64_t trial_seed) {
    rng workload_rng(trial_seed);

    // Identical workload per design at the same trial seed.
    auto tasksets = workload::make_client_tasksets(
        workload_rng, cfg.n_clients, cfg.util_lo, cfg.util_hi, cfg.taskset);

    std::vector<double> client_utils;
    client_utils.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        client_utils.push_back(workload::utilization(ts));
    }

    trial_metrics out;

    // BlueScale: resolve the interface selection for this workload.
    analysis::tree_selection selection;
    ic_build_options opts;
    opts.n_clients = cfg.n_clients;
    opts.unit_cycles = cfg.memctrl.initiation_interval;
    opts.client_utilizations = client_utils;
    opts.bluetree_alpha = cfg.bluetree_alpha;
    if (kind == ic_kind::bluescale) {
        std::vector<analysis::task_set> rt_sets;
        rt_sets.reserve(tasksets.size());
        for (const auto& ts : tasksets) {
            rt_sets.push_back(workload::to_rt_tasks(ts));
        }
        selection = analysis::select_tree_interfaces(rt_sets);
        out.selection_feasible = selection.feasible;
        opts.selection = &selection;
    }

    auto ic = make_interconnect(kind, opts);
    if (kind == ic_kind::bluescale && cfg.bluescale_se.has_value()) {
        // SE ablations rebuild the fabric with the override.
        core::bluescale_config bs_cfg;
        bs_cfg.se = *cfg.bluescale_se;
        bs_cfg.se.unit_cycles = opts.unit_cycles;
        auto bs = std::make_unique<core::bluescale_ic>(cfg.n_clients, bs_cfg);
        if (selection.feasible) bs->configure(selection);
        ic = std::move(bs);
    }

    memory_controller mem(cfg.memctrl);
    ic->attach_memory(mem);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    clients.reserve(cfg.n_clients);
    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = cfg.memctrl.initiation_interval;
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], *ic, trial_seed ^ (0x5851f42d4c957f2dull + c),
            tg_cfg));
    }
    ic->set_response_handler([&clients](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });

    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(*ic);
    sim.add(mem);
    sim.run(cfg.measure_cycles);

    stats::running_summary blocking;
    double worst = 0.0;
    std::uint64_t missed = 0;
    std::uint64_t accounted = 0;
    for (auto& c : clients) {
        c->finalize(sim.now());
        const auto& s = c->stats();
        for (double b : s.blocking_cycles.samples()) {
            blocking.add(b);
            worst = std::max(worst, b);
        }
        missed += s.missed;
        accounted += s.completed + s.abandoned;
    }
    out.mean_blocking_cycles = blocking.mean();
    out.worst_blocking_cycles = worst;
    out.miss_ratio = accounted == 0 ? 0.0
                                    : static_cast<double>(missed) /
                                          static_cast<double>(accounted);
    return out;
}

} // namespace

fig6_result run_fig6(ic_kind kind, const fig6_config& cfg) {
    fig6_result result;
    result.kind = kind;
    result.n_clients = cfg.n_clients;
    result.system_clock_mhz =
        hwcost::system_clock_mhz(to_design(kind), cfg.n_clients);
    const double us_per_cycle = 1.0 / result.system_clock_mhz;

    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
        const auto metrics = run_trial(kind, cfg, cfg.seed + t);
        result.blocking_us.add(metrics.mean_blocking_cycles * us_per_cycle);
        result.worst_blocking_us.add(metrics.worst_blocking_cycles *
                                     us_per_cycle);
        result.miss_ratio.add(metrics.miss_ratio);
        if (metrics.selection_feasible) ++result.feasible_trials;
    }
    return result;
}

std::vector<fig6_result> run_fig6_all(const fig6_config& cfg) {
    std::vector<fig6_result> results;
    for (ic_kind kind : k_all_kinds) {
        results.push_back(run_fig6(kind, cfg));
    }
    return results;
}

} // namespace bluescale::harness
