#include "harness/fig6_experiment.hpp"

#include <memory>
#include <utility>

#include "harness/testbench.hpp"
#include "sim/trial_runner.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {

namespace {

/// One simulated trial of one design.
struct trial_metrics {
    double mean_blocking_cycles = 0.0;
    double worst_blocking_cycles = 0.0;
    double miss_ratio = 0.0;
    bool selection_feasible = false;
    obs::snapshot metrics;   ///< when cfg.collect_metrics
    obs::trace_export trace; ///< when cfg.collect_trace, trial 0 only
    obs::snapshot profile;   ///< when cfg.profile (wall-clock metrics)
};

trial_metrics run_trial(ic_kind kind, const fig6_config& cfg,
                        std::uint32_t trial, std::uint64_t trial_seed) {
    rng workload_rng(trial_seed);

    // Identical workload per design at the same trial seed.
    auto tasksets = workload::make_client_tasksets(
        workload_rng, cfg.n_clients, cfg.util_lo, cfg.util_hi, cfg.taskset);

    testbench_options opts;
    opts.n_clients = cfg.n_clients;
    opts.memctrl = cfg.memctrl;
    opts.bluetree_alpha = cfg.bluetree_alpha;
    opts.bluescale_se = cfg.bluescale_se;
    opts.client_utilizations.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    std::vector<analysis::task_set> rt_sets;
    if (kind == ic_kind::bluescale) {
        rt_sets.reserve(tasksets.size());
        for (const auto& ts : tasksets) {
            rt_sets.push_back(workload::to_rt_tasks(ts));
        }
        opts.rt_sets = &rt_sets;
    }

    testbench tb(kind, opts);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    clients.reserve(cfg.n_clients);
    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = tb.unit_cycles();
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], tb.ic(),
            trial_seed ^ (0x5851f42d4c957f2dull + c), tg_cfg));
        auto* client = clients.back().get();
        client->bind_observability(tb.metrics());
        tb.add_client(c, *client, [client](mem_request&& r) {
            client->on_response(std::move(r));
        });
    }

    if (cfg.profile) tb.sim().enable_profiling(tb.metrics());

    tb.run(cfg.measure_cycles);

    trial_metrics out;
    out.selection_feasible = tb.selection_feasible();
    if (cfg.collect_metrics) out.metrics = tb.metrics().take_snapshot();
    if (cfg.collect_trace && trial == 0) out.trace = tb.trace().export_all();
    if (cfg.profile) {
        out.profile = tb.metrics().take_snapshot(true).profile_only();
    }
    stats::running_summary blocking;
    double worst = 0.0;
    std::uint64_t missed = 0;
    std::uint64_t accounted = 0;
    for (auto& c : clients) {
        c->finalize(tb.now());
        const auto& s = c->stats();
        for (double b : s.blocking_cycles().samples()) {
            blocking.add(b);
            worst = std::max(worst, b);
        }
        missed += s.missed();
        accounted += s.completed() + s.abandoned();
    }
    out.mean_blocking_cycles = blocking.mean();
    out.worst_blocking_cycles = worst;
    out.miss_ratio = accounted == 0 ? 0.0
                                    : static_cast<double>(missed) /
                                          static_cast<double>(accounted);
    return out;
}

} // namespace

fig6_result run_fig6(ic_kind kind, const fig6_config& cfg) {
    fig6_result result;
    result.kind = kind;
    result.n_clients = cfg.n_clients;
    result.system_clock_mhz =
        hwcost::system_clock_mhz(to_design(kind), cfg.n_clients);
    const double us_per_cycle = 1.0 / result.system_clock_mhz;

    // Trials are independent (the per-trial seed is a pure function of
    // the trial counter) and the runner returns them in trial order, so
    // this aggregation is bit-identical for any thread count.
    sim::trial_runner runner(cfg.threads);
    obs::registry sweep_prof;
    if (cfg.profile) runner.profile_to(sweep_prof);
    auto per_trial = runner.run(cfg.trials, [&](std::uint32_t t) {
        return run_trial(kind, cfg, t, cfg.seed + t);
    });
    for (auto& metrics : per_trial) {
        result.blocking_us.add(metrics.mean_blocking_cycles * us_per_cycle);
        result.worst_blocking_us.add(metrics.worst_blocking_cycles *
                                     us_per_cycle);
        result.miss_ratio.add(metrics.miss_ratio);
        if (metrics.selection_feasible) ++result.feasible_trials;
        // Trial order makes the merged snapshot bit-identical for any
        // --threads (see obs::snapshot::merge).
        if (cfg.collect_metrics) result.metrics.merge(metrics.metrics);
        if (cfg.profile) result.profile.merge(metrics.profile);
    }
    if (cfg.collect_trace && !per_trial.empty()) {
        result.trace = std::move(per_trial.front().trace);
    }
    if (cfg.profile) {
        result.profile.merge(sweep_prof.take_snapshot(true));
    }
    return result;
}

std::vector<fig6_result> run_fig6_all(const fig6_config& cfg) {
    std::vector<fig6_result> results;
    for (ic_kind kind : k_all_kinds) {
        results.push_back(run_fig6(kind, cfg));
    }
    return results;
}

} // namespace bluescale::harness
