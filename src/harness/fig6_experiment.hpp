// Interconnect-level real-time performance experiment (paper Sec. 6.3 /
// Fig. 6): traffic generators with random GEDF-prioritized workloads at
// 70-90% interconnect utilization; metrics are blocking latency and
// deadline miss ratio per design.
#pragma once

#include <cstdint>
#include <vector>

#include <optional>

#include "core/scale_element.hpp"
#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::harness {

struct fig6_config {
    std::uint32_t n_clients = 16;
    std::uint32_t trials = 20;          ///< paper: 200
    cycle_t measure_cycles = 100'000;   ///< simulated window per trial
    double util_lo = 0.70;              ///< interconnect utilization range
    double util_hi = 0.90;
    std::uint64_t seed = 1;
    /// Worker threads for the trial sweep (0 = all hardware threads).
    /// Results are bit-identical for any setting; see sim::trial_runner.
    unsigned threads = 1;
    /// Paper setup: intensive traffic with tight implicit deadlines.
    workload::taskset_params taskset = {
        .n_tasks = 4,
        .total_utilization = 0.05, // overridden per trial by util_lo/hi
        .min_period_units = 40,
        .max_period_units = 600,
        .write_fraction = 0.3,
    };
    memctrl_config memctrl = {};
    std::uint32_t bluetree_alpha = 2;
    /// Optional SE parameter override for BlueScale (ablations: buffer
    /// depth, server policy, work conservation). unit_cycles is forced to
    /// the memory controller's initiation interval.
    std::optional<core::se_params> bluescale_se;
    /// Snapshot each trial's obs::registry and merge them, in trial
    /// order, into fig6_result::metrics (--metrics).
    bool collect_metrics = false;
    /// Export trial 0's event trace into fig6_result::trace (--trace).
    /// Empty when the build has BLUESCALE_TRACE=OFF.
    bool collect_trace = false;
    /// Enable wall-clock profiling (simulator per-component tick cost and
    /// trial-sweep throughput) into fig6_result::profile (--profile).
    /// Profile metrics are inherently nondeterministic and never leak
    /// into fig6_result::metrics.
    bool profile = false;
};

struct fig6_result {
    ic_kind kind{};
    std::uint32_t n_clients = 0;
    /// Per-trial mean blocking latency, in microseconds of wall-clock at
    /// the design's achievable system frequency.
    stats::sample_set blocking_us;
    /// Per-trial deadline miss ratio, in [0, 1].
    stats::sample_set miss_ratio;
    /// Per-trial worst observed request blocking, microseconds.
    stats::sample_set worst_blocking_us;
    /// Trials in which the BlueScale interface selection was feasible.
    std::uint32_t feasible_trials = 0;
    double system_clock_mhz = 0.0;
    /// Per-trial registry snapshots merged in trial order (counters sum,
    /// samples append), when cfg.collect_metrics. Byte-identical across
    /// --threads settings.
    obs::snapshot metrics;
    /// Trial 0's event trace, when cfg.collect_trace.
    obs::trace_export trace;
    /// Wall-clock profile metrics (k_metric_profile entries; per-trial
    /// simulator costs summed in trial order, plus the sweep totals),
    /// when cfg.profile. Nondeterministic by nature.
    obs::snapshot profile;
};

/// Runs `cfg.trials` trials of one design. Every design sees identical
/// per-trial workloads (the trial seed drives the generator), matching the
/// paper's "data input ... identical in each execution".
[[nodiscard]] fig6_result run_fig6(ic_kind kind, const fig6_config& cfg);

/// Convenience: all six designs.
[[nodiscard]] std::vector<fig6_result> run_fig6_all(const fig6_config& cfg);

} // namespace bluescale::harness
