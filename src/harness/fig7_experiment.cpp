#include "harness/fig7_experiment.hpp"

#include <memory>

#include "harness/testbench.hpp"
#include "sim/trial_runner.hpp"
#include "workload/automotive_profiles.hpp"
#include "workload/dnn_accelerator.hpp"
#include "workload/memory_task.hpp"
#include "workload/processor_client.hpp"

namespace bluescale::harness {

namespace {

/// Builds each processor's task set: the 20 app tasks spread round-robin
/// plus interference tasks topping utilization up to the target.
std::vector<workload::compute_task_set>
build_processor_tasks(rng& gen, std::uint32_t n_processors,
                      double target_utilization, double mem_scale) {
    std::vector<workload::compute_task_set> per_proc(n_processors);
    const auto app =
        workload::make_case_study_tasks(gen, n_processors, mem_scale);
    for (std::size_t i = 0; i < app.size(); ++i) {
        per_proc[i % n_processors].push_back(app[i]);
    }
    task_id_t next_id = 100;
    for (auto& tasks : per_proc) {
        double u = workload::compute_utilization(tasks);
        while (u < target_utilization) {
            const double chunk = std::min(target_utilization - u,
                                          gen.uniform_real(0.05, 0.15));
            if (chunk < 0.01) break;
            tasks.push_back(workload::make_interference_task(
                gen, next_id++, chunk, mem_scale));
            u += chunk;
        }
    }
    return per_proc;
}

/// Memory-demand view of a processor's tasks for the analysis and for
/// bandwidth reservation (AXI regulation / FBSP weights).
analysis::task_set
memory_view(const workload::compute_task_set& tasks,
            std::uint32_t unit_cycles) {
    analysis::task_set out;
    for (const auto& t : tasks) {
        if (t.period == 0 || t.mem_requests == 0) continue;
        out.push_back({std::max<std::uint64_t>(1, t.period / unit_cycles),
                       t.mem_requests});
    }
    return out;
}

analysis::task_set memory_view_ha(const workload::dnn_config& cfg) {
    // One layer = burst_requests transactions each
    // (burst issue + compute) cycles -- but the HA's own token-bucket
    // regulator caps its rate at bandwidth_share, so downstream
    // reservations (FBSP weights, AXI shares, BlueScale interfaces) must
    // see the capped demand, not the raw burst rate.
    const std::uint64_t raw_period_units =
        (static_cast<std::uint64_t>(cfg.burst_requests) * cfg.unit_cycles +
         cfg.compute_cycles) /
        cfg.unit_cycles;
    const double raw_util =
        static_cast<double>(cfg.burst_requests) /
        static_cast<double>(std::max<std::uint64_t>(1, raw_period_units));
    const double util = std::min(raw_util, cfg.bandwidth_share);
    const auto period_units = static_cast<std::uint64_t>(
        static_cast<double>(cfg.burst_requests) / util);
    return {{std::max<std::uint64_t>(1, period_units),
             cfg.burst_requests}};
}

/// Seed for one (utilization, trial) cell. Depends on the utilization and
/// the trial counter but not the design, so every design sees identical
/// workloads.
std::uint64_t fig7_trial_seed(const fig7_config& cfg, double utilization,
                              std::uint32_t trial) {
    return cfg.seed + trial * 1000003ull +
           static_cast<std::uint64_t>(utilization * 1000.0) * 7919ull;
}

} // namespace

bool run_fig7_trial(ic_kind kind, const fig7_config& cfg,
                    double target_utilization, std::uint64_t trial_seed,
                    double* app_miss_ratio) {
    rng gen(trial_seed);
    const std::uint32_t n_clients = cfg.n_processors + cfg.n_accelerators;

    const auto per_proc =
        build_processor_tasks(gen, cfg.n_processors, target_utilization,
                              cfg.mem_intensity_scale);

    workload::dnn_config ha_cfg;
    ha_cfg.unit_cycles = cfg.memctrl.initiation_interval;
    ha_cfg.bandwidth_share = 1.0 / n_clients; // paper's enforced cap

    // Analysis view (used by BlueScale selection and reservations).
    std::vector<analysis::task_set> rt_sets;
    std::vector<double> client_utils;
    for (const auto& tasks : per_proc) {
        rt_sets.push_back(
            memory_view(tasks, cfg.memctrl.initiation_interval));
        client_utils.push_back(analysis::utilization(rt_sets.back()));
    }
    for (std::uint32_t h = 0; h < cfg.n_accelerators; ++h) {
        rt_sets.push_back(memory_view_ha(ha_cfg));
        client_utils.push_back(analysis::utilization(rt_sets.back()));
    }

    testbench_options opts;
    opts.n_clients = n_clients;
    opts.memctrl = cfg.memctrl;
    opts.bluetree_alpha = cfg.bluetree_alpha;
    opts.client_utilizations = std::move(client_utils);
    opts.rt_sets = &rt_sets;

    testbench tb(kind, opts);

    std::vector<std::unique_ptr<workload::processor_client>> procs;
    for (std::uint32_t c = 0; c < cfg.n_processors; ++c) {
        procs.push_back(std::make_unique<workload::processor_client>(
            c, per_proc[c], tb.ic(), trial_seed ^ (0x9e3779b9ull * (c + 1))));
        auto* proc = procs.back().get();
        tb.add_client(c, *proc, [proc](mem_request&& r) {
            proc->on_response(std::move(r));
        });
    }
    std::vector<std::unique_ptr<workload::dnn_accelerator>> has;
    for (std::uint32_t h = 0; h < cfg.n_accelerators; ++h) {
        has.push_back(std::make_unique<workload::dnn_accelerator>(
            cfg.n_processors + h, ha_cfg, tb.ic(),
            trial_seed ^ (0x51ull * (h + 1))));
        auto* ha = has.back().get();
        tb.add_client(cfg.n_processors + h, *ha, [ha](mem_request&& r) {
            ha->on_response(std::move(r));
        });
    }

    tb.run(cfg.measure_cycles);

    bool success = true;
    std::uint64_t app_completed = 0, app_missed = 0;
    for (auto& p : procs) {
        p->finalize(tb.now());
        if (p->app_deadline_missed()) success = false;
        for (auto cat : {workload::task_category::safety,
                         workload::task_category::function}) {
            app_completed += p->stats(cat).completed;
            app_missed += p->stats(cat).missed;
        }
    }
    if (app_miss_ratio != nullptr) {
        *app_miss_ratio =
            app_completed == 0
                ? 0.0
                : static_cast<double>(app_missed) /
                      static_cast<double>(app_completed);
    }
    return success;
}

fig7_result run_fig7(ic_kind kind, const fig7_config& cfg) {
    fig7_result result;
    result.kind = kind;
    result.n_processors = cfg.n_processors;

    std::vector<double> utilizations;
    for (double u = cfg.util_lo; u <= cfg.util_hi + 1e-9;
         u += cfg.util_step) {
        utilizations.push_back(u);
    }

    // Flatten the (utilization, trial) grid into one sweep so the pool
    // stays busy across point boundaries; cells are independent and come
    // back in grid order, keeping aggregation order identical to the
    // serial nested loop.
    struct cell_metrics {
        bool success = false;
        double app_miss_ratio = 0.0;
    };
    const auto n_cells = static_cast<std::uint32_t>(utilizations.size()) *
                         cfg.trials;
    const sim::trial_runner runner(cfg.threads);
    const auto cells = runner.run(n_cells, [&](std::uint32_t i) {
        const double u = utilizations[i / cfg.trials];
        const std::uint32_t t = i % cfg.trials;
        cell_metrics m;
        m.success = run_fig7_trial(kind, cfg, u, fig7_trial_seed(cfg, u, t),
                                   &m.app_miss_ratio);
        return m;
    });

    for (std::size_t p = 0; p < utilizations.size(); ++p) {
        fig7_point point;
        point.target_utilization = utilizations[p];
        std::uint32_t successes = 0;
        double miss_sum = 0.0;
        for (std::uint32_t t = 0; t < cfg.trials; ++t) {
            const auto& m = cells[p * cfg.trials + t];
            if (m.success) ++successes;
            miss_sum += m.app_miss_ratio;
        }
        point.success_ratio =
            static_cast<double>(successes) / cfg.trials;
        point.app_miss_ratio = miss_sum / cfg.trials;
        result.points.push_back(point);
    }
    return result;
}

std::vector<fig7_result> run_fig7_all(const fig7_config& cfg) {
    std::vector<fig7_result> results;
    for (ic_kind kind : k_all_kinds) {
        results.push_back(run_fig7(kind, cfg));
    }
    return results;
}

} // namespace bluescale::harness
