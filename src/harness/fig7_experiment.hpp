// System-level case study (paper Sec. 6.4 / Fig. 7): 16/64 processors plus
// DNN accelerators run 10 automotive safety + 10 function tasks alongside
// interference tasks that raise each processor to a target utilization.
// The metric is the success ratio: the fraction of trials in which no
// safety or function task missed a deadline.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "workload/compute_task.hpp"

namespace bluescale::harness {

struct fig7_config {
    std::uint32_t n_processors = 16;
    std::uint32_t n_accelerators = 2;
    std::uint32_t trials = 10;         ///< paper: 200
    cycle_t measure_cycles = 60'000;   ///< paper: 300 s wall-clock
    std::uint64_t seed = 1;
    /// Worker threads for the (utilization x trial) sweep (0 = all
    /// hardware threads). Results are bit-identical for any setting.
    unsigned threads = 1;
    memctrl_config memctrl = {};
    std::uint32_t bluetree_alpha = 2;
    /// Multiplier on every task profile's memory demand. The default is
    /// calibrated so the 16-core system stresses the interconnect in the
    /// paper's 0.6-0.9 utilization band while the 64-core system's memory
    /// saturates around 0.55-0.65 (matching Fig. 7's earlier collapse).
    double mem_intensity_scale = 0.75;
    /// Target utilization sweep (paper: 10-90% at 5% intervals; Fig. 7
    /// plots 30-90%).
    double util_lo = 0.30;
    double util_hi = 0.90;
    double util_step = 0.10;
};

struct fig7_point {
    double target_utilization = 0.0;
    double success_ratio = 0.0; ///< trials without any app deadline miss
    double app_miss_ratio = 0.0; ///< mean per-trial app-task job miss ratio
};

struct fig7_result {
    ic_kind kind{};
    std::uint32_t n_processors = 0;
    std::vector<fig7_point> points;
};

/// Runs the sweep for one design. Workloads are identical across designs
/// for the same (seed, utilization, trial) triple.
[[nodiscard]] fig7_result run_fig7(ic_kind kind, const fig7_config& cfg);

/// All six designs.
[[nodiscard]] std::vector<fig7_result> run_fig7_all(const fig7_config& cfg);

/// Single trial at one utilization point; exposed for tests and examples.
/// Returns true when no safety/function deadline was missed, and fills
/// `app_miss_ratio` (jobs missed / jobs completed across app tasks).
[[nodiscard]] bool run_fig7_trial(ic_kind kind, const fig7_config& cfg,
                                  double target_utilization,
                                  std::uint64_t trial_seed,
                                  double* app_miss_ratio = nullptr);

} // namespace bluescale::harness
