#include "harness/maintenance_experiment.hpp"

#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/testbench.hpp"
#include "mem/maintenance_engine.hpp"
#include "sim/fault.hpp"
#include "sim/trial_runner.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {

namespace {

/// One simulated trial (always BlueScale: the toggle under study lives
/// in its admission analysis and watchdog, which the baselines lack).
struct trial_metrics {
    double hard_miss_ratio = 0.0;
    double best_effort_miss_ratio = 0.0;
    double p99_latency = 0.0;
    bool selection_feasible = false;

    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t scrubs = 0;
    std::uint64_t hammer_mitigations = 0;
    std::uint64_t maintenance_stolen_cycles = 0;
    std::uint64_t maintenance_storm_cycles = 0;
    std::uint64_t injected_storms = 0;
    std::uint64_t windows_checked = 0;
    std::uint64_t supply_shortfall_alarms = 0;
    std::uint64_t deadline_alarms = 0;
    std::uint64_t shed_events = 0;
    std::uint64_t restore_events = 0;
    std::uint64_t shed_client_cycles = 0;

    obs::snapshot metrics;   ///< when cfg.collect_metrics
    obs::trace_export trace; ///< when cfg.collect_trace, trial 0 only
};

trial_metrics run_trial(const maintenance_exp_config& cfg,
                        std::uint32_t trial, std::uint64_t trial_seed) {
    rng workload_rng(trial_seed);

    // Workload and storm schedule are pure functions of the trial seed:
    // the aware and unaware variants face the identical scenario.
    const std::uint32_t n_be =
        cfg.best_effort_clients < cfg.n_clients ? cfg.best_effort_clients
                                                : cfg.n_clients;
    std::vector<workload::memory_task_set> tasksets;
    if (cfg.best_effort_util > 0.0 && n_be > 0) {
        // Asymmetric load: hard clients share the [util_lo, util_hi]
        // draw, best-effort clients carry cfg.best_effort_util of bulk.
        tasksets = workload::make_client_tasksets(
            workload_rng, cfg.n_clients - n_be, cfg.util_lo, cfg.util_hi,
            cfg.taskset);
        auto be = workload::make_client_tasksets(
            workload_rng, n_be, cfg.best_effort_util,
            cfg.best_effort_util, cfg.taskset);
        tasksets.insert(tasksets.end(),
                        std::make_move_iterator(be.begin()),
                        std::make_move_iterator(be.end()));
    } else {
        tasksets = workload::make_client_tasksets(
            workload_rng, cfg.n_clients, cfg.util_lo, cfg.util_hi,
            cfg.taskset);
    }

    // Maintenance storms ONLY: every other kind's weight is zeroed so the
    // trial's interference is exactly the unmodeled-maintenance story.
    sim::fault_campaign_config fc;
    fc.seed = substream(trial_seed, 0xFA171ull);
    fc.horizon = cfg.measure_cycles;
    fc.events_per_kcycle = cfg.storm_intensity;
    fc.se_stall_weight = 0.0;
    fc.link_drop_weight = 0.0;
    fc.dram_error_weight = 0.0;
    fc.backpressure_weight = 0.0;
    fc.maintenance_storm_weight = 1.0;
    fc.n_elements = 1;
    fc.min_duration = cfg.storm_min_duration;
    fc.max_duration = cfg.storm_max_duration;
    const sim::fault_campaign campaign(fc);

    testbench_options opts;
    opts.n_clients = cfg.n_clients;
    opts.memctrl = cfg.memctrl;
    opts.faults = campaign.empty() ? nullptr : &campaign;
    opts.watchdog = cfg.watchdog;
    opts.selection.bandwidth_tolerance = cfg.bandwidth_tolerance;
    if (cfg.maintenance_aware) {
        // The one toggle under study: provision (Pi, Theta) against the
        // maintenance-corrected sbf AND police supply with the same
        // model, so budgeted refresh/scrub/mitigation never alarms.
        const auto model = to_maintenance_model(cfg.memctrl);
        opts.selection.sched.maintenance = model;
        opts.watchdog->maintenance = model;
    }
    opts.client_utilizations.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    std::vector<analysis::task_set> rt_sets;
    rt_sets.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        rt_sets.push_back(workload::to_rt_tasks(ts));
    }
    opts.rt_sets = &rt_sets;

    testbench tb(ic_kind::bluescale, opts);

    // Admission refused: the corrected analysis found no feasible
    // (Pi, Theta) provisioning for this workload. Nothing is admitted,
    // so there is no admitted-system behavior to measure -- the trial
    // contributes only its feasibility verdict (simulating the
    // unconfigured fabric would pollute the miss statistics with a
    // system that admission control would never have started).
    if (!tb.selection_feasible()) {
        trial_metrics refused;
        refused.selection_feasible = false;
        return refused;
    }

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    clients.reserve(cfg.n_clients);
    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = tb.unit_cycles();
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], tb.ic(), substream(trial_seed, c), tg_cfg));
        auto* client = clients.back().get();
        client->bind_observability(tb.metrics());
        tb.add_client(c, *client, [client](mem_request&& r) {
            client->on_response(std::move(r));
        });
    }

    const auto is_best_effort = [&](std::uint32_t c) {
        return c + cfg.best_effort_clients >= cfg.n_clients;
    };
    if (auto* wd = tb.watchdog()) {
        for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
            auto* client = clients[c].get();
            wd->track_client(
                c,
                is_best_effort(c) ? core::client_class::best_effort
                                  : core::client_class::hard,
                [client] { return client->stats().missed(); },
                [client](bool on) { client->set_shed(on); });
        }
    }

    tb.run(cfg.measure_cycles);

    trial_metrics out;
    out.selection_feasible = tb.selection_feasible();
    out.injected_storms = campaign.size();

    stats::sample_set latency;
    std::uint64_t hard_accounted = 0;
    std::uint64_t be_accounted = 0;
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients[c]->finalize(tb.now());
        const auto& s = clients[c]->stats();
        for (double l : s.latency_cycles().samples()) latency.add(l);
        const std::uint64_t acc = s.completed() + s.abandoned();
        if (is_best_effort(c)) {
            out.best_effort_misses += s.missed();
            be_accounted += acc;
        } else {
            out.hard_misses += s.missed();
            hard_accounted += acc;
        }
    }
    const auto ratio = [](std::uint64_t missed, std::uint64_t accounted) {
        return accounted == 0 ? 0.0
                              : static_cast<double>(missed) /
                                    static_cast<double>(accounted);
    };
    out.hard_miss_ratio = ratio(out.hard_misses, hard_accounted);
    out.best_effort_miss_ratio =
        ratio(out.best_effort_misses, be_accounted);
    out.p99_latency = latency.percentile(99.0);

    const auto& maint = tb.memctrl().maintenance();
    out.refreshes = maint.refreshes();
    out.scrubs = maint.scrubs();
    out.hammer_mitigations = maint.hammer_mitigations();
    out.maintenance_stolen_cycles = maint.stolen_cycles();
    out.maintenance_storm_cycles = maint.storm_cycles();

    if (const auto* wd = tb.watchdog()) {
        const auto rep = wd->report();
        out.windows_checked = rep.windows_checked;
        out.supply_shortfall_alarms = rep.supply_shortfall_alarms;
        out.deadline_alarms = rep.deadline_alarms;
        out.shed_events = rep.shed_events;
        out.restore_events = rep.restore_events;
        out.shed_client_cycles = rep.shed_client_cycles;
    }
    if (cfg.collect_metrics) out.metrics = tb.metrics().take_snapshot();
    if (cfg.collect_trace && trial == 0) out.trace = tb.trace().export_all();
    return out;
}

} // namespace

maintenance_exp_result
run_maintenance_experiment(const maintenance_exp_config& cfg) {
    maintenance_exp_result result;
    result.maintenance_aware = cfg.maintenance_aware;
    result.storm_intensity = cfg.storm_intensity;
    result.n_clients = cfg.n_clients;

    // Trials are independent (the per-trial seed is a pure function of
    // the trial counter) and the runner returns them in trial order, so
    // this aggregation is bit-identical for any thread count.
    const sim::trial_runner runner(cfg.threads);
    auto per_trial = runner.run(cfg.trials, [&](std::uint32_t t) {
        return run_trial(cfg, t, cfg.seed + t);
    });
    for (const auto& m : per_trial) {
        result.hard_miss_ratio.add(m.hard_miss_ratio);
        result.best_effort_miss_ratio.add(m.best_effort_miss_ratio);
        result.p99_latency_cycles.add(m.p99_latency);
        if (m.selection_feasible) ++result.feasible_trials;
        result.hard_misses += m.hard_misses;
        result.best_effort_misses += m.best_effort_misses;
        result.refreshes += m.refreshes;
        result.scrubs += m.scrubs;
        result.hammer_mitigations += m.hammer_mitigations;
        result.maintenance_stolen_cycles += m.maintenance_stolen_cycles;
        result.maintenance_storm_cycles += m.maintenance_storm_cycles;
        result.injected_storms += m.injected_storms;
        result.windows_checked += m.windows_checked;
        result.supply_shortfall_alarms += m.supply_shortfall_alarms;
        result.deadline_alarms += m.deadline_alarms;
        result.shed_events += m.shed_events;
        result.restore_events += m.restore_events;
        result.shed_client_cycles += m.shed_client_cycles;
        // Trial order makes the merged snapshot bit-identical for any
        // --threads (see obs::snapshot::merge).
        if (cfg.collect_metrics) result.metrics.merge(m.metrics);
    }
    if (cfg.collect_trace && !per_trial.empty()) {
        result.trace = std::move(per_trial.front().trace);
    }

    // Re-express the experiment-level aggregates as obs metrics so the
    // bench driver's --csv cells come out of the one exporter path
    // (obs::metric_cells) instead of hand-rolled std::to_string glue.
    obs::registry agg;
    const auto put_counter = [&agg](const char* name, std::uint64_t v) {
        agg.make_counter(std::string("maintenance/") + name).inc(v);
    };
    const auto put_samples = [&agg](const char* name,
                                    const stats::sample_set& s) {
        auto h = agg.make_sample(std::string("maintenance/") + name);
        for (double x : s.samples()) h.add(x);
    };
    put_samples("hard_miss_ratio", result.hard_miss_ratio);
    put_samples("best_effort_miss_ratio", result.best_effort_miss_ratio);
    put_samples("p99_latency_cycles", result.p99_latency_cycles);
    put_counter("hard_misses", result.hard_misses);
    put_counter("best_effort_misses", result.best_effort_misses);
    put_counter("refreshes", result.refreshes);
    put_counter("scrubs", result.scrubs);
    put_counter("hammer_mitigations", result.hammer_mitigations);
    put_counter("maintenance_stolen_cycles",
                result.maintenance_stolen_cycles);
    put_counter("maintenance_storm_cycles",
                result.maintenance_storm_cycles);
    put_counter("injected_storms", result.injected_storms);
    put_counter("windows_checked", result.windows_checked);
    put_counter("supply_shortfall_alarms",
                result.supply_shortfall_alarms);
    put_counter("deadline_alarms", result.deadline_alarms);
    put_counter("shed_events", result.shed_events);
    put_counter("restore_events", result.restore_events);
    put_counter("shed_client_cycles", result.shed_client_cycles);
    put_counter("feasible_trials", result.feasible_trials);
    result.totals = agg.take_snapshot();
    return result;
}

} // namespace bluescale::harness
