// DRAM-maintenance robustness experiment (robustness extension, not a
// paper figure; BlueScale only). The synthetic workload runs on a
// memory controller with refresh/scrub/RowHammer maintenance enabled,
// optionally under an injected maintenance-STORM campaign (excess
// scrubbing the analysis does not budget for). The experiment's central
// toggle is `maintenance_aware`: when true, both interface selection and
// the supply watchdog use the maintenance-corrected SBF
// (analysis::maintenance_sbf via mem::to_maintenance_model); when false
// they use the raw sbf -- the paper's assumption of an always-available
// device. The acceptance claim: aware admission keeps hard clients at
// zero misses through storms (the watchdog sheds best-effort traffic),
// while unaware admission under-provisions and hard clients miss.
#pragma once

#include <cstdint>

#include "core/supply_watchdog.hpp"
#include "mem/memory_controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::harness {

struct maintenance_exp_config {
    std::uint32_t n_clients = 16;
    std::uint32_t trials = 8;
    cycle_t measure_cycles = 60'000;
    double util_lo = 0.40;
    double util_hi = 0.60;
    std::uint64_t seed = 1;
    /// Worker threads for the trial sweep (0 = all hardware threads).
    /// Results are bit-identical for any setting; see sim::trial_runner.
    unsigned threads = 1;
    /// Task periods sit well above the maintenance burst (a refresh
    /// blackout is ~16 analysis units): real task periods dwarf t_RFC,
    /// and a wcet-sized demand inside a burst-sized deadline would force
    /// the corrected analysis to provision nearly the whole device per
    /// client.
    workload::taskset_params taskset = {
        .n_tasks = 3,
        .total_utilization = 0.05, // overridden per trial by util_lo/hi
        .min_period_units = 300,
        .max_period_units = 1500,
        .write_fraction = 0.3,
    };
    /// The LAST this-many client ids are best-effort (sheddable); the
    /// rest are hard real-time.
    std::uint32_t best_effort_clients = 4;
    /// Combined utilization of the best-effort clients. 0 (default)
    /// pools every client into one [util_lo, util_hi] draw; > 0 gives
    /// the hard clients the [util_lo, util_hi] draw to themselves and
    /// loads the best-effort clients with exactly this much bulk
    /// traffic -- the asymmetric shape (light hard control traffic,
    /// heavy sheddable DMA) that makes watchdog shedding free real
    /// bandwidth during a storm.
    double best_effort_util = 0.0;
    /// Memory controller with the maintenance mechanisms under study
    /// (timing.t_refi/t_rfc, maintenance.scrub_*, maintenance.hammer_*).
    memctrl_config memctrl = {};
    /// Selection bandwidth tolerance (applied in BOTH modes so the
    /// aware/unaware comparison is apples-to-apples). Nonzero matters
    /// under maintenance: the strict-minimum selection picks tiny server
    /// periods, and a server task whose period is comparable to the
    /// maintenance burst makes the corrected test infeasible at the level
    /// above -- trading a little bandwidth for larger periods lets every
    /// level amortize the stolen-time shift.
    double bandwidth_tolerance = 0.10;
    /// Provision (Pi, Theta) and police supply with the
    /// maintenance-corrected SBF (true) or the raw one (false).
    bool maintenance_aware = true;
    /// Expected maintenance-storm events per 1000 cycles (0 = none).
    /// The campaign carries ONLY maintenance storms, so every trial's
    /// interference is exactly the maintenance story under test.
    double storm_intensity = 0.0;
    cycle_t storm_min_duration = 64;
    cycle_t storm_max_duration = 256;
    core::watchdog_config watchdog = {};

    /// Snapshot each trial's obs::registry and merge them, in trial
    /// order, into maintenance_exp_result::metrics (--metrics).
    bool collect_metrics = false;
    /// Export trial 0's event trace (--trace).
    bool collect_trace = false;
};

struct maintenance_exp_result {
    bool maintenance_aware = false;
    double storm_intensity = 0.0;
    std::uint32_t n_clients = 0;
    std::uint32_t feasible_trials = 0;

    // Per-trial samples.
    stats::sample_set hard_miss_ratio;
    stats::sample_set best_effort_miss_ratio;
    stats::sample_set p99_latency_cycles;

    // Counter totals summed over trials.
    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t scrubs = 0;
    std::uint64_t hammer_mitigations = 0;
    std::uint64_t maintenance_stolen_cycles = 0;
    std::uint64_t maintenance_storm_cycles = 0;
    std::uint64_t injected_storms = 0;
    std::uint64_t windows_checked = 0;
    std::uint64_t supply_shortfall_alarms = 0;
    std::uint64_t deadline_alarms = 0;
    std::uint64_t shed_events = 0;
    std::uint64_t restore_events = 0;
    std::uint64_t shed_client_cycles = 0;

    /// The aggregates above re-expressed as obs metrics
    /// ("maintenance/<name>"); the bench driver renders --csv cells from
    /// this via obs::metric_cells.
    obs::snapshot totals;
    /// Per-trial registry snapshots merged in trial order, when
    /// cfg.collect_metrics. Byte-identical across --threads settings.
    obs::snapshot metrics;
    /// Trial 0's event trace, when cfg.collect_trace.
    obs::trace_export trace;
};

/// Runs `cfg.trials` BlueScale trials. Workload and storm schedule are
/// pure functions of the trial seed, so aware/unaware runs at the same
/// seed face the identical scenario. A trial whose admission analysis is
/// infeasible is NOT simulated: it contributes only to the
/// trials-minus-feasible_trials gap (admission control refused the
/// workload; there is no admitted system to measure).
[[nodiscard]] maintenance_exp_result
run_maintenance_experiment(const maintenance_exp_config& cfg);

} // namespace bluescale::harness
