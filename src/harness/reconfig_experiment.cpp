#include "harness/reconfig_experiment.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "analysis/quadtree.hpp"
#include "core/bluescale_ic.hpp"
#include "harness/testbench.hpp"
#include "sim/fault.hpp"
#include "sim/trial_runner.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {

namespace {

struct trial_metrics {
    bool selection_feasible = false;
    double miss_ratio = 0.0;

    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t committed = 0;
    std::uint64_t rolled_back = 0;
    std::uint64_t rejected_infeasible = 0;
    std::uint64_t rejected_overutilized = 0;
    std::uint64_t rejected_path_hazard = 0;
    std::vector<double> reconfig_latencies;
    std::uint64_t transition_misses = 0;
    std::uint64_t applied_unchecked = 0;

    std::uint64_t windows_checked = 0;
    std::uint64_t violating_windows = 0;
    std::uint64_t supply_shortfall_alarms = 0;
    std::uint64_t shed_events = 0;
    std::uint64_t restore_events = 0;
    std::uint64_t shed_client_cycles = 0;

    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
    std::uint64_t shed_deferrals = 0;
    std::uint64_t live_reconfigurations = 0;

    obs::snapshot metrics;   ///< when cfg.collect_metrics
    obs::trace_export trace; ///< when cfg.collect_trace, trial 0 only
};

/// The concrete task set one scheduled event asks for, derived purely
/// from (trial seed, event index): every design, and every thread count,
/// resolves the same request to the same demand.
workload::memory_task_set
derive_event_taskset(const sim::reconfig_event& ev, double current_util,
                     std::uint64_t trial_seed, std::size_t event_index,
                     const workload::taskset_params& tmpl) {
    if (ev.action == sim::reconfig_action::leave) return {};
    double target = 0.0;
    switch (ev.action) {
    case sim::reconfig_action::scale_up:
    case sim::reconfig_action::scale_down:
        target = current_util * ev.magnitude;
        break;
    case sim::reconfig_action::join:
        target = ev.magnitude;
        break;
    case sim::reconfig_action::leave: break;
    }
    if (target <= 0.0) return {};
    rng er(substream(trial_seed, 0xEC0Full + event_index));
    workload::taskset_params p = tmpl;
    p.total_utilization = target;
    return workload::make_taskset(er, p);
}

trial_metrics run_trial(ic_kind kind, const reconfig_exp_config& cfg,
                        std::uint32_t trial, std::uint64_t trial_seed) {
    rng workload_rng(trial_seed);
    auto tasksets = workload::make_client_tasksets(
        workload_rng, cfg.n_clients, cfg.util_lo, cfg.util_hi, cfg.taskset);

    // Identical request schedule per design at the same trial.
    sim::reconfig_schedule_config sc = cfg.schedule;
    sc.seed = substream(trial_seed, 0x5EC0ull);
    sc.horizon = cfg.measure_cycles;
    sc.warmup = cfg.reconfig_warmup;
    sc.events_per_kcycle = cfg.events_per_kcycle;
    sc.n_clients = cfg.n_clients;
    const sim::reconfig_schedule schedule(sc);

    sim::fault_campaign_config fc;
    fc.seed = substream(trial_seed, 0xFA171ull);
    fc.horizon = cfg.measure_cycles;
    fc.events_per_kcycle = cfg.fault_intensity;
    fc.n_elements = analysis::make_quadtree_shape(cfg.n_clients).total_ses();
    const sim::fault_campaign campaign(fc);

    testbench_options opts;
    opts.n_clients = cfg.n_clients;
    opts.memctrl = cfg.memctrl;
    opts.bluetree_alpha = cfg.bluetree_alpha;
    opts.faults = campaign.empty() ? nullptr : &campaign;
    if (cfg.enable_health) opts.health = cfg.health;
    opts.client_utilizations.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    std::vector<analysis::task_set> rt_sets;
    if (kind == ic_kind::bluescale) {
        rt_sets.reserve(tasksets.size());
        for (const auto& ts : tasksets) {
            rt_sets.push_back(workload::to_rt_tasks(ts));
        }
        opts.rt_sets = &rt_sets;
        opts.reconfig = cfg.reconfig;
        if (cfg.enable_watchdog) opts.watchdog = cfg.watchdog;
    }

    testbench tb(kind, opts);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    clients.reserve(cfg.n_clients);
    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = tb.unit_cycles();
    tg_cfg.retry_timeout_cycles = cfg.retry_timeout_cycles;
    tg_cfg.max_retries = cfg.max_retries;
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], tb.ic(), substream(trial_seed, c), tg_cfg));
        auto* client = clients.back().get();
        client->bind_observability(tb.metrics());
        tb.add_client(c, *client, [client](mem_request&& r) {
            client->on_response(std::move(r));
        });
    }

    const auto is_best_effort = [&](std::uint32_t c) {
        return c + cfg.best_effort_clients >= cfg.n_clients;
    };
    if (auto* wd = tb.watchdog()) {
        for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
            auto* client = clients[c].get();
            wd->track_client(
                c,
                is_best_effort(c) ? core::client_class::best_effort
                                  : core::client_class::hard,
                [client] { return client->stats().missed(); },
                [client](bool on) { client->set_shed(on); });
        }
    }

    trial_metrics out;
    out.selection_feasible = tb.selection_feasible();

    const auto total_missed = [&] {
        std::uint64_t m = 0;
        for (const auto& c : clients) m += c->stats().missed();
        return m;
    };

    // Transition-window accounting and live task-set swap at commit.
    std::map<std::uint64_t, workload::memory_task_set> staged_swaps;
    std::map<std::uint64_t, std::uint64_t> missed_at_submit;
    if (auto* mgr = tb.reconfig()) {
        mgr->set_resolve_hook([&](const core::admission_record& rec,
                                  const analysis::task_set&) {
            auto base = missed_at_submit.find(rec.id);
            if (base != missed_at_submit.end()) {
                out.transition_misses += total_missed() - base->second;
                missed_at_submit.erase(base);
            }
            auto it = staged_swaps.find(rec.id);
            if (it == staged_swaps.end()) return;
            if (rec.outcome == core::admission_outcome::committed) {
                clients[rec.client]->reconfigure_tasks(
                    std::move(it->second), rec.resolved_at);
            }
            staged_swaps.erase(it);
        });
    }

    // Run in segments up to each scheduled request; the manager (when
    // present) admits, stages and commits inside the simulation, so the
    // swap lands at the modeled commit instant, not here.
    for (std::size_t i = 0; i < schedule.events().size(); ++i) {
        const sim::reconfig_event& ev = schedule.events()[i];
        if (ev.at >= cfg.measure_cycles) break;
        if (ev.at > tb.now()) tb.run(ev.at - tb.now());
        auto tasks = derive_event_taskset(
            ev, workload::utilization(clients[ev.client]->tasks()),
            trial_seed, i, cfg.taskset);
        if (auto* mgr = tb.reconfig()) {
            const std::uint64_t id =
                mgr->submit(ev.client, workload::to_rt_tasks(tasks));
            staged_swaps.emplace(id, std::move(tasks));
            missed_at_submit.emplace(id, total_missed());
        } else {
            // Baseline: no admission control -- the change lands
            // immediately and unconditionally.
            clients[ev.client]->reconfigure_tasks(std::move(tasks),
                                                  tb.now());
            ++out.applied_unchecked;
        }
    }
    if (tb.now() < cfg.measure_cycles) tb.run(cfg.measure_cycles - tb.now());

    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients[c]->finalize(tb.now());
        const auto& s = clients[c]->stats();
        if (is_best_effort(c)) {
            out.best_effort_misses += s.missed();
        } else {
            out.hard_misses += s.missed();
        }
        out.shed_deferrals += s.shed_deferrals();
        out.live_reconfigurations += s.reconfigurations();
    }
    std::uint64_t missed = 0;
    std::uint64_t accounted = 0;
    for (const auto& c : clients) {
        missed += c->stats().missed();
        accounted += c->stats().completed() + c->stats().abandoned();
    }
    out.miss_ratio = accounted == 0 ? 0.0
                                    : static_cast<double>(missed) /
                                          static_cast<double>(accounted);

    if (const auto* mgr = tb.reconfig()) {
        const auto& st = mgr->stats();
        out.submitted = st.submitted;
        out.admitted = st.admitted;
        out.committed = st.committed;
        out.rolled_back = st.rolled_back;
        for (const auto& rec : mgr->records()) {
            switch (rec.outcome) {
            case core::admission_outcome::rejected_infeasible:
                ++out.rejected_infeasible;
                break;
            case core::admission_outcome::rejected_overutilized:
                ++out.rejected_overutilized;
                break;
            case core::admission_outcome::rejected_path_hazard:
                ++out.rejected_path_hazard;
                break;
            default: break;
            }
            if (rec.outcome == core::admission_outcome::committed ||
                rec.outcome == core::admission_outcome::rolled_back) {
                out.reconfig_latencies.push_back(
                    static_cast<double>(rec.latency_cycles));
            }
        }
    }
    if (const auto* wd = tb.watchdog()) {
        const auto& rep = wd->report();
        out.windows_checked = rep.windows_checked;
        out.violating_windows = rep.violating_windows;
        out.supply_shortfall_alarms = rep.supply_shortfall_alarms;
        out.shed_events = rep.shed_events;
        out.restore_events = rep.restore_events;
        out.shed_client_cycles = rep.shed_client_cycles;
    }
    if (cfg.collect_metrics) out.metrics = tb.metrics().take_snapshot();
    if (cfg.collect_trace && trial == 0) out.trace = tb.trace().export_all();
    return out;
}

} // namespace

reconfig_result run_reconfig(ic_kind kind, const reconfig_exp_config& cfg) {
    reconfig_result result;
    result.kind = kind;
    result.n_clients = cfg.n_clients;
    result.trials = cfg.trials;

    // Trials are independent (the per-trial seed is a pure function of
    // the trial counter) and the runner returns them in trial order, so
    // this aggregation is bit-identical for any thread count.
    const sim::trial_runner runner(cfg.threads);
    auto per_trial = runner.run(cfg.trials, [&](std::uint32_t t) {
        return run_trial(kind, cfg, t, cfg.seed + t);
    });
    for (const auto& m : per_trial) {
        if (m.selection_feasible) ++result.feasible_trials;
        result.miss_ratio.add(m.miss_ratio);
        result.submitted += m.submitted;
        result.admitted += m.admitted;
        result.committed += m.committed;
        result.rolled_back += m.rolled_back;
        result.rejected_infeasible += m.rejected_infeasible;
        result.rejected_overutilized += m.rejected_overutilized;
        result.rejected_path_hazard += m.rejected_path_hazard;
        for (double l : m.reconfig_latencies) {
            result.reconfig_latency_cycles.add(l);
        }
        result.transition_misses += m.transition_misses;
        result.applied_unchecked += m.applied_unchecked;
        result.windows_checked += m.windows_checked;
        result.violating_windows += m.violating_windows;
        result.supply_shortfall_alarms += m.supply_shortfall_alarms;
        result.shed_events += m.shed_events;
        result.restore_events += m.restore_events;
        result.shed_client_cycles += m.shed_client_cycles;
        result.hard_misses += m.hard_misses;
        result.best_effort_misses += m.best_effort_misses;
        result.shed_deferrals += m.shed_deferrals;
        result.live_reconfigurations += m.live_reconfigurations;
        // Trial order makes the merged snapshot bit-identical for any
        // --threads (see obs::snapshot::merge).
        if (cfg.collect_metrics) result.metrics.merge(m.metrics);
    }
    if (cfg.collect_trace && !per_trial.empty()) {
        result.trace = std::move(per_trial.front().trace);
    }

    // Re-express the experiment-level aggregates as obs metrics so the
    // bench driver's --csv cells come out of the one exporter path
    // (obs::metric_cells) instead of hand-rolled std::to_string glue.
    obs::registry agg;
    const auto put_counter = [&agg](const char* name, std::uint64_t v) {
        agg.make_counter(std::string("reconfig_exp/") + name).inc(v);
    };
    const auto put_real = [&agg](const char* name, double v) {
        agg.make_real(std::string("reconfig_exp/") + name).set(v);
    };
    const auto put_samples = [&agg](const char* name,
                                    const stats::sample_set& s) {
        auto h = agg.make_sample(std::string("reconfig_exp/") + name);
        for (double x : s.samples()) h.add(x);
    };
    put_counter("submitted", result.submitted);
    put_counter("applied_unchecked", result.applied_unchecked);
    put_counter("admitted", result.admitted);
    put_counter("committed", result.committed);
    put_counter("rolled_back", result.rolled_back);
    put_counter("rejected_infeasible", result.rejected_infeasible);
    put_counter("rejected_overutilized", result.rejected_overutilized);
    put_counter("rejected_path_hazard", result.rejected_path_hazard);
    put_real("admission_ratio", result.admission_ratio());
    put_samples("latency_cycles", result.reconfig_latency_cycles);
    put_counter("transition_misses", result.transition_misses);
    put_samples("miss_ratio", result.miss_ratio);
    put_counter("hard_misses", result.hard_misses);
    put_counter("best_effort_misses", result.best_effort_misses);
    put_counter("live_reconfigurations", result.live_reconfigurations);
    put_counter("windows_checked", result.windows_checked);
    put_counter("violating_windows", result.violating_windows);
    put_counter("supply_shortfall_alarms",
                result.supply_shortfall_alarms);
    put_counter("shed_events", result.shed_events);
    put_counter("restore_events", result.restore_events);
    put_counter("shed_client_cycles", result.shed_client_cycles);
    put_counter("shed_deferrals", result.shed_deferrals);
    put_counter("feasible_trials", result.feasible_trials);
    result.totals = agg.take_snapshot();
    return result;
}

} // namespace bluescale::harness
