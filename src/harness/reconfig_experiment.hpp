// Runtime-reconfiguration experiment (robustness extension, not a paper
// figure): the Fig. 6 synthetic workload plus a seed-driven
// sim::reconfig_schedule of client task-set changes (scale-ups/downs,
// joins, leaves) submitted mid-simulation. BlueScale routes every change
// through core::reconfig_manager -- the Sec. 5 admission test online,
// transactional staging over the parameter-path latency, rollback on
// hazards -- while a core::supply_watchdog polices delivered supply and
// sheds best-effort clients under sustained overload. The BlueTree
// baseline applies every change unconditionally with zero latency (no
// admission control to refuse an infeasible one).
//
// Metrics: admission ratio by outcome, modeled reconfiguration latency,
// deadline misses during transitions, shed/restore counts and per-class
// miss totals, per design.
#pragma once

#include <cstdint>
#include <vector>

#include "core/health_monitor.hpp"
#include "core/reconfig_manager.hpp"
#include "core/supply_watchdog.hpp"
#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/reconfig_schedule.hpp"
#include "stats/summary.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::harness {

struct reconfig_exp_config {
    std::uint32_t n_clients = 16;
    std::uint32_t trials = 20;
    cycle_t measure_cycles = 100'000;
    double util_lo = 0.70;
    double util_hi = 0.90;
    std::uint64_t seed = 1;
    /// Worker threads for the trial sweep (0 = all hardware threads).
    /// Results are bit-identical for any setting; see sim::trial_runner.
    unsigned threads = 1;
    workload::taskset_params taskset = {
        .n_tasks = 4,
        .total_utilization = 0.05, // overridden per trial by util_lo/hi
        .min_period_units = 40,
        .max_period_units = 600,
        .write_fraction = 0.3,
    };
    memctrl_config memctrl = {};
    std::uint32_t bluetree_alpha = 2;

    /// Expected reconfiguration requests per 1000 cycles. The schedule
    /// seed is a substream of the trial seed, so every design sees the
    /// identical request sequence at the same trial; action weights and
    /// magnitudes come from `schedule` (seed/horizon/n_clients are
    /// overridden per trial).
    double events_per_kcycle = 0.2;
    sim::reconfig_schedule_config schedule = {};
    /// Requests are scheduled after this many cycles (lets the initial
    /// selection settle before churn starts).
    cycle_t reconfig_warmup = 5'000;

    /// Admission-control / transaction policy (BlueScale only).
    core::reconfig_config reconfig = {};
    /// Online supply-conformance watchdog (BlueScale only).
    bool enable_watchdog = true;
    core::watchdog_config watchdog = {};
    /// The LAST this-many client ids are best-effort (sheddable); the
    /// rest are hard real-time and keep their contracts under overload.
    std::uint32_t best_effort_clients = 4;

    /// Optional concurrent fault campaign (0 = healthy run), to exercise
    /// hazard rollbacks; same substream convention as the resilience
    /// experiment.
    double fault_intensity = 0.0;
    cycle_t retry_timeout_cycles = 2048;
    std::uint32_t max_retries = 3;
    bool enable_health = true;
    core::health_config health = {};

    /// Snapshot each trial's obs::registry and merge them, in trial
    /// order, into reconfig_result::metrics (--metrics).
    bool collect_metrics = false;
    /// Export trial 0's event trace into reconfig_result::trace
    /// (--trace). Empty when the build has BLUESCALE_TRACE=OFF.
    bool collect_trace = false;
};

struct reconfig_result {
    ic_kind kind{};
    std::uint32_t n_clients = 0;
    std::uint32_t trials = 0;
    std::uint32_t feasible_trials = 0;

    // --- admission control (BlueScale; zero for baselines) -------------
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0; ///< passed the admission test (staged)
    std::uint64_t committed = 0;
    std::uint64_t rolled_back = 0;
    std::uint64_t rejected_infeasible = 0;
    std::uint64_t rejected_overutilized = 0;
    std::uint64_t rejected_path_hazard = 0;
    /// Modeled parameter-path propagation latency of admitted requests.
    stats::sample_set reconfig_latency_cycles;
    /// Deadline misses accrued between a request's submission and its
    /// resolution (the transition window).
    std::uint64_t transition_misses = 0;
    /// Unconditional zero-latency applications (baselines only).
    std::uint64_t applied_unchecked = 0;

    // --- watchdog / overload shedding (BlueScale only) ------------------
    std::uint64_t windows_checked = 0;
    std::uint64_t violating_windows = 0;
    std::uint64_t supply_shortfall_alarms = 0;
    std::uint64_t shed_events = 0;
    std::uint64_t restore_events = 0;
    std::uint64_t shed_client_cycles = 0;

    // --- per-class outcome ----------------------------------------------
    stats::sample_set miss_ratio; ///< per-trial, all clients
    std::uint64_t hard_misses = 0;
    std::uint64_t best_effort_misses = 0;
    std::uint64_t shed_deferrals = 0;
    std::uint64_t live_reconfigurations = 0; ///< task-set swaps applied

    /// The aggregates above re-expressed as obs metrics
    /// ("reconfig_exp/<name>": counters for the totals, sample metrics
    /// for the per-trial series). Always populated; the bench driver
    /// renders its --csv row cells from this via obs::metric_cells.
    obs::snapshot totals;
    /// Per-trial registry snapshots merged in trial order, when
    /// cfg.collect_metrics. Byte-identical across --threads settings.
    obs::snapshot metrics;
    /// Trial 0's event trace, when cfg.collect_trace.
    obs::trace_export trace;

    [[nodiscard]] double admission_ratio() const {
        return submitted == 0 ? 0.0
                              : static_cast<double>(admitted) /
                                    static_cast<double>(submitted);
    }
};

/// Runs `cfg.trials` trials of one design under the same per-trial
/// workloads and reconfiguration schedules (both pure functions of the
/// trial seed, so designs are compared on identical request sequences).
[[nodiscard]] reconfig_result run_reconfig(ic_kind kind,
                                           const reconfig_exp_config& cfg);

} // namespace bluescale::harness
