#include "harness/resilience_experiment.hpp"

#include <memory>
#include <utility>

#include "analysis/quadtree.hpp"
#include "core/bluescale_ic.hpp"
#include "harness/testbench.hpp"
#include "sim/fault.hpp"
#include "sim/trial_runner.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {

namespace {

/// One simulated trial of one design under one fault schedule.
struct trial_metrics {
    double miss_ratio = 0.0;
    double p99_latency = 0.0;
    double worst_latency = 0.0;
    double mean_time_to_recover = 0.0;
    bool any_recovery = false;
    bool selection_feasible = false;

    std::uint64_t injected_events = 0;
    std::uint64_t stall_windows = 0;
    std::uint64_t se_stall_cycles = 0;
    std::uint64_t link_drops = 0;
    std::uint64_t ecc_retries = 0;
    std::uint64_t uncorrected_errors = 0;
    std::uint64_t storm_cycles = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retry_exhausted = 0;
    std::uint64_t stale_responses = 0;
    std::uint64_t failed_responses = 0;
    std::uint64_t degrade_events = 0;
    std::uint64_t recovery_events = 0;
    std::uint64_t degraded_se_cycles = 0;

    obs::snapshot metrics;   ///< when cfg.collect_metrics
    obs::trace_export trace; ///< when cfg.collect_trace, trial 0 only
};

trial_metrics run_trial(ic_kind kind, const resilience_config& cfg,
                        std::uint32_t trial, std::uint64_t trial_seed) {
    rng workload_rng(trial_seed);

    // Identical workload per design at the same trial seed.
    auto tasksets = workload::make_client_tasksets(
        workload_rng, cfg.n_clients, cfg.util_lo, cfg.util_hi, cfg.taskset);

    // Identical fault schedule per design too: the campaign is a pure
    // function of the trial seed, targeted at the BlueScale-sized SE
    // population (baselines collapse link/stall targets onto what they
    // have -- see interconnect::inject_campaign).
    sim::fault_campaign_config fc;
    fc.seed = substream(trial_seed, 0xFA171ull);
    fc.horizon = cfg.measure_cycles;
    fc.events_per_kcycle = cfg.fault_intensity;
    fc.n_elements =
        analysis::make_quadtree_shape(cfg.n_clients).total_ses();
    const sim::fault_campaign campaign(fc);

    testbench_options opts;
    opts.n_clients = cfg.n_clients;
    opts.memctrl = cfg.memctrl;
    opts.bluetree_alpha = cfg.bluetree_alpha;
    opts.faults = campaign.empty() ? nullptr : &campaign;
    if (cfg.enable_health) opts.health = cfg.health;
    opts.client_utilizations.reserve(tasksets.size());
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    std::vector<analysis::task_set> rt_sets;
    if (kind == ic_kind::bluescale) {
        rt_sets.reserve(tasksets.size());
        for (const auto& ts : tasksets) {
            rt_sets.push_back(workload::to_rt_tasks(ts));
        }
        opts.rt_sets = &rt_sets;
    }

    testbench tb(kind, opts);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    clients.reserve(cfg.n_clients);
    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = tb.unit_cycles();
    tg_cfg.retry_timeout_cycles = cfg.retry_timeout_cycles;
    tg_cfg.max_retries = cfg.max_retries;
    for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], tb.ic(), substream(trial_seed, c), tg_cfg));
        auto* client = clients.back().get();
        client->bind_observability(tb.metrics());
        tb.add_client(c, *client, [client](mem_request&& r) {
            client->on_response(std::move(r));
        });
    }

    tb.run(cfg.measure_cycles);

    trial_metrics out;
    out.selection_feasible = tb.selection_feasible();
    out.injected_events = campaign.size();

    stats::sample_set latency;
    std::uint64_t missed = 0;
    std::uint64_t accounted = 0;
    for (auto& c : clients) {
        c->finalize(tb.now());
        const auto& s = c->stats();
        for (double l : s.latency_cycles().samples()) latency.add(l);
        missed += s.missed();
        accounted += s.completed() + s.abandoned();
        out.retries += s.retries();
        out.timeouts += s.timeouts();
        out.retry_exhausted += s.retry_exhausted();
        out.stale_responses += s.stale_responses();
        out.failed_responses += s.failed_responses();
    }
    out.miss_ratio = accounted == 0 ? 0.0
                                    : static_cast<double>(missed) /
                                          static_cast<double>(accounted);
    out.p99_latency = latency.percentile(99.0);
    out.worst_latency = latency.max();

    out.link_drops = tb.ic().link_dropped();
    out.ecc_retries = tb.memctrl().ecc_retries();
    out.uncorrected_errors = tb.memctrl().uncorrected_errors();
    out.storm_cycles = tb.memctrl().storm_cycles();

    if (auto* bs = dynamic_cast<core::bluescale_ic*>(&tb.ic())) {
        const auto& shape = bs->shape();
        for (std::uint32_t l = 0; l <= shape.leaf_level; ++l) {
            for (std::uint32_t y = 0; y < shape.ses_at_level(l); ++y) {
                out.se_stall_cycles += bs->se_at(l, y).fault_stall_cycles();
                out.stall_windows += bs->se_at(l, y).stall_windows_entered();
            }
        }
    }
    if (const auto* mon = tb.health()) {
        const auto report = mon->report();
        out.degrade_events = report.degrade_events;
        out.recovery_events = report.recovery_events;
        out.degraded_se_cycles = report.degraded_se_cycles;
        if (report.time_to_recover.count() > 0) {
            out.mean_time_to_recover = report.time_to_recover.mean();
            out.any_recovery = true;
        }
    }
    if (cfg.collect_metrics) out.metrics = tb.metrics().take_snapshot();
    if (cfg.collect_trace && trial == 0) out.trace = tb.trace().export_all();
    return out;
}

} // namespace

resilience_result run_resilience(ic_kind kind,
                                 const resilience_config& cfg) {
    resilience_result result;
    result.kind = kind;
    result.fault_intensity = cfg.fault_intensity;
    result.n_clients = cfg.n_clients;

    // Trials are independent (the per-trial seed is a pure function of
    // the trial counter) and the runner returns them in trial order, so
    // this aggregation is bit-identical for any thread count.
    const sim::trial_runner runner(cfg.threads);
    auto per_trial = runner.run(cfg.trials, [&](std::uint32_t t) {
        return run_trial(kind, cfg, t, cfg.seed + t);
    });
    for (const auto& m : per_trial) {
        result.miss_ratio.add(m.miss_ratio);
        result.p99_latency_cycles.add(m.p99_latency);
        result.worst_latency_cycles.add(m.worst_latency);
        if (m.any_recovery) {
            result.time_to_recover_cycles.add(m.mean_time_to_recover);
        }
        if (m.selection_feasible) ++result.feasible_trials;
        result.injected_events += m.injected_events;
        result.stall_windows += m.stall_windows;
        result.se_stall_cycles += m.se_stall_cycles;
        result.link_drops += m.link_drops;
        result.ecc_retries += m.ecc_retries;
        result.uncorrected_errors += m.uncorrected_errors;
        result.storm_cycles += m.storm_cycles;
        result.retries += m.retries;
        result.timeouts += m.timeouts;
        result.retry_exhausted += m.retry_exhausted;
        result.stale_responses += m.stale_responses;
        result.failed_responses += m.failed_responses;
        result.degrade_events += m.degrade_events;
        result.recovery_events += m.recovery_events;
        result.degraded_se_cycles += m.degraded_se_cycles;
        // Trial order makes the merged snapshot bit-identical for any
        // --threads (see obs::snapshot::merge).
        if (cfg.collect_metrics) result.metrics.merge(m.metrics);
    }
    if (cfg.collect_trace && !per_trial.empty()) {
        result.trace = std::move(per_trial.front().trace);
    }

    // Re-express the experiment-level aggregates as obs metrics so the
    // bench driver's --csv cells come out of the one exporter path
    // (obs::metric_cells) instead of hand-rolled std::to_string glue.
    obs::registry agg;
    const auto put_counter = [&agg](const char* name, std::uint64_t v) {
        agg.make_counter(std::string("resilience/") + name).inc(v);
    };
    const auto put_samples = [&agg](const char* name,
                                    const stats::sample_set& s) {
        auto h = agg.make_sample(std::string("resilience/") + name);
        for (double x : s.samples()) h.add(x);
    };
    put_samples("miss_ratio", result.miss_ratio);
    put_samples("p99_latency_cycles", result.p99_latency_cycles);
    put_samples("worst_latency_cycles", result.worst_latency_cycles);
    put_samples("time_to_recover_cycles", result.time_to_recover_cycles);
    put_counter("injected_events", result.injected_events);
    put_counter("stall_windows", result.stall_windows);
    put_counter("se_stall_cycles", result.se_stall_cycles);
    put_counter("link_drops", result.link_drops);
    put_counter("ecc_retries", result.ecc_retries);
    put_counter("uncorrected_errors", result.uncorrected_errors);
    put_counter("storm_cycles", result.storm_cycles);
    put_counter("retries", result.retries);
    put_counter("timeouts", result.timeouts);
    put_counter("retry_exhausted", result.retry_exhausted);
    put_counter("stale_responses", result.stale_responses);
    put_counter("failed_responses", result.failed_responses);
    put_counter("degrade_events", result.degrade_events);
    put_counter("recovery_events", result.recovery_events);
    put_counter("degraded_se_cycles", result.degraded_se_cycles);
    put_counter("feasible_trials", result.feasible_trials);
    result.totals = agg.take_snapshot();
    return result;
}

} // namespace bluescale::harness
