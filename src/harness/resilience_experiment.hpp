// Fault-injection resilience experiment (robustness extension, not a
// paper figure): the Fig. 6 synthetic workload under a seed-driven
// sim::fault_campaign of SE stalls, link drops, DRAM transient errors and
// controller backpressure storms. Clients recover with bounded
// retry/timeout reissue; the BlueScale fabric additionally degrades
// unhealthy elements to work-conserving mode under a core::health_monitor.
// Metrics: deadline-miss ratio, p99 / worst latency inflation, recovery
// counter totals, and mean time-to-recover, per design and fault
// intensity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/health_monitor.hpp"
#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::harness {

struct resilience_config {
    std::uint32_t n_clients = 16;
    std::uint32_t trials = 20;
    cycle_t measure_cycles = 100'000;
    double util_lo = 0.70;
    double util_hi = 0.90;
    std::uint64_t seed = 1;
    /// Worker threads for the trial sweep (0 = all hardware threads).
    /// Results are bit-identical for any setting; see sim::trial_runner.
    unsigned threads = 1;
    workload::taskset_params taskset = {
        .n_tasks = 4,
        .total_utilization = 0.05, // overridden per trial by util_lo/hi
        .min_period_units = 40,
        .max_period_units = 600,
        .write_fraction = 0.3,
    };
    memctrl_config memctrl = {};
    std::uint32_t bluetree_alpha = 2;

    /// Expected injected fault events per 1000 cycles (0 = healthy run;
    /// the campaign seed is a substream of the trial seed, so every
    /// design sees the identical fault schedule at the same trial).
    double fault_intensity = 0.5;
    /// Client-side recovery (workload::traffic_gen_config): reissue a
    /// request unanswered for this long, with exponential backoff.
    cycle_t retry_timeout_cycles = 2048;
    std::uint32_t max_retries = 3;
    /// Fabric supervision (BlueScale only; baselines have no elements to
    /// degrade). Disabled when enable_health is false.
    bool enable_health = true;
    core::health_config health = {};

    /// Snapshot each trial's obs::registry and merge them, in trial
    /// order, into resilience_result::metrics (--metrics).
    bool collect_metrics = false;
    /// Export trial 0's event trace into resilience_result::trace
    /// (--trace). Empty when the build has BLUESCALE_TRACE=OFF.
    bool collect_trace = false;
};

struct resilience_result {
    ic_kind kind{};
    double fault_intensity = 0.0;
    std::uint32_t n_clients = 0;
    std::uint32_t feasible_trials = 0;

    // Per-trial samples (cross-trial mean/sd available via sample_set).
    stats::sample_set miss_ratio;            ///< in [0, 1]
    stats::sample_set p99_latency_cycles;    ///< per-trial p99 latency
    stats::sample_set worst_latency_cycles;  ///< per-trial max latency
    stats::sample_set time_to_recover_cycles; ///< per-trial mean span

    // Counter totals summed over trials.
    std::uint64_t injected_events = 0;  ///< campaign events scheduled
    std::uint64_t stall_windows = 0;    ///< SE stall windows entered
    std::uint64_t se_stall_cycles = 0;
    std::uint64_t link_drops = 0;
    std::uint64_t ecc_retries = 0;
    std::uint64_t uncorrected_errors = 0;
    std::uint64_t storm_cycles = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retry_exhausted = 0;
    std::uint64_t stale_responses = 0;
    std::uint64_t failed_responses = 0;
    std::uint64_t degrade_events = 0;
    std::uint64_t recovery_events = 0;
    std::uint64_t degraded_se_cycles = 0;

    /// The aggregates above re-expressed as obs metrics
    /// ("resilience/<name>": counters for the totals, sample metrics for
    /// the per-trial series). Always populated; the bench driver renders
    /// its --csv row cells from this via obs::metric_cells.
    obs::snapshot totals;
    /// Per-trial registry snapshots merged in trial order, when
    /// cfg.collect_metrics. Byte-identical across --threads settings.
    obs::snapshot metrics;
    /// Trial 0's event trace, when cfg.collect_trace.
    obs::trace_export trace;
};

/// Runs `cfg.trials` trials of one design at cfg.fault_intensity. Every
/// design sees identical per-trial workloads AND fault schedules (both
/// are pure functions of the trial seed).
[[nodiscard]] resilience_result run_resilience(ic_kind kind,
                                               const resilience_config& cfg);

} // namespace bluescale::harness
