#include "harness/testbench.hpp"

#include "core/bluescale_ic.hpp"

namespace bluescale::harness {

testbench::testbench(ic_kind kind, const testbench_options& opts)
    : kind_(kind),
      unit_cycles_(opts.memctrl.initiation_interval),
      mem_(opts.memctrl),
      sinks_(opts.n_clients) {
    ic_build_options build;
    build.n_clients = opts.n_clients;
    build.unit_cycles = unit_cycles_;
    build.client_utilizations = opts.client_utilizations;
    build.bluetree_alpha = opts.bluetree_alpha;
    if (kind == ic_kind::bluescale && opts.rt_sets != nullptr) {
        selection_ =
            analysis::select_tree_interfaces(*opts.rt_sets, opts.selection);
        build.selection = &selection_;
    }

    ic_ = make_interconnect(kind, build);
    if (kind == ic_kind::bluescale && opts.bluescale_se.has_value()) {
        // SE ablations rebuild the fabric with the override.
        core::bluescale_config bs_cfg;
        bs_cfg.se = *opts.bluescale_se;
        bs_cfg.se.unit_cycles = unit_cycles_;
        auto bs = std::make_unique<core::bluescale_ic>(opts.n_clients, bs_cfg);
        if (selection_.feasible) bs->configure(selection_);
        ic_ = std::move(bs);
    }

    ic_->attach_memory(mem_);
    ic_->set_response_handler([this](mem_request&& r) {
        sinks_[r.client](std::move(r));
    });

    if (opts.faults != nullptr) {
        ic_->inject_campaign(*opts.faults);
        mem_.inject_campaign(*opts.faults);
    }
    mem_.bind_observability(reg_, trace_.register_component("mem"));
    sim_.bind_trace(trace_);
    if (auto* bs = dynamic_cast<core::bluescale_ic*>(ic_.get())) {
        bs->bind_observability(reg_, trace_);
        // Under the lockstep fallback the fabric's internal SE walk is
        // forced to tick everything too, so BLUESCALE_LOCKSTEP is a true
        // end-to-end tick-every-cycle reference.
        if (sim_.mode() == simulator::engine::lockstep) {
            bs->set_selective_ticking(false);
        }
        // Only the BlueScale fabric has elements to supervise; baselines
        // run the same campaign without graceful degradation.
        if (opts.health.has_value()) {
            monitor_ =
                std::make_unique<core::health_monitor>(*bs, *opts.health);
            monitor_->bind_observability(
                reg_, trace_.register_component("health"));
        }
        if (opts.reconfig.has_value() && opts.rt_sets != nullptr) {
            reconfig_ = std::make_unique<core::reconfig_manager>(
                *bs, selection_, *opts.rt_sets, *opts.reconfig);
            reconfig_->bind_observability(
                reg_, trace_.register_component("reconfig"));
        }
        if (opts.watchdog.has_value()) {
            // The watchdog polices whatever selection is live: the
            // manager's committed copy when runtime reconfiguration is
            // on (updated in place at commits), else the static one.
            const analysis::tree_selection* live =
                reconfig_ ? &reconfig_->committed() : &selection_;
            watchdog_ = std::make_unique<core::supply_watchdog>(
                *bs, live, *opts.watchdog);
            watchdog_->bind_observability(
                reg_, trace_.register_component("watchdog"));
            if (reconfig_) {
                watchdog_->set_donate_hook(
                    [this](std::uint32_t client, bool shed) {
                        if (shed) {
                            reconfig_->donate_client_budget(client);
                        } else {
                            reconfig_->restore_client_budget(client);
                        }
                    });
            }
        }
    }
}

void testbench::add_client(client_id_t id, component& c,
                           std::function<void(mem_request&&)> sink) {
    sinks_.at(id) = std::move(sink);
    sim_.add(c);
}

void testbench::arm() {
    if (armed_) return;
    sim_.add(*ic_);
    sim_.add(mem_);
    // The monitor ticks last so each check window sees the cycle's final
    // stall counters; the manager after it so admission-time hazard
    // checks observe the freshest degraded/stall state; the watchdog
    // last of all so its windows close on the cycle's final counters.
    if (monitor_) sim_.add(*monitor_);
    if (reconfig_) sim_.add(*reconfig_);
    if (watchdog_) sim_.add(*watchdog_);
    armed_ = true;
}

void testbench::run(cycle_t cycles) {
    arm();
    sim_.run(cycles);
}

bool testbench::run_until(const std::function<bool()>& done,
                          cycle_t max_cycles) {
    arm();
    return sim_.run_until(done, max_cycles);
}

} // namespace bluescale::harness
