// Per-trial system assembly shared by every experiment driver.
//
// Each trial of each experiment builds the same stack: an optional
// interface selection, the interconnect under test, the memory
// controller behind it, and a simulator sequencing the lot. The
// testbench owns that wiring once; experiments only construct their
// clients (traffic generators, processor models, accelerators -- these
// differ per figure) and register them. A testbench instance is
// single-trial and single-threaded: parallel sweeps create one per
// trial (see sim::trial_runner).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "core/health_monitor.hpp"
#include "core/reconfig_manager.hpp"
#include "core/scale_element.hpp"
#include "core/supply_watchdog.hpp"
#include "harness/factory.hpp"
#include "sim/fault.hpp"
#include "mem/memory_controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace bluescale::harness {

/// Options for assembling one trial's system under test.
struct testbench_options {
    std::uint32_t n_clients = 16;
    memctrl_config memctrl = {};
    /// BlueTree/BlueTree-Smooth blocking factor.
    std::uint32_t bluetree_alpha = 2;
    /// Optional SE parameter override for BlueScale (ablations). The SE
    /// unit_cycles is forced to the memory controller's initiation
    /// interval.
    std::optional<core::se_params> bluescale_se;
    /// Per-client utilizations for reservation-based designs
    /// (GSMTree-FBSP weights, AXI-IC^RT regulation).
    std::vector<double> client_utilizations;
    /// Memory-demand view per client. When non-null and the kind is
    /// BlueScale, drives the whole-tree interface selection; other kinds
    /// ignore it.
    const std::vector<analysis::task_set>* rt_sets = nullptr;
    /// Selection/admission knobs for the whole-tree interface selection.
    /// Set `selection.sched.maintenance` (mem::to_maintenance_model) to
    /// provision (Pi, Theta) that stay feasible under DRAM maintenance.
    /// Attach a selection.cache to share memoized per-port selections
    /// between the initial whole-tree selection and the reconfig
    /// manager's incremental reselections (pass the same context in
    /// `reconfig`).
    analysis::analysis_context selection = {};
    /// Fault campaign injected into the interconnect and the memory
    /// controller before the trial starts (nullptr = healthy run). The
    /// campaign object must outlive the testbench.
    const sim::fault_campaign* faults = nullptr;
    /// When set and the kind is BlueScale, a core::health_monitor
    /// supervises the fabric and drives degraded-mode transitions.
    /// Ignored (no SEs to supervise) for the baseline interconnects.
    std::optional<core::health_config> health;
    /// When set and the kind is BlueScale, a core::reconfig_manager
    /// accepts runtime admission requests against the resolved selection
    /// (requires rt_sets). Ignored for the baseline interconnects.
    std::optional<core::reconfig_config> reconfig;
    /// When set and the kind is BlueScale, a core::supply_watchdog
    /// polices per-SE supply conformance online and (when configured)
    /// sheds best-effort clients under sustained overload. Ignored for
    /// the baseline interconnects.
    std::optional<core::watchdog_config> watchdog;
};

class testbench {
public:
    testbench(ic_kind kind, const testbench_options& opts);

    testbench(const testbench&) = delete;
    testbench& operator=(const testbench&) = delete;

    [[nodiscard]] ic_kind kind() const { return kind_; }
    [[nodiscard]] interconnect& ic() { return *ic_; }
    [[nodiscard]] memory_controller& memctrl() { return mem_; }
    [[nodiscard]] simulator& sim() { return sim_; }
    [[nodiscard]] cycle_t now() const { return sim_.now(); }
    /// Cycles per transaction time unit (the controller's initiation
    /// interval) -- the granularity every client must issue at.
    [[nodiscard]] std::uint32_t unit_cycles() const { return unit_cycles_; }

    /// The trial's unified metrics registry: the fabric, the memory
    /// controller and every supervisor are bound into it at construction;
    /// experiments bind their clients too, then snapshot after the run.
    [[nodiscard]] obs::registry& metrics() { return reg_; }
    /// The trial's event-trace sink (no-op stub when the build has
    /// BLUESCALE_TRACE=OFF). The simulator drives its clock.
    [[nodiscard]] obs::trace_sink& trace() { return trace_; }

    /// The resolved interface selection (BlueScale only; infeasible /
    /// empty otherwise).
    [[nodiscard]] const analysis::tree_selection& selection() const {
        return selection_;
    }
    [[nodiscard]] bool selection_feasible() const {
        return selection_.feasible;
    }

    /// The fabric's health monitor, or nullptr when none was requested
    /// (or the kind has no SE fabric to supervise).
    [[nodiscard]] core::health_monitor* health() { return monitor_.get(); }
    [[nodiscard]] const core::health_monitor* health() const {
        return monitor_.get();
    }

    /// The runtime admission/reconfiguration manager, or nullptr when
    /// none was requested (or the kind has no BlueScale fabric).
    [[nodiscard]] core::reconfig_manager* reconfig() {
        return reconfig_.get();
    }
    [[nodiscard]] const core::reconfig_manager* reconfig() const {
        return reconfig_.get();
    }

    /// The online supply-conformance watchdog, or nullptr when none was
    /// requested (or the kind has no BlueScale fabric).
    [[nodiscard]] core::supply_watchdog* watchdog() {
        return watchdog_.get();
    }
    [[nodiscard]] const core::supply_watchdog* watchdog() const {
        return watchdog_.get();
    }

    /// Registers a client component and the sink that receives the
    /// interconnect's responses addressed to `id`. Clients tick in
    /// registration order, before the interconnect and the memory
    /// controller.
    void add_client(client_id_t id, component& c,
                    std::function<void(mem_request&&)> sink);

    /// Runs the assembled system for `cycles` more cycles. The first call
    /// seals client registration.
    void run(cycle_t cycles);

    /// run() + predicate variant; see simulator::run_until.
    bool run_until(const std::function<bool()>& done, cycle_t max_cycles);

private:
    void arm();

    ic_kind kind_;
    std::uint32_t unit_cycles_;
    /// Declared before the components so handles bound into it at
    /// construction outlive every consumer.
    obs::registry reg_;
    obs::trace_sink trace_;
    analysis::tree_selection selection_;
    std::unique_ptr<interconnect> ic_;
    std::unique_ptr<core::health_monitor> monitor_;
    std::unique_ptr<core::reconfig_manager> reconfig_;
    std::unique_ptr<core::supply_watchdog> watchdog_;
    memory_controller mem_;
    simulator sim_;
    std::vector<std::function<void(mem_request&&)>> sinks_;
    bool armed_ = false;
};

} // namespace bluescale::harness
