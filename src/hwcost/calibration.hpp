// Calibration anchors: the paper's Table 1 (16-client configurations,
// Vivado 2021.1, Xilinx VC707). Per-element constants elsewhere in the
// cost model are fitted so estimate(d, 16) reproduces these rows.
#pragma once

#include "hwcost/cost_model.hpp"

namespace bluescale::hwcost::calibration {

/// Table 1, verbatim (RAM in KB, power in mW).
inline constexpr resource_estimate k_axi_icrt_16{3744, 3451, 0, 0, 46};
inline constexpr resource_estimate k_bluetree_16{1683, 2901, 0, 0, 27};
inline constexpr resource_estimate k_bluetree_smooth_16{2349, 3455, 0, 0, 41};
inline constexpr resource_estimate k_gsmtree_16{2443, 3115, 0, 8, 59};
inline constexpr resource_estimate k_microblaze{4993, 4295, 6, 256, 369};
inline constexpr resource_estimate k_riscv{7433, 16544, 21, 512, 583};
inline constexpr resource_estimate k_bluescale_16{2959, 3312, 0, 10, 67};

/// Structure counts at the 16-client anchor.
inline constexpr std::uint32_t k_bluescale_ses_16 = 5;  // 4 leaves + root
inline constexpr std::uint32_t k_bluetree_nodes_16 = 15; // 16-leaf binary tree

/// VC707 platform totals used to normalize Fig. 5(a)'s area axis.
inline constexpr double k_platform_luts = 485760.0;

} // namespace bluescale::hwcost::calibration
