#include "hwcost/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "hwcost/calibration.hpp"

namespace bluescale::hwcost {

namespace {

namespace cal = calibration;

double log2d(std::uint32_t n) {
    return std::log2(static_cast<double>(std::max<std::uint32_t>(n, 2)));
}

resource_estimate scale(const resource_estimate& anchor, double factor) {
    return {anchor.luts * factor, anchor.registers * factor,
            anchor.dsps * factor, anchor.ram_kb * factor,
            anchor.power_mw * factor};
}

/// Split of the centralized design's cost: a fixed controller/decoder
/// base, an n*log2(n) mux/arbiter structure, and linear per-port
/// buffering. Fitted at n = 16 (log2 = 4).
constexpr double k_axi_base_fraction = 0.13;
constexpr double k_axi_nlogn_fraction = 0.57;

double axi_scaled(double anchor_16, std::uint32_t n) {
    const double base = anchor_16 * k_axi_base_fraction;
    const double nlogn_16 = 16.0 * 4.0;
    const double a = anchor_16 * k_axi_nlogn_fraction / nlogn_16;
    const double b = anchor_16 *
                     (1.0 - k_axi_base_fraction - k_axi_nlogn_fraction) /
                     16.0;
    return base + a * static_cast<double>(n) * log2d(n) +
           b * static_cast<double>(n);
}

} // namespace

const char* design_name(design d) {
    switch (d) {
    case design::axi_icrt: return "AXI-IC^RT";
    case design::bluetree: return "BlueTree";
    case design::bluetree_smooth: return "BlueTree-Smooth";
    case design::gsmtree: return "GSMTree";
    case design::bluescale: return "BlueScale";
    case design::microblaze: return "MicroBlaze";
    case design::riscv: return "RISC-V";
    }
    return "?";
}

std::uint32_t bluescale_se_count(std::uint32_t n_clients) {
    std::uint32_t count = 0;
    std::uint32_t groups = std::max<std::uint32_t>(n_clients, 1);
    do {
        groups = (groups + 3) / 4;
        count += groups;
    } while (groups > 1);
    return count;
}

std::uint32_t bluetree_node_count(std::uint32_t n_clients) {
    std::uint32_t count = 0;
    std::uint32_t groups = std::max<std::uint32_t>(n_clients, 2);
    do {
        groups = (groups + 1) / 2;
        count += groups;
    } while (groups > 1);
    return count;
}

resource_estimate estimate(design d, std::uint32_t n) {
    switch (d) {
    case design::bluescale:
        return scale(cal::k_bluescale_16,
                     static_cast<double>(bluescale_se_count(n)) /
                         cal::k_bluescale_ses_16);
    case design::bluetree:
        return scale(cal::k_bluetree_16,
                     static_cast<double>(bluetree_node_count(n)) /
                         cal::k_bluetree_nodes_16);
    case design::bluetree_smooth:
        return scale(cal::k_bluetree_smooth_16,
                     static_cast<double>(bluetree_node_count(n)) /
                         cal::k_bluetree_nodes_16);
    case design::gsmtree: {
        // Tree fabric (BlueTree-like nodes) plus a globally arbitrated
        // slot table that grows linearly with the client count.
        const double tree_factor =
            static_cast<double>(bluetree_node_count(n)) /
            cal::k_bluetree_nodes_16;
        const resource_estimate tree =
            scale(cal::k_bluetree_16, tree_factor);
        const double per_client = static_cast<double>(n) / 16.0;
        return {tree.luts + (cal::k_gsmtree_16.luts -
                             cal::k_bluetree_16.luts) *
                                per_client,
                tree.registers + (cal::k_gsmtree_16.registers -
                                  cal::k_bluetree_16.registers) *
                                     per_client,
                0,
                cal::k_gsmtree_16.ram_kb * per_client,
                tree.power_mw + (cal::k_gsmtree_16.power_mw -
                                 cal::k_bluetree_16.power_mw) *
                                    per_client};
    }
    case design::axi_icrt:
        return {axi_scaled(cal::k_axi_icrt_16.luts, n),
                axi_scaled(cal::k_axi_icrt_16.registers, n), 0, 0,
                axi_scaled(cal::k_axi_icrt_16.power_mw, n)};
    case design::microblaze:
        return cal::k_microblaze;
    case design::riscv:
        return cal::k_riscv;
    }
    return {};
}

double legacy_fmax_mhz(std::uint32_t n) { return 210.0 - 2.0 * log2d(n); }

double fmax_mhz(design d, std::uint32_t n) {
    const double eta = log2d(n);
    switch (d) {
    case design::bluescale:
        // Constant-size SEs: placement/routing pressure only.
        return 455.0 - 6.0 * eta;
    case design::bluetree:
        return 470.0 - 5.0 * eta;
    case design::bluetree_smooth:
        return 450.0 - 5.0 * eta;
    case design::gsmtree:
        return 440.0 - 5.0 * eta;
    case design::axi_icrt:
        // Monolithic arbiter: combinational depth grows with fan-in, so
        // fmax collapses past ~32 clients and crosses below the legacy
        // system (Fig. 5(c), Obs. 3).
        return 500.0 / (1.0 + 0.075 * std::pow(eta, 1.7));
    case design::microblaze:
        return 200.0;
    case design::riscv:
        return 150.0;
    }
    return 0.0;
}

double legacy_area_fraction(std::uint32_t n) {
    return 0.004 * static_cast<double>(n) + 0.02;
}

double legacy_power_w(std::uint32_t n) {
    return 0.011 * static_cast<double>(n) + 0.18;
}

double area_fraction(design d, std::uint32_t n) {
    return estimate(d, n).luts / cal::k_platform_luts;
}

double power_w(design d, std::uint32_t n) {
    return estimate(d, n).power_mw / 1000.0;
}

double system_clock_mhz(design d, std::uint32_t n) {
    return std::min(legacy_fmax_mhz(n), fmax_mhz(d, n));
}

} // namespace bluescale::hwcost
