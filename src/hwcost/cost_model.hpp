// Analytic hardware cost model.
//
// The paper evaluates hardware overhead (Table 1) and scalability (Fig. 5)
// by synthesizing each design for a Xilinx VC707 with Vivado 2021.1. That
// toolchain (and FPGA) is not available here, so this model substitutes
// analytic scaling laws calibrated to the paper's own numbers:
//
//   * Distributed trees instantiate O(n) constant-size elements, so their
//     resources scale linearly with the element count (the paper's core
//     hardware-scalability argument, Secs. 1-3).
//   * The centralized AXI-IC^RT's switch box and monolithic arbiter grow
//     as n*log2(n) (mux tree) plus a linear per-port term.
//   * Per-element constants are fitted so the 16-client configuration
//     reproduces Table 1 exactly.
//
// Maximum synthesizable frequency follows the same structural argument:
// constant-size distributed elements keep fmax flat, while the monolithic
// arbiter's combinational depth grows with client count, dragging fmax
// below the legacy system past eta = 5 (Fig. 5(c), Obs. 3).
#pragma once

#include <cstdint>
#include <string>

namespace bluescale::hwcost {

/// Designs evaluated in Table 1 / Fig. 5.
enum class design : std::uint8_t {
    axi_icrt,
    bluetree,
    bluetree_smooth,
    gsmtree,
    bluescale,
    microblaze, ///< per-processor reference point
    riscv,      ///< per-processor reference point (out-of-order, [13])
};

[[nodiscard]] const char* design_name(design d);

/// One row of Table 1.
struct resource_estimate {
    double luts = 0;
    double registers = 0;
    double dsps = 0;
    double ram_kb = 0;
    double power_mw = 0;
};

/// Scale Elements a BlueScale fabric needs for n clients: the chain of
/// ceil(n/4) groups per level down to a single root (no padding; only
/// instantiated elements cost area).
[[nodiscard]] std::uint32_t bluescale_se_count(std::uint32_t n_clients);

/// 2:1 nodes a binary tree (BlueTree/GSMTree) needs for n clients.
[[nodiscard]] std::uint32_t bluetree_node_count(std::uint32_t n_clients);

/// Table-1-calibrated resource estimate for a design at n clients.
/// (Processors are per-instance: n_clients is ignored.)
[[nodiscard]] resource_estimate estimate(design d, std::uint32_t n_clients);

/// Maximum synthesizable clock frequency of the design alone (Fig. 5(c)).
[[nodiscard]] double fmax_mhz(design d, std::uint32_t n_clients);

/// The legacy many-core system (MicroBlaze cores + NoC + memory, no
/// evaluated interconnect): fmax, normalized area and power vs scale.
[[nodiscard]] double legacy_fmax_mhz(std::uint32_t n_clients);
[[nodiscard]] double legacy_area_fraction(std::uint32_t n_clients);
[[nodiscard]] double legacy_power_w(std::uint32_t n_clients);

/// Design area as a fraction of the platform's total resources (Fig. 5(a)).
[[nodiscard]] double area_fraction(design d, std::uint32_t n_clients);

/// Design power in watts (Fig. 5(b)).
[[nodiscard]] double power_w(design d, std::uint32_t n_clients);

/// Achievable system clock when the design is integrated: the slower of
/// the legacy system and the interconnect (used to convert simulated
/// cycles to wall-clock microseconds in the Fig. 6 harness).
[[nodiscard]] double system_clock_mhz(design d, std::uint32_t n_clients);

} // namespace bluescale::hwcost
