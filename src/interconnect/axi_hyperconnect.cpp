#include "interconnect/axi_hyperconnect.hpp"

#include <cassert>

namespace bluescale {

axi_hyperconnect::axi_hyperconnect(std::uint32_t n_clients,
                                   axi_hyperconnect_config cfg,
                                   std::string name)
    : interconnect(std::move(name), n_clients), cfg_(cfg),
      outstanding_(n_clients, 0) {
    client_q_.reserve(n_clients);
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        client_q_.emplace_back(cfg_.queue_depth);
    }
}

bool axi_hyperconnect::client_can_accept(client_id_t c) const {
    return client_q_[c].can_push();
}

void axi_hyperconnect::client_push(client_id_t c, mem_request r) {
    assert(client_q_[c].can_push());
    note_injected();
    client_q_[c].push(std::move(r));
}

std::uint32_t axi_hyperconnect::depth_of(client_id_t) const {
    return cfg_.fabric_latency;
}

void axi_hyperconnect::tick(cycle_t now) {
    // Round-robin grant among clients that have a pending request and
    // spare outstanding credit.
    if (memory_can_accept()) {
        const std::uint32_t n = num_clients();
        for (std::uint32_t step = 0; step < n; ++step) {
            const std::uint32_t c = (rr_next_ + step) % n;
            if (client_q_[c].empty() ||
                outstanding_[c] >= cfg_.max_outstanding_per_client) {
                continue;
            }
            mem_request granted = client_q_[c].pop();
            ++outstanding_[c];
            for (auto& q : client_q_) {
                charge_blocked(q, granted.level_deadline);
            }
            // Fabric pipeline occupancy is credit-bounded (at most
            // clients x max_outstanding_per_client in flight), so deque
            // chunk growth is capped and amortized across the run.
            // detlint:allow(hotpath-alloc): credit-bounded pipeline depth
            pipeline_.emplace_back(now + cfg_.fabric_latency,
                                   std::move(granted));
            rr_next_ = (c + 1) % n;
            break;
        }
    }

    while (!pipeline_.empty() && pipeline_.front().first <= now &&
           memory_can_accept()) {
        forward_to_memory(now, std::move(pipeline_.front().second));
        pipeline_.pop_front();
    }

    drain_memory_responses(now);
    deliver_due_responses(now); // releases credits via the delivery hook
}

void axi_hyperconnect::commit() {
    for (auto& q : client_q_) q.commit();
}

void axi_hyperconnect::reset() {
    interconnect::reset();
    for (auto& q : client_q_) q.clear();
    for (auto& o : outstanding_) o = 0;
    pipeline_.clear();
    rr_next_ = 0;
}

} // namespace bluescale
