// AXI HyperConnect (Restuccia et al. [15], cited in the paper's Sec. 1):
// a predictable hypervisor-level centralized interconnect for FPGA
// accelerators. Unlike AXI-IC^RT's deadline-aware arbiter, HyperConnect
// achieves predictability through *fair* transaction-level round-robin
// over per-client queues plus a hard cap on each client's outstanding
// transactions -- bounding any client's interference on any other without
// knowing task parameters.
//
// Included as an extended baseline (not part of the paper's evaluated
// six): it sits between the heuristic trees (no fairness guarantee) and
// AXI-IC^RT (full deadline awareness).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "interconnect/interconnect.hpp"

namespace bluescale {

struct axi_hyperconnect_config {
    std::size_t queue_depth = 4;
    /// Maximum in-flight transactions per client (the hypervisor's
    /// interference bound).
    std::uint32_t max_outstanding_per_client = 4;
    /// Pipeline latency of the central crossbar, in cycles.
    std::uint32_t fabric_latency = 2;
};

class axi_hyperconnect : public interconnect {
public:
    axi_hyperconnect(std::uint32_t n_clients,
                     axi_hyperconnect_config cfg = {},
                     std::string name = "axi_hyperconnect");

    [[nodiscard]] bool client_can_accept(client_id_t c) const override;
    void client_push(client_id_t c, mem_request r) override;
    [[nodiscard]] std::uint32_t depth_of(client_id_t c) const override;

    void tick(cycle_t now) override;
    void commit() override;
    void reset() override;

    /// Event-engine horizon: outstanding credits only change when a
    /// response is delivered, and responses exist only while requests are
    /// in flight; with nothing in flight tick() is a pure no-op.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override {
        return in_flight() > 0 ? now + 1 : k_cycle_never;
    }

    [[nodiscard]] std::uint32_t outstanding(client_id_t c) const {
        return outstanding_[c];
    }

protected:
    void on_response_delivered(const mem_request& r) override {
        // Release the hypervisor's outstanding-transaction credit.
        if (outstanding_[r.client] > 0) --outstanding_[r.client];
    }

private:
    axi_hyperconnect_config cfg_;
    std::vector<latched_queue<mem_request>> client_q_;
    /// Transactions granted but not yet responded, per client.
    std::vector<std::uint32_t> outstanding_;
    std::uint32_t rr_next_ = 0; ///< round-robin pointer
    std::deque<std::pair<cycle_t, mem_request>> pipeline_;
};

} // namespace bluescale
