#include "interconnect/axi_icrt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bluescale {

axi_icrt::axi_icrt(std::uint32_t n_clients, axi_icrt_config cfg,
                   std::string name)
    : interconnect(std::move(name), n_clients), cfg_(cfg),
      regulators_(n_clients) {
    client_q_.reserve(n_clients);
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        client_q_.emplace_back(cfg_.queue_depth);
    }
}

std::uint32_t axi_icrt::default_arb_latency(std::uint32_t n) {
    std::uint32_t depth = 0;
    while ((1u << depth) < n) ++depth;
    return std::max<std::uint32_t>(1, depth / 2);
}

void axi_icrt::set_client_share(client_id_t c, double share) {
    regulator& reg = regulators_[c];
    reg.enabled = true;
    reg.budget_per_period = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::floor(share *
                          static_cast<double>(cfg_.regulation_period))));
    reg.budget = reg.budget_per_period;
}

bool axi_icrt::client_can_accept(client_id_t c) const {
    return client_q_[c].can_push();
}

void axi_icrt::client_push(client_id_t c, mem_request r) {
    assert(client_q_[c].can_push());
    note_injected();
    ++queued_;
    client_q_[c].push(std::move(r));
}

std::uint32_t axi_icrt::depth_of(client_id_t) const {
    // One demux crossing back through the switch box.
    return cfg_.arb_latency;
}

void axi_icrt::tick(cycle_t now) {
    // Refill bandwidth regulators at every regulation-window boundary.
    // Boundaries slept over by the event engine collapse into this one
    // refill: each is an absolute reset to budget_per_period, so only the
    // latest matters.
    if (now >= next_refill_) {
        for (auto& reg : regulators_) reg.budget = reg.budget_per_period;
        next_refill_ =
            (now / cfg_.regulation_period + 1) * cfg_.regulation_period;
    }

    // Central arbitration: earliest level-deadline among eligible heads.
    // The switch accepts one request per cycle while the memory queue has
    // room for what is already pipelined plus the new grant.
    if (queued_ > 0 && memory_can_accept() &&
        pipeline_.size() <
            static_cast<std::size_t>(std::max<std::uint32_t>(
                1, cfg_.arb_latency))) {
        int best = -1;
        cycle_t best_deadline = k_cycle_never;
        for (std::uint32_t c = 0; c < num_clients(); ++c) {
            if (client_q_[c].empty()) continue;
            const regulator& reg = regulators_[c];
            if (reg.enabled && reg.budget == 0) continue;
            if (client_q_[c].front().level_deadline < best_deadline) {
                best_deadline = client_q_[c].front().level_deadline;
                best = static_cast<int>(c);
            }
        }
        if (best >= 0) {
            mem_request granted =
                client_q_[static_cast<std::size_t>(best)].pop();
            --queued_;
            regulator& reg = regulators_[static_cast<std::size_t>(best)];
            if (reg.enabled) --reg.budget;
            for (auto& q : client_q_) {
                charge_blocked(q, granted.level_deadline);
            }
            // Arbiter pipeline occupancy is bounded by the total queued
            // requests feeding it (per-client queue depths), so deque
            // chunk growth is capped and amortized across the run.
            // detlint:allow(hotpath-alloc): queue-bounded pipeline depth
            pipeline_.emplace_back(now + cfg_.arb_latency,
                                   std::move(granted));
        }
    }

    while (!pipeline_.empty() && pipeline_.front().first <= now &&
           memory_can_accept()) {
        forward_to_memory(now, std::move(pipeline_.front().second));
        pipeline_.pop_front();
    }

    drain_memory_responses(now);
    deliver_due_responses(now);
}

void axi_icrt::commit() {
    // queued_ counts staged pushes too, so zero means nothing to latch.
    if (queued_ == 0) return;
    for (auto& q : client_q_) q.commit();
}

void axi_icrt::reset() {
    interconnect::reset();
    for (auto& q : client_q_) q.clear();
    pipeline_.clear();
    next_refill_ = 0;
    queued_ = 0;
    for (auto& reg : regulators_) reg.budget = reg.budget_per_period;
}

} // namespace bluescale
