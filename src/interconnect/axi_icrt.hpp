// AXI-InterconnectRT (paper Sec. 1/6; Jiang et al. [11]): a centralized
// real-time interconnect. A monolithic switch box buffers every client's
// requests and a central arbiter with a global view grants the pending
// request with the earliest deadline, subject to optional per-client
// bandwidth regulation ("allocating memory bandwidth to a client based on
// its workload").
//
// Centralization buys near-optimal scheduling at small scale; its cost is
// hardware scalability: the monolithic arbiter's logic grows with the
// client count, which lowers the synthesizable clock frequency (captured
// by hwcost::frequency_model, used when converting cycles to wall-clock).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "interconnect/interconnect.hpp"

namespace bluescale {

struct axi_icrt_config {
    /// Per-client buffer depth in the switch box.
    std::size_t queue_depth = 4;
    /// Pipeline latency of the monolithic mux/arbiter, in cycles (grows
    /// with the mux tree depth; the factory default is log2(n)/2).
    std::uint32_t arb_latency = 2;
    /// Bandwidth-regulation window, in cycles. Regulation is enabled per
    /// client via set_client_share().
    cycle_t regulation_period = 256;
};

class axi_icrt : public interconnect {
public:
    axi_icrt(std::uint32_t n_clients, axi_icrt_config cfg = {},
             std::string name = "axi_icrt");

    /// Reserves `share` (fraction of total transaction throughput) for
    /// client c; the regulator refills the client's request budget every
    /// regulation_period. Unset clients are unregulated.
    void set_client_share(client_id_t c, double share);

    [[nodiscard]] bool client_can_accept(client_id_t c) const override;
    void client_push(client_id_t c, mem_request r) override;
    [[nodiscard]] std::uint32_t depth_of(client_id_t c) const override;
    bool bind_client_drain(client_id_t c, sim::wake_hook hook) override {
        client_q_[c].set_drain_hook(hook);
        return true;
    }

    void tick(cycle_t now) override;
    void commit() override;
    void reset() override;

    /// Event-engine horizon: per-cycle while the switch box holds
    /// requests (central arbitration contends every cycle), else the
    /// arbiter pipeline's exit time and the response path. Regulator
    /// refills are caught up in closed form at the next tick (see
    /// next_refill_ -- a refill is an absolute reset, so skipped
    /// boundaries collapse to one) and so never force a wake on their
    /// own. Requests parked at the memory controller need no fabric
    /// ticks: their responses re-arm us via the attach_memory() wake.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override {
        if (queued_ > 0) return now + 1;
        cycle_t due = response_horizon(now);
        if (!pipeline_.empty()) {
            // A pipeline head already due but blocked on a full memory
            // queue degrades to per-cycle polling via the clamp.
            due = std::min(due, std::max(now + 1, pipeline_.front().first));
        }
        return due;
    }

    /// Default arbiter pipeline depth for an n-client monolithic switch.
    [[nodiscard]] static std::uint32_t default_arb_latency(std::uint32_t n);

private:
    struct regulator {
        bool enabled = false;
        std::uint64_t budget_per_period = 0;
        std::uint64_t budget = 0;
    };

    axi_icrt_config cfg_;
    std::vector<latched_queue<mem_request>> client_q_;
    std::vector<regulator> regulators_;
    /// Next regulation-window boundary not yet applied; tick() refills
    /// through every boundary in (previous, now] at once.
    cycle_t next_refill_ = 0;
    /// Granted requests in the arbiter pipeline: (exit cycle, request).
    std::deque<std::pair<cycle_t, mem_request>> pipeline_;
    /// Requests resident in the switch-box queues (visible + staged);
    /// drives next_event() and gates the commit walk.
    std::uint64_t queued_ = 0;
};

} // namespace bluescale
