#include "interconnect/bluetree.hpp"

#include <cassert>

namespace bluescale {

namespace {
std::uint32_t pad_to_pow2(std::uint32_t n) {
    std::uint32_t p = 2;
    while (p < n) p *= 2;
    return p;
}
std::uint32_t log2_u32(std::uint32_t p) {
    std::uint32_t l = 0;
    while ((1u << l) < p) ++l;
    return l;
}
} // namespace

bluetree::bluetree(std::uint32_t n_clients, bluetree_config cfg,
                   std::string name)
    : interconnect(std::move(name), n_clients), cfg_(cfg),
      padded_clients_(pad_to_pow2(n_clients)),
      levels_(log2_u32(padded_clients_)) {
    assert(cfg_.alpha >= 1);
    const std::uint32_t n_nodes = padded_clients_ - 1;
    nodes_.reserve(n_nodes);
    for (std::uint32_t i = 0; i < n_nodes; ++i) {
        nodes_.emplace_back(cfg_.queue_depth, cfg_.smooth_depth);
        if (i > 0) {
            nodes_[i].parent = static_cast<std::int32_t>((i - 1) / 2);
            nodes_[i].parent_port = static_cast<std::uint8_t>((i - 1) % 2);
        }
    }
    leaf_base_ = (1u << (levels_ - 1)) - 1;
    node_items_.assign(n_nodes, 0);
}

bluetree bluetree::make_smooth(std::uint32_t n_clients, std::uint32_t alpha) {
    bluetree_config cfg;
    cfg.alpha = alpha;
    cfg.queue_depth = 8;
    cfg.smooth_depth = 4;
    return bluetree(n_clients, cfg, "bluetree_smooth");
}

bool bluetree::client_can_accept(client_id_t c) const {
    const node& leaf = nodes_[leaf_base_ + c / 2];
    return leaf.in[c % 2].can_push();
}

void bluetree::client_push(client_id_t c, mem_request r) {
    node& leaf = nodes_[leaf_base_ + c / 2];
    assert(leaf.in[c % 2].can_push());
    note_injected();
    ++node_items_[leaf_base_ + c / 2];
    ++items_total_;
    leaf.in[c % 2].push(std::move(r));
}

std::uint32_t bluetree::depth_of(client_id_t) const {
    // Response path crosses one demux per tree level (plus one per output
    // register stage in the smoothed variant).
    return cfg_.smooth_depth > 0 ? 2 * levels_ : levels_;
}

bool bluetree::sink_can_accept(const node& n) const {
    if (n.out) return n.out->can_push();
    if (n.parent < 0) return memory_can_accept();
    return nodes_[static_cast<std::size_t>(n.parent)]
        .in[n.parent_port]
        .can_push();
}

void bluetree::sink_push(std::uint32_t i, cycle_t now, mem_request r) {
    node& n = nodes_[i];
    if (n.out) {
        n.out->push(std::move(r)); // stays resident in node i
        return;
    }
    --node_items_[i];
    if (n.parent < 0) {
        --items_total_;
        forward_to_memory(now, std::move(r));
    } else {
        ++node_items_[static_cast<std::size_t>(n.parent)];
        nodes_[static_cast<std::size_t>(n.parent)].in[n.parent_port].push(
            std::move(r));
    }
}

void bluetree::arbitrate(std::uint32_t i, cycle_t now) {
    node& n = nodes_[i];
    if (!sink_can_accept(n)) return;
    const bool hp = !n.in[0].empty();
    const bool lp = !n.in[1].empty();
    if (!hp && !lp) return;

    // Blocking-factor rule: after `alpha` consecutive high-priority grants
    // a pending low-priority request gets through.
    std::size_t pick;
    if (hp && (!lp || n.hp_run < cfg_.alpha)) {
        pick = 0;
        ++n.hp_run;
    } else {
        pick = 1;
        n.hp_run = 0;
    }

    mem_request granted = n.in[pick].pop();
    charge_blocked(n.in[0], granted.level_deadline);
    charge_blocked(n.in[1], granted.level_deadline);
    sink_push(i, now, std::move(granted));
}

void bluetree::tick(cycle_t now) {
    // Both walks skip empty nodes via the contiguous occupancy array; a
    // node with zero resident requests arbitrates nothing and moves
    // nothing, so the skip is exact.
    if (items_total_ > 0) {
        // Move smoothing-stage outputs toward the parent first, then
        // arbitrate.
        if (cfg_.smooth_depth > 0) {
            for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
                if (node_items_[i] == 0) continue;
                node& n = nodes_[i];
                if (n.out->empty()) continue;
                const bool parent_ok =
                    n.parent < 0
                        ? memory_can_accept()
                        : nodes_[static_cast<std::size_t>(n.parent)]
                              .in[n.parent_port]
                              .can_push();
                if (!parent_ok) continue;
                mem_request r = n.out->pop();
                --node_items_[i];
                if (n.parent < 0) {
                    --items_total_;
                    forward_to_memory(now, std::move(r));
                } else {
                    ++node_items_[static_cast<std::size_t>(n.parent)];
                    nodes_[static_cast<std::size_t>(n.parent)]
                        .in[n.parent_port]
                        .push(std::move(r));
                }
            }
        }
        for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
            if (node_items_[i] != 0) arbitrate(i, now);
        }
    }

    drain_memory_responses(now);
    deliver_due_responses(now);
}

void bluetree::commit() {
    // node_items_ counts staged pushes too, so a zero-count node has
    // nothing to latch.
    if (items_total_ == 0) return;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        if (node_items_[i] == 0) continue;
        node& n = nodes_[i];
        n.in[0].commit();
        n.in[1].commit();
        if (n.out) n.out->commit();
    }
}

void bluetree::reset() {
    interconnect::reset();
    for (auto& n : nodes_) {
        n.in[0].clear();
        n.in[1].clear();
        if (n.out) n.out->clear();
        n.hp_run = 0;
    }
    node_items_.assign(nodes_.size(), 0);
    items_total_ = 0;
}

} // namespace bluescale
