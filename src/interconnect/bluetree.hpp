// BlueTree distributed memory interconnect (paper Sec. 2; Audsley [3]):
// a binary tree of 2-to-1 multiplexers, each with a local arbiter using the
// blocking-factor heuristic: every `alpha` requests from the left (local
// high-priority) input allow at most one request from the right (local
// low-priority) input to pass. With alpha == 1 the node degenerates to
// round-robin.
//
// BlueTree-Smooth (Wang et al. [19]) is the same fabric with deeper buffers
// along the access paths plus an output register stage per node, which
// smooths bursts at the cost of one extra cycle per hop.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "interconnect/interconnect.hpp"

namespace bluescale {

struct bluetree_config {
    /// Blocking factor alpha (paper Sec. 2.2; default 2 as in Sec. 6).
    std::uint32_t alpha = 2;
    /// Per-input queue depth at every node.
    std::size_t queue_depth = 2;
    /// Smoothing: adds a per-node output buffer stage of this depth
    /// (0 = plain BlueTree; BlueTree-Smooth uses > 0).
    std::size_t smooth_depth = 0;
};

class bluetree : public interconnect {
public:
    bluetree(std::uint32_t n_clients, bluetree_config cfg = {},
             std::string name = "bluetree");

    [[nodiscard]] bool client_can_accept(client_id_t c) const override;
    void client_push(client_id_t c, mem_request r) override;
    [[nodiscard]] std::uint32_t depth_of(client_id_t c) const override;
    bool bind_client_drain(client_id_t c, sim::wake_hook hook) override {
        nodes_[leaf_base_ + c / 2].in[c % 2].set_drain_hook(hook);
        return true;
    }

    void tick(cycle_t now) override;
    void commit() override;
    void reset() override;

    /// Event-engine horizon: per-cycle while any node holds a request
    /// (arbitration contends every cycle), else the response path. A
    /// request sitting at the memory controller needs no fabric ticks:
    /// its response re-arms us via the attach_memory() wake, and
    /// client_push() re-arms through note_injected().
    [[nodiscard]] cycle_t next_event(cycle_t now) const override {
        return items_total_ > 0 ? now + 1 : response_horizon(now);
    }

    [[nodiscard]] const bluetree_config& config() const { return cfg_; }
    [[nodiscard]] std::uint32_t levels() const { return levels_; }

    /// Convenience factory for the smoothed variant with defaults from the
    /// paper's evaluation setup.
    static bluetree make_smooth(std::uint32_t n_clients,
                                std::uint32_t alpha = 2);

private:
    struct node {
        node(std::size_t queue_depth, std::size_t smooth_depth)
            : in{latched_queue<mem_request>(queue_depth),
                 latched_queue<mem_request>(queue_depth)},
              out(smooth_depth > 0
                      ? std::optional<latched_queue<mem_request>>(
                            std::in_place, smooth_depth)
                      : std::nullopt) {}

        latched_queue<mem_request> in[2];
        /// Engaged only in the smoothed variant.
        std::optional<latched_queue<mem_request>> out;
        std::int32_t parent = -1; ///< node index; -1 == root
        std::uint8_t parent_port = 0;
        std::uint32_t hp_run = 0; ///< consecutive high-priority grants
    };

    /// True if the node's downstream sink can take one request.
    [[nodiscard]] bool sink_can_accept(const node& n) const;
    void sink_push(std::uint32_t i, cycle_t now, mem_request r);
    void arbitrate(std::uint32_t i, cycle_t now);

    bluetree_config cfg_;
    std::uint32_t padded_clients_;
    std::uint32_t levels_;
    std::vector<node> nodes_;
    std::uint32_t leaf_base_; ///< index of first leaf node
    /// Requests resident in node i's queues (visible + staged), kept in
    /// one contiguous array so tick()/commit() skip empty nodes without
    /// chasing per-queue storage. items_total_ is the fabric-wide sum
    /// and drives next_event().
    std::vector<std::uint32_t> node_items_;
    std::uint64_t items_total_ = 0;
};

} // namespace bluescale
