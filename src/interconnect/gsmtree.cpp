#include "interconnect/gsmtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bluescale {

namespace {
std::uint32_t tree_levels(std::uint32_t n) {
    std::uint32_t levels = 1;
    while ((1u << levels) < n) ++levels;
    return levels;
}
} // namespace

gsmtree::gsmtree(std::uint32_t n_clients, gsmtree_config cfg,
                 std::string name)
    : interconnect(std::move(name), n_clients), cfg_(std::move(cfg)),
      levels_(tree_levels(n_clients)) {
    client_q_.reserve(n_clients);
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        client_q_.emplace_back(cfg_.queue_depth);
    }
    build_slot_table();
}

void gsmtree::build_slot_table() {
    const std::uint32_t n = num_clients();
    slot_table_.clear();

    if (cfg_.reservation == gsm_reservation::tdm ||
        cfg_.client_weights.empty()) {
        // Equal bandwidth: one slot per client.
        for (client_id_t c = 0; c < n; ++c) slot_table_.push_back(c);
        return;
    }

    // FBSP: every client is guaranteed one slot per frame (a reservation
    // scheme must not starve light clients), and the remaining slots are
    // apportioned by smooth weighted round-robin over the declared
    // workloads, which also spreads each client's slots evenly.
    assert(cfg_.client_weights.size() == n);
    const std::uint32_t frame =
        std::max(cfg_.frame_slots != 0 ? cfg_.frame_slots : 2 * n, n);
    std::vector<std::uint32_t> slots(n, 1);
    double total = 0.0;
    for (double w : cfg_.client_weights) total += std::max(w, 1e-9);
    std::vector<double> credit(n, 0.0);
    for (std::uint32_t s = n; s < frame; ++s) {
        std::uint32_t best = 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            credit[c] += std::max(cfg_.client_weights[c], 1e-9);
            if (credit[c] > credit[best]) best = c;
        }
        credit[best] -= total;
        ++slots[best];
    }
    // Interleave: place each client's k slots at evenly spaced frame
    // positions (next free slot on collision), heaviest clients first so
    // they get the most even spread.
    std::vector<client_id_t> table(frame, n); // n == unassigned
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t c = 0; c < n; ++c) order[c] = c;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return slots[a] > slots[b];
              });
    for (const std::uint32_t c : order) {
        for (std::uint32_t i = 0; i < slots[c]; ++i) {
            std::uint32_t pos = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(i) * frame) / slots[c]);
            while (table[pos] != n) pos = (pos + 1) % frame;
            table[pos] = c;
        }
    }
    slot_table_ = std::move(table);
}

bool gsmtree::client_can_accept(client_id_t c) const {
    return client_q_[c].can_push();
}

void gsmtree::client_push(client_id_t c, mem_request r) {
    assert(client_q_[c].can_push());
    note_injected();
    ++queued_;
    client_q_[c].push(std::move(r));
}

std::uint32_t gsmtree::depth_of(client_id_t) const { return levels_; }

void gsmtree::tick(cycle_t now) {
    // Slot boundary: admit the owner's head request into the tree.
    if (now % cfg_.slot_cycles == 0) {
        const std::size_t slot =
            static_cast<std::size_t>(now / cfg_.slot_cycles) %
            slot_table_.size();
        const client_id_t owner = slot_table_[slot];
        if (!client_q_[owner].empty()) {
            mem_request granted = client_q_[owner].pop();
            --queued_;
            // Requests of other clients with earlier deadlines wait out
            // this whole slot: charge the slot as inversion blocking.
            for (std::uint32_t c = 0; c < num_clients(); ++c) {
                for (std::size_t i = 0; i < client_q_[c].size(); ++i) {
                    mem_request& waiting = client_q_[c].at(i);
                    if (waiting.level_deadline < granted.level_deadline) {
                        waiting.blocked_cycles += cfg_.slot_cycles;
                    }
                }
            }
            // Tree pipeline holds at most one request per slot in flight
            // over `levels_` cycles, so deque chunk growth is capped and
            // amortized across the run.
            // detlint:allow(hotpath-alloc): slot-bounded pipeline depth
            pipeline_.emplace_back(now + levels_, std::move(granted));
        }
    }

    // Pipeline exit: hand requests that reached the root to the memory.
    while (!pipeline_.empty() && pipeline_.front().first <= now &&
           memory_can_accept()) {
        forward_to_memory(now, std::move(pipeline_.front().second));
        pipeline_.pop_front();
    }

    drain_memory_responses(now);
    deliver_due_responses(now);
}

void gsmtree::commit() {
    // queued_ counts staged pushes too, so zero means nothing to latch.
    if (queued_ == 0) return;
    for (auto& q : client_q_) q.commit();
}

cycle_t gsmtree::next_event(cycle_t now) const {
    cycle_t due = response_horizon(now);
    if (queued_ > 0) {
        // Next slot boundary; the blocking charge for a granted slot is
        // applied at the boundary tick itself, so the cycles between
        // boundaries are provable no-ops for the admission stage.
        due = std::min(due,
                       (now / cfg_.slot_cycles + 1) * cfg_.slot_cycles);
    }
    if (!pipeline_.empty()) {
        // A root arrival already due but blocked on a full memory queue
        // degrades to per-cycle polling via the clamp.
        due = std::min(due, std::max(now + 1, pipeline_.front().first));
    }
    return due;
}

void gsmtree::reset() {
    interconnect::reset();
    for (auto& q : client_q_) q.clear();
    pipeline_.clear();
    queued_ = 0;
}

} // namespace bluescale
