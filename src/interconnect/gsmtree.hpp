// GSMTree: a globally arbitrated memory tree (paper Sec. 2/6; Gomony et
// al. [7, 8]). The tree is scheduled by a global TDM frame: each slot
// admits (at most) one request from one designated client, which then
// traverses the contention-free pipeline to the memory. Two reservation
// strategies from the paper's evaluation:
//   * TDM:  equal slots for every client.
//   * FBSP: slots proportional to each client's maximum workload
//           (frame-based slot proportional reservation).
//
// TDM trees are predictable but non-work-conserving: a slot whose owner
// has nothing pending is wasted, which is exactly the average-latency
// penalty the paper observes.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "interconnect/interconnect.hpp"

namespace bluescale {

enum class gsm_reservation : std::uint8_t {
    tdm,  ///< equal bandwidth for all clients
    fbsp, ///< bandwidth proportional to declared client workload
};

struct gsmtree_config {
    gsm_reservation reservation = gsm_reservation::tdm;
    /// Cycles per TDM slot; one memory transaction per slot. Matched to
    /// the memory controller's initiation interval by the harness.
    std::uint32_t slot_cycles = 4;
    /// Per-client admission queue depth.
    std::size_t queue_depth = 4;
    /// FBSP: relative workload weight per client (utilization share).
    /// Empty (or for TDM) means equal weights.
    std::vector<double> client_weights;
    /// FBSP frame length in slots (>= n_clients so every client gets one).
    std::uint32_t frame_slots = 0; ///< 0 = auto (2x clients for FBSP)
};

class gsmtree : public interconnect {
public:
    gsmtree(std::uint32_t n_clients, gsmtree_config cfg = {},
            std::string name = "gsmtree");

    [[nodiscard]] bool client_can_accept(client_id_t c) const override;
    void client_push(client_id_t c, mem_request r) override;
    [[nodiscard]] std::uint32_t depth_of(client_id_t c) const override;
    bool bind_client_drain(client_id_t c, sim::wake_hook hook) override {
        client_q_[c].set_drain_hook(hook);
        return true;
    }

    void tick(cycle_t now) override;
    void commit() override;
    void reset() override;

    /// Event-engine horizon: queued requests can only be admitted at TDM
    /// slot boundaries (the slot owner is a pure function of `now`, so
    /// nothing rotates between them), pipelined requests exit at their
    /// root-arrival cycle, and responses follow response_horizon(). An
    /// idle fabric sleeps until client_push() or a retiring response
    /// wakes it.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    [[nodiscard]] const std::vector<client_id_t>& slot_table() const {
        return slot_table_;
    }

private:
    void build_slot_table();

    gsmtree_config cfg_;
    std::uint32_t levels_;
    std::vector<latched_queue<mem_request>> client_q_;
    std::vector<client_id_t> slot_table_;
    /// Requests in the tree pipeline: (cycle they reach the root, request).
    std::deque<std::pair<cycle_t, mem_request>> pipeline_;
    /// Requests resident in the admission queues (visible + staged);
    /// drives next_event() and gates the commit walk.
    std::uint64_t queued_ = 0;
};

} // namespace bluescale
