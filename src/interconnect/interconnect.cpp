#include "interconnect/interconnect.hpp"

#include <cassert>

namespace bluescale {

interconnect::interconnect(std::string name, std::uint32_t n_clients)
    : component(std::move(name), /*latches=*/true), n_clients_(n_clients) {
    assert(n_clients > 0);
}

void interconnect::charge_blocked(latched_queue<mem_request>& q,
                                  cycle_t granted_deadline) {
    for (std::size_t i = 0; i < q.size(); ++i) {
        mem_request& waiting = q.at(i);
        if (waiting.level_deadline < granted_deadline) {
            ++waiting.blocked_cycles;
        }
    }
}

void interconnect::drain_memory_responses(cycle_t now) {
    if (mem_ == nullptr) return;
    while (mem_->has_response()) {
        mem_request r = mem_->pop_response();
        const cycle_t due = now + depth_of(r.client);
        response_line_.push({due, response_seq_++, std::move(r)});
    }
}

void interconnect::deliver_due_responses(cycle_t now) {
    while (!response_line_.empty() && response_line_.top().due <= now) {
        // priority_queue::top() is const; the element is moved out via the
        // usual const_cast idiom since pop() follows immediately.
        auto& top = const_cast<pending_response&>(response_line_.top());
        mem_request r = std::move(top.req);
        response_line_.pop();
        r.complete_cycle = now;
        assert(in_flight_ > 0);
        --in_flight_;
        on_response_delivered(r);
        if (on_response_) on_response_(std::move(r));
    }
}

void interconnect::deliver_response_now(mem_request r) {
    assert(in_flight_ > 0);
    --in_flight_;
    on_response_delivered(r);
    if (on_response_) on_response_(std::move(r));
}

void interconnect::inject_campaign(const sim::fault_campaign& campaign) {
    // Single-choke-point designs: every link_drop target collapses onto
    // the root link, so the total injected fault load matches what a
    // distributed fabric would see.
    root_link_faults_ =
        sim::fault_window(campaign.slice_all(sim::fault_kind::link_drop));
}

void interconnect::reset() {
    while (!response_line_.empty()) response_line_.pop();
    root_link_faults_.reset();
    in_flight_ = 0;
    forwarded_ = 0;
    link_dropped_ = 0;
    response_seq_ = 0;
}

} // namespace bluescale
