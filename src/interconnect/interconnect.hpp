// Abstract memory interconnect: the component between client ports and the
// shared memory controller. All evaluated designs (BlueScale, AXI-IC^RT,
// BlueTree, BlueTree-Smooth, GSMTree) implement this interface, so the
// experiment harness and the clients are design-agnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "mem/memory_controller.hpp"
#include "mem/request.hpp"
#include "sim/component.hpp"
#include "sim/fault.hpp"
#include "sim/latched_queue.hpp"
#include "sim/wake.hpp"

namespace bluescale {

class interconnect : public component {
public:
    /// Called with each completed transaction when its response reaches the
    /// issuing client's port.
    using response_handler = std::function<void(mem_request&&)>;

    interconnect(std::string name, std::uint32_t n_clients);

    [[nodiscard]] std::uint32_t num_clients() const { return n_clients_; }

    /// Backpressure: can client c inject a request this cycle?
    [[nodiscard]] virtual bool client_can_accept(client_id_t c) const = 0;

    /// Injects a request at client c's port. Only valid when
    /// client_can_accept(c). The request's level_deadline must be set (leaf
    /// arbitration priority; normally its abs_deadline).
    virtual void client_push(client_id_t c, mem_request r) = 0;

    /// Number of request-path hops between client c and the memory; the
    /// response path crosses the same number of demux stages.
    [[nodiscard]] virtual std::uint32_t depth_of(client_id_t c) const = 0;

    /// Arms `hook` to fire when a pop frees space in client c's ingress
    /// queue (the full -> non-full transition client_can_accept() tracks),
    /// so a backpressured client can sleep instead of polling its port
    /// every cycle. Returns false when the design cannot provide the
    /// signal; the client must then keep the per-cycle poll (the
    /// conservative default for fabrics that do not override this).
    virtual bool bind_client_drain(client_id_t, sim::wake_hook) {
        return false;
    }

    void attach_memory(memory_controller& mc) {
        mem_ = &mc;
        // A response retiring into the controller's out-queue is the one
        // fabric-external event the horizon below cannot see coming;
        // the wake re-arms a sleeping fabric for the visibility edge.
        mc.set_response_wake(sim::wake_of(*this));
    }
    void set_response_handler(response_handler h) {
        on_response_ = std::move(h);
    }

    /// Requests injected but not yet delivered back to their client.
    [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }
    /// Total requests handed to the memory controller.
    [[nodiscard]] std::uint64_t forwarded_to_memory() const {
        return forwarded_;
    }
    /// Requests eaten by link transient faults (never delivered; the
    /// issuing client recovers via retry/timeout or abandons at trial
    /// end).
    [[nodiscard]] std::uint64_t link_dropped() const { return link_dropped_; }

    /// Applies a fault campaign's link_drop slice to this design's
    /// injection points. The base maps every link_drop event, whatever
    /// its target, onto the single root link into the memory controller
    /// (the choke point every design shares); BlueScale overrides this to
    /// distribute targets over its SE parent links. se_stall events are
    /// fabric-internal and ignored here; dram_error/backpressure_storm
    /// belong to memory_controller::inject_campaign.
    virtual void inject_campaign(const sim::fault_campaign& campaign);

    /// Drops all queued state between trials (derived classes extend).
    virtual void reset();

protected:
    /// Charges one cycle of priority-inversion blocking to every request
    /// waiting in `q` whose level deadline is earlier than the granted
    /// request's (the paper's blocking-latency metric, Sec. 6.3).
    static void charge_blocked(latched_queue<mem_request>& q,
                               cycle_t granted_deadline);

    /// Bookkeeping wrappers derived classes use at the memory boundary.
    [[nodiscard]] bool memory_can_accept() const {
        return mem_ != nullptr && mem_->can_accept();
    }
    /// Hands a request over the root link. During an injected link fault
    /// the request is silently eaten (the client's retry/timeout recovery
    /// is the only way it comes back).
    void forward_to_memory(cycle_t now, mem_request r) {
        if (root_link_faults_.active(now)) {
            note_dropped();
            return;
        }
        ++forwarded_;
        mem_->push(std::move(r));
    }

    void note_injected() {
        ++in_flight_;
        // Uniform push-wake: every design injects through here, so a
        // sleeping fabric is re-armed the moment a client hands it work.
        wake();
    }
    /// A request died inside the fabric: it will never produce a
    /// response, so it leaves the in-flight population here.
    void note_dropped() {
        --in_flight_;
        ++link_dropped_;
    }

    /// Direct memory-response access for interconnects that model the
    /// response path themselves (instead of the delay line below).
    [[nodiscard]] bool memory_has_response() const {
        return mem_ != nullptr && mem_->has_response();
    }
    mem_request pop_memory_response() { return mem_->pop_response(); }

    /// Pulls finished transactions from the memory controller and schedules
    /// their delivery depth_of(client) cycles later (response-path demux
    /// stages are contention-free, one route per client). Call every tick.
    void drain_memory_responses(cycle_t now);

    /// Delivers responses whose due time has arrived. Call every tick.
    void deliver_due_responses(cycle_t now);

    /// Hands one completed request straight to the response handler,
    /// bypassing the delay line (for interconnects that model response
    /// latency themselves, and for test doubles).
    void deliver_response_now(mem_request r);

    /// Horizon of the shared response path for derived next_event()s:
    /// per-cycle while the controller holds a visible response (the next
    /// tick must drain it), else the earliest delay-line delivery, else
    /// never. Responses that retire while the fabric sleeps fire the
    /// wake installed by attach_memory(), so "never" stays safe.
    [[nodiscard]] cycle_t response_horizon(cycle_t now) const {
        if (memory_has_response()) return now + 1;
        if (!response_line_.empty()) {
            return std::max(now + 1, response_line_.top().due);
        }
        return k_cycle_never;
    }

    /// Hook invoked just before a response reaches the client's handler;
    /// lets derived classes release per-client credits or record stats.
    virtual void on_response_delivered(const mem_request&) {}

private:
    struct pending_response {
        cycle_t due;
        std::uint64_t seq; ///< tie-break, preserves FIFO order per due time
        mem_request req;
    };
    struct later_due {
        bool operator()(const pending_response& a,
                        const pending_response& b) const {
            return a.due != b.due ? a.due > b.due : a.seq > b.seq;
        }
    };

    std::uint32_t n_clients_;
    memory_controller* mem_ = nullptr;
    response_handler on_response_;
    sim::fault_window root_link_faults_;
    std::priority_queue<pending_response, std::vector<pending_response>,
                        later_due>
        response_line_;
    std::uint64_t in_flight_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t link_dropped_ = 0;
    std::uint64_t response_seq_ = 0;
};

} // namespace bluescale
