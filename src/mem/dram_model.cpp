#include "mem/dram_model.hpp"

#include <cassert>

namespace bluescale {

dram_model::dram_model(dram_timing timing)
    : timing_(timing), open_row_(timing.n_banks, -1),
      refresh_penalty_(timing.n_banks, 0) {
    assert(timing_.n_banks > 0);
    assert(timing_.row_bytes > 0);
}

std::uint32_t dram_model::bank_of(std::uint64_t addr) const {
    return static_cast<std::uint32_t>((addr / timing_.bank_interleave_bytes) %
                                      timing_.n_banks);
}

std::uint64_t dram_model::row_of(std::uint64_t addr) const {
    return addr / (timing_.row_bytes * timing_.n_banks);
}

row_outcome dram_model::classify(const mem_request& r) const {
    const auto bank = bank_of(r.addr);
    const auto row = static_cast<std::int64_t>(row_of(r.addr));
    if (open_row_[bank] == row) return row_outcome::hit;
    if (open_row_[bank] < 0) {
        // A maintenance close charges the precharge it issued to the
        // first access that finds the bank emptied: conflict, not closed.
        return refresh_penalty_[bank] != 0 ? row_outcome::conflict
                                           : row_outcome::closed;
    }
    return row_outcome::conflict;
}

std::uint32_t dram_model::latency_for(row_outcome outcome, mem_op op) const {
    std::uint32_t lat = timing_.t_cas + timing_.t_burst;
    switch (outcome) {
    case row_outcome::hit:
        break;
    case row_outcome::closed:
        lat += timing_.t_rcd;
        break;
    case row_outcome::conflict:
        lat += timing_.t_rp + timing_.t_rcd;
        break;
    }
    if (op == mem_op::write) lat += timing_.t_wr_extra;
    return lat;
}

std::uint32_t dram_model::access_latency(const mem_request& r) const {
    return latency_for(classify(r), r.op);
}

std::uint32_t dram_model::access(const mem_request& r) {
    const row_outcome outcome = classify(r);
    if (outcome == row_outcome::hit) {
        ++hits_;
    } else {
        ++misses_;
    }
    const auto bank = bank_of(r.addr);
    open_row_[bank] = static_cast<std::int64_t>(row_of(r.addr));
    refresh_penalty_[bank] = 0;
    return latency_for(outcome, r.op);
}

void dram_model::close_row(std::uint32_t bank) {
    open_row_[bank] = -1;
    refresh_penalty_[bank] = 1;
}

void dram_model::close_all_rows() {
    for (std::uint32_t b = 0; b < timing_.n_banks; ++b) close_row(b);
}

void dram_model::reset() {
    for (auto& row : open_row_) row = -1;
    for (auto& p : refresh_penalty_) p = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace bluescale
