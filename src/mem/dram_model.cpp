#include "mem/dram_model.hpp"

#include <cassert>

namespace bluescale {

dram_model::dram_model(dram_timing timing)
    : timing_(timing), open_row_(timing.n_banks, -1) {
    assert(timing_.n_banks > 0);
    assert(timing_.row_bytes > 0);
}

std::uint32_t dram_model::bank_of(std::uint64_t addr) const {
    return static_cast<std::uint32_t>((addr / timing_.bank_interleave_bytes) %
                                      timing_.n_banks);
}

std::uint64_t dram_model::row_of(std::uint64_t addr) const {
    return addr / (timing_.row_bytes * timing_.n_banks);
}

row_outcome dram_model::classify(const mem_request& r) const {
    const auto bank = bank_of(r.addr);
    const auto row = static_cast<std::int64_t>(row_of(r.addr));
    if (open_row_[bank] == row) return row_outcome::hit;
    if (open_row_[bank] < 0) return row_outcome::closed;
    return row_outcome::conflict;
}

std::uint32_t dram_model::latency_for(row_outcome outcome, mem_op op) const {
    std::uint32_t lat = timing_.t_cas + timing_.t_burst;
    switch (outcome) {
    case row_outcome::hit:
        break;
    case row_outcome::closed:
        lat += timing_.t_rcd;
        break;
    case row_outcome::conflict:
        lat += timing_.t_rp + timing_.t_rcd;
        break;
    }
    if (op == mem_op::write) lat += timing_.t_wr_extra;
    return lat;
}

std::uint32_t dram_model::access_latency(const mem_request& r) const {
    return latency_for(classify(r), r.op);
}

std::uint32_t dram_model::access(const mem_request& r) {
    const row_outcome outcome = classify(r);
    if (outcome == row_outcome::hit) {
        ++hits_;
    } else {
        ++misses_;
    }
    open_row_[bank_of(r.addr)] = static_cast<std::int64_t>(row_of(r.addr));
    return latency_for(outcome, r.op);
}

void dram_model::close_all_rows() {
    for (auto& row : open_row_) row = -1;
}

void dram_model::reset() {
    close_all_rows();
    hits_ = 0;
    misses_ = 0;
}

} // namespace bluescale
