// Bank/row-aware DRAM timing model.
//
// The paper's platform has a 4 GB DRAM module behind a memory controller.
// This model captures the first-order timing behaviour that matters for
// interconnect evaluation: open-row hits are fast, row misses pay
// precharge + activate, and banks keep independent row state.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/request.hpp"
#include "sim/types.hpp"

namespace bluescale {

/// Timing parameters, in interconnect cycles. Defaults approximate a DDR3
/// part behind a clock-domain crossing, quantized to the interconnect clock.
struct dram_timing {
    std::uint32_t n_banks = 8;
    std::uint64_t row_bytes = 2048;    ///< row-buffer size per bank
    /// Bank-interleave granularity: consecutive chunks of this many bytes
    /// rotate across banks (cache-line interleaving by default, so
    /// sequential streams exploit bank-level parallelism while staying in
    /// the same row per bank).
    std::uint64_t bank_interleave_bytes = 64;
    std::uint32_t t_cas = 5;           ///< column access (row hit)
    std::uint32_t t_rcd = 5;           ///< activate-to-access
    std::uint32_t t_rp = 5;            ///< precharge
    std::uint32_t t_burst = 3;         ///< data transfer per transaction
    std::uint32_t t_wr_extra = 2;      ///< write recovery surcharge
    /// Refresh: every t_refi cycles the device is unavailable for t_rfc
    /// cycles and all rows close (a classic real-time disturbance;
    /// 0 disables refresh -- the default, so experiments opt in).
    std::uint32_t t_refi = 0;
    std::uint32_t t_rfc = 0;
};

/// Row-state classification of an access.
enum class row_outcome : std::uint8_t {
    hit,     ///< target row already open
    closed,  ///< bank idle: activate then access
    conflict ///< different row open: precharge, activate, access
};

class dram_model {
public:
    explicit dram_model(dram_timing timing = {});

    /// Bank index the address maps to (row-interleaved mapping).
    [[nodiscard]] std::uint32_t bank_of(std::uint64_t addr) const;

    /// Row index within a bank.
    [[nodiscard]] std::uint64_t row_of(std::uint64_t addr) const;

    /// What a request would hit right now, without changing state.
    [[nodiscard]] row_outcome classify(const mem_request& r) const;

    /// Latency the access would incur right now, without changing state.
    [[nodiscard]] std::uint32_t access_latency(const mem_request& r) const;

    /// Performs the access: updates the bank's open row and returns the
    /// service latency in cycles.
    std::uint32_t access(const mem_request& r);

    /// Closes one bank's row as a maintenance effect (refresh, scrub,
    /// RowHammer mitigation). Unlike a demand-driven close, the first
    /// access to the bank afterwards pays the full conflict path: the
    /// maintenance op itself issued the precharge/activate that evicted
    /// the row, so the precharge is charged to the evicted access, not
    /// amortized away as a "closed" activate.
    void close_row(std::uint32_t bank);

    /// Closes all rows (refresh effect) without clearing counters. Each
    /// bank carries the close_row() first-access conflict penalty.
    void close_all_rows();

    /// Closes all rows and clears counters (between trials). Unlike
    /// close_all_rows(), carries no refresh penalty: the first access of
    /// a fresh trial sees an idle bank.
    void reset();

    [[nodiscard]] const dram_timing& timing() const { return timing_; }

    // Counters for tests/reporting.
    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }

private:
    [[nodiscard]] std::uint32_t latency_for(row_outcome outcome,
                                            mem_op op) const;

    dram_timing timing_;
    std::vector<std::int64_t> open_row_; ///< -1 == closed
    /// Bank was closed by maintenance and not yet re-accessed: the next
    /// access pays conflict-path latency (see close_row()).
    std::vector<std::uint8_t> refresh_penalty_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bluescale
