#include "mem/maintenance_engine.hpp"

#include <algorithm>

#include "mem/memory_controller.hpp"

namespace bluescale {

maintenance_engine::maintenance_engine(dram_model& dram,
                                       maintenance_config cfg)
    : dram_(dram), cfg_(cfg),
      next_refresh_(dram.timing().n_banks, k_cycle_never),
      blocked_until_(dram.timing().n_banks, 0),
      activations_(dram.timing().n_banks, 0),
      own_(std::make_unique<obs::registry>()) {
    bind_observability(*own_);
    arm_refresh();
    next_scrub_ = cfg_.scrub_interval > 0 && cfg_.scrub_duration > 0
                      ? cfg_.scrub_interval
                      : k_cycle_never;
}

void maintenance_engine::arm_refresh() {
    const dram_timing& t = dram_.timing();
    for (std::uint32_t b = 0; b < t.n_banks; ++b) {
        // DSARP stagger: bank b's first window at (b+1)*t_refi/n_banks,
        // so windows spread evenly and bank n-1 lands on the classic
        // all-banks cadence.
        next_refresh_[b] =
            t.t_refi > 0 && t.t_rfc > 0
                ? (static_cast<cycle_t>(t.t_refi) * (b + 1)) / t.n_banks
                : k_cycle_never;
    }
}

void maintenance_engine::bind_observability(obs::registry& reg) {
    refreshes_ = reg.make_counter("mem/refreshes");
    scrubs_ = reg.make_counter("mem/scrubs");
    hammer_mitigations_ = reg.make_counter("mem/hammer_mitigations");
    stolen_cycles_ = reg.make_counter("mem/maintenance_stolen_cycles");
    storm_cycles_ = reg.make_counter("mem/maintenance_storm_cycles");
}

void maintenance_engine::advance(cycle_t now) {
    const dram_timing& t = dram_.timing();
    for (std::uint32_t b = 0; b < t.n_banks; ++b) {
        while (next_refresh_[b] <= now) {
            blocked_until_[b] =
                std::max<cycle_t>(blocked_until_[b], next_refresh_[b] + t.t_rfc);
            dram_.close_row(b);
            refreshes_.inc();
            stolen_cycles_.inc(t.t_rfc);
            next_refresh_[b] += t.t_refi;
        }
    }
    while (next_scrub_ <= now) {
        blocked_until_[scrub_bank_] = std::max<cycle_t>(
            blocked_until_[scrub_bank_], next_scrub_ + cfg_.scrub_duration);
        dram_.close_row(scrub_bank_);
        scrubs_.inc();
        stolen_cycles_.inc(cfg_.scrub_duration);
        scrub_bank_ = (scrub_bank_ + 1) % t.n_banks;
        next_scrub_ += cfg_.scrub_interval;
    }
    const bool storm = storms_.active(now);
    if (storm && !storm_active_) {
        // Storm entry: the excess scrub/mitigation burst evicts every
        // open row, exactly like the modeled mechanisms do per bank.
        dram_.close_all_rows();
    }
    storm_active_ = storm;
    if (storm_active_) storm_cycles_.inc();
}

void maintenance_engine::on_activation(std::uint32_t bank,
                                       cycle_t busy_until) {
    if (cfg_.hammer_threshold == 0 || cfg_.hammer_mitigation_cycles == 0) {
        return;
    }
    if (++activations_[bank] < cfg_.hammer_threshold) return;
    activations_[bank] = 0;
    // The mitigation issues right behind the triggering access: the bank
    // finishes the access, then stays offline for the neighbor-row
    // refresh, which also evicts the aggressor row.
    blocked_until_[bank] =
        std::max<cycle_t>(blocked_until_[bank], busy_until) +
        cfg_.hammer_mitigation_cycles;
    dram_.close_row(bank);
    hammer_mitigations_.inc();
    stolen_cycles_.inc(cfg_.hammer_mitigation_cycles);
}

bool maintenance_engine::bank_blocked(std::uint32_t bank, cycle_t now) const {
    return storm_active_ || now < blocked_until_[bank];
}

cycle_t maintenance_engine::next_boundary(cycle_t now) const {
    cycle_t due =
        storms_.empty() ? k_cycle_never : storms_.wake_horizon(now);
    for (const cycle_t r : next_refresh_) due = std::min(due, r);
    due = std::min(due, next_scrub_);
    // next_boundary() IS horizon API -- it feeds
    // memory_controller::next_event(); the clamp keeps the boundary
    // strictly in the future.
    return std::max(due, now + 1); // detlint:allow(cycle-step): horizon clamp
}

void maintenance_engine::inject_storms(std::vector<sim::fault_event> events) {
    storms_ = sim::fault_window(std::move(events));
}

void maintenance_engine::reset() {
    arm_refresh();
    next_scrub_ = cfg_.scrub_interval > 0 && cfg_.scrub_duration > 0
                      ? cfg_.scrub_interval
                      : k_cycle_never;
    scrub_bank_ = 0;
    for (auto& b : blocked_until_) b = 0;
    for (auto& a : activations_) a = 0;
    storms_.reset();
    storm_active_ = false;
    refreshes_.reset();
    scrubs_.reset();
    hammer_mitigations_.reset();
    stolen_cycles_.reset();
    storm_cycles_.reset();
}

namespace {

/// One cycle-domain mechanism -> analysis units, rounding conservatively:
/// the period floors (interference arrives at least this often) and the
/// cost ceils (each instance steals at least a whole unit boundary).
analysis::maintenance_op make_op(std::uint64_t period_cycles,
                                 std::uint64_t cost_cycles,
                                 std::uint64_t unit_cycles) {
    analysis::maintenance_op op;
    op.period = std::max<std::uint64_t>(1, period_cycles / unit_cycles);
    op.cost = (cost_cycles + unit_cycles - 1) / unit_cycles;
    return op;
}

} // namespace

analysis::maintenance_model to_maintenance_model(const memctrl_config& cfg) {
    analysis::maintenance_model m;
    const std::uint64_t unit = std::max<std::uint32_t>(1, cfg.initiation_interval);
    const dram_timing& t = cfg.timing;
    if (t.t_refi > 0 && t.t_rfc > 0) {
        m.ops.push_back(make_op(t.t_refi, t.t_rfc, unit));
    }
    const maintenance_config& mc = cfg.maintenance;
    if (mc.scrub_interval > 0 && mc.scrub_duration > 0) {
        m.ops.push_back(make_op(mc.scrub_interval * t.n_banks,
                                mc.scrub_duration, unit));
    }
    if (mc.hammer_threshold > 0 && mc.hammer_mitigation_cycles > 0) {
        // Activations are bounded by one transaction start per unit, so
        // the threshold *is* the minimum inter-arrival in units.
        analysis::maintenance_op op;
        op.period = mc.hammer_threshold;
        op.cost = (mc.hammer_mitigation_cycles + unit - 1) / unit;
        m.ops.push_back(op);
    }
    return m;
}

} // namespace bluescale
