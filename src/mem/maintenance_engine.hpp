// Deterministic DRAM maintenance scheduler (ROADMAP item 3).
//
// Real DRAM periodically steals service for device upkeep. This engine
// models the three mechanisms that matter for real-time guarantees, all
// seed-free and fully determined by configuration:
//
//  * per-bank refresh -- DSARP-style staggered t_refi/t_rfc windows: bank
//    b refreshes at phase offset (b+1)*t_refi/n_banks and every t_refi
//    after, so at most one bank is unavailable at a time instead of the
//    whole device (replaces the old all-banks-close controller stub);
//  * background ECC scrubbing -- a round-robin sweep that takes one bank
//    offline for scrub_duration every scrub_interval cycles;
//  * RowHammer mitigation -- Graphene-style: a per-bank activation
//    counter triggers a neighbor-row refresh (bank offline for
//    hammer_mitigation_cycles) every hammer_threshold activations.
//
// The engine is owned by the memory controller and driven from its tick:
// advance(now) applies every maintenance window start in (prev, now] in
// closed form, so the event engine can sleep across windows and catch up
// bit-identically to lockstep -- provided the controller's next_event
// horizon includes next_boundary(now), which keeps the observability
// counters current at every boundary even while the controller is idle.
//
// A maintenance *storm* (sim::fault_kind::maintenance_storm) injects
// excess scrubbing/mitigation: every bank is blocked for the window.
// Storms are the *unmodeled* interference the supply watchdog must catch;
// the periodic mechanisms above are *modeled* and exported to analysis
// via to_maintenance_model().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/maintenance.hpp"
#include "mem/dram_model.hpp"
#include "obs/registry.hpp"
#include "sim/fault.hpp"
#include "sim/types.hpp"

namespace bluescale {

struct memctrl_config; // for to_maintenance_model (defined below)

/// Scrub/RowHammer knobs (refresh comes from dram_timing::t_refi/t_rfc).
/// Zero interval/threshold disables the mechanism -- the default, so
/// existing experiments opt in.
struct maintenance_config {
    /// Cycles between scrub bursts; each burst takes one bank (round
    /// robin) offline for scrub_duration cycles.
    std::uint64_t scrub_interval = 0;
    std::uint32_t scrub_duration = 0;
    /// Activations of one bank before a mitigation fires (0 = off).
    std::uint64_t hammer_threshold = 0;
    /// Bank-offline time per mitigation (neighbor-row refresh).
    std::uint32_t hammer_mitigation_cycles = 0;
};

class maintenance_engine {
public:
    maintenance_engine(dram_model& dram, maintenance_config cfg);

    /// Re-homes the maintenance counters into `reg` under "mem/...".
    void bind_observability(obs::registry& reg);

    /// Applies every maintenance window starting in (previous, now].
    /// Closed-form catch-up: repeated row-closes collapse, blocked-until
    /// horizons take the max over processed windows, and counters advance
    /// once per window, exactly as if every cycle had been ticked. Call
    /// once per controller tick, before any scheduling decision; `now`
    /// must never decrease between calls (reset() rewinds).
    void advance(cycle_t now);

    /// Records a bank activation at service start (RowHammer bookkeeping)
    /// with the access occupying its bank until `busy_until`. When the
    /// per-bank counter crosses the threshold, the mitigation queues
    /// right behind the triggering access: the bank stays blocked for
    /// hammer_mitigation_cycles after busy_until and its row closes.
    void on_activation(std::uint32_t bank, cycle_t busy_until);

    /// True while maintenance has the bank offline (refresh/scrub window,
    /// pending mitigation, or an active maintenance storm).
    [[nodiscard]] bool bank_blocked(std::uint32_t bank, cycle_t now) const;

    /// Event-engine horizon: the next maintenance window start (refresh,
    /// scrub, or storm), valid immediately after advance(now). Per-cycle
    /// inside a storm window (storm cycles are counted per cycle).
    [[nodiscard]] cycle_t next_boundary(cycle_t now) const;

    /// Consumes the maintenance_storm slice of a fault campaign.
    void inject_storms(std::vector<sim::fault_event> events);

    /// Rewinds schedules and counters between trials.
    void reset();

    [[nodiscard]] const maintenance_config& config() const { return cfg_; }
    [[nodiscard]] std::uint64_t refreshes() const { return refreshes_.value(); }
    [[nodiscard]] std::uint64_t scrubs() const { return scrubs_.value(); }
    [[nodiscard]] std::uint64_t hammer_mitigations() const {
        return hammer_mitigations_.value();
    }
    /// Bank-cycles stolen by modeled maintenance (refresh + scrub +
    /// mitigation windows, at nominal duration).
    [[nodiscard]] std::uint64_t stolen_cycles() const {
        return stolen_cycles_.value();
    }
    /// Cycles inside injected maintenance-storm windows (all banks).
    [[nodiscard]] std::uint64_t storm_cycles() const {
        return storm_cycles_.value();
    }

private:
    void arm_refresh();

    dram_model& dram_;
    maintenance_config cfg_;
    /// Next refresh window start per bank (staggered phases).
    std::vector<cycle_t> next_refresh_;
    /// Exclusive end of each bank's current maintenance occupancy.
    std::vector<cycle_t> blocked_until_;
    /// RowHammer activation counters (reset on mitigation).
    std::vector<std::uint64_t> activations_;
    cycle_t next_scrub_ = 0;
    std::uint32_t scrub_bank_ = 0;
    sim::fault_window storms_;
    bool storm_active_ = false;
    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    obs::counter refreshes_;
    obs::counter scrubs_;
    obs::counter hammer_mitigations_;
    obs::counter stolen_cycles_;
    obs::counter storm_cycles_;
};

/// Projects the configured maintenance mechanisms into the analysis-side
/// interference model, in analysis time units (initiation_interval cycles
/// each). Single-worst-bank abstraction: a client's accesses may all
/// target the bank under maintenance, so each mechanism is charged at its
/// per-bank rate -- refresh every t_refi, scrub every
/// scrub_interval * n_banks (round robin), one mitigation per
/// hammer_threshold activations (at most one activation per time unit).
/// Conversions round conservatively (periods down, costs up).
[[nodiscard]] analysis::maintenance_model
to_maintenance_model(const memctrl_config& cfg);

} // namespace bluescale
