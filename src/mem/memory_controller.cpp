#include "mem/memory_controller.hpp"

#include <algorithm>

namespace bluescale {

memory_controller::memory_controller(memctrl_config cfg)
    : component("memory_controller", /*latches=*/true), cfg_(cfg),
      dram_(cfg.timing), maint_(dram_, cfg.maintenance),
      in_q_(cfg.request_queue_depth), out_q_(cfg.response_queue_depth),
      bank_busy_until_(cfg.timing.n_banks, 0),
      own_(std::make_unique<obs::registry>()) {
    bind_observability(*own_, obs::tracer{});
    // The interconnect root pushes requests during its own tick; the wake
    // re-arms a sleeping controller for the same cycle (it ticks after
    // the fabric in registration order, exactly as in lockstep).
    in_q_.set_wake_hook(sim::wake_of(*this));
}

void memory_controller::bind_observability(obs::registry& reg,
                                           obs::tracer tracer) {
    serviced_ = reg.make_counter("mem/serviced");
    ecc_retries_ = reg.make_counter("mem/ecc_retries");
    uncorrected_errors_ = reg.make_counter("mem/uncorrected_errors");
    storm_cycles_ = reg.make_counter("mem/storm_cycles");
    maint_.bind_observability(reg);
    trace_ = tracer;
}

bool memory_controller::bank_free(const mem_request& r, cycle_t now) const {
    const std::uint32_t bank = dram_.bank_of(r.addr);
    return bank_busy_until_[bank] <= now && !maint_.bank_blocked(bank, now);
}

int memory_controller::choose(cycle_t now) const {
    if (in_q_.empty()) return -1;

    if (cfg_.policy == memctrl_policy::fcfs) {
        // Strict order: the head stalls everyone while its bank is busy.
        return bank_free(in_q_.at(0), now) ? 0 : -1;
    }

    // FR-FCFS. A head bypassed too often is forced next (starvation guard).
    if (head_bypasses_ >= cfg_.fr_fcfs_bypass_cap) {
        return bank_free(in_q_.at(0), now) ? 0 : -1;
    }
    // Oldest ready row hit...
    for (std::size_t i = 0; i < in_q_.size(); ++i) {
        const mem_request& r = in_q_.at(i);
        if (bank_free(r, now) &&
            dram_.classify(r) == row_outcome::hit) {
            return static_cast<int>(i);
        }
    }
    // ...else oldest request with a free bank.
    for (std::size_t i = 0; i < in_q_.size(); ++i) {
        if (bank_free(in_q_.at(i), now)) return static_cast<int>(i);
    }
    return -1;
}

void memory_controller::tick(cycle_t now) {
    // Maintenance first: windows slept over are applied in closed form, so
    // every scheduling decision below sees the post-maintenance row state.
    maint_.advance(now);

    // Injected backpressure storm: refuse new work for the window.
    storm_active_ = storm_faults_.active(now);
    if (storm_active_) storm_cycles_.inc();

    // Retire finished transactions into the response queue. A completion
    // inside an injected DRAM-error window is corrupted: the first hit
    // re-services the transaction transparently (ECC scrub + reissue); a
    // corrupted retry is delivered failed, for the client to recover.
    while (!in_flight_.empty() && in_flight_.top().done <= now &&
           out_q_.can_push()) {
        auto& top = const_cast<completion&>(in_flight_.top());
        const bool corrupted = error_faults_.active(now);
        if (corrupted && !top.ecc_retried) {
            mem_request retry = std::move(top.req);
            in_flight_.pop();
            ecc_retries_.inc();
            const std::uint32_t latency =
                std::max<std::uint32_t>(1, dram_.access(retry));
            const std::uint32_t bank = dram_.bank_of(retry.addr);
            bank_busy_until_[bank] =
                std::max(bank_busy_until_[bank], now + latency);
            maint_.on_activation(bank, now + latency);
            in_flight_.push(
                {now + latency, completion_seq_++, std::move(retry), true});
            continue;
        }
        mem_request r = std::move(top.req);
        in_flight_.pop();
        if (corrupted) {
            r.failed = true;
            uncorrected_errors_.inc();
        }
        r.mem_done = now;
        trace_.emit(obs::trace_event_kind::mem_complete, r.id,
                    r.failed ? 1 : 0);
        out_q_.push(std::move(r));
        serviced_.inc();
    }

    // Start a new transaction at most once per initiation interval.
    if (now < next_start_) return;
    const int pick = choose(now);
    if (pick < 0) return;

    if (pick == 0) {
        head_bypasses_ = 0;
    } else {
        ++head_bypasses_;
    }
    mem_request r = in_q_.extract(static_cast<std::size_t>(pick));
    const std::uint32_t latency = dram_.access(r);
    r.mem_start = now;
    trace_.emit(obs::trace_event_kind::request_dequeue, r.id,
                dram_.bank_of(r.addr));
    // Requests that keep waiting while a later-deadline transaction
    // occupies the start slot are blocked by lower-priority work.
    for (std::size_t i = 0; i < in_q_.size(); ++i) {
        mem_request& waiting = in_q_.at(i);
        if (waiting.level_deadline < r.level_deadline) {
            waiting.blocked_cycles += cfg_.initiation_interval;
        }
    }
    const std::uint32_t bank = dram_.bank_of(r.addr);
    bank_busy_until_[bank] = now + latency;
    maint_.on_activation(bank, now + latency);
    in_flight_.push({now + latency, completion_seq_++, std::move(r)});
    next_start_ = now + cfg_.initiation_interval;
}

void memory_controller::commit() {
    in_q_.commit();
    out_q_.commit();
}

cycle_t memory_controller::next_event(cycle_t now) const {
    // An open storm window counts storm_cycles_ per cycle.
    if (storm_active_) return now + 1;
    cycle_t due = storm_faults_.wake_horizon(now);
    if (!in_flight_.empty()) {
        // Earliest retirement; a retirement blocked on a full response
        // queue (done <= now) clamps to per-cycle until the fabric pops.
        due = std::min(due, std::max(now + 1, in_flight_.top().done));
    }
    if (!in_q_.quiet()) {
        // Queued work can only start at the initiation-interval gate;
        // cycles before next_start_ would hit the `now < next_start_`
        // early-out. choose() stalls (next_start_ <= now, pick < 0)
        // degrade to the per-cycle clamp.
        due = std::min(due, std::max(now + 1, next_start_));
    }
    // Maintenance boundaries wake the controller even when idle: the
    // engine's counters and row-state must advance at every window start
    // for snapshots to match lockstep byte-for-byte. Per-cycle inside an
    // injected maintenance storm (per-cycle stolen accounting).
    due = std::min(due, maint_.next_boundary(now));
    return due;
}

void memory_controller::inject_campaign(const sim::fault_campaign& campaign) {
    error_faults_ =
        sim::fault_window(campaign.slice_all(sim::fault_kind::dram_error));
    storm_faults_ = sim::fault_window(
        campaign.slice_all(sim::fault_kind::backpressure_storm));
    maint_.inject_storms(
        campaign.slice_all(sim::fault_kind::maintenance_storm));
    wake(); // the fresh schedules invalidate any cached horizon
}

void memory_controller::reset() {
    in_q_.clear();
    out_q_.clear();
    while (!in_flight_.empty()) in_flight_.pop();
    for (auto& b : bank_busy_until_) b = 0;
    error_faults_.reset();
    storm_faults_.reset();
    storm_active_ = false;
    next_start_ = 0;
    maint_.reset();
    head_bypasses_ = 0;
    wake();
    serviced_.reset();
    ecc_retries_.reset();
    uncorrected_errors_.reset();
    storm_cycles_.reset();
    dram_.reset();
}

} // namespace bluescale
