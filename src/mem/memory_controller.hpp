// Memory controller: queues transactions from the interconnect root and
// services them against the DRAM model with bank-level parallelism.
//
// The controller starts at most one transaction every
// `initiation_interval` cycles (the command/data-bus slot -- one paper
// "time unit"); each started transaction occupies its bank for the
// DRAM-model latency and completes independently, so throughput is
// 1/initiation_interval while per-request latency is row-state dependent.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "mem/dram_model.hpp"
#include "mem/maintenance_engine.hpp"
#include "mem/request.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "sim/fault.hpp"
#include "sim/latched_queue.hpp"

namespace bluescale {

/// Transaction scheduling policy inside the controller.
enum class memctrl_policy : std::uint8_t {
    fcfs,    ///< strictly oldest-first
    fr_fcfs, ///< first-ready (open-row hit on a free bank) first
};

struct memctrl_config {
    memctrl_policy policy = memctrl_policy::fr_fcfs;
    std::size_t request_queue_depth = 16;
    std::size_t response_queue_depth = 16;
    /// Cycles between transaction starts (one analysis time unit).
    std::uint32_t initiation_interval = 4;
    /// FR-FCFS starvation guard: after the queue head has been bypassed by
    /// this many younger requests, it must be served next.
    std::uint32_t fr_fcfs_bypass_cap = 16;
    dram_timing timing = {};
    /// Scrub / RowHammer maintenance (refresh cadence lives in `timing`).
    maintenance_config maintenance = {};
};

class memory_controller : public component {
public:
    explicit memory_controller(memctrl_config cfg = {});

    // --- request side (interconnect root pushes here) -------------------
    /// False while the request queue is full or an injected backpressure
    /// storm has the controller refusing new work.
    [[nodiscard]] bool can_accept() const {
        return !storm_active_ && in_q_.can_push();
    }
    void push(mem_request r) { in_q_.push(std::move(r)); }

    // --- response side (interconnect root drains these) -----------------
    [[nodiscard]] bool has_response() const { return !out_q_.empty(); }
    mem_request pop_response() { return out_q_.pop(); }
    /// Fires whenever a completed transaction enters the response queue,
    /// so a fabric sleeping on an empty response path is re-armed for the
    /// cycle the response becomes visible (attach_memory wires this).
    void set_response_wake(sim::wake_hook h) {
        out_q_.set_wake_hook(std::move(h));
    }

    void tick(cycle_t now) override;
    void commit() override;

    /// Event-engine horizon: per-cycle while requests are queued/staged
    /// or a storm is open; otherwise the earliest of the in-flight
    /// completions, the next fault-storm window and the next maintenance
    /// boundary. Maintenance boundaries force wakes even when idle so the
    /// engine's closed-form catch-up keeps the maintenance counters
    /// bit-identical to lockstep at any snapshot instant.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    /// Re-homes the service counters into `reg` under "mem/..." and
    /// attaches the trace stream; call before the trial starts.
    void bind_observability(obs::registry& reg, obs::tracer tracer);

    /// Drops queued/in-flight state between trials.
    void reset();

    /// Consumes the campaign kinds owned by the memory side: dram_error
    /// windows corrupt completing transactions (one transparent ECC-style
    /// retry, then a failed response), backpressure_storm windows make
    /// can_accept() refuse new work, and maintenance_storm windows block
    /// every DRAM bank (excess scrubbing/mitigation).
    void inject_campaign(const sim::fault_campaign& campaign);

    [[nodiscard]] const dram_model& dram() const { return dram_; }
    [[nodiscard]] const maintenance_engine& maintenance() const {
        return maint_;
    }
    [[nodiscard]] const memctrl_config& config() const { return cfg_; }
    [[nodiscard]] std::uint64_t serviced() const { return serviced_.value(); }
    /// Transactions transparently re-serviced after a transient error.
    [[nodiscard]] std::uint64_t ecc_retries() const {
        return ecc_retries_.value();
    }
    /// Responses delivered with mem_request::failed set (retry also hit
    /// an error window; the client must recover).
    [[nodiscard]] std::uint64_t uncorrected_errors() const {
        return uncorrected_errors_.value();
    }
    /// Cycles spent refusing work inside backpressure storms.
    [[nodiscard]] std::uint64_t storm_cycles() const {
        return storm_cycles_.value();
    }
    /// True when no transaction is queued or in flight.
    [[nodiscard]] bool idle() const {
        return in_flight_.empty() && in_q_.empty();
    }

private:
    /// Index into in_q_ of the transaction to start next; -1 when none is
    /// ready (e.g. the head's bank is still busy).
    [[nodiscard]] int choose(cycle_t now) const;
    /// Younger-request grants since the current head became head.
    std::uint32_t head_bypasses_ = 0;
    [[nodiscard]] bool bank_free(const mem_request& r, cycle_t now) const;

    struct completion {
        cycle_t done;
        std::uint64_t seq;
        mem_request req;
        bool ecc_retried = false; ///< one transparent retry already spent
    };
    struct later_done {
        bool operator()(const completion& a, const completion& b) const {
            return a.done != b.done ? a.done > b.done : a.seq > b.seq;
        }
    };

    memctrl_config cfg_;
    dram_model dram_;
    maintenance_engine maint_;
    latched_queue<mem_request> in_q_;
    latched_queue<mem_request> out_q_;
    std::priority_queue<completion, std::vector<completion>, later_done>
        in_flight_;
    std::vector<cycle_t> bank_busy_until_;
    sim::fault_window error_faults_;
    sim::fault_window storm_faults_;
    bool storm_active_ = false;
    cycle_t next_start_ = 0;
    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    obs::counter serviced_;
    obs::counter ecc_retries_;
    obs::counter uncorrected_errors_;
    obs::counter storm_cycles_;
    obs::tracer trace_;
    std::uint64_t completion_seq_ = 0;
};

} // namespace bluescale
