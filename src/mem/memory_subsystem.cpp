#include "mem/memory_subsystem.hpp"

#include <cstdio>

namespace bluescale {

const char* preset_name(dram_preset preset) {
    switch (preset) {
    case dram_preset::ddr3_1600: return "DDR3-1600";
    case dram_preset::lpddr4: return "LPDDR4";
    case dram_preset::fast_sram: return "SRAM";
    }
    return "?";
}

dram_timing make_dram_timing(dram_preset preset) {
    dram_timing t; // defaults are the DDR3-1600-class model
    switch (preset) {
    case dram_preset::ddr3_1600:
        // Honest refresh cadence: tREFI 7.8us / tRFC ~260ns at the
        // interconnect clock's scale. The struct default stays 0 (opt-in)
        // but the named preset models the real part, refresh included.
        t.t_refi = 1950;
        t.t_rfc = 65;
        break;
    case dram_preset::lpddr4:
        t.t_cas = 8;
        t.t_rcd = 8;
        t.t_rp = 8;
        t.t_burst = 4;
        t.t_refi = 1560;
        t.t_rfc = 70;
        break;
    case dram_preset::fast_sram:
        // Uniform access: one "row" covering everything, tiny latency.
        t.n_banks = 1;
        t.row_bytes = 1u << 30;
        t.t_cas = 1;
        t.t_rcd = 0;
        t.t_rp = 0;
        t.t_burst = 1;
        t.t_wr_extra = 0;
        break;
    }
    return t;
}

memctrl_config make_memctrl_config(dram_preset preset) {
    memctrl_config cfg;
    cfg.timing = make_dram_timing(preset);
    switch (preset) {
    case dram_preset::ddr3_1600:
        break;
    case dram_preset::lpddr4:
        cfg.initiation_interval = 6;
        break;
    case dram_preset::fast_sram:
        cfg.policy = memctrl_policy::fcfs; // nothing to reorder for
        cfg.initiation_interval = 1;
        break;
    }
    return cfg;
}

std::string memory_subsystem::describe() const {
    const auto s = stats();
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%s: %llu transactions, %.1f%% row hits",
                  preset_name(preset_),
                  static_cast<unsigned long long>(s.serviced),
                  100.0 * s.hit_rate());
    return buf;
}

} // namespace bluescale
