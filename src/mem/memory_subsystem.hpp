// Memory sub-system facade: named device presets plus a one-stop bundle
// of controller + configuration + stats snapshot, so harnesses and
// examples can say "a DDR3-1600-class module" instead of hand-tuning
// timing fields. (The paper's platform: a 4 GB DRAM module behind a
// memory controller.)
#pragma once

#include <cstdint>
#include <string>

#include "mem/memory_controller.hpp"

namespace bluescale {

/// Device classes with timing quantized to the interconnect clock.
enum class dram_preset : std::uint8_t {
    ddr3_1600,   ///< the default model used throughout the evaluation
    lpddr4,      ///< lower power: slower access, longer refresh stall
    fast_sram,   ///< on-chip SRAM-class scratchpad (no rows, no refresh)
};

[[nodiscard]] const char* preset_name(dram_preset preset);

/// Timing parameters for a preset (see dram_timing for field meanings).
[[nodiscard]] dram_timing make_dram_timing(dram_preset preset);

/// Controller configuration for a preset with sane queue sizes.
[[nodiscard]] memctrl_config make_memctrl_config(dram_preset preset);

/// Point-in-time counters for reporting.
struct memory_stats {
    std::uint64_t serviced = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;

    [[nodiscard]] double hit_rate() const {
        const std::uint64_t total = row_hits + row_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(row_hits) /
                                static_cast<double>(total);
    }
};

/// The shared memory sub-system: a controller built from a preset.
class memory_subsystem {
public:
    explicit memory_subsystem(dram_preset preset = dram_preset::ddr3_1600)
        : preset_(preset), controller_(make_memctrl_config(preset)) {}

    [[nodiscard]] memory_controller& controller() { return controller_; }
    [[nodiscard]] const memory_controller& controller() const {
        return controller_;
    }
    [[nodiscard]] dram_preset preset() const { return preset_; }

    [[nodiscard]] memory_stats stats() const {
        return {controller_.serviced(), controller_.dram().hits(),
                controller_.dram().misses()};
    }

    /// One-line summary for example/bench output.
    [[nodiscard]] std::string describe() const;

private:
    dram_preset preset_;
    memory_controller controller_;
};

} // namespace bluescale
