// Memory transaction types that flow through every interconnect.
#pragma once

#include <cstdint>

#include "obs/hop_stamps.hpp"
#include "sim/types.hpp"

namespace bluescale {

/// Read/write direction of a transaction.
enum class mem_op : std::uint8_t { read, write };

/// One memory transaction. The same object travels up the request path,
/// through the memory controller, and back down the response path; timing
/// fields are filled in as it goes so the client can account latency and
/// deadline misses when the response arrives.
struct mem_request {
    request_id_t id = 0;
    client_id_t client = 0;  ///< issuing system-wide client (mu.x)
    task_id_t task = 0;      ///< issuing task within the client
    std::uint32_t job = 0;   ///< job sequence number of the issuing task
    std::uint64_t addr = 0;
    mem_op op = mem_op::read;

    /// Cycle the client issued the request. Retried transactions keep
    /// the first attempt's issue cycle, so total_latency() measures the
    /// true issue -> usable-response time across recovery.
    cycle_t issue_cycle = 0;

    /// Reissue ordinal under retry recovery: 0 for the first attempt,
    /// k for the k-th reissue (saturates at 255).
    std::uint8_t attempt = 0;

    /// Set by the memory controller when a DRAM transient error survived
    /// the ECC-style retry: the payload is invalid and the client must
    /// reissue (or abandon) the transaction.
    bool failed = false;

    /// Task-level absolute deadline (release + period under implicit
    /// deadlines). Used for deadline-miss accounting and for EDF ordering
    /// at the leaf level.
    cycle_t abs_deadline = k_cycle_never;

    /// Deadline used for arbitration at the *current* tree level. At the
    /// leaves it equals abs_deadline; each BlueScale SE that forwards the
    /// request re-stamps it with the forwarding server job's deadline,
    /// realizing the paper's iterative compositional scheduling.
    cycle_t level_deadline = k_cycle_never;

    // --- measurement fields -------------------------------------------
    /// Cycles spent waiting at any arbitration point while a request with a
    /// *later* deadline was being granted (priority inversion; the paper's
    /// "blocking latency", Sec. 6.3).
    cycle_t blocked_cycles = 0;
    /// Cycle this request arrived at its current hop (re-stamped by each
    /// forwarding element; drives per-level latency breakdowns).
    cycle_t hop_arrival = 0;
    cycle_t mem_start = 0;      ///< cycle the memory controller began service
    cycle_t mem_done = 0;       ///< cycle the memory controller finished
    cycle_t complete_cycle = 0; ///< cycle the response reached the client

    /// Fabric-internal attribution stamps (RAB admit, per-level server
    /// grants); cleared on reissue so a retried transaction attributes
    /// its final attempt.
    obs::hop_stamps hops;

    [[nodiscard]] cycle_t total_latency() const {
        return complete_cycle - issue_cycle;
    }

    [[nodiscard]] bool met_deadline() const {
        return complete_cycle <= abs_deadline;
    }
};

} // namespace bluescale
