// Per-request hop timestamp vector (DESIGN.md Sec. 11): the fabric-
// internal attribution points a mem_request collects on its way to
// memory. Together with mem_request's existing issue/mem_start/mem_done/
// complete_cycle fields this gives the full per-hop latency breakdown
// (arrival, RAB admit, server grant per tree level, memory issue,
// completion) without any post-hoc re-derivation -- bench/
// latency_breakdown reads these stamps straight off the responses.
#pragma once

#include <array>
#include <cstdint>

#include "sim/types.hpp"

namespace bluescale::obs {

struct hop_stamps {
    /// Deepest stampable quadtree (4 levels covers 256 clients; deeper
    /// trees keep their shallowest k_max_levels grants).
    static constexpr std::uint32_t k_max_levels = 4;

    /// Cycle the request entered its leaf SE's random access buffer.
    cycle_t rab_admit = k_cycle_never;
    /// Cycle SE level l's server granted/forwarded the request (root is
    /// level 0, clients hang off level leaf_level).
    std::array<cycle_t, k_max_levels> grant{k_cycle_never, k_cycle_never,
                                            k_cycle_never, k_cycle_never};

    void stamp_grant(std::uint32_t level, cycle_t now) {
        if (level < k_max_levels) grant[level] = now;
    }
    [[nodiscard]] cycle_t grant_at(std::uint32_t level) const {
        return level < k_max_levels ? grant[level] : k_cycle_never;
    }
    [[nodiscard]] bool granted_at(std::uint32_t level) const {
        return grant_at(level) != k_cycle_never;
    }
};

} // namespace bluescale::obs
