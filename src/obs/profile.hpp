// Wall-clock profiling primitives for the observability layer.
//
// Profiling measures the *simulator*, not the simulated system: cycles
// simulated per wall-second, per-component tick cost. Wall-clock reads
// are inherently nondeterministic, so everything here records into
// k_metric_profile-flagged metrics, which deterministic snapshots and
// exports exclude by default (obs::registry::take_snapshot).
#pragma once

#include <chrono>
#include <cstdint>

namespace bluescale::obs {

/// Monotonic stopwatch, running from construction or restart().
class stopwatch {
public:
    stopwatch() : t0_(clock::now()) {}

    void restart() { t0_ = clock::now(); }

    /// Elapsed nanoseconds since construction/restart.
    [[nodiscard]] std::uint64_t ns() const {
        const auto dt = clock::now() - t0_;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
    }

    [[nodiscard]] double seconds() const {
        return static_cast<double>(ns()) * 1e-9;
    }

private:
    // Wall-clock is the entire point of a profiling stopwatch; results
    // are quarantined behind k_metric_profile.
    // detlint:allow-file(nondet-source): profiling stopwatch measures
    // wall time by design; outputs are profile-flagged and excluded from
    // deterministic exports.
    using clock = std::chrono::steady_clock;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace bluescale::obs
