#include "obs/registry.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace bluescale::obs {

const char* metric_kind_name(metric_kind k) {
    switch (k) {
    case metric_kind::counter: return "counter";
    case metric_kind::gauge: return "gauge";
    case metric_kind::real: return "real";
    case metric_kind::sample: return "sample";
    }
    return "?";
}

void sample::reset() {
    if (s_ != nullptr) s_->samples = {};
}

const stats::sample_set& sample::values() const {
    static const stats::sample_set k_empty;
    return s_ == nullptr ? k_empty : s_->samples;
}

detail::slot& registry::slot_for(std::string name, metric_kind kind,
                                 std::uint32_t flags) {
    if (auto it = index_.find(name); it != index_.end()) {
        assert(it->second->kind == kind &&
               "metric re-registered under a different kind");
        (void)kind;
        it->second->flags |= flags;
        return *it->second;
    }
    detail::slot& s = slots_.emplace_back();
    s.name = std::move(name);
    s.kind = kind;
    s.flags = flags;
    index_.emplace(s.name, &s);
    return s;
}

counter registry::make_counter(std::string name, std::uint32_t flags) {
    return counter(&slot_for(std::move(name), metric_kind::counter, flags));
}

gauge registry::make_gauge(std::string name, std::uint32_t flags) {
    return gauge(&slot_for(std::move(name), metric_kind::gauge, flags));
}

real_gauge registry::make_real(std::string name, std::uint32_t flags) {
    return real_gauge(&slot_for(std::move(name), metric_kind::real, flags));
}

sample registry::make_sample(std::string name, std::uint32_t flags) {
    return sample(&slot_for(std::move(name), metric_kind::sample, flags));
}

snapshot registry::take_snapshot(bool include_profile) const {
    snapshot out;
    out.entries_.reserve(index_.size());
    for (const auto& [name, slot] : index_) {
        if (!include_profile && (slot->flags & k_metric_profile) != 0) {
            continue;
        }
        metric_value v;
        v.kind = slot->kind;
        v.flags = slot->flags;
        v.count = slot->count;
        v.level = slot->level;
        v.value = slot->value;
        v.samples = slot->samples;
        out.entries_.emplace_back(name, std::move(v));
    }
    return out;
}

void registry::reset_values() {
    for (auto& s : slots_) {
        s.count = 0;
        s.level = 0;
        s.value = 0.0;
        s.samples = {};
    }
}

const metric_value* snapshot::find(std::string_view name) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const entry& e, std::string_view n) { return e.first < n; });
    if (it == entries_.end() || it->first != name) return nullptr;
    return &it->second;
}

void snapshot::merge(const snapshot& other) {
    // Both entry lists are name-sorted: a single linear merge keeps the
    // result sorted and appends other's samples after this one's --
    // exactly the order a serial trial loop would have produced.
    std::vector<entry> merged;
    merged.reserve(entries_.size() + other.entries_.size());
    auto a = entries_.begin();
    auto b = other.entries_.begin();
    while (a != entries_.end() || b != other.entries_.end()) {
        if (b == other.entries_.end() ||
            (a != entries_.end() && a->first < b->first)) {
            merged.push_back(std::move(*a++));
        } else if (a == entries_.end() || b->first < a->first) {
            merged.push_back(*b++);
        } else {
            entry e = std::move(*a++);
            const metric_value& add = (b++)->second;
            e.second.count += add.count;
            e.second.level += add.level;
            e.second.value += add.value;
            e.second.samples.merge(add.samples);
            merged.push_back(std::move(e));
        }
    }
    entries_ = std::move(merged);
}

snapshot snapshot::diff(const snapshot& base) const {
    snapshot out;
    out.entries_.reserve(entries_.size());
    for (const entry& e : entries_) {
        entry d = e;
        if (const metric_value* b = base.find(e.first); b != nullptr) {
            d.second.count -= b->count;
            d.second.level -= b->level;
            d.second.value -= b->value;
            // sample_set appends only, so the delta is the tail beyond
            // base's count.
            const auto& all = e.second.samples.samples();
            const auto skip = static_cast<std::size_t>(
                std::min<std::uint64_t>(b->samples.count(), all.size()));
            stats::sample_set tail;
            for (std::size_t i = skip; i < all.size(); ++i) {
                tail.add(all[i]);
            }
            d.second.samples = std::move(tail);
        }
        out.entries_.push_back(std::move(d));
    }
    return out;
}

snapshot snapshot::profile_only() const {
    snapshot out;
    for (const entry& e : entries_) {
        if ((e.second.flags & k_metric_profile) != 0) {
            out.entries_.push_back(e);
        }
    }
    return out;
}

std::string format_metric_cell(const metric_value& v) {
    switch (v.kind) {
    case metric_kind::counter: return std::to_string(v.count);
    case metric_kind::gauge: return std::to_string(v.level);
    case metric_kind::real: return std::to_string(v.value);
    case metric_kind::sample: return std::to_string(v.samples.mean());
    }
    return "0";
}

namespace {

std::string format_sample_stat(const stats::sample_set& s,
                               std::string_view stat) {
    if (stat == "mean") return std::to_string(s.mean());
    if (stat == "sd") return std::to_string(s.stddev());
    if (stat == "min") return std::to_string(s.min());
    if (stat == "max") return std::to_string(s.max());
    if (stat == "p50") return std::to_string(s.percentile(50.0));
    if (stat == "p99") return std::to_string(s.percentile(99.0));
    if (stat == "count") return std::to_string(s.count());
    return "0";
}

} // namespace

std::vector<std::string>
metric_cells(const snapshot& snap, const std::vector<std::string>& names) {
    std::vector<std::string> cells;
    cells.reserve(names.size());
    for (const auto& name : names) {
        std::string_view base = name;
        std::string_view stat;
        if (const auto pos = name.rfind(':'); pos != std::string::npos) {
            base = std::string_view(name).substr(0, pos);
            stat = std::string_view(name).substr(pos + 1);
        }
        const metric_value* v = snap.find(base);
        if (v == nullptr) {
            cells.emplace_back("0");
        } else if (stat.empty()) {
            cells.push_back(format_metric_cell(*v));
        } else {
            cells.push_back(format_sample_stat(v->samples, stat));
        }
    }
    return cells;
}

void snapshot::write_csv(std::ostream& os, std::string_view name_prefix,
                         bool header) const {
    if (header) {
        os << "metric,kind,value,count,mean,min,max,p50,p99\n";
    }
    for (const entry& e : entries_) {
        const metric_value& v = e.second;
        os << name_prefix << e.first << ',' << metric_kind_name(v.kind)
           << ',';
        switch (v.kind) {
        case metric_kind::counter:
            os << std::to_string(v.count) << ",,,,,,";
            break;
        case metric_kind::gauge:
            os << std::to_string(v.level) << ",,,,,,";
            break;
        case metric_kind::real:
            os << std::to_string(v.value) << ",,,,,,";
            break;
        case metric_kind::sample: {
            const stats::sample_set& s = v.samples;
            os << ',' << std::to_string(s.count()) << ','
               << std::to_string(s.mean()) << ','
               << std::to_string(s.min()) << ','
               << std::to_string(s.max()) << ','
               << std::to_string(s.percentile(50.0)) << ','
               << std::to_string(s.percentile(99.0));
            break;
        }
        }
        os << '\n';
    }
}

} // namespace bluescale::obs
