// Typed metrics registry: the one way measurement data leaves the
// simulator (DESIGN.md Sec. 11).
//
// Components register named metrics once (registration allocates), then
// bump them through small handle objects on the hot path (a handle is one
// pointer; an increment is one dereference, no lookup, no allocation).
// Names are hierarchical with '/' separators and '.'-suffixed instance
// coordinates, e.g. "se.2.1/port0/queue_depth" or "client.3/issued".
//
// Determinism contract (extends PR 1): a snapshot enumerates metrics in
// sorted name order, and snapshot::write_csv formats values with the same
// std::to_string conventions as stats::csv_writer users, so exports are
// byte-identical across runs and --threads settings as long as the
// underlying simulation is. Metrics registered with k_metric_profile
// (wall-clock measurements) are inherently nondeterministic and are
// excluded from snapshots unless explicitly requested.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/summary.hpp"

namespace bluescale::obs {

enum class metric_kind : std::uint8_t {
    counter, ///< monotonically increasing unsigned count
    gauge,   ///< signed level (set/add)
    real,    ///< floating-point level (derived values, wall-clock rates)
    sample,  ///< stats::sample_set of per-event observations
};

[[nodiscard]] const char* metric_kind_name(metric_kind k);

/// Metric registered from a wall-clock/profiling source: excluded from
/// deterministic snapshots (take_snapshot(false)) by default.
inline constexpr std::uint32_t k_metric_profile = 1u << 0;

namespace detail {
/// Storage cell behind a handle. Lives in the registry's deque, so its
/// address is stable for the registry's lifetime.
struct slot {
    std::string name;
    metric_kind kind = metric_kind::counter;
    std::uint32_t flags = 0;
    std::uint64_t count = 0;   ///< counter
    std::int64_t level = 0;    ///< gauge
    double value = 0.0;        ///< real
    stats::sample_set samples; ///< sample
};
} // namespace detail

/// Handles are trivially copyable and nullable: a default-constructed
/// handle ignores writes and reads as zero/empty, so components can keep
/// recording unconditionally whether or not anything bound them.
class counter {
public:
    counter() = default;
    void inc(std::uint64_t n = 1) {
        if (s_ != nullptr) s_->count += n;
    }
    void reset() {
        if (s_ != nullptr) s_->count = 0;
    }
    [[nodiscard]] std::uint64_t value() const {
        return s_ == nullptr ? 0 : s_->count;
    }
    [[nodiscard]] bool bound() const { return s_ != nullptr; }

private:
    friend class registry;
    explicit counter(detail::slot* s) : s_(s) {}
    detail::slot* s_ = nullptr;
};

class gauge {
public:
    gauge() = default;
    void set(std::int64_t v) {
        if (s_ != nullptr) s_->level = v;
    }
    void add(std::int64_t d) {
        if (s_ != nullptr) s_->level += d;
    }
    void reset() { set(0); }
    [[nodiscard]] std::int64_t value() const {
        return s_ == nullptr ? 0 : s_->level;
    }
    [[nodiscard]] bool bound() const { return s_ != nullptr; }

private:
    friend class registry;
    explicit gauge(detail::slot* s) : s_(s) {}
    detail::slot* s_ = nullptr;
};

class real_gauge {
public:
    real_gauge() = default;
    void set(double v) {
        if (s_ != nullptr) s_->value = v;
    }
    void add(double d) {
        if (s_ != nullptr) s_->value += d;
    }
    void reset() { set(0.0); }
    [[nodiscard]] double value() const {
        return s_ == nullptr ? 0.0 : s_->value;
    }
    [[nodiscard]] bool bound() const { return s_ != nullptr; }

private:
    friend class registry;
    explicit real_gauge(detail::slot* s) : s_(s) {}
    detail::slot* s_ = nullptr;
};

class sample {
public:
    sample() = default;
    void add(double x) {
        if (s_ != nullptr) s_->samples.add(x);
    }
    void reset();
    /// The accumulated sample set (a shared empty set when unbound).
    [[nodiscard]] const stats::sample_set& values() const;
    [[nodiscard]] std::uint64_t count() const {
        return s_ == nullptr ? 0 : s_->samples.count();
    }
    [[nodiscard]] bool bound() const { return s_ != nullptr; }

private:
    friend class registry;
    explicit sample(detail::slot* s) : s_(s) {}
    detail::slot* s_ = nullptr;
};

/// One metric's value, decoupled from registry storage (snapshots own
/// their data so they can outlive, merge across, and diff against trials).
struct metric_value {
    metric_kind kind = metric_kind::counter;
    std::uint32_t flags = 0;
    std::uint64_t count = 0;
    std::int64_t level = 0;
    double value = 0.0;
    stats::sample_set samples;
};

/// Point-in-time copy of a registry, sorted by metric name.
class snapshot {
public:
    using entry = std::pair<std::string, metric_value>;

    snapshot() = default;

    [[nodiscard]] const std::vector<entry>& entries() const {
        return entries_;
    }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] const metric_value* find(std::string_view name) const;

    /// Accumulates `other` into this snapshot: counters/gauges/reals sum,
    /// sample sets append in call order (so merging per-trial snapshots in
    /// trial order reproduces the serial sample sequence bit-for-bit).
    /// Metrics absent on one side are adopted as-is.
    void merge(const snapshot& other);

    /// Change since `base` (an earlier snapshot of the same registry):
    /// counters/gauges/reals subtract; a sample metric keeps the samples
    /// appended after base's count. Metrics absent from base pass through.
    [[nodiscard]] snapshot diff(const snapshot& base) const;

    /// The k_metric_profile-flagged (wall-clock) subset of this snapshot:
    /// what take_snapshot(true) added on top of the deterministic export.
    [[nodiscard]] snapshot profile_only() const;

    /// Deterministic export: one row per metric, sorted by name, values
    /// formatted via std::to_string. `name_prefix` is prepended to every
    /// metric name (multi-section exports); `header` controls whether the
    /// column header row is written.
    void write_csv(std::ostream& os, std::string_view name_prefix = {},
                   bool header = true) const;

private:
    friend class registry;
    std::vector<entry> entries_;
};

/// Scalar cell rendering shared by the exporters: counters/gauges via
/// std::to_string(integer), reals via std::to_string(double) (fixed,
/// six decimals -- matching the repo's historical CSV formatting), sample
/// metrics as their mean.
[[nodiscard]] std::string format_metric_cell(const metric_value& v);

/// Row-export bridge for the bench drivers: the named metrics of `snap`
/// rendered as CSV cells, in the order given. A name missing from the
/// snapshot renders as "0". A sample metric defaults to its mean; an
/// optional ":mean" / ":sd" / ":min" / ":max" / ":p50" / ":p99" /
/// ":count" suffix on the name selects another statistic (formatted with
/// the same std::to_string conventions).
[[nodiscard]] std::vector<std::string>
metric_cells(const snapshot& snap, const std::vector<std::string>& names);

/// Owns metric storage. Handles stay valid for the registry's lifetime
/// (slots live in a deque); the registry is neither copyable nor movable
/// so handles can never dangle through a move.
class registry {
public:
    registry() = default;
    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;
    registry(registry&&) = delete;
    registry& operator=(registry&&) = delete;

    /// Registering an existing name with the same kind returns a handle
    /// to the existing metric (idempotent re-binding); a kind mismatch is
    /// a programming error and asserts.
    [[nodiscard]] counter make_counter(std::string name,
                                       std::uint32_t flags = 0);
    [[nodiscard]] gauge make_gauge(std::string name, std::uint32_t flags = 0);
    [[nodiscard]] real_gauge make_real(std::string name,
                                       std::uint32_t flags = 0);
    [[nodiscard]] sample make_sample(std::string name,
                                     std::uint32_t flags = 0);

    [[nodiscard]] std::size_t size() const { return slots_.size(); }

    /// Copies current values, sorted by name. Profile-flagged metrics are
    /// skipped unless `include_profile` (they carry wall-clock noise and
    /// would break byte-identical exports).
    [[nodiscard]] snapshot take_snapshot(bool include_profile = false) const;

    /// Zeroes every metric (between trials); handles stay bound.
    void reset_values();

private:
    detail::slot& slot_for(std::string name, metric_kind kind,
                           std::uint32_t flags);

    std::deque<detail::slot> slots_;
    /// Sorted name -> slot index; gives snapshots their deterministic
    /// order without sorting at snapshot time.
    std::map<std::string, detail::slot*, std::less<>> index_;
};

} // namespace bluescale::obs
