#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

namespace bluescale::obs {

const char* trace_event_kind_name(trace_event_kind k) {
    switch (k) {
    case trace_event_kind::request_enqueue: return "request_enqueue";
    case trace_event_kind::request_dequeue: return "request_dequeue";
    case trace_event_kind::request_grant: return "request_grant";
    case trace_event_kind::server_replenish: return "server_replenish";
    case trace_event_kind::server_exhaust: return "server_exhaust";
    case trace_event_kind::fault_inject: return "fault_inject";
    case trace_event_kind::fault_recover: return "fault_recover";
    case trace_event_kind::se_degrade: return "se_degrade";
    case trace_event_kind::se_recover: return "se_recover";
    case trace_event_kind::reconfig_commit: return "reconfig_commit";
    case trace_event_kind::reconfig_rollback: return "reconfig_rollback";
    case trace_event_kind::mem_complete: return "mem_complete";
    case trace_event_kind::shed_on: return "shed_on";
    case trace_event_kind::shed_off: return "shed_off";
    case trace_event_kind::watchdog_alarm: return "watchdog_alarm";
    case trace_event_kind::svc_accept: return "svc_accept";
    case trace_event_kind::svc_shed: return "svc_shed";
    case trace_event_kind::svc_retry: return "svc_retry";
    case trace_event_kind::svc_requeue: return "svc_requeue";
    case trace_event_kind::svc_complete: return "svc_complete";
    case trace_event_kind::svc_breaker: return "svc_breaker";
    }
    return "?";
}

namespace {
/// Minimal JSON string escaping for component names (which are ASCII
/// identifiers in practice, but stay well-formed regardless).
void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c; break;
        }
    }
    os << '"';
}
} // namespace

void trace_export::write_csv(std::ostream& os) const {
    os << "cycle,seq,component,event,a,b\n";
    for (const trace_event& e : events) {
        os << std::to_string(e.cycle) << ',' << std::to_string(e.seq) << ','
           << components[e.component] << ','
           << trace_event_kind_name(e.kind) << ',' << std::to_string(e.a)
           << ',' << std::to_string(e.b) << '\n';
    }
}

void trace_export::write_chrome_json(std::ostream& os) const {
    // Instant events on one "process" with a thread per component; the
    // simulated cycle doubles as the microsecond timestamp, so a cycle of
    // fabric activity reads as a microsecond on the tracing timeline.
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (std::size_t c = 0; c < components.size(); ++c) {
        if (!first) os << ',';
        first = false;
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << std::to_string(c)
           << ",\"name\":\"thread_name\",\"args\":{\"name\":";
        write_json_string(os, components[c]);
        os << "}}";
    }
    for (const trace_event& e : events) {
        if (!first) os << ',';
        first = false;
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
           << std::to_string(e.component) << ",\"ts\":"
           << std::to_string(e.cycle) << ",\"name\":\""
           << trace_event_kind_name(e.kind) << "\",\"args\":{\"a\":"
           << std::to_string(e.a) << ",\"b\":" << std::to_string(e.b)
           << ",\"seq\":" << std::to_string(e.seq) << "}}";
    }
    os << "]}\n";
}

#if BLUESCALE_TRACE_ENABLED

void tracer::emit(trace_event_kind kind, std::uint64_t a,
                  std::uint64_t b) const {
    if (sink_ != nullptr) sink_->emit(component_, kind, a, b);
}

trace_sink::trace_sink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

tracer trace_sink::register_component(const std::string& name) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (streams_[i].name == name) {
            return tracer(this, static_cast<std::uint16_t>(i));
        }
    }
    stream s;
    s.name = name;
    s.ring.reserve(std::min<std::size_t>(capacity_, 1024));
    streams_.push_back(std::move(s));
    return tracer(this, static_cast<std::uint16_t>(streams_.size() - 1));
}

void trace_sink::emit(std::uint16_t component, trace_event_kind kind,
                      std::uint64_t a, std::uint64_t b) {
    stream& s = streams_[component];
    trace_event e;
    e.cycle = now_;
    e.seq = next_seq_++;
    e.component = component;
    e.kind = kind;
    e.a = a;
    e.b = b;
    if (s.ring.size() < capacity_) {
        s.ring.push_back(e);
        return;
    }
    // Drop-oldest: overwrite the ring slot holding the oldest event.
    s.ring[s.head] = e;
    s.head = (s.head + 1) % capacity_;
    ++s.dropped;
}

std::uint64_t trace_sink::total_dropped() const {
    std::uint64_t total = 0;
    for (const stream& s : streams_) total += s.dropped;
    return total;
}

trace_export trace_sink::export_all() const {
    trace_export out;
    out.components.reserve(streams_.size());
    out.dropped.reserve(streams_.size());
    std::size_t total = 0;
    for (const stream& s : streams_) {
        out.components.push_back(s.name);
        out.dropped.push_back(s.dropped);
        total += s.ring.size();
    }
    out.events.reserve(total);
    for (const stream& s : streams_) {
        // Oldest-first: [head, end) then [0, head).
        for (std::size_t i = s.head; i < s.ring.size(); ++i) {
            out.events.push_back(s.ring[i]);
        }
        for (std::size_t i = 0; i < s.head; ++i) {
            out.events.push_back(s.ring[i]);
        }
    }
    std::sort(out.events.begin(), out.events.end(),
              [](const trace_event& x, const trace_event& y) {
                  return x.seq < y.seq;
              });
    return out;
}

void trace_sink::clear() {
    next_seq_ = 0;
    now_ = 0;
    for (stream& s : streams_) {
        s.ring.clear();
        s.head = 0;
        s.dropped = 0;
    }
}

#endif // BLUESCALE_TRACE_ENABLED

} // namespace bluescale::obs
