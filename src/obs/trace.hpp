// Structured event tracing (DESIGN.md Sec. 11): a per-component
// ring-buffer sink for typed simulator events, exported as CSV or
// Chrome-trace JSON (chrome://tracing / Perfetto).
//
// Emission cost: a tracer handle is one pointer plus a component id; an
// unbound tracer's emit() is a single branch. When the BLUESCALE_TRACE
// CMake option is OFF the whole layer compiles down to empty inline
// stubs, so call sites cost literally nothing (the compiler deletes
// them) while keeping one source-level API.
//
// Determinism: events carry a sink-global sequence number stamped at
// emit time; exports enumerate events in sequence order. Trials never
// share a sink (each testbench owns one), so exports are byte-identical
// across --threads settings whenever the traced trial is.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace bluescale::obs {

/// Event catalog (DESIGN.md Sec. 11 keeps the authoritative table).
enum class trace_event_kind : std::uint8_t {
    request_enqueue,   ///< request admitted into a leaf RAB; a=id, b=port
    request_dequeue,   ///< memory controller starts service; a=id, b=bank
    request_grant,     ///< SE server grant/forward; a=id, b=port
    server_replenish,  ///< (Pi, Theta) period boundary; a=port, b=budget
    server_exhaust,    ///< B-counter hit zero; a=port
    fault_inject,      ///< injected fault window opened; a=detail
    fault_recover,     ///< injected fault window closed; a=detail
    se_degrade,        ///< health monitor degraded this element
    se_recover,        ///< element restored to budgeted mode
    reconfig_commit,   ///< reconfiguration transaction committed; a=txn
    reconfig_rollback, ///< reconfiguration rolled back; a=txn
    mem_complete,      ///< memory controller retired a request; a=id, b=failed
    shed_on,           ///< watchdog began overload shedding
    shed_off,          ///< watchdog restored shed clients
    watchdog_alarm,    ///< typed watchdog alarm; a=watchdog_alarm value
    svc_accept,        ///< analysis service queued a request; a=req
    svc_shed,          ///< service shed a request (queue full); a=req
    svc_retry,         ///< transient rejection, retry scheduled; a=req, b=attempt
    svc_requeue,       ///< worker crash, in-flight request re-queued; a=req, b=worker
    svc_complete,      ///< request reached a terminal outcome; a=req, b=outcome
    svc_breaker,       ///< circuit breaker state change; a=breaker_state
};

[[nodiscard]] const char* trace_event_kind_name(trace_event_kind k);

struct trace_event {
    cycle_t cycle = 0;
    std::uint64_t seq = 0; ///< sink-global emit order (total order)
    std::uint16_t component = 0;
    trace_event_kind kind = trace_event_kind::request_enqueue;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/// Sink-independent export payload: events in seq order plus the
/// component-name table. Movable, so experiments can return the trial-0
/// trace out of a parallel sweep.
struct trace_export {
    std::vector<trace_event> events;
    std::vector<std::string> components;
    /// Events discarded ring-buffer-full, per component index.
    std::vector<std::uint64_t> dropped;

    /// header: cycle,seq,component,event,a,b
    void write_csv(std::ostream& os) const;
    /// Chrome trace-event JSON ("traceEvents" array of instant events;
    /// load via chrome://tracing or ui.perfetto.dev).
    void write_chrome_json(std::ostream& os) const;
};

#if BLUESCALE_TRACE_ENABLED

class trace_sink;

/// Per-component emit handle. Default-constructed == disabled.
class tracer {
public:
    tracer() = default;
    void emit(trace_event_kind kind, std::uint64_t a = 0,
              std::uint64_t b = 0) const;
    [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

private:
    friend class trace_sink;
    tracer(trace_sink* sink, std::uint16_t component)
        : sink_(sink), component_(component) {}
    trace_sink* sink_ = nullptr;
    std::uint16_t component_ = 0;
};

/// Owns one bounded ring buffer per registered component. Overflow policy
/// is drop-oldest: the buffer always holds the newest `capacity` events
/// of its component, and the drop count is reported alongside the export.
class trace_sink {
public:
    /// `capacity`: ring size per component, in events.
    explicit trace_sink(std::size_t capacity = 1u << 14);

    /// Registers a component stream and returns its emit handle. The
    /// same name returns the same stream (idempotent re-binding).
    [[nodiscard]] tracer register_component(const std::string& name);

    /// Trace clock. The simulator drives this once per step; components
    /// without a `now` argument in scope (e.g. server_task counters)
    /// inherit it.
    void set_now(cycle_t now) { now_ = now; }
    [[nodiscard]] cycle_t now() const { return now_; }

    void emit(std::uint16_t component, trace_event_kind kind,
              std::uint64_t a, std::uint64_t b);

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::uint64_t total_events() const { return next_seq_; }
    [[nodiscard]] std::uint64_t total_dropped() const;

    /// Snapshot of all retained events, seq-ordered, with names/drops.
    [[nodiscard]] trace_export export_all() const;

    /// Drops all buffered events (between trials); streams stay bound.
    void clear();

private:
    struct stream {
        std::string name;
        std::vector<trace_event> ring; ///< capacity_-bounded
        std::size_t head = 0;          ///< oldest element when full
        std::uint64_t dropped = 0;
    };

    std::size_t capacity_;
    cycle_t now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::vector<stream> streams_;
};

#else // !BLUESCALE_TRACE_ENABLED

/// Zero-cost stubs: same API, empty inline bodies.
class trace_sink;

class tracer {
public:
    tracer() = default;
    void emit(trace_event_kind, std::uint64_t = 0, std::uint64_t = 0) const {}
    [[nodiscard]] bool enabled() const { return false; }

private:
    friend class trace_sink;
};

class trace_sink {
public:
    explicit trace_sink(std::size_t = 0) {}
    [[nodiscard]] tracer register_component(const std::string&) {
        return tracer{};
    }
    void set_now(cycle_t) {}
    [[nodiscard]] cycle_t now() const { return 0; }
    void emit(std::uint16_t, trace_event_kind, std::uint64_t,
              std::uint64_t) {}
    [[nodiscard]] std::size_t capacity() const { return 0; }
    [[nodiscard]] std::uint64_t total_events() const { return 0; }
    [[nodiscard]] std::uint64_t total_dropped() const { return 0; }
    [[nodiscard]] trace_export export_all() const { return {}; }
    void clear() {}
};

#endif // BLUESCALE_TRACE_ENABLED

} // namespace bluescale::obs
