// Base class for clocked hardware components.
#pragma once

#include <string>

#include "sim/types.hpp"
#include "sim/wake.hpp"

namespace bluescale {

/// A clocked component. The simulator calls tick() once per cycle on every
/// registered component (combinational + sequential work for that cycle),
/// then commit() on every component (clock edge: latch outputs). Components
/// that communicate exclusively through latched_queue interfaces are
/// insensitive to tick ordering.
///
/// Under the event-driven engine (see simulator::engine) a component may
/// additionally declare, via next_event(), the earliest future cycle at
/// which it could need to run again; the simulator skips its tick() until
/// then. Producers that hand a sleeping component new work re-arm it with
/// wake(). Horizons must be conservative and wakes liberal: an extra tick
/// can never change behaviour (ticks are idempotent on idle state by the
/// two-phase contract), only a missed one can.
class component {
public:
    /// `latches` declares that this component's commit() latches state
    /// (it overrides the no-op default). The event engine calls commit()
    /// only on latching components each stepped cycle; a subclass that
    /// overrides commit() without passing latches = true will silently
    /// skip its clock edges there, so the two must travel together.
    explicit component(std::string name, bool latches = false)
        : name_(std::move(name)), latches_(latches) {}
    virtual ~component() = default;

    component(const component&) = delete;
    component& operator=(const component&) = delete;

    /// Evaluate one cycle at time `now`.
    virtual void tick(cycle_t now) = 0;

    /// Clock edge: make this cycle's outputs visible to consumers.
    /// Overriders must construct with latches = true (see the ctor) or
    /// the event engine will skip their edges.
    virtual void commit() {}

    /// True when commit() is a real clock edge rather than the no-op
    /// default -- the set of components the event engine must commit
    /// every stepped cycle.
    [[nodiscard]] bool latches() const { return latches_; }

    /// Earliest future cycle at which this component could need tick()
    /// again, assuming no external input arrives first (inputs re-arm it
    /// through wake()). Called by the simulator right after tick(), so
    /// implementations may rely on this-cycle state being current.
    /// Returning k_cycle_never declares full quiescence. The default
    /// keeps unmodified components on the per-cycle cadence, which is
    /// always correct.
    [[nodiscard]] virtual cycle_t next_event(cycle_t now) const {
        return now + 1;
    }

    /// Re-arms the component: its cached horizon is discarded and tick()
    /// runs at the next simulator step. Producers (queues, supervisors)
    /// call this when they hand the component new work. Safe to call at
    /// any time, including on an already-armed component.
    void wake() {
        *wake_cell_ = 0;
        wake_hook_.fire();
    }

    /// Chains wakes upward: whenever this component is woken, `hook`
    /// fires too. Used by fabrics that drive sub-components internally
    /// (a woken Scale Element must also wake the interconnect that ticks
    /// it).
    void set_wake_hook(sim::wake_hook hook) { wake_hook_ = hook; }

    /// The simulator's cached wakeup time for this component (0 = armed).
    [[nodiscard]] cycle_t wake_at() const { return *wake_cell_; }
    void set_wake_at(cycle_t at) { *wake_cell_ = at; }

    /// Relocates this component's wake slot into an engine-owned
    /// contiguous schedule array (structure-of-arrays layout), so the
    /// per-cycle due/commit scans read sequential memory instead of
    /// chasing one cache line per component. The caller must have copied
    /// the current wake time into `cell` first, and must re-bind after
    /// relocating the array. Components default to private storage.
    void bind_wake_cell(cycle_t* cell) { wake_cell_ = cell; }

    [[nodiscard]] const std::string& name() const { return name_; }

private:
    std::string name_;
    bool latches_ = false;
    cycle_t own_wake_ = 0;
    cycle_t* wake_cell_ = &own_wake_;
    sim::wake_hook wake_hook_{};
};

} // namespace bluescale
