// Base class for clocked hardware components.
#pragma once

#include <string>

#include "sim/types.hpp"

namespace bluescale {

/// A clocked component. The simulator calls tick() once per cycle on every
/// registered component (combinational + sequential work for that cycle),
/// then commit() on every component (clock edge: latch outputs). Components
/// that communicate exclusively through latched_queue interfaces are
/// insensitive to tick ordering.
class component {
public:
    explicit component(std::string name) : name_(std::move(name)) {}
    virtual ~component() = default;

    component(const component&) = delete;
    component& operator=(const component&) = delete;

    /// Evaluate one cycle at time `now`.
    virtual void tick(cycle_t now) = 0;

    /// Clock edge: make this cycle's outputs visible to consumers.
    virtual void commit() {}

    [[nodiscard]] const std::string& name() const { return name_; }

private:
    std::string name_;
};

} // namespace bluescale
