#include "sim/fault.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/rng.hpp"

namespace bluescale::sim {

namespace {

/// Total order making generated schedules independent of generation
/// order (and therefore of any future generator refactor).
bool event_before(const fault_event& a, const fault_event& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.target != b.target) return a.target < b.target;
    return a.duration < b.duration;
}

} // namespace

const char* fault_kind_name(fault_kind k) {
    switch (k) {
    case fault_kind::se_stall: return "se_stall";
    case fault_kind::link_drop: return "link_drop";
    case fault_kind::dram_error: return "dram_error";
    case fault_kind::backpressure_storm: return "backpressure_storm";
    case fault_kind::maintenance_storm: return "maintenance_storm";
    case fault_kind::worker_crash: return "worker_crash";
    case fault_kind::worker_stall: return "worker_stall";
    }
    return "?";
}

fault_campaign::fault_campaign(const fault_campaign_config& cfg) {
    const std::array<double, k_fault_kinds> weights = {
        cfg.se_stall_weight,          cfg.link_drop_weight,
        cfg.dram_error_weight,        cfg.backpressure_weight,
        cfg.maintenance_storm_weight, cfg.worker_crash_weight,
        cfg.worker_stall_weight};
    double total_weight = 0.0;
    for (double w : weights) total_weight += w;

    const auto n_events = static_cast<std::uint64_t>(std::llround(
        cfg.events_per_kcycle * static_cast<double>(cfg.horizon) / 1000.0));
    if (n_events == 0 || total_weight <= 0.0 || cfg.horizon == 0) return;

    rng gen(cfg.seed);
    const cycle_t dur_lo = std::min(cfg.min_duration, cfg.max_duration);
    const cycle_t dur_hi = std::max(cfg.min_duration, cfg.max_duration);
    const std::uint32_t n_elements = std::max<std::uint32_t>(1, cfg.n_elements);
    const std::uint32_t n_workers = std::max<std::uint32_t>(1, cfg.n_workers);

    events_.reserve(n_events);
    for (std::uint64_t i = 0; i < n_events; ++i) {
        fault_event e;
        // Weighted kind pick by inverse CDF over the configured weights.
        double x = gen.uniform_real(0.0, total_weight);
        std::size_t k = 0;
        while (k + 1 < k_fault_kinds && x >= weights[k]) {
            x -= weights[k];
            ++k;
        }
        e.kind = static_cast<fault_kind>(k);
        if (e.kind == fault_kind::se_stall ||
            e.kind == fault_kind::link_drop) {
            e.target = static_cast<std::uint32_t>(
                gen.uniform_u64(0, n_elements - 1));
        } else if (e.kind == fault_kind::worker_crash ||
                   e.kind == fault_kind::worker_stall) {
            e.target = static_cast<std::uint32_t>(
                gen.uniform_u64(0, n_workers - 1));
        } else {
            e.target = 0;
        }
        e.start = gen.uniform_u64(0, cfg.horizon - 1);
        e.duration = gen.uniform_u64(dur_lo, dur_hi);
        events_.push_back(e);
    }
    std::sort(events_.begin(), events_.end(), event_before);
}

fault_campaign::fault_campaign(std::vector<fault_event> events)
    : events_(std::move(events)) {
    std::sort(events_.begin(), events_.end(), event_before);
}

std::uint64_t fault_campaign::count(fault_kind k) const {
    std::uint64_t n = 0;
    for (const auto& e : events_) {
        if (e.kind == k) ++n;
    }
    return n;
}

std::vector<fault_event> fault_campaign::slice(fault_kind k,
                                               std::uint32_t target) const {
    std::vector<fault_event> out;
    for (const auto& e : events_) {
        if (e.kind == k && e.target == target) out.push_back(e);
    }
    return out;
}

std::vector<fault_event> fault_campaign::slice_all(fault_kind k) const {
    std::vector<fault_event> out;
    for (const auto& e : events_) {
        if (e.kind == k) out.push_back(e);
    }
    return out;
}

fault_window::fault_window(std::vector<fault_event> events)
    : events_(std::move(events)) {
    std::sort(events_.begin(), events_.end(), event_before);
}

bool fault_window::active(cycle_t now) {
    while (cursor_ < events_.size() && events_[cursor_].start <= now) {
        const fault_event& e = events_[cursor_];
        const cycle_t end = e.start + e.duration;
        // Only count a window ENTRY: an event starting while a previous
        // one is still active extends the window rather than opening a
        // new one.
        if (e.start >= active_until_) ++activations_;
        if (end > active_until_) active_until_ = end;
        ++cursor_;
    }
    return now < active_until_;
}

cycle_t fault_window::wake_horizon(cycle_t now) const {
    // Stay on the per-cycle cadence through the merged open window AND
    // the first cycle after it, so the caller observes the falling edge
    // (active() returning false) with a real tick.
    if (now <= active_until_) return now + 1;
    if (cursor_ < events_.size()) {
        return std::max(now + 1, events_[cursor_].start);
    }
    return k_cycle_never;
}

void fault_window::reset() {
    cursor_ = 0;
    active_until_ = 0;
    activations_ = 0;
}

} // namespace bluescale::sim
