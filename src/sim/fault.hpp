// Deterministic fault-injection campaigns (the repo's robustness axis).
//
// A fault_campaign is a seed-driven, fully precomputed schedule of typed
// fault events (SE stalls, link transient drops, DRAM transient errors,
// controller backpressure storms) aimed at numbered targets over a cycle
// horizon. A campaign is pure data: building one from the same config is
// bit-identical on every platform and for every trial-sweep thread
// count, so faulty experiments stay exactly as reproducible under
// sim::trial_runner as healthy ones. Components never draw randomness at
// injection time -- each consumes its slice of the schedule through a
// fault_window cursor that only moves forward with simulated time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace bluescale::sim {

/// The fault taxonomy (DESIGN.md Sec. 8). Each kind maps to exactly one
/// class of injection point in the assembled system.
enum class fault_kind : std::uint8_t {
    /// A fabric element forwards nothing for the window (transient upset /
    /// resynchronization); its buffers still accept. Consumed by
    /// core::scale_element. Targets index elements level-major.
    se_stall,
    /// The element's provider link silently eats requests forwarded
    /// during the window (transient link loss; recovery relies on client
    /// retry). BlueScale distributes targets over SE parent links;
    /// single-choke-point designs collapse every target onto the root
    /// link into the memory controller.
    link_drop,
    /// Transactions completing DRAM service inside the window are
    /// corrupted. The memory controller transparently retries once
    /// (ECC-style); a retry that also completes inside an error window is
    /// delivered with mem_request::failed set.
    dram_error,
    /// The memory controller refuses new work for the window (e.g. a
    /// thermal-throttle or calibration storm); the interconnect sees
    /// backpressure at its root.
    backpressure_storm,
    /// Excess DRAM maintenance (runaway scrubbing / RowHammer mitigation
    /// burst): every bank is blocked and rows close for the window, but
    /// the controller keeps accepting work. Interference the analysis-side
    /// maintenance model does NOT budget for -- the supply watchdog must
    /// catch it. Consumed by mem::maintenance_engine. Target 0.
    maintenance_storm,
    /// An analysis-service worker dies mid-request: its in-flight request
    /// is lost and must be re-queued exactly once by the service. Consumed
    /// by svc::analysis_service. Targets index worker slots.
    worker_crash,
    /// An analysis-service worker freezes for the window (e.g. a page
    /// fault storm or priority inversion on the host): its in-flight work
    /// is delayed, not lost. Consumed by svc::analysis_service. Targets
    /// index worker slots.
    worker_stall,
};

inline constexpr std::size_t k_fault_kinds = 7;

[[nodiscard]] const char* fault_kind_name(fault_kind k);

/// One scheduled fault: `kind` hits `target` over [start, start + duration).
struct fault_event {
    fault_kind kind{};
    /// Kind-scoped element index (SE linear id for se_stall/link_drop;
    /// 0 for the memory-side kinds).
    std::uint32_t target = 0;
    cycle_t start = 0;
    cycle_t duration = 0;

    friend bool operator==(const fault_event&, const fault_event&) = default;
};

struct fault_campaign_config {
    std::uint64_t seed = 1;
    /// Events start inside [0, horizon).
    cycle_t horizon = 100'000;
    /// Expected injected events per 1000 cycles across all kinds
    /// (campaign intensity; 0 = healthy system, empty schedule).
    double events_per_kcycle = 0.0;
    /// Relative likelihood of each kind; a zero weight disables the kind.
    double se_stall_weight = 1.0;
    double link_drop_weight = 1.0;
    double dram_error_weight = 1.0;
    double backpressure_weight = 0.5;
    /// Default 0: adding this kind leaves every previously seeded
    /// campaign bit-identical (the inverse-CDF pick never reaches a
    /// zero-weight tail entry).
    double maintenance_storm_weight = 0.0;
    /// Default 0 for the same bit-compatibility reason; the analysis
    /// service's storm campaigns opt in.
    double worker_crash_weight = 0.0;
    double worker_stall_weight = 0.0;
    /// Fault-targetable element count: se_stall and link_drop events pick
    /// a target uniformly in [0, n_elements).
    std::uint32_t n_elements = 1;
    /// Worker-slot count: worker_crash and worker_stall events pick a
    /// target uniformly in [0, n_workers).
    std::uint32_t n_workers = 1;
    /// Per-event window length, uniform in [min_duration, max_duration].
    cycle_t min_duration = 8;
    cycle_t max_duration = 64;
};

/// An immutable, chronologically sorted fault schedule.
class fault_campaign {
public:
    /// Empty schedule: a healthy system.
    fault_campaign() = default;
    /// Generates the schedule from the config (deterministic in cfg).
    explicit fault_campaign(const fault_campaign_config& cfg);
    /// Scripted campaign from explicit events (tests, targeted studies).
    explicit fault_campaign(std::vector<fault_event> events);

    [[nodiscard]] const std::vector<fault_event>& events() const {
        return events_;
    }
    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    [[nodiscard]] std::uint64_t count(fault_kind k) const;

    /// Chronological windows of one (kind, target) slice.
    [[nodiscard]] std::vector<fault_event>
    slice(fault_kind k, std::uint32_t target) const;
    /// All windows of a kind regardless of target (designs with a single
    /// injection point for that kind).
    [[nodiscard]] std::vector<fault_event> slice_all(fault_kind k) const;

private:
    std::vector<fault_event> events_;
};

/// Forward-only cursor over one slice of a campaign. Components call
/// active(now) once or more per cycle; `now` must never decrease between
/// calls (reset() rewinds between trials). Overlapping windows merge.
class fault_window {
public:
    fault_window() = default;
    explicit fault_window(std::vector<fault_event> events);

    /// True while some window covers `now`.
    [[nodiscard]] bool active(cycle_t now);

    /// Event-engine horizon: the earliest future cycle at which activity
    /// could change, valid immediately after active(now) ran for the same
    /// `now`. Inside a window (or on its closing edge) the caller must
    /// stay on the per-cycle cadence -- per-cycle fault counters and the
    /// activity transition both need real ticks -- so the horizon is
    /// now + 1; otherwise it is the next scheduled window start
    /// (k_cycle_never when the schedule is exhausted).
    [[nodiscard]] cycle_t wake_horizon(cycle_t now) const;

    /// Rewinds the cursor and clears the activation count.
    void reset();

    [[nodiscard]] bool empty() const { return events_.empty(); }
    /// Windows the cursor has entered so far (injected-fault counter).
    [[nodiscard]] std::uint64_t activations() const { return activations_; }

private:
    std::vector<fault_event> events_; ///< sorted by start
    std::size_t cursor_ = 0;
    cycle_t active_until_ = 0; ///< exclusive end of the merged open window
    std::uint64_t activations_ = 0;
};

} // namespace bluescale::sim
