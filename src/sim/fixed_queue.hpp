// Bounded FIFO ring buffer used to model hardware queues with finite depth.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/wake.hpp"

namespace bluescale {

/// A fixed-capacity FIFO. push() on a full queue is a programming error
/// (callers must check full() first -- hardware queues exert backpressure,
/// they do not drop or grow).
template <typename T>
class fixed_queue {
public:
    explicit fixed_queue(std::size_t capacity)
        : slots_(capacity) {
        assert(capacity > 0);
    }

    /// Producer-side wake notification: every push() re-arms the queue's
    /// consumer so the event-driven engine never leaves work unserviced.
    void set_wake_hook(sim::wake_hook hook) { wake_ = hook; }

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] bool full() const { return size_ == slots_.size(); }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
    [[nodiscard]] std::size_t free_slots() const { return slots_.size() - size_; }

    void push(T value) {
        assert(!full());
        slots_[(head_ + size_) % slots_.size()] = std::move(value);
        ++size_;
        wake_.fire();
    }

    [[nodiscard]] const T& front() const {
        assert(!empty());
        return slots_[head_];
    }

    [[nodiscard]] T& front() {
        assert(!empty());
        return slots_[head_];
    }

    T pop() {
        assert(!empty());
        T value = std::move(slots_[head_]);
        head_ = (head_ + 1) % slots_.size();
        --size_;
        return value;
    }

    void clear() {
        head_ = 0;
        size_ = 0;
    }

    /// Element i positions from the front (0 == front). For arbiters that
    /// inspect queue contents without consuming them.
    [[nodiscard]] const T& at(std::size_t i) const {
        assert(i < size_);
        return slots_[(head_ + i) % slots_.size()];
    }

    [[nodiscard]] T& at(std::size_t i) {
        assert(i < size_);
        return slots_[(head_ + i) % slots_.size()];
    }

    /// Removes and returns the element i positions from the front,
    /// preserving the order of the remaining elements. Used by random
    /// access buffers, which can fetch any stored entry.
    T extract(std::size_t i) {
        assert(i < size_);
        T value = std::move(slots_[(head_ + i) % slots_.size()]);
        // Shift the tail of the window forward by one slot.
        for (std::size_t j = i; j + 1 < size_; ++j) {
            slots_[(head_ + j) % slots_.size()] =
                std::move(slots_[(head_ + j + 1) % slots_.size()]);
        }
        --size_;
        return value;
    }

private:
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    sim::wake_hook wake_{};
};

} // namespace bluescale
