// Two-phase bounded queue modelling a registered hardware interface.
//
// Values pushed during a cycle's tick() phase become visible to consumers
// only after commit() -- i.e., on the next clock edge. This gives every
// producer/consumer pair well-defined one-cycle hand-off semantics that do
// not depend on the order in which the simulator ticks components.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/fixed_queue.hpp"

namespace bluescale {

template <typename T>
class latched_queue {
public:
    explicit latched_queue(std::size_t capacity)
        : visible_(capacity), capacity_(capacity) {}

    /// Free slots from the producer's point of view: pushes staged this
    /// cycle count against capacity, so a producer can never overrun the
    /// queue even before commit().
    [[nodiscard]] bool can_push() const {
        return visible_.size() + staged_.size() < capacity_;
    }

    [[nodiscard]] std::size_t free_slots() const {
        return capacity_ - visible_.size() - staged_.size();
    }

    void push(T value) {
        assert(can_push());
        staged_.push_back(std::move(value));
    }

    // --- consumer side: operates on values committed in earlier cycles ---
    [[nodiscard]] bool empty() const { return visible_.empty(); }
    [[nodiscard]] std::size_t size() const { return visible_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const T& front() const { return visible_.front(); }
    T pop() { return visible_.pop(); }
    [[nodiscard]] const T& at(std::size_t i) const { return visible_.at(i); }
    [[nodiscard]] T& at(std::size_t i) { return visible_.at(i); }
    T extract(std::size_t i) { return visible_.extract(i); }

    /// Clock edge: staged values become visible, in push order.
    void commit() {
        for (auto& value : staged_) visible_.push(std::move(value));
        staged_.clear();
    }

    void clear() {
        visible_.clear();
        staged_.clear();
    }

private:
    fixed_queue<T> visible_;
    std::vector<T> staged_;
    std::size_t capacity_;
};

} // namespace bluescale
