// Two-phase bounded queue modelling a registered hardware interface.
//
// Values pushed during a cycle's tick() phase become visible to consumers
// only after commit() -- i.e., on the next clock edge. This gives every
// producer/consumer pair well-defined one-cycle hand-off semantics that do
// not depend on the order in which the simulator ticks components.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/fixed_queue.hpp"

namespace bluescale {

template <typename T>
class latched_queue {
public:
    explicit latched_queue(std::size_t capacity)
        : visible_(capacity), capacity_(capacity) {
        // The staging buffer can hold at most `capacity` values (can_push()
        // counts staged work against capacity), so one reservation here
        // makes every push() allocation-free.
        staged_.reserve(capacity);
    }

    /// Producer-side wake notification: a push() into a fully quiet queue
    /// re-arms the queue's consumer. Only that transition can invalidate a
    /// consumer's cached horizon -- the next_event() contract requires a
    /// consumer to stay scheduled while its queue is non-quiet -- so
    /// pushes onto existing work skip the (redundant) wake. The consumer
    /// still sees the value only after commit(); the early wake just
    /// guarantees it is scheduled for that cycle.
    void set_wake_hook(sim::wake_hook hook) { wake_ = hook; }

    /// Consumer-side drain notification: fired when a pop()/extract()
    /// frees a slot in a previously full queue (can_push() flips back to
    /// true). Lets a backpressured producer sleep on the queue instead of
    /// polling can_push() every cycle.
    void set_drain_hook(sim::wake_hook hook) { drain_ = hook; }

    /// Free slots from the producer's point of view: pushes staged this
    /// cycle count against capacity, so a producer can never overrun the
    /// queue even before commit().
    [[nodiscard]] bool can_push() const {
        return visible_.size() + staged_.size() < capacity_;
    }

    [[nodiscard]] std::size_t free_slots() const {
        return capacity_ - visible_.size() - staged_.size();
    }

    /// Occupancy including values still staged for the next edge -- the
    /// quantity a consumer's next_event() must consult: staged work means
    /// the queue is not quiescent even though empty() still holds.
    [[nodiscard]] std::size_t total_size() const {
        return visible_.size() + staged_.size();
    }

    [[nodiscard]] bool quiet() const { return total_size() == 0; }

    void push(T value) {
        assert(can_push());
        const bool was_quiet = visible_.empty() && staged_.empty();
        // staged_ is reserved to capacity at construction and can_push()
        // (asserted above) bounds occupancy, so this never reallocates.
        // detlint:allow(hotpath-alloc): push into pre-reserved staging
        staged_.push_back(std::move(value));
        if (was_quiet) wake_.fire();
    }

    // --- consumer side: operates on values committed in earlier cycles ---
    [[nodiscard]] bool empty() const { return visible_.empty(); }
    [[nodiscard]] std::size_t size() const { return visible_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const T& front() const { return visible_.front(); }
    T pop() {
        const bool was_full = total_size() == capacity_;
        T value = visible_.pop();
        if (was_full) drain_.fire();
        return value;
    }
    [[nodiscard]] const T& at(std::size_t i) const { return visible_.at(i); }
    [[nodiscard]] T& at(std::size_t i) { return visible_.at(i); }
    T extract(std::size_t i) {
        const bool was_full = total_size() == capacity_;
        T value = visible_.extract(i);
        if (was_full) drain_.fire();
        return value;
    }

    /// Clock edge: staged values become visible, in push order.
    void commit() {
        for (auto& value : staged_) visible_.push(std::move(value));
        staged_.clear();
    }

    void clear() {
        visible_.clear();
        staged_.clear();
    }

private:
    fixed_queue<T> visible_;
    std::vector<T> staged_;
    std::size_t capacity_;
    sim::wake_hook wake_{};
    sim::wake_hook drain_{};
};

} // namespace bluescale
