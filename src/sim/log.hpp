// Minimal leveled logging for simulation debugging. Off by default so that
// benchmark runs are quiet; tests and examples can raise the level.
#pragma once

#include <cstdio>
#include <string>

#include "sim/types.hpp"

namespace bluescale {

enum class log_level { off = 0, error = 1, info = 2, trace = 3 };

namespace detail {
inline log_level& global_log_level() {
    static log_level level = log_level::off;
    return level;
}
} // namespace detail

inline void set_log_level(log_level level) { detail::global_log_level() = level; }
inline log_level get_log_level() { return detail::global_log_level(); }

/// Logs a pre-formatted line with the cycle stamp when `level` is enabled.
inline void log_line(log_level level, cycle_t now, const std::string& text) {
    if (static_cast<int>(level) <= static_cast<int>(detail::global_log_level())) {
        std::fprintf(stderr, "[%10llu] %s\n",
                     static_cast<unsigned long long>(now), text.c_str());
    }
}

} // namespace bluescale
