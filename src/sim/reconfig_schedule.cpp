#include "sim/reconfig_schedule.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/rng.hpp"

namespace bluescale::sim {

namespace {

/// Total order making generated schedules independent of generation
/// order (mirrors fault_campaign's event_before).
bool event_before(const reconfig_event& a, const reconfig_event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.client != b.client) return a.client < b.client;
    if (a.action != b.action) return a.action < b.action;
    return a.magnitude < b.magnitude;
}

} // namespace

const char* reconfig_action_name(reconfig_action a) {
    switch (a) {
    case reconfig_action::scale_up: return "scale_up";
    case reconfig_action::scale_down: return "scale_down";
    case reconfig_action::join: return "join";
    case reconfig_action::leave: return "leave";
    }
    return "?";
}

reconfig_schedule::reconfig_schedule(const reconfig_schedule_config& cfg) {
    const std::array<double, k_reconfig_actions> weights = {
        cfg.scale_up_weight, cfg.scale_down_weight, cfg.join_weight,
        cfg.leave_weight};
    double total_weight = 0.0;
    for (double w : weights) total_weight += w;

    const cycle_t span =
        cfg.horizon > cfg.warmup ? cfg.horizon - cfg.warmup : 0;
    const auto n_events = static_cast<std::uint64_t>(std::llround(
        cfg.events_per_kcycle * static_cast<double>(span) / 1000.0));
    if (n_events == 0 || total_weight <= 0.0 || span == 0 ||
        cfg.n_clients == 0) {
        return;
    }

    rng gen(cfg.seed);
    const double mag_lo = std::min(cfg.magnitude_lo, cfg.magnitude_hi);
    const double mag_hi = std::max(cfg.magnitude_lo, cfg.magnitude_hi);

    events_.reserve(n_events);
    for (std::uint64_t i = 0; i < n_events; ++i) {
        reconfig_event e;
        double x = gen.uniform_real(0.0, total_weight);
        std::size_t a = 0;
        while (a + 1 < k_reconfig_actions && x >= weights[a]) {
            x -= weights[a];
            ++a;
        }
        e.action = static_cast<reconfig_action>(a);
        e.client =
            static_cast<std::uint32_t>(gen.uniform_u64(0, cfg.n_clients - 1));
        e.at = cfg.warmup + gen.uniform_u64(0, span - 1);
        const double m = gen.uniform_real(mag_lo, mag_hi);
        switch (e.action) {
        case reconfig_action::scale_up: e.magnitude = 1.0 + m; break;
        case reconfig_action::scale_down:
            e.magnitude = std::max(0.0, 1.0 - m);
            break;
        case reconfig_action::join: e.magnitude = m; break;
        case reconfig_action::leave: e.magnitude = 0.0; break;
        }
        events_.push_back(e);
    }
    std::sort(events_.begin(), events_.end(), event_before);
}

reconfig_schedule::reconfig_schedule(std::vector<reconfig_event> events)
    : events_(std::move(events)) {
    std::sort(events_.begin(), events_.end(), event_before);
}

std::uint64_t reconfig_schedule::count(reconfig_action a) const {
    std::uint64_t n = 0;
    for (const auto& e : events_) {
        if (e.action == a) ++n;
    }
    return n;
}

} // namespace bluescale::sim
