// Deterministic schedules of runtime admission / reconfiguration requests.
//
// A reconfig_schedule is the workload-change analogue of a fault_campaign:
// a seed-driven, fully precomputed list of typed client events (task-set
// scale-ups/downs, joins, leaves) over a cycle horizon. Like the fault
// campaign it is pure data -- building one from the same config is
// bit-identical on every platform and for every trial-sweep thread count,
// so experiments that exercise core::reconfig_manager stay exactly as
// reproducible under sim::trial_runner as static-workload ones. The
// schedule only says WHEN and WHAT KIND of change a client requests; the
// harness derives the concrete task set deterministically from the event
// index (see harness::reconfig_experiment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace bluescale::sim {

/// The admission-request taxonomy. Each action maps to one shape of
/// task-set change submitted to the reconfiguration manager.
enum class reconfig_action : std::uint8_t {
    /// The client's task set grows heavier by `magnitude` (x its current
    /// utilization). The canonical admission-test case: may be rejected.
    scale_up,
    /// The client's task set shrinks to `magnitude` (< 1) of its current
    /// utilization. Always feasible in isolation; frees supply.
    scale_down,
    /// A previously empty client joins with a fresh task set at
    /// `magnitude` utilization.
    join,
    /// The client's tasks all leave (task set becomes empty).
    leave,
};

inline constexpr std::size_t k_reconfig_actions = 4;

[[nodiscard]] const char* reconfig_action_name(reconfig_action a);

/// One scheduled request: client asks for `action` at cycle `at`.
struct reconfig_event {
    cycle_t at = 0;
    std::uint32_t client = 0;
    reconfig_action action{};
    /// Utilization scale factor (scale_up/scale_down) or target
    /// utilization (join); ignored for leave.
    double magnitude = 1.0;

    friend bool operator==(const reconfig_event&,
                           const reconfig_event&) = default;
};

struct reconfig_schedule_config {
    std::uint64_t seed = 1;
    /// Events are scheduled inside [warmup, horizon).
    cycle_t horizon = 100'000;
    cycle_t warmup = 0;
    /// Expected events per 1000 cycles (0 = static workload).
    double events_per_kcycle = 0.0;
    /// Clients eligible for events (picked uniformly).
    std::uint32_t n_clients = 1;
    /// Relative likelihood of each action; a zero weight disables it.
    double scale_up_weight = 1.0;
    double scale_down_weight = 1.0;
    double join_weight = 0.5;
    double leave_weight = 0.5;
    /// Magnitude range: scale_up draws in [1 + lo, 1 + hi]; scale_down in
    /// [1 - hi, 1 - lo]; join draws a target utilization in [lo, hi].
    double magnitude_lo = 0.25;
    double magnitude_hi = 1.0;
};

/// An immutable, chronologically sorted request schedule.
class reconfig_schedule {
public:
    /// Empty schedule: a static workload.
    reconfig_schedule() = default;
    /// Generates the schedule from the config (deterministic in cfg).
    explicit reconfig_schedule(const reconfig_schedule_config& cfg);
    /// Scripted schedule from explicit events (tests, targeted studies).
    explicit reconfig_schedule(std::vector<reconfig_event> events);

    [[nodiscard]] const std::vector<reconfig_event>& events() const {
        return events_;
    }
    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    [[nodiscard]] std::uint64_t count(reconfig_action a) const;

private:
    std::vector<reconfig_event> events_;
};

} // namespace bluescale::sim
