// Deterministic pseudo-random number generation for reproducible experiments.
//
// xoshiro256** by Blackman & Vigna (public domain reference implementation,
// re-expressed here): fast, high-quality, and -- unlike std::mt19937 --
// guaranteed to produce identical streams on every platform, which keeps
// experiment trials reproducible across machines.
#pragma once

#include <array>
#include <cstdint>

namespace bluescale {

class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /// Re-initializes the state from a single seed via splitmix64, so that
    /// any seed (including 0) yields a well-mixed state.
    void reseed(std::uint64_t seed) {
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // UniformRandomBitGenerator interface, so <random> distributions work too.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }
    result_type operator()() { return next(); }

    /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
    std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
        const std::uint64_t span = hi - lo + 1;
        if (span == 0) return next(); // full 64-bit range
        // Unbiased rejection sampling (Lemire-style threshold).
        const std::uint64_t threshold = (0 - span) % span;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return lo + r % span;
        }
    }

    /// Uniform double in [0, 1).
    double uniform_unit() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform_real(double lo, double hi) {
        return lo + (hi - lo) * uniform_unit();
    }

    /// Picks an index in [0, n) (n > 0).
    std::size_t pick(std::size_t n) {
        return static_cast<std::size_t>(uniform_u64(0, n - 1));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

/// Counter-based stream derivation: a well-mixed seed for stream `index`
/// anchored at `base`, via the splitmix64 finalizer. Nearby (base, index)
/// pairs yield statistically independent generator states, so per-trial
/// and per-client rngs can be seeded purely from their indices -- no
/// generator state is shared or consumed across streams, which is what
/// lets the trial runner execute trials in any order (or in parallel) and
/// still reproduce the serial results bit-for-bit.
[[nodiscard]] constexpr std::uint64_t substream(std::uint64_t base,
                                                std::uint64_t index) {
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace bluescale
