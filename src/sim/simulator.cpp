#include "sim/simulator.hpp"

#include "obs/profile.hpp"

namespace bluescale {

void simulator::enable_profiling(obs::registry& reg) {
    profiling_ = true;
    prof_reg_ = &reg;
    prof_cycles_ = reg.make_counter("profile/sim/cycles",
                                    obs::k_metric_profile);
    prof_wall_ns_ = reg.make_counter("profile/sim/wall_ns",
                                     obs::k_metric_profile);
    prof_tick_ns_.clear();
    sync_profile_handles();
}

void simulator::sync_profile_handles() {
    // Components may be added after enable_profiling (testbench::arm adds
    // the fabric last); late arrivals get their counters on first step.
    while (prof_tick_ns_.size() < components_.size()) {
        prof_tick_ns_.push_back(prof_reg_->make_counter(
            "profile/" + components_[prof_tick_ns_.size()]->name() +
                "/tick_ns",
            obs::k_metric_profile));
    }
}

void simulator::step() {
    if (trace_ != nullptr) trace_->set_now(now_);
    if (profiling_) {
        sync_profile_handles();
        const obs::stopwatch step_watch;
        for (std::size_t i = 0; i < components_.size(); ++i) {
            const obs::stopwatch tick_watch;
            components_[i]->tick(now_);
            prof_tick_ns_[i].inc(tick_watch.ns());
        }
        for (component* c : components_) c->commit();
        prof_wall_ns_.inc(step_watch.ns());
        prof_cycles_.inc();
        ++now_;
        return;
    }
    for (component* c : components_) c->tick(now_);
    for (component* c : components_) c->commit();
    ++now_;
}

void simulator::run(cycle_t cycles) {
    const cycle_t end = now_ + cycles;
    while (now_ < end) step();
}

bool simulator::run_until(const std::function<bool()>& done, cycle_t max_cycles) {
    const cycle_t end = now_ + max_cycles;
    if (now_ >= end) return done(); // zero budget: evaluate once, don't step
    while (now_ < end) {
        if (done()) return true;
        step();
    }
    // The predicate was already evaluated for every cycle in the budget;
    // exhausting it means it never fired -- no extra evaluation here.
    return false;
}

} // namespace bluescale
