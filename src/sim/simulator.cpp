#include "sim/simulator.hpp"

namespace bluescale {

void simulator::step() {
    for (component* c : components_) c->tick(now_);
    for (component* c : components_) c->commit();
    ++now_;
}

void simulator::run(cycle_t cycles) {
    const cycle_t end = now_ + cycles;
    while (now_ < end) step();
}

bool simulator::run_until(const std::function<bool()>& done, cycle_t max_cycles) {
    const cycle_t end = now_ + max_cycles;
    if (now_ >= end) return done(); // zero budget: evaluate once, don't step
    while (now_ < end) {
        if (done()) return true;
        step();
    }
    // The predicate was already evaluated for every cycle in the budget;
    // exhausting it means it never fired -- no extra evaluation here.
    return false;
}

} // namespace bluescale
