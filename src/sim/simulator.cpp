#include "sim/simulator.hpp"

#include <cstdlib>
#include <optional>

#include "obs/profile.hpp"

namespace bluescale {

namespace {

/// Test override for the process-wide default engine. Written only from
/// set_default_engine()/clear_default_engine() between runs; reads during
/// parallel trial sweeps see a stable value.
std::optional<simulator::engine> g_engine_override;

} // namespace

simulator::engine simulator::default_engine() {
    if (g_engine_override.has_value()) return *g_engine_override;
    static const engine from_env = [] {
        // Engine selection, not simulation input: both engines produce
        // bit-identical simulations by contract (the determinism suite
        // diffs their exports), so this env read cannot leak
        // nondeterminism into results.
        // detlint:allow(nondet-source): engine toggle, outputs invariant
        const char* v = std::getenv("BLUESCALE_LOCKSTEP");
        const bool lockstep = v != nullptr && v[0] != '\0' &&
                              !(v[0] == '0' && v[1] == '\0');
        return lockstep ? engine::lockstep : engine::event;
    }();
    return from_env;
}

void simulator::set_default_engine(engine e) { g_engine_override = e; }

void simulator::clear_default_engine() { g_engine_override.reset(); }

void simulator::enable_profiling(obs::registry& reg) {
    profiling_ = true;
    prof_reg_ = &reg;
    prof_cycles_ = reg.make_counter("profile/sim/cycles",
                                    obs::k_metric_profile);
    prof_wall_ns_ = reg.make_counter("profile/sim/wall_ns",
                                     obs::k_metric_profile);
    prof_tick_ns_.clear();
    sync_profile_handles();
}

void simulator::sync_profile_handles() {
    // Components may be added after enable_profiling (testbench::arm adds
    // the fabric last); late arrivals get their counters on first step.
    while (prof_tick_ns_.size() < components_.size()) {
        prof_tick_ns_.push_back(prof_reg_->make_counter(
            "profile/" + components_[prof_tick_ns_.size()]->name() +
                "/tick_ns",
            obs::k_metric_profile));
    }
}

void simulator::rebind_wake_cells() {
    // Read every current wake time BEFORE relocating storage: a
    // component added earlier already points into the old array, and the
    // move-assign below frees it.
    std::vector<cycle_t> fresh(components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
        fresh[i] = components_[i]->wake_at();
    }
    wake_cells_ = std::move(fresh);
    committers_.clear();
    // One reservation per assembly change: the rebind runs at add() time
    // (before stepping resumes), so the commit scan never grows storage
    // while the simulation is running.
    committers_.reserve(components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
        components_[i]->bind_wake_cell(&wake_cells_[i]);
        if (components_[i]->latches()) committers_.push_back(components_[i]);
    }
    next_due_cache_ = now_; // conservative until the next commit scan
}

void simulator::step() {
    if (trace_ != nullptr) trace_->set_now(now_);
    const bool lockstep = engine_ == engine::lockstep;
    if (wake_cells_.size() != components_.size()) rebind_wake_cells();
    if (profiling_) {
        sync_profile_handles();
        const obs::stopwatch step_watch;
        for (std::size_t i = 0; i < components_.size(); ++i) {
            component* c = components_[i];
            if (lockstep || wake_cells_[i] <= now_) {
                const obs::stopwatch tick_watch;
                c->tick(now_);
                prof_tick_ns_[i].inc(tick_watch.ns());
                // Lockstep ticks everything next cycle anyway -- paying
                // for next_event() (or the commit bookkeeping) there
                // would only slow the fallback.
                if (!lockstep) {
                    wake_cells_[i] = std::max(now_ + 1, c->next_event(now_));
                }
            }
        }
        commit_phase();
        prof_wall_ns_.inc(step_watch.ns());
        prof_cycles_.inc();
        ++now_;
        return;
    }
    if (lockstep) {
        for (component* c : components_) c->tick(now_);
        commit_phase();
        ++now_;
        return;
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (wake_cells_[i] <= now_) {
            component* c = components_[i];
            c->tick(now_);
            // A self-wake during tick() is absorbed here by contract:
            // next_event() runs after tick and sees this-cycle state. A
            // wake from a LATER component's tick lands after this write
            // and sticks, as it must.
            wake_cells_[i] = std::max(now_ + 1, c->next_event(now_));
        }
    }
    commit_phase();
    ++now_;
}

void simulator::commit_phase() {
    if (engine_ == engine::lockstep) {
        for (component* c : components_) c->commit();
        return;
    }
    // Every latching component commits on every STEPPED cycle, even ones
    // that slept through the tick phase: a producer may push into a
    // sleeping consumer's queue without waking it (transition-only wakes
    // skip pushes onto existing work), and those staged values must latch
    // on this clock edge exactly as in lockstep -- a consumer that wakes
    // later must see everything pushed before its wake cycle as visible.
    // Cycles the engine skips entirely stage nothing (no tick, no push),
    // so eliding their commits is behaviour-preserving; commit() on a
    // latching component with nothing staged is a no-op by the two-phase
    // contract, and non-latching components (latches() == false) have no
    // edge to run at all.
    for (component* c : committers_) c->commit();
    // Fold the min-wakeup reduction for next_due() over the contiguous
    // cell array: commit() implementations are pure latches (no pushes,
    // no wakes), so the cells are stable while this scan runs.
    cycle_t due = k_cycle_never;
    for (const cycle_t at : wake_cells_) due = std::min(due, at);
    next_due_cache_ = due;
}

void simulator::run(cycle_t cycles) {
    const cycle_t end = now_ + cycles;
    if (engine_ == engine::lockstep) {
        while (now_ < end) step();
        return;
    }
    while (now_ < end) {
        step();
        if (now_ >= end) break;
        // Idle skip: when no component is due before `due`, the cycles in
        // between are provably empty -- jump the clock over them.
        const cycle_t due = std::min(end, std::max(now_, next_due()));
        if (due > now_) now_ = due;
    }
}

} // namespace bluescale
