// Cycle-stepped simulation engine.
#pragma once

#include <functional>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "sim/types.hpp"

namespace bluescale {

/// Drives a set of components with a shared clock. Components are owned by
/// the caller (typically a system model that also wires them together); the
/// simulator only sequences them.
class simulator {
public:
    void add(component& c) { components_.push_back(&c); }

    [[nodiscard]] cycle_t now() const { return now_; }

    /// Keeps `sink`'s trace clock in lockstep with the simulation: every
    /// step publishes the current cycle before components tick, so emit
    /// sites without a `now` argument in scope stamp the right cycle.
    void bind_trace(obs::trace_sink& sink) { trace_ = &sink; }

    /// Opt-in simulator profiling: registers profile-flagged wall-clock
    /// metrics ("profile/sim/cycles", "profile/sim/wall_ns", and
    /// "profile/<component>/tick_ns" per added component) into `reg` and
    /// starts timing every step. Costs two clock reads per component per
    /// cycle -- leave off outside profiling runs.
    void enable_profiling(obs::registry& reg);

    /// Runs for `cycles` additional cycles.
    void run(cycle_t cycles);

    /// Runs until `done()` returns true or `max_cycles` elapse. Returns true
    /// if the predicate fired. The predicate is evaluated exactly once per
    /// cycle in the budget, before that cycle's step (and exactly once when
    /// the budget is zero); it is never re-evaluated on exhaustion.
    bool run_until(const std::function<bool()>& done, cycle_t max_cycles);

    /// Advances exactly one cycle.
    void step();

private:
    void sync_profile_handles();

    std::vector<component*> components_;
    cycle_t now_ = 0;
    obs::trace_sink* trace_ = nullptr;
    bool profiling_ = false;
    obs::registry* prof_reg_ = nullptr;
    obs::counter prof_cycles_;
    obs::counter prof_wall_ns_;
    std::vector<obs::counter> prof_tick_ns_; ///< parallel to components_
};

} // namespace bluescale
