// Cycle-stepped simulation engine.
#pragma once

#include <functional>
#include <vector>

#include "sim/component.hpp"
#include "sim/types.hpp"

namespace bluescale {

/// Drives a set of components with a shared clock. Components are owned by
/// the caller (typically a system model that also wires them together); the
/// simulator only sequences them.
class simulator {
public:
    void add(component& c) { components_.push_back(&c); }

    [[nodiscard]] cycle_t now() const { return now_; }

    /// Runs for `cycles` additional cycles.
    void run(cycle_t cycles);

    /// Runs until `done()` returns true or `max_cycles` elapse. Returns true
    /// if the predicate fired. The predicate is evaluated exactly once per
    /// cycle in the budget, before that cycle's step (and exactly once when
    /// the budget is zero); it is never re-evaluated on exhaustion.
    bool run_until(const std::function<bool()>& done, cycle_t max_cycles);

    /// Advances exactly one cycle.
    void step();

private:
    std::vector<component*> components_;
    cycle_t now_ = 0;
};

} // namespace bluescale
