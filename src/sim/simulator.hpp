// Hybrid event-driven / cycle-stepped simulation engine.
//
// The default engine skips dead time: after every tick the simulator
// caches each component's next_event() horizon, only re-ticks components
// whose horizon is due, and -- when every component is idle -- advances
// the clock straight to the earliest wakeup instead of stepping through
// empty cycles. Producers re-arm sleeping consumers through sim::wake_hook
// (queue pushes, supervisor reprogramming), so no work is ever missed.
//
// Setting BLUESCALE_LOCKSTEP=1 in the environment (or constructing with
// engine::lockstep) falls back to the classic cycle-stepped loop that
// ticks and commits every component every cycle. Both engines produce
// bit-identical simulations: the determinism suite diffs their exports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "sim/types.hpp"

namespace bluescale {

/// Drives a set of components with a shared clock. Components are owned by
/// the caller (typically a system model that also wires them together); the
/// simulator only sequences them.
class simulator {
public:
    enum class engine : std::uint8_t {
        event,   ///< skip-to-next-event scheduling (default)
        lockstep ///< tick + commit every component every cycle
    };

    /// The engine new simulators start with: engine::event unless the
    /// BLUESCALE_LOCKSTEP environment variable is set to a non-empty,
    /// non-"0" value, or a test overrode it with set_default_engine().
    [[nodiscard]] static engine default_engine();
    /// Process-wide override for tests that compare the two engines.
    static void set_default_engine(engine e);
    /// Drops the override, restoring the environment-derived default.
    static void clear_default_engine();

    simulator() : engine_(default_engine()) {}
    explicit simulator(engine e) : engine_(e) {}

    [[nodiscard]] engine mode() const { return engine_; }

    // Assembly-time registration; the hot-path marking is a name collision
    // (obs counter `add()` handle increments inside tick bodies resolve
    // here by name).
    // detlint:allow(hotpath-alloc): assembly-time registration
    void add(component& c) { components_.push_back(&c); }

    [[nodiscard]] cycle_t now() const { return now_; }

    /// Keeps `sink`'s trace clock in lockstep with the simulation: every
    /// step publishes the current cycle before components tick, so emit
    /// sites without a `now` argument in scope stamp the right cycle.
    void bind_trace(obs::trace_sink& sink) { trace_ = &sink; }

    /// Opt-in simulator profiling: registers profile-flagged wall-clock
    /// metrics ("profile/sim/cycles", "profile/sim/wall_ns", and
    /// "profile/<component>/tick_ns" per added component) into `reg` and
    /// starts timing every step. Costs two clock reads per component per
    /// stepped cycle -- leave off outside profiling runs. Under the event
    /// engine "profile/sim/cycles" counts stepped (not skipped) cycles.
    void enable_profiling(obs::registry& reg);

    /// Runs for `cycles` additional cycles.
    void run(cycle_t cycles);

    /// Runs until `done()` returns true or `max_cycles` elapse. Returns
    /// true if the predicate fired, with now() at the firing cycle.
    ///
    /// Contract: the predicate must be a pure function of component /
    /// system state, not of now() -- the event engine evaluates it only
    /// when state can have changed (once per stepped cycle, plus once
    /// before each idle skip), which is observationally equivalent for
    /// state predicates and identical to lockstep's once-per-cycle
    /// cadence there. Time limits belong in `max_cycles`. With a zero
    /// budget the predicate is evaluated exactly once and no cycle runs.
    template <typename Pred>
    bool run_until(Pred&& done, cycle_t max_cycles) {
        const cycle_t end = now_ + max_cycles;
        if (now_ >= end) return done(); // zero budget: evaluate, don't step
        // `checked` records that the predicate was already evaluated for
        // the current now_ (just before an idle skip, over state no tick
        // has touched since), so it is not re-evaluated on loop entry.
        bool checked = false;
        while (now_ < end) {
            if (!checked && done()) return true;
            checked = false;
            step();
            if (engine_ == engine::event && now_ < end) {
                const cycle_t due = std::min(end, std::max(now_, next_due()));
                if (due > now_) {
                    // All components idle until `due`: state is frozen, so
                    // one evaluation covers every cycle in [now_, due).
                    if (done()) return true;
                    now_ = due;
                    checked = true;
                }
            }
        }
        // The predicate was already evaluated for every reachable state in
        // the budget; exhausting it means it never fired.
        return false;
    }

    /// Type-erased overload kept for ABI-stable callers (testbench); the
    /// template above avoids std::function dispatch on the hot loop.
    bool run_until(const std::function<bool()>& done, cycle_t max_cycles) {
        return run_until<const std::function<bool()>&>(done, max_cycles);
    }

    /// Advances exactly one cycle (ticking only due components in event
    /// mode, everything in lockstep).
    void step();

private:
    void sync_profile_handles();
    void commit_phase();
    /// Rebinds every component's wake slot into wake_cells_ (called when
    /// components are added, which can relocate the array).
    void rebind_wake_cells();

    /// Earliest cached wakeup across all components (k_cycle_never when
    /// everything is quiescent). Computed by the commit scan of the most
    /// recent step() -- valid because commit() implementations are pure
    /// latches (they never fire wakes), and only consumed right after a
    /// step() by the run loops, so out-of-band wakes between runs (e.g.
    /// campaign injection) can never be skipped over.
    [[nodiscard]] cycle_t next_due() const { return next_due_cache_; }

    engine engine_;
    std::vector<component*> components_;
    /// SoA wake schedule, parallel to components_: each component's wake
    /// slot is relocated here (component::bind_wake_cell) so the due
    /// scan, commit scan, and next_due() touch sequential memory.
    std::vector<cycle_t> wake_cells_;
    /// Components whose commit() is a real clock edge (latches() == true);
    /// the event engine's commit scan calls only these -- the rest are
    /// no-ops by declaration, so skipping them is behaviour-preserving.
    std::vector<component*> committers_;
    cycle_t next_due_cache_ = 0;
    cycle_t now_ = 0;
    obs::trace_sink* trace_ = nullptr;
    bool profiling_ = false;
    obs::registry* prof_reg_ = nullptr;
    obs::counter prof_cycles_;
    obs::counter prof_wall_ns_;
    std::vector<obs::counter> prof_tick_ns_; ///< parallel to components_
};

} // namespace bluescale
