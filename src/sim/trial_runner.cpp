#include "sim/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace bluescale::sim {

unsigned resolve_threads(unsigned requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void for_each_trial(std::uint32_t n, unsigned threads,
                    const std::function<void(std::uint32_t)>& fn) {
    const unsigned workers =
        std::min<unsigned>(resolve_threads(threads), std::max(n, 1u));
    if (workers <= 1) {
        for (std::uint32_t i = 0; i < n; ++i) fn(i);
        return;
    }

    std::atomic<std::uint32_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const auto worker = [&] {
        for (;;) {
            if (failed.load(std::memory_order_acquire)) return;
            const std::uint32_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                fn(i);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) {
                        first_error = std::current_exception();
                    }
                }
                failed.store(true, std::memory_order_release);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

} // namespace bluescale::sim
