// Deterministic parallel execution of independent experiment trials.
//
// Every experiment in the repo runs N independent trials of a closed
// system model; the trials share no state (each one seeds its own rng
// from the trial index), so they parallelize embarrassingly. The runner
// fans trial indices out over a fixed-size thread pool and returns the
// per-trial results *in trial order*, so downstream aggregation sees the
// exact sequence a serial loop would have produced: output is
// bit-identical for 1 thread and N threads as long as the trial function
// itself is deterministic per index.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/profile.hpp"
#include "obs/registry.hpp"

namespace bluescale::sim {

/// Worker count for a requested thread setting: 0 means "all hardware
/// threads"; anything else is taken literally. Never returns 0.
[[nodiscard]] unsigned resolve_threads(unsigned requested);

/// Calls fn(0) .. fn(n - 1), each exactly once, on at most `threads`
/// workers. Indices are claimed from a shared counter, so completion
/// order is unspecified -- callers needing ordered results should use
/// trial_runner::run. `fn` must be safe to call concurrently for
/// different indices. With `threads` <= 1 the calls happen inline on the
/// calling thread, in index order. If an invocation throws, the first
/// exception is rethrown after all workers stop; remaining indices may
/// never run.
void for_each_trial(std::uint32_t n, unsigned threads,
                    const std::function<void(std::uint32_t)>& fn);

/// Executes N independent trials on a fixed-size thread pool.
class trial_runner {
public:
    /// `threads` follows resolve_threads(): 0 = all hardware threads.
    explicit trial_runner(unsigned threads = 1)
        : threads_(resolve_threads(threads)) {}

    [[nodiscard]] unsigned threads() const { return threads_; }

    /// Opt-in sweep profiling: every subsequent run()/for_each() adds its
    /// wall time and trial count to profile-flagged counters in `reg`
    /// ("profile/sweep/runs", "profile/sweep/trials",
    /// "profile/sweep/wall_ns"). Callers derive cycles-per-wall-second
    /// from these plus their own simulated-cycle count.
    void profile_to(obs::registry& reg) {
        prof_runs_ = reg.make_counter("profile/sweep/runs",
                                      obs::k_metric_profile);
        prof_trials_ = reg.make_counter("profile/sweep/trials",
                                        obs::k_metric_profile);
        prof_wall_ns_ = reg.make_counter("profile/sweep/wall_ns",
                                         obs::k_metric_profile);
    }

    /// Runs `fn(t)` for every trial t in [0, n_trials) and returns the
    /// results indexed by trial: out[t] == fn(t) regardless of thread
    /// count or scheduling. Aggregating out[0], out[1], ... in order is
    /// therefore bit-identical to the serial loop. The result type must
    /// be movable; `fn` must not depend on shared mutable state.
    template <typename Fn>
    [[nodiscard]] auto run(std::uint32_t n_trials, Fn&& fn) const
        -> std::vector<std::invoke_result_t<Fn&, std::uint32_t>> {
        using result_type = std::invoke_result_t<Fn&, std::uint32_t>;
        static_assert(!std::is_void_v<result_type>,
                      "use for_each for trial functions without results");
        std::vector<std::optional<result_type>> slots(n_trials);
        const obs::stopwatch sweep_watch;
        for_each_trial(n_trials, threads_,
                       [&](std::uint32_t t) { slots[t].emplace(fn(t)); });
        record_sweep(n_trials, sweep_watch.ns());
        std::vector<result_type> out;
        out.reserve(n_trials);
        for (auto& slot : slots) out.push_back(std::move(*slot));
        return out;
    }

    /// Unordered fan-out without result collection (fn owns its sink).
    void for_each(std::uint32_t n_trials,
                  const std::function<void(std::uint32_t)>& fn) const {
        const obs::stopwatch sweep_watch;
        for_each_trial(n_trials, threads_, fn);
        record_sweep(n_trials, sweep_watch.ns());
    }

private:
    void record_sweep(std::uint32_t trials, std::uint64_t wall_ns) const {
        prof_runs_.inc();
        prof_trials_.inc(trials);
        prof_wall_ns_.inc(wall_ns);
    }

    unsigned threads_;
    /// Unbound (no-op) until profile_to(); mutable because profiling a
    /// const sweep is observation, not mutation of the runner's contract.
    mutable obs::counter prof_runs_;
    mutable obs::counter prof_trials_;
    mutable obs::counter prof_wall_ns_;
};

} // namespace bluescale::sim
