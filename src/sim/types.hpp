// Fundamental simulation types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace bluescale {

/// Simulation time, in interconnect clock cycles. One cycle is the paper's
/// discrete "time unit": the cost of forwarding one memory transaction
/// through one arbitration point.
using cycle_t = std::uint64_t;

/// A cycle value that is later than any reachable simulation time.
inline constexpr cycle_t k_cycle_never = std::numeric_limits<cycle_t>::max();

/// System-wide client identifier (the paper's mu.x index).
using client_id_t = std::uint32_t;

/// Task identifier, unique within one client (8 bits in the paper's task
/// parameter table).
using task_id_t = std::uint8_t;

/// Unique identifier of one in-flight memory request.
using request_id_t = std::uint64_t;

} // namespace bluescale
