// Producer-to-consumer wake notification for the event-driven engine.
//
// When the simulator runs in event mode, a quiescent component's tick()
// is skipped until its declared horizon (component::next_event). Anything
// that hands such a component new work mid-cycle -- a queue push, a
// supervisor reprogramming it -- must re-arm it through one of these
// hooks, or the work would sit unserviced until the stale horizon.
//
// The hook is a plain function pointer + context, not a std::function:
// it sits on the push hot path of every queue in the system and must
// never allocate or branch through a vtable.
#pragma once

namespace bluescale::sim {

/// A non-allocating callback used by queues and sub-components to re-arm
/// their consumer when new work arrives.
struct wake_hook {
    void (*fn)(void*) = nullptr;
    void* ctx = nullptr;

    void fire() const {
        if (fn != nullptr) fn(ctx);
    }
};

/// A hook that calls wake() on a component-like object. The object must
/// outlive every producer holding the hook.
template <typename C>
[[nodiscard]] wake_hook wake_of(C& c) {
    return {[](void* ctx) { static_cast<C*>(ctx)->wake(); }, &c};
}

} // namespace bluescale::sim
