#include "stats/csv.hpp"

namespace bluescale::stats {

csv_writer::csv_writer(const std::string& path,
                       std::vector<std::string> headers)
    : out_(path) {
    if (out_) write_row(headers);
}

void csv_writer::add_row(const std::vector<std::string>& cells) {
    write_row(cells);
}

std::string csv_writer::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"') quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void csv_writer::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

} // namespace bluescale::stats
