// CSV emission for post-processing experiment output (plotting, diffing).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace bluescale::stats {

/// Writes rows to a CSV file. Values containing commas/quotes/newlines are
/// quoted per RFC 4180.
class csv_writer {
public:
    csv_writer(const std::string& path, std::vector<std::string> headers);

    [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

    void add_row(const std::vector<std::string>& cells);

private:
    static std::string escape(const std::string& cell);
    void write_row(const std::vector<std::string>& cells);

    std::ofstream out_;
};

} // namespace bluescale::stats
