#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bluescale::stats {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
    assert(hi > lo && bins > 0);
}

void histogram::add(double x) {
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / bin_width_);
        i = std::min(i, counts_.size() - 1); // guard FP edge at hi_
        ++counts_[i];
    }
}

void histogram::merge(const histogram& other) {
    if (other.total_ == 0) return; // empty merge: no-op, any layout
    assert(lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double histogram::percentile(double p) const {
    if (total_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank (1-based). The clamp to [1, total_] keeps a
    // single-sample histogram well-defined at every p: rank is 1 and the
    // lone sample's bin answers.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    rank = std::clamp<std::uint64_t>(rank, 1, total_);

    std::uint64_t seen = underflow_;
    if (rank <= seen) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0) continue;
        const std::uint64_t prev = seen;
        seen += counts_[i];
        if (rank <= seen) {
            // counts_[i] != 0 here, so the interpolation divisor is safe.
            const double frac = static_cast<double>(rank - prev) /
                                static_cast<double>(counts_[i]);
            return bin_lo(i) + frac * bin_width_;
        }
    }
    return hi_; // remaining mass sits in the overflow bin
}

double histogram::bin_lo(std::size_t i) const {
    return lo_ + static_cast<double>(i) * bin_width_;
}

double histogram::bin_hi(std::size_t i) const {
    return lo_ + static_cast<double>(i + 1) * bin_width_;
}

std::string histogram::to_string(std::size_t max_width) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(max_width));
        std::snprintf(line, sizeof line, "[%10.2f, %10.2f) %8llu |",
                      bin_lo(i), bin_hi(i),
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
        out.append(bar_len, '#');
        out += '\n';
    }
    if (underflow_ != 0 || overflow_ != 0) {
        std::snprintf(line, sizeof line, "underflow %llu, overflow %llu\n",
                      static_cast<unsigned long long>(underflow_),
                      static_cast<unsigned long long>(overflow_));
        out += line;
    }
    return out;
}

} // namespace bluescale::stats
