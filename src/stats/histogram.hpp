// Fixed-width histogram for latency distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bluescale::stats {

/// Linear-bin histogram over [lo, hi); values outside the range land in
/// saturating under-/overflow bins.
class histogram {
public:
    histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    /// Accumulates `other` into this histogram. Merging an empty
    /// histogram is a no-op (so layouts need not match in that case);
    /// otherwise both histograms must share lo/hi/bin count (asserted).
    void merge(const histogram& other);

    /// Value at the p-th percentile (p clamped to [0, 100]),
    /// nearest-rank with linear interpolation inside the owning bin.
    /// Edge cases: an empty histogram returns 0; with a single sample
    /// every percentile (p99 included) resolves to that sample's bin;
    /// underflow mass maps to lo and overflow mass to hi. Never divides
    /// by a zero count.
    [[nodiscard]] double percentile(double p) const;

    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
    [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] double bin_lo(std::size_t i) const;
    [[nodiscard]] double bin_hi(std::size_t i) const;

    /// Compact one-line-per-bin ASCII rendering for logs/examples.
    [[nodiscard]] std::string to_string(std::size_t max_width = 50) const;

private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace bluescale::stats
