#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace bluescale::stats {

void running_summary::add(double x) {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double running_summary::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double running_summary::stddev() const { return std::sqrt(variance()); }

void running_summary::merge(const running_summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void sample_set::merge(const sample_set& other) {
    samples_.reserve(samples_.size() + other.samples_.size());
    for (const double x : other.samples_) add(x);
}

double sample_set::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        clamped / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

} // namespace bluescale::stats
