// Streaming and sample-retaining summary statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace bluescale::stats {

/// Streaming mean/variance/min/max via Welford's algorithm. O(1) memory;
/// use `sample_set` when percentiles are needed.
class running_summary {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const { return sum_; }

    /// Merges another summary into this one (parallel-trial aggregation).
    void merge(const running_summary& other);

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Retains all samples; supports exact percentiles in addition to the
/// running_summary statistics.
class sample_set {
public:
    void add(double x) {
        samples_.push_back(x);
        summary_.add(x);
        sorted_ = false;
    }

    [[nodiscard]] std::size_t count() const { return summary_.count(); }
    [[nodiscard]] double mean() const { return summary_.mean(); }
    [[nodiscard]] double variance() const { return summary_.variance(); }
    [[nodiscard]] double stddev() const { return summary_.stddev(); }
    [[nodiscard]] double min() const { return summary_.min(); }
    [[nodiscard]] double max() const { return summary_.max(); }
    [[nodiscard]] double sum() const { return summary_.sum(); }

    /// Exact percentile by linear interpolation between closest ranks.
    /// p in [0, 100]. Returns 0 when empty.
    [[nodiscard]] double percentile(double p) const;

    /// Appends every sample of `other`, in `other`'s current sample order,
    /// exactly as if add() had been called for each. Merging per-trial
    /// sets in trial order therefore produces a set bit-identical to one
    /// filled by the serial trial loop (a Welford pairwise merge would
    /// not -- float summation is order-sensitive). Note percentile()
    /// sorts a set's samples in place, so merge sources before querying
    /// percentiles when byte-stable ordering matters.
    void merge(const sample_set& other);

    [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    running_summary summary_;
};

} // namespace bluescale::stats
