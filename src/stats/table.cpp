#include "stats/table.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::stats {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string table::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += "| ";
            out += row[c];
            out.append(widths[c] - row[c].size() + 1, ' ');
        }
        out += "|\n";
    };

    std::string out;
    emit_row(headers_, out);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out += "|";
        out.append(widths[c] + 2, '-');
    }
    out += "|\n";
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

void table::print(std::FILE* out) const {
    const std::string s = to_string();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string table::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string table::pct(double fraction, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace bluescale::stats
