// Aligned console table rendering for benchmark/experiment output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bluescale::stats {

/// Builds a column-aligned text table. Benches use it to print paper-style
/// rows; the formatting is plain ASCII so output diffs cleanly.
class table {
public:
    explicit table(std::vector<std::string> headers);

    /// Appends a row; the row must have the same arity as the header.
    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::string to_string() const;
    void print(std::FILE* out = stdout) const;

    /// Convenience numeric formatting helpers.
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bluescale::stats
