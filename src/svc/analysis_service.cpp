#include "svc/analysis_service.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/rng.hpp"
#include "svc/profile_clock.hpp"

namespace bluescale::svc {

const char* request_outcome_name(request_outcome o) {
    switch (o) {
    case request_outcome::pending: return "pending";
    case request_outcome::committed: return "committed";
    case request_outcome::rejected: return "rejected";
    case request_outcome::expired: return "expired";
    case request_outcome::shed: return "shed";
    }
    return "?";
}

const char* breaker_state_name(breaker_state s) {
    switch (s) {
    case breaker_state::closed: return "closed";
    case breaker_state::open: return "open";
    case breaker_state::half_open: return "half_open";
    }
    return "?";
}

namespace {

inline constexpr std::uint64_t k_fnv_offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t k_fnv_prime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h = (h ^ (v & 0xffu)) * k_fnv_prime;
        v >>= 8;
    }
    return h;
}

/// Order-sensitive hash of the requested task set.
std::uint64_t task_set_hash(const analysis::task_set& tasks) {
    std::uint64_t h = fnv1a(k_fnv_offset, tasks.size());
    for (const auto& t : tasks) {
        h = fnv1a(h, t.period);
        h = fnv1a(h, t.wcet);
    }
    return h;
}

} // namespace

analysis_service::analysis_service(core::reconfig_manager& mgr,
                                   service_config cfg)
    : component("analysis_service"), mgr_(mgr), cfg_(cfg),
      own_(std::make_unique<obs::registry>()) {
    // Virtual-time and wall-clock deadlines are never mixed in one
    // configuration: a deterministic run uses cycles only, a profile run
    // wall nanoseconds only.
    assert(!(cfg_.wall_deadline_ns != 0 && cfg_.default_deadline != 0));
    resume_depth_ =
        cfg_.resume_depth != 0 ? cfg_.resume_depth : cfg_.max_queue / 2;
    workers_.resize(std::max<std::uint32_t>(1, cfg_.workers));
    cache_version_ = mgr_.committed_version();
    bind_observability(*own_, obs::tracer{});
}

void analysis_service::bind_observability(obs::registry& reg,
                                          obs::tracer tracer) {
    submitted_ = reg.make_counter("svc/submitted");
    accepted_ = reg.make_counter("svc/accepted");
    shed_ = reg.make_counter("svc/shed");
    expired_ = reg.make_counter("svc/expired");
    committed_ = reg.make_counter("svc/committed");
    rejected_ = reg.make_counter("svc/rejected");
    retries_ = reg.make_counter("svc/retries");
    requeues_ = reg.make_counter("svc/requeues");
    cache_hits_ = reg.make_counter("svc/cache_hits");
    cache_misses_ = reg.make_counter("svc/cache_misses");
    cache_invalidations_ = reg.make_counter("svc/cache_invalidations");
    degraded_evals_ = reg.make_counter("svc/degraded_evals");
    breaker_trips_ = reg.make_counter("svc/breaker_trips");
    worker_crashes_ = reg.make_counter("svc/worker_crashes");
    worker_stall_cycles_ = reg.make_counter("svc/worker_stall_cycles");
    eval_cycles_ = reg.make_sample("svc/eval_cycles");
    latency_cycles_ = reg.make_sample("svc/latency_cycles");
    trace_ = tracer;
}

service_stats analysis_service::stats() const {
    service_stats s;
    s.submitted = submitted_.value();
    s.accepted = accepted_.value();
    s.shed = shed_.value();
    s.expired = expired_.value();
    s.committed = committed_.value();
    s.rejected = rejected_.value();
    s.retries = retries_.value();
    s.requeues = requeues_.value();
    s.cache_hits = cache_hits_.value();
    s.cache_misses = cache_misses_.value();
    s.cache_invalidations = cache_invalidations_.value();
    s.degraded_evals = degraded_evals_.value();
    s.breaker_trips = breaker_trips_.value();
    s.worker_crashes = worker_crashes_.value();
    s.worker_stall_cycles = worker_stall_cycles_.value();
    return s;
}

void analysis_service::install_faults(const sim::fault_campaign& campaign) {
    for (std::uint32_t i = 0; i < workers_.size(); ++i) {
        workers_[i].crash = sim::fault_window(
            campaign.slice(sim::fault_kind::worker_crash, i));
        workers_[i].stall = sim::fault_window(
            campaign.slice(sim::fault_kind::worker_stall, i));
        workers_[i].crashed = false;
    }
}

std::uint64_t analysis_service::submit(std::uint32_t client,
                                       analysis::task_set tasks,
                                       cycle_t at, cycle_t deadline) {
    // The caller supplies the submission cycle: the event engine does not
    // tick an idle service, so the latched clock may lag the simulator.
    now_ = std::max(now_, at);
    const std::uint64_t id = records_.size();
    request_record rec;
    rec.id = id;
    rec.client = client;
    rec.submitted_at = now_;
    request_state st;
    st.tasks = std::move(tasks);
    if (cfg_.wall_deadline_ns != 0) {
        // Profile mode: wall-clock deadline only; virtual deadlines are
        // rejected at the API boundary (never mixed).
        assert(deadline == k_cycle_never);
        st.wall_deadline_ns = profile_now_ns() + cfg_.wall_deadline_ns;
    } else if (deadline == k_cycle_never && cfg_.default_deadline != 0) {
        st.deadline = now_ + cfg_.default_deadline;
    } else {
        st.deadline = deadline;
    }
    records_.push_back(std::move(rec));
    states_.push_back(std::move(st));
    submitted_.inc();

    // Backpressure with hysteresis: a full queue starts shedding, and
    // shedding continues until the depth drains to the low watermark --
    // an overload burst cannot flap admission open/closed every cycle.
    if (shedding_ && queue_.size() <= resume_depth_) shedding_ = false;
    if (shedding_ || queue_.size() >= cfg_.max_queue) {
        shedding_ = true;
        trace_.emit(obs::trace_event_kind::svc_shed, id);
        finish(id, now_, request_outcome::shed,
               core::admission_outcome::rejected_queue_full,
               "service queue full (" + std::to_string(queue_.size()) + "/" +
                   std::to_string(cfg_.max_queue) + ")");
        return id;
    }
    accepted_.inc();
    trace_.emit(obs::trace_event_kind::svc_accept, id);
    queue_.push_back(id);
    wake();
    return id;
}

bool analysis_service::expired_now(const request_state& st,
                                   cycle_t now) const {
    if (st.wall_deadline_ns != 0) {
        return profile_now_ns() > st.wall_deadline_ns;
    }
    return st.deadline != k_cycle_never && now > st.deadline;
}

void analysis_service::finish(std::uint64_t id, cycle_t now,
                              request_outcome outcome,
                              core::admission_outcome reason,
                              std::string detail) {
    request_record& rec = records_[id];
    assert(rec.outcome == request_outcome::pending);
    rec.outcome = outcome;
    rec.reject_reason = reason;
    rec.detail = std::move(detail);
    rec.finished_at = now;
    switch (outcome) {
    case request_outcome::committed: committed_.inc(); break;
    case request_outcome::rejected: rejected_.inc(); break;
    case request_outcome::expired: expired_.inc(); break;
    case request_outcome::shed: shed_.inc(); break;
    case request_outcome::pending: break;
    }
    latency_cycles_.add(static_cast<double>(now - rec.submitted_at));
    trace_.emit(obs::trace_event_kind::svc_complete, id,
                static_cast<std::uint64_t>(outcome));
    if (on_complete_) on_complete_(records_[id], states_[id].tasks);
}

void analysis_service::sweep_expired_queue(cycle_t now) {
    // Deadline cancellation: expired requests leave the queue before any
    // work runs on them, freeing their slots for live work.
    for (std::size_t i = 0; i < queue_.size();) {
        const std::uint64_t id = queue_[i];
        if (expired_now(states_[id], now)) {
            finish(id, now, request_outcome::expired,
                   core::admission_outcome::rejected_deadline_expired,
                   "deadline expired in the service queue");
            queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

cycle_t analysis_service::backoff_delay(std::uint64_t id,
                                        std::uint32_t attempt) const {
    // Exponential backoff with deterministic jitter: the jitter stream is
    // derived per (seed, request, attempt), so retries perturb nothing
    // else and the schedule is bit-identical for any --threads setting.
    const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 20);
    cycle_t delay = std::min<cycle_t>(cfg_.backoff_cap,
                                      cfg_.backoff_base << shift);
    if (cfg_.backoff_base > 1) {
        rng jitter(substream(substream(cfg_.seed, id), attempt));
        delay += jitter.uniform_u64(0, cfg_.backoff_base - 1);
    }
    return delay;
}

void analysis_service::service_retries(cycle_t now) {
    std::vector<std::uint64_t> kept;
    kept.reserve(retry_ids_.size());
    for (const std::uint64_t id : retry_ids_) {
        request_state& st = states_[id];
        if (st.retry_at > now) {
            kept.push_back(id);
            continue;
        }
        st.retry_at = k_cycle_never;
        if (expired_now(st, now)) {
            finish(id, now, request_outcome::expired,
                   core::admission_outcome::rejected_deadline_expired,
                   "deadline expired during retry backoff");
            continue;
        }
        // Re-entry after backoff bypasses the admission bound: the
        // request was already accepted once and sheds would double-count.
        queue_.push_back(id);
    }
    retry_ids_ = std::move(kept);
}

void analysis_service::step_workers(cycle_t now) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        worker& w = workers_[i];
        const bool crash_now = w.crash.active(now);
        const bool stall_now = w.stall.active(now);
        if (crash_now && !w.crashed) {
            worker_crashes_.inc();
            if (w.busy) {
                // The crashed worker's in-flight request is re-queued
                // exactly once, at the FRONT (it already held a slot) and
                // exempt from the bound. Its evaluation dies with the
                // worker; the result cache usually makes the redo cheap.
                request_state& st = states_[w.req];
                st.has_eval = false;
                ++records_[w.req].requeues;
                requeues_.inc();
                trace_.emit(obs::trace_event_kind::svc_requeue, w.req, i);
                queue_.push_front(w.req);
                w.busy = false;
            }
        }
        w.crashed = crash_now;
        if (!w.busy) continue;
        if (expired_now(states_[w.req], now)) {
            // Deadline cancellation extends to in-flight work: an exact
            // evaluation whose modeled cost outruns the request's deadline
            // is abandoned, freeing the worker (the answer would arrive
            // too late to act on either way).
            const std::uint64_t id = w.req;
            w.busy = false;
            states_[id].has_eval = false;
            finish(id, now, request_outcome::expired,
                   core::admission_outcome::rejected_deadline_expired,
                   "deadline expired during evaluation (cancelled)");
            continue;
        }
        if (stall_now) {
            // A stalled worker holds its request: completion slips one
            // cycle per stalled cycle (delayed, never lost).
            ++w.done_at;
            worker_stall_cycles_.inc();
            continue;
        }
        if (now >= w.done_at) {
            const std::uint64_t id = w.req;
            w.busy = false;
            complete(id, now);
        }
    }
}

void analysis_service::complete(std::uint64_t id, cycle_t now) {
    request_state& st = states_[id];
    if (!st.eval.feasible) {
        std::string detail = st.eval.detail;
        if (st.eval_degraded) detail += " (degraded precision)";
        finish(id, now, request_outcome::rejected, st.eval.reject_reason,
               std::move(detail));
        return;
    }
    // Feasible: hand the precomputed evaluation to the manager's
    // transactional path. A commit in between makes it stale and the
    // manager re-runs it fresh -- never half-applied.
    st.mgr_id = mgr_.apply_evaluated(records_[id].client, st.tasks,
                                     std::move(st.eval), st.deadline);
    st.has_eval = false;
    outstanding_.push_back(id);
}

void analysis_service::poll_manager(cycle_t now) {
    std::vector<std::uint64_t> kept;
    kept.reserve(outstanding_.size());
    for (const std::uint64_t id : outstanding_) {
        const core::admission_record& rec =
            mgr_.record(states_[id].mgr_id);
        if (rec.outcome == core::admission_outcome::pending ||
            rec.outcome == core::admission_outcome::staged) {
            kept.push_back(id);
            continue;
        }
        handle_manager_outcome(id, rec, now);
    }
    outstanding_ = std::move(kept);
}

void analysis_service::handle_manager_outcome(
    std::uint64_t id, const core::admission_record& mrec, cycle_t now) {
    switch (mrec.outcome) {
    case core::admission_outcome::committed:
        finish(id, now, request_outcome::committed,
               core::admission_outcome::committed, std::string{});
        return;
    case core::admission_outcome::rejected_deadline_expired:
        finish(id, now, request_outcome::expired, mrec.outcome,
               mrec.detail);
        return;
    case core::admission_outcome::rejected_path_hazard: {
        // Transient: the unhealthy path usually recovers. Retry with
        // exponential backoff until the budget runs out.
        request_record& rec = records_[id];
        if (rec.retries < cfg_.max_retries) {
            ++rec.retries;
            retries_.inc();
            states_[id].retry_at = now + backoff_delay(id, rec.retries);
            retry_ids_.push_back(id);
            trace_.emit(obs::trace_event_kind::svc_retry, id, rec.retries);
            return;
        }
        finish(id, now, request_outcome::rejected, mrec.outcome,
               mrec.detail + " (retries exhausted)");
        return;
    }
    default:
        // rejected_infeasible / rejected_overutilized / rolled_back /
        // rejected_queue_full (manager-side bound, if configured).
        finish(id, now, request_outcome::rejected, mrec.outcome,
               mrec.detail);
        return;
    }
}

void analysis_service::set_breaker(breaker_state s, cycle_t /*now*/) {
    breaker_ = s;
    trace_.emit(obs::trace_event_kind::svc_breaker,
                static_cast<std::uint64_t>(s));
}

void analysis_service::note_eval_cost(std::uint64_t work, bool degraded,
                                      cycle_t now) {
    if (degraded) {
        degraded_evals_.inc();
        return;
    }
    const bool slow = work > cfg_.breaker_slow_cycles;
    if (breaker_ == breaker_state::closed) {
        consecutive_slow_ = slow ? consecutive_slow_ + 1 : 0;
        if (slow && consecutive_slow_ >= cfg_.breaker_trip_after) {
            breaker_trips_.inc();
            breaker_reopen_at_ = now + cfg_.breaker_cooldown;
            consecutive_slow_ = 0;
            set_breaker(breaker_state::open, now);
        }
    } else if (breaker_ == breaker_state::half_open) {
        if (slow) {
            // Probe failed: re-open and restart the cooldown.
            breaker_trips_.inc();
            breaker_reopen_at_ = now + cfg_.breaker_cooldown;
            probe_successes_ = 0;
            set_breaker(breaker_state::open, now);
        } else if (++probe_successes_ >= cfg_.breaker_close_after) {
            probe_successes_ = 0;
            consecutive_slow_ = 0;
            set_breaker(breaker_state::closed, now);
        }
    }
}

std::uint64_t
analysis_service::cache_key(std::uint32_t client,
                            const analysis::task_set& tasks,
                            bool degraded) const {
    std::uint64_t h = analysis::subtree_signature(
        mgr_.committed(), mgr_.client_tasks(), client);
    h = fnv1a(h, task_set_hash(tasks));
    return fnv1a(h, degraded ? 1 : 0);
}

void analysis_service::run_evaluation(std::uint64_t id, worker& w,
                                      cycle_t now) {
    request_state& st = states_[id];
    request_record& rec = records_[id];

    // Breaker gate: open = degraded precision; after the cooldown the
    // next dispatch half-opens and probes with full precision.
    if (breaker_ == breaker_state::open && now >= breaker_reopen_at_) {
        set_breaker(breaker_state::half_open, now);
    }
    const bool degraded = breaker_ == breaker_state::open;

    std::uint64_t busy_cycles = 0;
    const std::uint64_t key = cache_key(rec.client, st.tasks, degraded);
    const auto hit = cfg_.cache_capacity != 0 ? cache_.find(key)
                                              : cache_.end();
    if (hit != cache_.end()) {
        st.eval = hit->second.eval;
        st.eval_degraded = hit->second.degraded;
        rec.cache_hit = true;
        cache_hits_.inc();
        busy_cycles = cfg_.cache_hit_cycles;
    } else {
        st.eval = mgr_.evaluate(rec.client, st.tasks, degraded);
        st.eval_degraded = degraded;
        cache_misses_.inc();
        note_eval_cost(st.eval.report.total_cycles, degraded, now);
        busy_cycles = std::max<std::uint64_t>(cfg_.min_eval_cycles,
                                              st.eval.report.total_cycles);
        if (cfg_.cache_capacity != 0) {
            cache_.emplace(key, cache_entry{st.eval, degraded});
            cache_fifo_.push_back(key);
            if (cache_.size() > cfg_.cache_capacity) {
                cache_.erase(cache_fifo_.front());
                cache_fifo_.pop_front();
            }
        }
    }
    st.has_eval = true;
    rec.degraded = rec.degraded || st.eval_degraded;
    eval_cycles_.add(static_cast<double>(busy_cycles));

    w.busy = true;
    w.req = id;
    w.done_at = now + busy_cycles;
}

void analysis_service::dispatch(cycle_t now) {
    for (worker& w : workers_) {
        if (w.busy || w.crashed) continue;
        while (!queue_.empty()) {
            const std::uint64_t id = queue_.front();
            queue_.pop_front();
            if (expired_now(states_[id], now)) {
                finish(id, now, request_outcome::expired,
                       core::admission_outcome::rejected_deadline_expired,
                       "deadline expired at dispatch");
                continue;
            }
            run_evaluation(id, w, now);
            break;
        }
    }
}

void analysis_service::tick(cycle_t now) {
    now_ = now;
    // Any committed reconfiguration invalidates the result cache: every
    // cached evaluation was computed against the superseded state.
    if (mgr_.committed_version() != cache_version_) {
        cache_version_ = mgr_.committed_version();
        if (!cache_.empty()) {
            cache_.clear();
            cache_fifo_.clear();
            cache_invalidations_.inc();
        }
    }
    sweep_expired_queue(now);
    service_retries(now);
    step_workers(now);
    poll_manager(now);
    dispatch(now);
}

cycle_t analysis_service::next_event(cycle_t now) const {
    cycle_t h = k_cycle_never;
    // Queued work and manager-outstanding requests keep the per-cycle
    // cadence (deadline sweeps and outcome polling need real ticks).
    if (!queue_.empty() || !outstanding_.empty()) h = now + 1;
    for (const worker& w : workers_) {
        // Crash edges are counted whether or not the worker holds work,
        // so both engines must tick at every crash-window boundary.
        h = std::min(h, w.crash.wake_horizon(now));
        if (w.busy) {
            h = std::min(h, w.done_at);
            h = std::min(h, w.stall.wake_horizon(now));
            // In-flight cancellation fires the cycle AFTER the deadline
            // (expiry is `now > deadline`).
            const cycle_t dl = states_[w.req].deadline;
            if (dl != k_cycle_never) h = std::min(h, dl + 1);
        }
    }
    for (const std::uint64_t id : retry_ids_) {
        h = std::min(h, states_[id].retry_at);
    }
    return h <= now ? now + 1 : h;
}

bool analysis_service::idle() const {
    if (!queue_.empty() || !retry_ids_.empty() || !outstanding_.empty()) {
        return false;
    }
    for (const worker& w : workers_) {
        if (w.busy) return false;
    }
    return true;
}

} // namespace bluescale::svc
