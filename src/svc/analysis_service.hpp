// Analysis-as-a-service (DESIGN.md Sec. 15): a long-running, multi-worker
// admission/reselection server in front of core::reconfig_manager.
//
// Clients submit task-change requests; N logical worker slots drain a
// BOUNDED request queue, run the const re-entrant admission evaluation
// (reconfig_manager::evaluate), and feed feasible results through the
// manager's transactional apply_evaluated() path -- a commit can never
// apply a selection computed against superseded state (stale evaluations
// are transparently re-run by the manager).
//
// Robustness machinery, all deterministic in virtual time:
//
//   * Backpressure with hysteresis: a full queue sheds new submissions
//     (structured `shed` outcome) and keeps shedding until the depth
//     drains to a low watermark, so an overload burst cannot flap the
//     admission path open and closed every cycle.
//   * Per-request deadlines with cancellation: an expired request is
//     dropped before any work runs. Deterministic runs use virtual-time
//     deadlines; profile runs may use wall-clock deadlines through the
//     profile_now_ns() boundary -- the two clocks are never mixed in one
//     configuration (asserted).
//   * Seeded retry with exponential backoff + jitter for transient
//     path-hazard rejections: the jitter stream is derived per (seed,
//     request, attempt) via substream(), so storm runs stay bit-identical
//     for any trial-sweep thread count.
//   * A circuit breaker around the pseudo-polynomial exact admission test:
//     consecutive over-budget evaluations trip it open and evaluations
//     fall back to the cheap sufficient-test portfolio (degraded
//     precision -- sound, may reject feasible requests; reported in the
//     response record and the obs metrics). After a cooldown the breaker
//     half-opens and probes with full precision before closing.
//   * A result cache keyed on the (Pi, Theta) subtree signature
//     (analysis::subtree_signature) plus the request's task set, cleared
//     whenever the manager commits a reconfiguration.
//   * Seed-driven worker faults (sim::fault_campaign worker_crash /
//     worker_stall slices): a crash re-queues the in-flight request
//     exactly once at the queue front; a stall defers completion cycle
//     for cycle. Neither can lose or duplicate a request.
//
// Every request ends in exactly one of {committed, rejected(reason),
// expired, shed}; the obs counters conserve (submitted == shed + expired
// + rejected + committed once the service is idle).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/reconfig_manager.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/component.hpp"
#include "sim/fault.hpp"

namespace bluescale::svc {

/// Terminal disposition of one service request.
enum class request_outcome : std::uint8_t {
    pending,   ///< not yet resolved
    committed, ///< admitted and committed by the reconfig manager
    rejected,  ///< structured rejection (see reject_reason)
    expired,   ///< deadline passed before the request could commit
    shed,      ///< refused at submission: queue full (backpressure)
};

[[nodiscard]] const char* request_outcome_name(request_outcome o);

/// Circuit-breaker state around the full-precision admission test.
enum class breaker_state : std::uint8_t {
    closed,    ///< full precision
    open,      ///< degraded precision (sufficient-test portfolio)
    half_open, ///< probing full precision after the cooldown
};

[[nodiscard]] const char* breaker_state_name(breaker_state s);

struct service_config {
    /// Logical worker slots draining the queue (virtual-time concurrency;
    /// the trial-sweep --threads knob is orthogonal and never changes
    /// service behavior).
    std::uint32_t workers = 2;
    /// Bound on the request queue; a submit against a full queue is shed.
    std::size_t max_queue = 16;
    /// Hysteresis low watermark: once shedding starts it continues until
    /// the queue drains to this depth (0 = max_queue / 2).
    std::size_t resume_depth = 0;
    /// Default per-request deadline, relative cycles from submission
    /// (0 = none). Virtual-time clock; deterministic.
    cycle_t default_deadline = 0;
    /// Profile-mode wall-clock deadline in nanoseconds (0 = off). Mutually
    /// exclusive with virtual deadlines -- the clocks are never mixed.
    std::uint64_t wall_deadline_ns = 0;
    /// Retry budget for transient path-hazard rejections.
    std::uint32_t max_retries = 3;
    /// Exponential backoff: delay = min(cap, base << attempt) + jitter,
    /// jitter uniform in [0, base) from substream(seed, request, attempt).
    cycle_t backoff_base = 64;
    cycle_t backoff_cap = 4096;
    std::uint64_t seed = 1;
    /// Breaker: trip open after this many consecutive evaluations whose
    /// modeled cost exceeds breaker_slow_cycles; half-open after the
    /// cooldown; close again after this many fast full-precision probes.
    std::uint32_t breaker_trip_after = 3;
    std::uint64_t breaker_slow_cycles = 50'000;
    cycle_t breaker_cooldown = 8192;
    std::uint32_t breaker_close_after = 2;
    /// Modeled worker busy time: max(min_eval_cycles, evaluation's
    /// parameter-path cycles); a cache hit costs cache_hit_cycles.
    std::uint64_t min_eval_cycles = 8;
    std::uint64_t cache_hit_cycles = 2;
    /// Result-cache capacity, FIFO eviction (0 disables the cache).
    std::size_t cache_capacity = 64;
};

/// Full audit record of one service request.
struct request_record {
    std::uint64_t id = 0;
    std::uint32_t client = 0;
    request_outcome outcome = request_outcome::pending;
    /// Structured reason when outcome == rejected (or expired via the
    /// manager's deadline gate).
    core::admission_outcome reject_reason = core::admission_outcome::pending;
    /// Evaluated under the degraded (sufficient-only) portfolio.
    bool degraded = false;
    bool cache_hit = false;
    std::uint32_t retries = 0;
    /// Crash-driven exactly-once re-queues this request survived.
    std::uint32_t requeues = 0;
    cycle_t submitted_at = 0;
    cycle_t finished_at = 0;
    std::string detail;
};

/// Counter snapshot (values read out of obs handles).
struct service_stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0; ///< entered the queue (not shed)
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t committed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t retries = 0;
    std::uint64_t requeues = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_invalidations = 0;
    std::uint64_t degraded_evals = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t worker_crashes = 0;
    std::uint64_t worker_stall_cycles = 0;
};

class analysis_service : public component {
public:
    /// Fired when a request reaches its terminal outcome; `tasks` is the
    /// request's task set. The storm harness swaps the client's live
    /// workload on the committed notifications.
    using complete_hook = std::function<void(
        const request_record&, const analysis::task_set& tasks)>;

    analysis_service(core::reconfig_manager& mgr, service_config cfg = {});

    void set_complete_hook(complete_hook h) { on_complete_ = std::move(h); }

    /// Submits a task-change request for `client` at virtual cycle `at`
    /// (pass the simulator's current time; the service cannot infer it --
    /// an idle service is not ticked by the event engine, so its latched
    /// clock may lag). `deadline` is the absolute virtual cycle by which
    /// the request must have committed (k_cycle_never =
    /// cfg.default_deadline relative, or none). Returns the request id;
    /// the terminal outcome lands in record(id).
    std::uint64_t submit(std::uint32_t client, analysis::task_set tasks,
                         cycle_t at, cycle_t deadline = k_cycle_never);

    /// Installs the worker_crash / worker_stall slices of a campaign,
    /// one pair of windows per worker slot.
    void install_faults(const sim::fault_campaign& campaign);

    void tick(cycle_t now) override;
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    /// True when no request is queued, in flight, awaiting retry, or
    /// outstanding with the manager -- the storm drivers drain on this.
    [[nodiscard]] bool idle() const;

    [[nodiscard]] breaker_state breaker() const { return breaker_; }
    [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
    [[nodiscard]] bool shedding() const { return shedding_; }

    [[nodiscard]] const std::vector<request_record>& records() const {
        return records_;
    }
    [[nodiscard]] const request_record& record(std::uint64_t id) const {
        return records_[id];
    }
    [[nodiscard]] service_stats stats() const;

    /// Re-homes the service counters into `reg` under "svc/..." and
    /// attaches the trace stream; call before the trial starts.
    void bind_observability(obs::registry& reg, obs::tracer tracer);

private:
    /// Per-request working state, parallel to records_.
    struct request_state {
        analysis::task_set tasks;
        cycle_t deadline = k_cycle_never;   ///< absolute virtual cycle
        std::uint64_t wall_deadline_ns = 0; ///< profile mode (0 = none)
        core::admission_evaluation eval;
        bool has_eval = false;
        bool eval_degraded = false;
        std::uint64_t mgr_id = 0;
        cycle_t retry_at = k_cycle_never;
    };

    struct worker {
        sim::fault_window crash;
        sim::fault_window stall;
        bool crashed = false; ///< crash-window level (edge detection)
        bool busy = false;
        std::uint64_t req = 0;
        cycle_t done_at = 0;
    };

    struct cache_entry {
        core::admission_evaluation eval;
        bool degraded = false;
    };

    [[nodiscard]] bool expired_now(const request_state& st,
                                   cycle_t now) const;
    void finish(std::uint64_t id, cycle_t now, request_outcome outcome,
                core::admission_outcome reason, std::string detail);
    void sweep_expired_queue(cycle_t now);
    void service_retries(cycle_t now);
    void step_workers(cycle_t now);
    void complete(std::uint64_t id, cycle_t now);
    void poll_manager(cycle_t now);
    void handle_manager_outcome(std::uint64_t id,
                                const core::admission_record& rec,
                                cycle_t now);
    void dispatch(cycle_t now);
    void run_evaluation(std::uint64_t id, worker& w, cycle_t now);
    void set_breaker(breaker_state s, cycle_t now);
    void note_eval_cost(std::uint64_t work, bool degraded, cycle_t now);
    [[nodiscard]] cycle_t backoff_delay(std::uint64_t id,
                                        std::uint32_t attempt) const;
    [[nodiscard]] std::uint64_t cache_key(std::uint32_t client,
                                          const analysis::task_set& tasks,
                                          bool degraded) const;

    core::reconfig_manager& mgr_;
    service_config cfg_;
    std::size_t resume_depth_ = 0;

    cycle_t now_ = 0; ///< latched at tick()/submit() (monotonic)
    std::deque<std::uint64_t> queue_;
    bool shedding_ = false;
    std::vector<std::uint64_t> retry_ids_;
    std::vector<std::uint64_t> outstanding_; ///< awaiting manager outcome
    std::vector<worker> workers_;

    breaker_state breaker_ = breaker_state::closed;
    std::uint32_t consecutive_slow_ = 0;
    std::uint32_t probe_successes_ = 0;
    cycle_t breaker_reopen_at_ = 0;

    std::uint64_t cache_version_ = 0; ///< manager version the cache is for
    std::map<std::uint64_t, cache_entry> cache_;
    std::deque<std::uint64_t> cache_fifo_; ///< insertion order (eviction)

    std::vector<request_record> records_;
    std::vector<request_state> states_;
    complete_hook on_complete_;

    /// Fallback registry for unbound instances.
    std::unique_ptr<obs::registry> own_;
    obs::counter submitted_;
    obs::counter accepted_;
    obs::counter shed_;
    obs::counter expired_;
    obs::counter committed_;
    obs::counter rejected_;
    obs::counter retries_;
    obs::counter requeues_;
    obs::counter cache_hits_;
    obs::counter cache_misses_;
    obs::counter cache_invalidations_;
    obs::counter degraded_evals_;
    obs::counter breaker_trips_;
    obs::counter worker_crashes_;
    obs::counter worker_stall_cycles_;
    obs::sample eval_cycles_;
    obs::sample latency_cycles_;
    obs::tracer trace_;
};

} // namespace bluescale::svc
