// The service's one wall-clock boundary, for profile-mode deadlines.
//
// Deterministic runs never call this: virtual-time deadlines and
// wall-clock deadlines are mutually exclusive in service_config
// (asserted), so a deterministic storm run is byte-identical whether or
// not this header is linked in.
//
// detlint's nondet-source rule sanctions wall-clock reads under src/svc/
// ONLY inside the body of a function whose name starts with "profile_" --
// the same boundary idiom obs/profile.hpp established for the stopwatch.
// Keeping the clock read behind this named function is what makes the
// rule checkable.
#pragma once

#include <chrono>
#include <cstdint>

namespace bluescale::svc {

/// Monotonic wall-clock read in nanoseconds. Profile mode only.
[[nodiscard]] inline std::uint64_t profile_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace bluescale::svc
