#include "workload/automotive_profiles.hpp"

#include <algorithm>
#include <cmath>

namespace bluescale::workload {

double compute_utilization(const compute_task_set& tasks) {
    double u = 0.0;
    for (const auto& t : tasks) u += t.compute_utilization();
    return u;
}

namespace {

/// Base profile: relative memory intensity in requests per 1000 compute
/// cycles (streaming/table-driven tasks high, arithmetic kernels low).
struct profile {
    const char* name;
    task_category category;
    double mem_per_kcycle;
};

constexpr profile k_safety_profiles[] = {
    {"crc32", task_category::safety, 16},
    {"rsa32", task_category::safety, 2},
    {"core_self_test", task_category::safety, 8},
    {"watchdog_heartbeat", task_category::safety, 1},
    {"lockstep_compare", task_category::safety, 12},
    {"can_checksum", task_category::safety, 10},
    {"battery_monitor", task_category::safety, 3},
    {"airbag_diagnostic", task_category::safety, 6},
    {"brake_plausibility", task_category::safety, 5.0},
    {"sensor_vote", task_category::safety, 9},
};

constexpr profile k_function_profiles[] = {
    {"fft", task_category::function, 7},
    {"speed_calculation", task_category::function, 2.4},
    {"fir_filter", task_category::function, 11},
    {"matrix_multiply", task_category::function, 14},
    {"kalman_filter", task_category::function, 8},
    {"table_lookup", task_category::function, 18},
    {"pwm_control", task_category::function, 1.6},
    {"torque_map", task_category::function, 13},
    {"lane_detect", task_category::function, 17},
    {"cruise_control", task_category::function, 4},
};

compute_task from_profile(const profile& p, task_id_t id, cycle_t period,
                          double util, double mem_scale = 1.0) {
    compute_task t;
    t.name = p.name;
    t.id = id;
    t.category = p.category;
    t.period = period;
    t.compute_cycles = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::llround(util * static_cast<double>(period))));
    t.mem_requests = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::llround(p.mem_per_kcycle * mem_scale *
                            static_cast<double>(t.compute_cycles) /
                            1000.0)));
    return t;
}

compute_task_set fixed_profile_set(const profile* profiles,
                                   std::size_t count) {
    compute_task_set out;
    for (std::size_t i = 0; i < count; ++i) {
        // Representative defaults for standalone use: 10 ms-class period
        // at a 200 MHz-class core quantized to interconnect cycles.
        out.push_back(from_profile(profiles[i],
                                   static_cast<task_id_t>(i + 1),
                                   /*period=*/20'000, /*util=*/0.25));
    }
    return out;
}

} // namespace

compute_task_set automotive_safety_tasks() {
    return fixed_profile_set(k_safety_profiles, 10);
}

compute_task_set automotive_function_tasks() {
    return fixed_profile_set(k_function_profiles, 10);
}

compute_task_set make_case_study_tasks(rng& gen,
                                       std::uint32_t n_processors,
                                       double mem_intensity_scale) {
    compute_task_set out;
    task_id_t next_id = 1;
    (void)n_processors; // periods are per-task; placement is the harness's job
    auto add_all = [&](const profile* profiles, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            // Random period, log-uniform 4k..40k cycles; compute
            // utilization ~25 +/- 10% of the hosting processor.
            const double log_period = gen.uniform_real(std::log(4000.0),
                                                        std::log(40000.0));
            const auto period = static_cast<cycle_t>(
                std::llround(std::exp(log_period)));
            const double util = gen.uniform_real(0.15, 0.35);
            out.push_back(from_profile(profiles[i], next_id++, period,
                                       util, mem_intensity_scale));
        }
    };
    add_all(k_safety_profiles, 10);
    add_all(k_function_profiles, 10);
    return out;
}

compute_task make_interference_task(rng& gen, task_id_t id,
                                    double utilization,
                                    double mem_intensity_scale) {
    profile p{"eembc_interference", task_category::interference,
              gen.uniform_real(2.0, 20.0)};
    const double log_period =
        gen.uniform_real(std::log(2000.0), std::log(20000.0));
    const auto period =
        static_cast<cycle_t>(std::llround(std::exp(log_period)));
    return from_profile(p, id, period, utilization, mem_intensity_scale);
}

} // namespace bluescale::workload
