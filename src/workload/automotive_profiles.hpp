// Case-study task profiles (paper Sec. 6.4): 10 automotive safety tasks
// selected from the Renesas automotive use-case database [5] and 10
// automotive function tasks from the EEMBC AutoBench suite [4], plus
// EEMBC-like interference tasks.
//
// The paper obtains WCETs by hybrid measurement on MicroBlaze; here each
// profile carries a representative execution length and memory demand
// (requests per job) chosen to preserve the tasks' relative compute/memory
// intensity, which is what the memory-interconnect evaluation exercises.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "workload/compute_task.hpp"

namespace bluescale::workload {

/// The 10 safety tasks (CRC, RSA32, core self-test, ...).
[[nodiscard]] compute_task_set automotive_safety_tasks();

/// The 10 function tasks (FFT, speed calculation, ...).
[[nodiscard]] compute_task_set automotive_function_tasks();

/// All 20 case-study tasks with randomized periods (paper: "each task had
/// a randomly defined period and implicit deadline, with overall
/// processor utilization approximately 30%" across the task set).
/// `n_processors` scales the periods so the 20 tasks land at ~30% of ONE
/// processor each when spread across `n_processors` cores.
/// `mem_intensity_scale` multiplies every profile's memory demand
/// (calibration knob for how memory-bound the case study is).
[[nodiscard]] compute_task_set
make_case_study_tasks(rng& gen, std::uint32_t n_processors,
                      double mem_intensity_scale = 1.0);

/// EEMBC-like interference task raising one processor's utilization by
/// `utilization`; memory intensity varied by the generator.
[[nodiscard]] compute_task
make_interference_task(rng& gen, task_id_t id, double utilization,
                       double mem_intensity_scale = 1.0);

} // namespace bluescale::workload
