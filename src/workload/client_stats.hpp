// Per-client measurement record shared by all client models.
#pragma once

#include <cstdint>

#include "stats/summary.hpp"

namespace bluescale::workload {

/// Counters and samples one client accumulates over a trial.
struct client_stats {
    std::uint64_t issued = 0;    ///< requests injected into the interconnect
    std::uint64_t completed = 0; ///< responses received
    std::uint64_t missed = 0;    ///< requests completed (or abandoned) late

    stats::sample_set latency_cycles;  ///< issue -> response, per request
    stats::sample_set blocking_cycles; ///< priority-inversion wait, per request

    [[nodiscard]] double miss_ratio() const {
        const std::uint64_t accounted = completed + abandoned;
        return accounted == 0
                   ? 0.0
                   : static_cast<double>(missed) /
                         static_cast<double>(accounted);
    }

    /// Requests never completed by trial end whose deadline had passed;
    /// these are also counted in `missed`.
    std::uint64_t abandoned = 0;

    /// Requests later than deadline + margin, where the margin is the
    /// client's configured validation allowance (theory-validation runs
    /// grant the constant memory/response-path overhead the analysis
    /// abstracts away; 0 by default, making this equal to `missed`).
    std::uint64_t missed_beyond_margin = 0;

    // --- retry/timeout recovery (fault campaigns) ----------------------
    /// Reissues injected after a timeout expiry or a failed response.
    /// Not counted in `issued`, so issued == completed + abandoned still
    /// holds for a converged healthy run.
    std::uint64_t retries = 0;
    /// Response-timeout expiries observed (each either triggers a retry
    /// or, once attempts are exhausted, gives the request up).
    std::uint64_t timeouts = 0;
    /// Responses that arrived flagged failed (uncorrected DRAM errors).
    std::uint64_t failed_responses = 0;
    /// Requests given up after max_retries attempts (also `abandoned`).
    std::uint64_t retry_exhausted = 0;
    /// Late responses for attempts already superseded by a reissue.
    std::uint64_t stale_responses = 0;

    // --- overload shedding / runtime reconfiguration -------------------
    /// Cycles spent throttled by the supply watchdog's overload shedding.
    std::uint64_t shed_cycles = 0;
    /// Shed cycles with released-but-unissued work pending (deferred
    /// issue opportunities).
    std::uint64_t shed_deferrals = 0;
    /// Live task-set swaps applied at reconfiguration commits.
    std::uint64_t reconfigurations = 0;
};

} // namespace bluescale::workload
