// Per-client measurement record shared by all client models.
#pragma once

#include <cstdint>

#include "stats/summary.hpp"

namespace bluescale::workload {

/// Counters and samples one client accumulates over a trial.
struct client_stats {
    std::uint64_t issued = 0;    ///< requests injected into the interconnect
    std::uint64_t completed = 0; ///< responses received
    std::uint64_t missed = 0;    ///< requests completed (or abandoned) late

    stats::sample_set latency_cycles;  ///< issue -> response, per request
    stats::sample_set blocking_cycles; ///< priority-inversion wait, per request

    [[nodiscard]] double miss_ratio() const {
        const std::uint64_t accounted = completed + abandoned;
        return accounted == 0
                   ? 0.0
                   : static_cast<double>(missed) /
                         static_cast<double>(accounted);
    }

    /// Requests never completed by trial end whose deadline had passed;
    /// these are also counted in `missed`.
    std::uint64_t abandoned = 0;

    /// Requests later than deadline + margin, where the margin is the
    /// client's configured validation allowance (theory-validation runs
    /// grant the constant memory/response-path overhead the analysis
    /// abstracts away; 0 by default, making this equal to `missed`).
    std::uint64_t missed_beyond_margin = 0;
};

} // namespace bluescale::workload
