// Per-client measurement record shared by all client models.
//
// Redesigned as a thin view over obs::registry handles (DESIGN.md
// Sec. 11): the former public mutable fields are gone. Client models
// mutate exclusively through the record_* API -- each call is one or two
// handle increments, no lookup, no allocation -- and every consumer reads
// through the accessors. By default an instance owns a private registry;
// bind() re-homes the handles into an external registry (typically the
// trial testbench's) so the client's counters appear in the unified
// metrics export under "<prefix>/...". Bind before the trial starts
// recording: binding re-registers fresh zero-valued metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "stats/summary.hpp"

namespace bluescale::workload {

class client_stats {
public:
    client_stats() : own_(std::make_unique<obs::registry>()) {
        bind(*own_, "client");
    }
    client_stats(client_stats&&) = default;
    client_stats& operator=(client_stats&&) = default;

    /// Re-registers every metric under `prefix` in `reg` (e.g.
    /// "client.3"). Handles into a previously owned registry are
    /// replaced; call before recording starts.
    void bind(obs::registry& reg, const std::string& prefix) {
        issued_ = reg.make_counter(prefix + "/issued");
        completed_ = reg.make_counter(prefix + "/completed");
        missed_ = reg.make_counter(prefix + "/missed");
        abandoned_ = reg.make_counter(prefix + "/abandoned");
        missed_beyond_margin_ =
            reg.make_counter(prefix + "/missed_beyond_margin");
        retries_ = reg.make_counter(prefix + "/retries");
        timeouts_ = reg.make_counter(prefix + "/timeouts");
        failed_responses_ = reg.make_counter(prefix + "/failed_responses");
        retry_exhausted_ = reg.make_counter(prefix + "/retry_exhausted");
        stale_responses_ = reg.make_counter(prefix + "/stale_responses");
        shed_cycles_ = reg.make_counter(prefix + "/shed_cycles");
        shed_deferrals_ = reg.make_counter(prefix + "/shed_deferrals");
        reconfigurations_ = reg.make_counter(prefix + "/reconfigurations");
        latency_cycles_ = reg.make_sample(prefix + "/latency_cycles");
        blocking_cycles_ = reg.make_sample(prefix + "/blocking_cycles");
    }

    // --- recording API (the only mutation path) -------------------------
    void record_issue() { issued_.inc(); }
    void record_retry() { retries_.inc(); }
    void record_timeout() { timeouts_.inc(); }
    void record_retry_exhausted() { retry_exhausted_.inc(); }
    void record_stale_response() { stale_responses_.inc(); }
    void record_failed_response() { failed_responses_.inc(); }

    /// A usable response arrived: accounts completion, deadline outcome
    /// and the request's latency/blocking samples.
    void record_completion(double latency_cycles, double blocking_cycles,
                           bool missed_deadline, bool beyond_margin) {
        completed_.inc();
        if (missed_deadline) missed_.inc();
        if (beyond_margin) missed_beyond_margin_.inc();
        latency_cycles_.add(latency_cycles);
        blocking_cycles_.add(blocking_cycles);
    }

    /// `n` requests given up past their deadline (failed-and-exhausted,
    /// or unfinished at trial end); `beyond_margin_n` of them were also
    /// past deadline + validation margin. Both count as missed.
    void record_abandoned(std::uint64_t n, std::uint64_t beyond_margin_n) {
        missed_.inc(n);
        abandoned_.inc(n);
        missed_beyond_margin_.inc(beyond_margin_n);
    }

    void record_shed_cycle(bool deferred_work) {
        shed_cycles_.inc();
        if (deferred_work) shed_deferrals_.inc();
    }
    void record_reconfiguration() { reconfigurations_.inc(); }

    // --- accessors ------------------------------------------------------
    /// Requests injected into the interconnect (reissues excluded, so
    /// issued == completed + abandoned for a converged healthy run).
    [[nodiscard]] std::uint64_t issued() const { return issued_.value(); }
    /// Responses received.
    [[nodiscard]] std::uint64_t completed() const {
        return completed_.value();
    }
    /// Requests completed (or abandoned) late.
    [[nodiscard]] std::uint64_t missed() const { return missed_.value(); }
    /// Requests never completed by trial end whose deadline had passed;
    /// also counted in missed().
    [[nodiscard]] std::uint64_t abandoned() const {
        return abandoned_.value();
    }
    /// Requests later than deadline + the client's validation margin
    /// (equal to missed() at the default margin of 0).
    [[nodiscard]] std::uint64_t missed_beyond_margin() const {
        return missed_beyond_margin_.value();
    }
    /// Reissues injected after a timeout expiry or a failed response.
    [[nodiscard]] std::uint64_t retries() const { return retries_.value(); }
    /// Response-timeout expiries observed.
    [[nodiscard]] std::uint64_t timeouts() const {
        return timeouts_.value();
    }
    /// Responses that arrived flagged failed (uncorrected DRAM errors).
    [[nodiscard]] std::uint64_t failed_responses() const {
        return failed_responses_.value();
    }
    /// Requests given up after max_retries attempts (also abandoned()).
    [[nodiscard]] std::uint64_t retry_exhausted() const {
        return retry_exhausted_.value();
    }
    /// Late responses for attempts already superseded by a reissue.
    [[nodiscard]] std::uint64_t stale_responses() const {
        return stale_responses_.value();
    }
    /// Cycles spent throttled by the watchdog's overload shedding.
    [[nodiscard]] std::uint64_t shed_cycles() const {
        return shed_cycles_.value();
    }
    /// Shed cycles with released-but-unissued work pending.
    [[nodiscard]] std::uint64_t shed_deferrals() const {
        return shed_deferrals_.value();
    }
    /// Live task-set swaps applied at reconfiguration commits.
    [[nodiscard]] std::uint64_t reconfigurations() const {
        return reconfigurations_.value();
    }

    /// issue -> response, per completed request.
    [[nodiscard]] const stats::sample_set& latency_cycles() const {
        return latency_cycles_.values();
    }
    /// Priority-inversion wait, per completed request.
    [[nodiscard]] const stats::sample_set& blocking_cycles() const {
        return blocking_cycles_.values();
    }

    [[nodiscard]] double miss_ratio() const {
        const std::uint64_t accounted = completed() + abandoned();
        return accounted == 0
                   ? 0.0
                   : static_cast<double>(missed()) /
                         static_cast<double>(accounted);
    }

private:
    /// Fallback registry for unbound instances (unit tests, standalone
    /// clients); moving it keeps slot addresses -- and handles -- valid.
    std::unique_ptr<obs::registry> own_;
    obs::counter issued_;
    obs::counter completed_;
    obs::counter missed_;
    obs::counter abandoned_;
    obs::counter missed_beyond_margin_;
    obs::counter retries_;
    obs::counter timeouts_;
    obs::counter failed_responses_;
    obs::counter retry_exhausted_;
    obs::counter stale_responses_;
    obs::counter shed_cycles_;
    obs::counter shed_deferrals_;
    obs::counter reconfigurations_;
    obs::sample latency_cycles_;
    obs::sample blocking_cycles_;
};

} // namespace bluescale::workload
