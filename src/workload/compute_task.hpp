// Compute-task model for the system-level case study (paper Sec. 6.4):
// real-world tasks that interleave processor work with memory accesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace bluescale::workload {

/// Category of a case-study task (paper: automotive safety tasks from the
/// Renesas use-case database [5], function tasks from EEMBC [4], plus
/// interference tasks used to reach a target utilization).
enum class task_category : std::uint8_t {
    safety,
    function,
    interference,
};

/// A periodic compute task: every `period` cycles it releases a job that
/// executes `compute_cycles` of processor work and issues `mem_requests`
/// memory accesses spread evenly through the execution (each access
/// stalls the in-order core until its response returns). Implicit
/// deadline = next release.
struct compute_task {
    std::string name;
    task_id_t id = 0;
    task_category category = task_category::function;
    cycle_t period = 0;
    std::uint32_t compute_cycles = 0;
    std::uint32_t mem_requests = 0;

    /// Compute-only utilization (the paper's "target utilization" knob --
    /// actual utilization also includes memory stalls, which depend on
    /// the interconnect under test).
    [[nodiscard]] double compute_utilization() const {
        return period == 0 ? 0.0
                           : static_cast<double>(compute_cycles) /
                                 static_cast<double>(period);
    }
};

using compute_task_set = std::vector<compute_task>;

/// Sum of compute-only utilizations.
[[nodiscard]] double compute_utilization(const compute_task_set& tasks);

} // namespace bluescale::workload
