#include "workload/dnn_accelerator.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::workload {

dnn_accelerator::dnn_accelerator(client_id_t id, dnn_config cfg,
                                 interconnect& net, std::uint64_t seed)
    : component("dnn_ha_" + std::to_string(id)), id_(id), cfg_(cfg),
      net_(net), rng_(seed), burst_left_(cfg.burst_requests),
      next_request_id_((static_cast<request_id_t>(id) << 40) | 1u) {}

void dnn_accelerator::tick(cycle_t now) {
    // Token bucket: `bandwidth_share` of one transaction per unit.
    tokens_ = std::min(
        tokens_ + cfg_.bandwidth_share / cfg_.unit_cycles,
        static_cast<double>(cfg_.window));

    if (compute_left_ > 0) {
        --compute_left_;
        return;
    }

    if (burst_left_ > 0) {
        if (tokens_ >= 1.0 && outstanding_ < cfg_.window &&
            net_.client_can_accept(id_)) {
            mem_request r;
            r.id = next_request_id_++;
            r.client = id_;
            r.task = static_cast<task_id_t>(layer_ + 1);
            // Layer weights stream sequentially from a per-layer region.
            r.addr = (static_cast<std::uint64_t>(id_) * 1024 + layer_) *
                         (1u << 20) +
                     (seq_++ % 16'384) * 64;
            r.op = mem_op::read;
            r.issue_cycle = now;
            r.hop_arrival = now;
            // Streaming engine: soft deadline one layer ahead.
            r.abs_deadline =
                now + static_cast<cycle_t>(cfg_.burst_requests) *
                          cfg_.unit_cycles * 4;
            r.level_deadline = r.abs_deadline;
            tokens_ -= 1.0;
            ++outstanding_;
            ++issued_;
            --burst_left_;
            net_.client_push(id_, std::move(r));
        }
        return;
    }

    // Burst fully issued: wait for the window to drain, then compute.
    if (outstanding_ == 0) {
        compute_left_ = cfg_.compute_cycles;
        ++layer_;
        if (layer_ >= cfg_.layers) {
            layer_ = 0;
            ++inferences_;
        }
        burst_left_ = cfg_.burst_requests;
    }
}

cycle_t dnn_accelerator::next_event(cycle_t now) const {
    if (compute_left_ > 0) return now + 1;
    // Below the cap the bucket gains tokens every cycle; at the cap the
    // clamp makes accrual a bit-exact no-op, so sleeping there is safe.
    if (tokens_ < static_cast<double>(cfg_.window)) return now + 1;
    // Port backpressure has no wake signal, so an issuable burst request
    // keeps the per-cycle cadence; a full window is drained by responses
    // (which wake us), and so is the end-of-burst wait.
    if (burst_left_ > 0 && outstanding_ < cfg_.window) return now + 1;
    return k_cycle_never;
}

void dnn_accelerator::on_response(mem_request&& r) {
    assert(r.client == id_);
    assert(outstanding_ > 0);
    wake(); // window space / end-of-burst progress opens next cycle
    --outstanding_;
    (void)r;
}

} // namespace bluescale::workload
