// DNN hardware-accelerator client (paper Secs. 6 / 6.4): a streaming
// engine that processes "layers" -- bursts of memory reads (weights /
// activations) followed by a compute phase -- continuously, which
// intensifies memory traffic and makes the client mix heterogeneous.
//
// The paper's HAs run SqueezeNet-class networks on MNIST/EMNIST/CIFAR-10;
// the interconnect only sees their layer-shaped burst traffic, which this
// model preserves. As in the paper's setup, the HA enforces its own
// bandwidth cap (1/#clients of the memory bandwidth) with a token-bucket
// regulator, since not all interconnects support reservation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interconnect/interconnect.hpp"
#include "sim/component.hpp"
#include "sim/rng.hpp"

namespace bluescale::workload {

struct dnn_config {
    /// Requests per layer burst (weights + activations of one layer).
    std::uint32_t burst_requests = 64;
    /// Compute cycles between bursts (MAC array busy, no memory traffic).
    std::uint32_t compute_cycles = 400;
    /// Layers per inference; a new inference starts immediately.
    std::uint32_t layers = 18; ///< SqueezeNet-class depth
    /// Maximum outstanding requests within a burst.
    std::uint32_t window = 8;
    /// Bandwidth cap as a fraction of memory throughput (paper:
    /// 1/#clients). Tokens refill continuously at this rate.
    double bandwidth_share = 1.0 / 16.0;
    /// Cycles per transaction time unit (memory initiation interval).
    std::uint32_t unit_cycles = 4;
};

class dnn_accelerator : public component {
public:
    dnn_accelerator(client_id_t id, dnn_config cfg, interconnect& net,
                    std::uint64_t seed);

    void tick(cycle_t now) override;

    /// Event-engine horizon. The token bucket accrues per cycle, so the
    /// accelerator stays on the per-cycle cadence until the bucket is
    /// pinned at its cap (the min-clamp makes further accrual ticks
    /// bit-exact no-ops); once there it sleeps only when blocked purely
    /// on responses, and on_response() wakes it.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    void on_response(mem_request&& r);

    [[nodiscard]] client_id_t id() const { return id_; }
    [[nodiscard]] std::uint64_t requests_issued() const { return issued_; }
    [[nodiscard]] std::uint64_t inferences_completed() const {
        return inferences_;
    }

private:
    client_id_t id_;
    dnn_config cfg_;
    interconnect& net_;
    rng rng_;
    std::uint32_t layer_ = 0;
    std::uint32_t burst_left_ = 0;   ///< requests not yet issued this layer
    std::uint32_t outstanding_ = 0;
    std::uint32_t compute_left_ = 0; ///< compute phase countdown
    double tokens_ = 0.0;            ///< bandwidth-regulator bucket
    std::uint64_t issued_ = 0;
    std::uint64_t inferences_ = 0;
    std::uint64_t seq_ = 0;
    request_id_t next_request_id_;
};

} // namespace bluescale::workload
