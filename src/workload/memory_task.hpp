// Task model for memory-traffic workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/rt_task.hpp"
#include "sim/types.hpp"

namespace bluescale::workload {

/// One "transaction time unit" in interconnect cycles.
///
/// The paper's analysis (Sec. 5) abstracts the memory system as a unit-rate
/// resource: one transaction consumes one time unit. In the simulator a
/// pipelined memory controller starts one transaction every
/// `k_unit_cycles` cycles, so one analysis time unit corresponds to this
/// many interconnect cycles. Task periods are expressed in units and
/// converted to cycles when driving the simulator.
inline constexpr std::uint32_t k_unit_cycles = 4;

/// A periodic memory-transaction task (the load one client task puts on the
/// interconnect): every `period_units` time units it releases a job of
/// `requests_per_job` memory transactions, all due by the implicit deadline
/// (the next release).
struct memory_task {
    task_id_t id = 0;
    std::uint64_t period_units = 0;     ///< T_i, in transaction time units
    std::uint32_t requests_per_job = 0; ///< C_i, in transactions
    bool writes = false;                ///< issue writes instead of reads

    [[nodiscard]] cycle_t period_cycles(std::uint32_t unit_cycles =
                                            k_unit_cycles) const {
        return period_units * unit_cycles;
    }

    [[nodiscard]] double utilization() const {
        return period_units == 0
                   ? 0.0
                   : static_cast<double>(requests_per_job) /
                         static_cast<double>(period_units);
    }

    /// View for the schedulability analysis: T = period in units,
    /// C = transactions per job.
    [[nodiscard]] analysis::rt_task as_rt_task() const {
        return {period_units, requests_per_job};
    }
};

using memory_task_set = std::vector<memory_task>;

/// Sum of task utilizations (fraction of the memory system's throughput).
[[nodiscard]] double utilization(const memory_task_set& tasks);

/// Analysis view of a whole set.
[[nodiscard]] analysis::task_set to_rt_tasks(const memory_task_set& tasks);

} // namespace bluescale::workload
