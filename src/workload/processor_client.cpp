#include "workload/processor_client.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::workload {

processor_client::processor_client(client_id_t id, compute_task_set tasks,
                                   interconnect& net, std::uint64_t seed,
                                   processor_retry_config retry)
    : component("processor_" + std::to_string(id)), id_(id),
      tasks_(std::move(tasks)), net_(net), rng_(seed), retry_(retry),
      next_release_(tasks_.size(), 0),
      own_(std::make_unique<obs::registry>()),
      next_request_id_((static_cast<request_id_t>(id) << 40) | 1u) {
    bind_observability(*own_);
}

void processor_client::bind_observability(obs::registry& reg) {
    const std::string prefix = "client." + std::to_string(id_);
    retries_ = reg.make_counter(prefix + "/retries");
    timeouts_ = reg.make_counter(prefix + "/timeouts");
    aborted_ = reg.make_counter(prefix + "/aborted");
    stale_responses_ = reg.make_counter(prefix + "/stale_responses");
    failed_responses_ = reg.make_counter(prefix + "/failed_responses");
    static constexpr const char* k_categories[] = {"safety", "function",
                                                   "interference"};
    for (std::size_t i = 0; i < 3; ++i) {
        jobs_completed_[i] = reg.make_counter(prefix + "/jobs." +
                                              k_categories[i] + "/completed");
        jobs_missed_[i] = reg.make_counter(prefix + "/jobs." +
                                           k_categories[i] + "/missed");
    }
    requests_issued_ = reg.make_counter(prefix + "/requests_issued");
}

void processor_client::release_jobs(cycle_t now) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const compute_task& t = tasks_[i];
        if (t.period == 0) continue;
        while (next_release_[i] <= now) {
            job j;
            j.task_index = i;
            j.release = next_release_[i];
            j.deadline = next_release_[i] + t.period;
            j.compute_left = t.compute_cycles;
            j.requests_left = t.mem_requests;
            j.compute_per_request = std::max<std::uint32_t>(
                1, t.compute_cycles / (t.mem_requests + 1));
            // Software workload model, not modeled hardware: the ready
            // queue tracks released-but-incomplete jobs, exactly the
            // backlog a real RTOS scheduler keeps on its own heap.
            // detlint:allow(hotpath-alloc): client-model job bookkeeping
            ready_.push_back(j);
            next_release_[i] += t.period;
        }
    }
}

void processor_client::start_next_job(cycle_t) {
    if (ready_.empty()) return;
    auto best = ready_.begin();
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (it->deadline < best->deadline) best = it;
    }
    running_ = *best;
    ready_.erase(best);
}

void processor_client::finish_job(cycle_t now) {
    const compute_task& t = tasks_[running_->task_index];
    const auto cat = static_cast<std::size_t>(t.category);
    jobs_completed_[cat].inc();
    // detlint:allow(cycle-step): completion edge (end of cycle `now`)
    if (now + 1 > running_->deadline) jobs_missed_[cat].inc();
    running_.reset();
}

void processor_client::issue_request(cycle_t now) {
    const compute_task& t = tasks_[running_->task_index];
    mem_request r;
    r.id = next_request_id_++;
    r.client = id_;
    r.task = t.id;
    // Streams within a per-task region; occasional jumps model data-set
    // strides.
    const std::uint64_t region =
        (static_cast<std::uint64_t>(id_) * 256 + t.id) * (1u << 20);
    r.addr = region + (rng_.uniform_u64(0, 16'000) * 64);
    r.op = rng_.uniform_unit() < 0.3 ? mem_op::write : mem_op::read;
    r.issue_cycle = now;
    r.hop_arrival = now;
    r.abs_deadline = running_->deadline;
    r.level_deadline = running_->deadline;
    pending_req_ = std::move(r);
    attempts_ = 0;
    awaited_id_ = 0;
    stalled_ = true;
    push_pending(now);
}

void processor_client::push_pending(cycle_t now) {
    if (!net_.client_can_accept(id_)) {
        request_pending_issue_ = true;
        return;
    }
    request_pending_issue_ = false;
    // A first attempt that waited on a full port starts its latency clock
    // at the actual push; retries keep the original issue_cycle so their
    // latency spans the recovery.
    if (attempts_ == 0 && awaited_id_ == 0) pending_req_.issue_cycle = now;
    pending_req_.hop_arrival = now;
    awaited_id_ = pending_req_.id;
    stall_timeout_at_ = retry_.timeout_cycles != 0
                            ? now + retry_.timeout_cycles
                            : k_cycle_never;
    requests_issued_.inc();
    mem_request out = pending_req_;
    net_.client_push(id_, std::move(out));
}

void processor_client::handle_stall_timeout(cycle_t now) {
    timeouts_.inc();
    if (attempts_ >= retry_.max_retries) {
        // Retry budget spent: abort the access so the core makes progress
        // (a real system would fault to a software handler; here the job
        // resumes compute with degraded data). A late response for the
        // abandoned id is dropped as stale.
        aborted_.inc();
        stalled_ = false;
        request_pending_issue_ = false;
        awaited_id_ = 0;
        stall_timeout_at_ = k_cycle_never;
        return;
    }
    ++attempts_;
    retries_.inc();
    pending_req_.id = next_request_id_++;
    pending_req_.attempt =
        static_cast<std::uint8_t>(std::min<std::uint32_t>(attempts_, 255));
    awaited_id_ = 0; // old attempt superseded even if the port is full
    push_pending(now);
}

void processor_client::tick(cycle_t now) {
    release_jobs(now);

    if (!running_) start_next_job(now);
    if (!running_) return;

    // Preemptive EDF (FreeRTOS-style): an earlier-deadline ready job
    // preempts the running one at compute-cycle granularity. A job
    // stalled on a blocking cache miss cannot be switched out.
    if (!stalled_ && !ready_.empty()) {
        auto best = ready_.begin();
        for (auto it = ready_.begin(); it != ready_.end(); ++it) {
            if (it->deadline < best->deadline) best = it;
        }
        if (best->deadline < running_->deadline) {
            std::swap(*best, *running_);
        }
    }

    if (stalled_) {
        // Either the port was full (retry the push) or we await the
        // response (on_response clears the stall). With recovery enabled,
        // an overdue response triggers a reissue or, past the retry
        // budget, an abort that unblocks the core.
        if (request_pending_issue_) {
            push_pending(now);
        } else if (retry_.timeout_cycles != 0 && now >= stall_timeout_at_) {
            handle_stall_timeout(now);
        }
        return;
    }

    job& j = *running_;
    if (j.compute_left > 0) {
        --j.compute_left;
        ++j.compute_since_request;
    }
    const bool due_by_spacing = j.requests_left > 0 &&
                                j.compute_since_request >=
                                    j.compute_per_request;
    const bool due_by_exhaustion = j.requests_left > 0 &&
                                   j.compute_left == 0;
    if (due_by_spacing || due_by_exhaustion) {
        --j.requests_left;
        j.compute_since_request = 0;
        issue_request(now);
        return;
    }
    if (j.compute_left == 0 && j.requests_left == 0) finish_job(now);
}

cycle_t processor_client::next_event(cycle_t now) const {
    if (stalled_) {
        if (request_pending_issue_) return now + 1; // retry the push
        return std::max(now + 1, stall_timeout_at_);
    }
    if (running_ || !ready_.empty()) return now + 1; // computing
    cycle_t due = k_cycle_never;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].period == 0) continue;
        due = std::min(due, next_release_[i]);
    }
    return std::max(now + 1, due);
}

void processor_client::on_response(mem_request&& r) {
    assert(r.client == id_);
    wake(); // a stalled core resumes the cycle after delivery, as in lockstep
    if (!stalled_ || r.id != awaited_id_) {
        // A reissue or abort already superseded this attempt.
        stale_responses_.inc();
        return;
    }
    if (r.failed) {
        // Uncorrected DRAM error. With recovery configured, expire the
        // timeout window so the next tick reissues (or aborts) without
        // waiting out the rest of it; otherwise unblock as before (the
        // legacy model never inspected the payload).
        failed_responses_.inc();
        if (retry_.timeout_cycles != 0) {
            stall_timeout_at_ = r.complete_cycle;
            return;
        }
    }
    stalled_ = false;
    awaited_id_ = 0;
    stall_timeout_at_ = k_cycle_never;
}

void processor_client::finalize(cycle_t end_cycle) {
    auto account_overdue = [&](const job& j) {
        if (j.deadline < end_cycle) {
            const auto cat = static_cast<std::size_t>(
                tasks_[j.task_index].category);
            jobs_completed_[cat].inc();
            jobs_missed_[cat].inc();
        }
    };
    if (running_) account_overdue(*running_);
    for (const auto& j : ready_) account_overdue(j);
}

} // namespace bluescale::workload
