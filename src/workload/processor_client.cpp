#include "workload/processor_client.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::workload {

processor_client::processor_client(client_id_t id, compute_task_set tasks,
                                   interconnect& net, std::uint64_t seed)
    : component("processor_" + std::to_string(id)), id_(id),
      tasks_(std::move(tasks)), net_(net), rng_(seed),
      next_release_(tasks_.size(), 0),
      next_request_id_((static_cast<request_id_t>(id) << 40) | 1u) {}

void processor_client::release_jobs(cycle_t now) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const compute_task& t = tasks_[i];
        if (t.period == 0) continue;
        while (next_release_[i] <= now) {
            job j;
            j.task_index = i;
            j.release = next_release_[i];
            j.deadline = next_release_[i] + t.period;
            j.compute_left = t.compute_cycles;
            j.requests_left = t.mem_requests;
            j.compute_per_request = std::max<std::uint32_t>(
                1, t.compute_cycles / (t.mem_requests + 1));
            ready_.push_back(j);
            next_release_[i] += t.period;
        }
    }
}

void processor_client::start_next_job(cycle_t) {
    if (ready_.empty()) return;
    auto best = ready_.begin();
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (it->deadline < best->deadline) best = it;
    }
    running_ = *best;
    ready_.erase(best);
}

void processor_client::finish_job(cycle_t now) {
    const compute_task& t = tasks_[running_->task_index];
    job_stats& s = stats_[static_cast<std::size_t>(t.category)];
    ++s.completed;
    if (now + 1 > running_->deadline) ++s.missed;
    running_.reset();
}

void processor_client::issue_request(cycle_t now) {
    if (!net_.client_can_accept(id_)) {
        request_pending_issue_ = true;
        return;
    }
    const compute_task& t = tasks_[running_->task_index];
    mem_request r;
    r.id = next_request_id_++;
    r.client = id_;
    r.task = t.id;
    // Streams within a per-task region; occasional jumps model data-set
    // strides.
    const std::uint64_t region =
        (static_cast<std::uint64_t>(id_) * 256 + t.id) * (1u << 20);
    r.addr = region + (rng_.uniform_u64(0, 16'000) * 64);
    r.op = rng_.uniform_unit() < 0.3 ? mem_op::write : mem_op::read;
    r.issue_cycle = now;
    r.hop_arrival = now;
    r.abs_deadline = running_->deadline;
    r.level_deadline = running_->deadline;
    ++requests_issued_;
    net_.client_push(id_, std::move(r));
    request_pending_issue_ = false;
    stalled_ = true;
}

void processor_client::tick(cycle_t now) {
    release_jobs(now);

    if (!running_) start_next_job(now);
    if (!running_) return;

    // Preemptive EDF (FreeRTOS-style): an earlier-deadline ready job
    // preempts the running one at compute-cycle granularity. A job
    // stalled on a blocking cache miss cannot be switched out.
    if (!stalled_ && !ready_.empty()) {
        auto best = ready_.begin();
        for (auto it = ready_.begin(); it != ready_.end(); ++it) {
            if (it->deadline < best->deadline) best = it;
        }
        if (best->deadline < running_->deadline) {
            std::swap(*best, *running_);
        }
    }

    if (stalled_) {
        // Either the port was full (retry the issue) or we await the
        // response (on_response clears the stall).
        if (request_pending_issue_) issue_request(now);
        return;
    }

    job& j = *running_;
    if (j.compute_left > 0) {
        --j.compute_left;
        ++j.compute_since_request;
    }
    const bool due_by_spacing = j.requests_left > 0 &&
                                j.compute_since_request >=
                                    j.compute_per_request;
    const bool due_by_exhaustion = j.requests_left > 0 &&
                                   j.compute_left == 0;
    if (due_by_spacing || due_by_exhaustion) {
        --j.requests_left;
        j.compute_since_request = 0;
        issue_request(now);
        return;
    }
    if (j.compute_left == 0 && j.requests_left == 0) finish_job(now);
}

void processor_client::on_response(mem_request&& r) {
    assert(r.client == id_);
    stalled_ = false;
    (void)r;
}

void processor_client::finalize(cycle_t end_cycle) {
    auto account_overdue = [&](const job& j) {
        if (j.deadline < end_cycle) {
            job_stats& s = stats_[static_cast<std::size_t>(
                tasks_[j.task_index].category)];
            ++s.completed;
            ++s.missed;
        }
    };
    if (running_) account_overdue(*running_);
    for (const auto& j : ready_) account_overdue(j);
}

} // namespace bluescale::workload
