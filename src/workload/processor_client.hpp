// Processor client for the system-level case study (paper Sec. 6.4): an
// in-order core running periodic compute tasks under non-preemptive EDF.
// Jobs interleave compute cycles with memory accesses; each access stalls
// the core until the response returns (blocking cache-miss semantics).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "interconnect/interconnect.hpp"
#include "obs/registry.hpp"
#include "sim/component.hpp"
#include "sim/rng.hpp"
#include "workload/compute_task.hpp"

namespace bluescale::workload {

/// Per-category job outcome snapshot (values read out of obs handles; a
/// result type, not mutable storage).
struct job_stats {
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;

    [[nodiscard]] double miss_ratio() const {
        return completed == 0 ? 0.0
                              : static_cast<double>(missed) /
                                    static_cast<double>(completed);
    }
};

/// Recovery policy for the blocking cache-miss path: a stalled core whose
/// response does not arrive within timeout_cycles reissues the access
/// under a fresh id (the stale response is dropped), up to max_retries
/// attempts; past the budget the access is aborted so the core can make
/// progress with degraded data instead of hanging forever.
struct processor_retry_config {
    cycle_t timeout_cycles = 0; ///< 0 = wait forever (legacy blocking)
    std::uint32_t max_retries = 3;
};

/// Recovery counter snapshot for one processor client (result type).
struct processor_retry_stats {
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t aborted = 0;         ///< accesses given up after max retries
    std::uint64_t stale_responses = 0; ///< superseded attempts that landed late
    std::uint64_t failed_responses = 0; ///< uncorrected-error responses
};

class processor_client : public component {
public:
    processor_client(client_id_t id, compute_task_set tasks,
                     interconnect& net, std::uint64_t seed,
                     processor_retry_config retry = {});

    void tick(cycle_t now) override;

    /// Event-engine horizon: per-cycle while computing or while a push
    /// is blocked on a full port (no wake signal exists for port space);
    /// a stalled core sleeps until its retry timeout, an idle one until
    /// the next task release. Response delivery wakes the client (see
    /// on_response).
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    void on_response(mem_request&& r);

    /// Accounts jobs that are running late (or queued past their
    /// deadline) at trial end.
    void finalize(cycle_t end_cycle);

    /// Re-homes this client's counters into `reg` (metric names
    /// "client.<id>/..."); call before the trial starts.
    void bind_observability(obs::registry& reg);

    [[nodiscard]] client_id_t id() const { return id_; }
    [[nodiscard]] job_stats stats(task_category c) const {
        const auto i = static_cast<std::size_t>(c);
        return {jobs_completed_[i].value(), jobs_missed_[i].value()};
    }
    /// True if any safety or function job missed its deadline (the
    /// paper's per-trial success criterion ignores interference tasks).
    [[nodiscard]] bool app_deadline_missed() const {
        return stats(task_category::safety).missed > 0 ||
               stats(task_category::function).missed > 0;
    }
    [[nodiscard]] std::uint64_t mem_requests_issued() const {
        return requests_issued_.value();
    }
    [[nodiscard]] processor_retry_stats retry_stats() const {
        return {retries_.value(), timeouts_.value(), aborted_.value(),
                stale_responses_.value(), failed_responses_.value()};
    }

private:
    struct job {
        std::size_t task_index;
        cycle_t release;
        cycle_t deadline;
        std::uint32_t compute_left;
        std::uint32_t requests_left;
        std::uint32_t compute_per_request; ///< spacing of accesses
        std::uint32_t compute_since_request = 0;
    };

    void release_jobs(cycle_t now);
    void start_next_job(cycle_t now);
    void finish_job(cycle_t now);
    void issue_request(cycle_t now);
    /// Pushes pending_req_ once the port accepts; arms the stall timeout.
    void push_pending(cycle_t now);
    /// Timeout recovery while stalled: reissue or abort. Called from
    /// tick() once the stall has outlived its timeout window.
    void handle_stall_timeout(cycle_t now);

    client_id_t id_;
    compute_task_set tasks_;
    interconnect& net_;
    rng rng_;
    processor_retry_config retry_;
    std::vector<cycle_t> next_release_;
    std::deque<job> ready_;           ///< released, not started (EDF order)
    std::optional<job> running_;
    bool stalled_ = false;            ///< waiting for a memory response
    bool request_pending_issue_ = false;
    mem_request pending_req_;         ///< reissue template while stalled
    request_id_t awaited_id_ = 0;     ///< current attempt's id (0 = none)
    cycle_t stall_timeout_at_ = k_cycle_never;
    std::uint32_t attempts_ = 0;
    /// Fallback registry for unbound instances (bind_observability
    /// re-homes the handles).
    std::unique_ptr<obs::registry> own_;
    obs::counter retries_;
    obs::counter timeouts_;
    obs::counter aborted_;
    obs::counter stale_responses_;
    obs::counter failed_responses_;
    std::array<obs::counter, 3> jobs_completed_;
    std::array<obs::counter, 3> jobs_missed_;
    obs::counter requests_issued_;
    request_id_t next_request_id_;
};

} // namespace bluescale::workload
