// Processor client for the system-level case study (paper Sec. 6.4): an
// in-order core running periodic compute tasks under non-preemptive EDF.
// Jobs interleave compute cycles with memory accesses; each access stalls
// the core until the response returns (blocking cache-miss semantics).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "interconnect/interconnect.hpp"
#include "sim/component.hpp"
#include "sim/rng.hpp"
#include "workload/compute_task.hpp"

namespace bluescale::workload {

/// Per-category job outcome counters.
struct job_stats {
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;

    [[nodiscard]] double miss_ratio() const {
        return completed == 0 ? 0.0
                              : static_cast<double>(missed) /
                                    static_cast<double>(completed);
    }
};

class processor_client : public component {
public:
    processor_client(client_id_t id, compute_task_set tasks,
                     interconnect& net, std::uint64_t seed);

    void tick(cycle_t now) override;
    void on_response(mem_request&& r);

    /// Accounts jobs that are running late (or queued past their
    /// deadline) at trial end.
    void finalize(cycle_t end_cycle);

    [[nodiscard]] client_id_t id() const { return id_; }
    [[nodiscard]] const job_stats& stats(task_category c) const {
        return stats_[static_cast<std::size_t>(c)];
    }
    /// True if any safety or function job missed its deadline (the
    /// paper's per-trial success criterion ignores interference tasks).
    [[nodiscard]] bool app_deadline_missed() const {
        return stats(task_category::safety).missed > 0 ||
               stats(task_category::function).missed > 0;
    }
    [[nodiscard]] std::uint64_t mem_requests_issued() const {
        return requests_issued_;
    }

private:
    struct job {
        std::size_t task_index;
        cycle_t release;
        cycle_t deadline;
        std::uint32_t compute_left;
        std::uint32_t requests_left;
        std::uint32_t compute_per_request; ///< spacing of accesses
        std::uint32_t compute_since_request = 0;
    };

    void release_jobs(cycle_t now);
    void start_next_job(cycle_t now);
    void finish_job(cycle_t now);
    void issue_request(cycle_t now);

    client_id_t id_;
    compute_task_set tasks_;
    interconnect& net_;
    rng rng_;
    std::vector<cycle_t> next_release_;
    std::deque<job> ready_;           ///< released, not started (EDF order)
    std::optional<job> running_;
    bool stalled_ = false;            ///< waiting for a memory response
    bool request_pending_issue_ = false;
    std::array<job_stats, 3> stats_{};
    std::uint64_t requests_issued_ = 0;
    request_id_t next_request_id_;
};

} // namespace bluescale::workload
