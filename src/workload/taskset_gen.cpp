#include "workload/taskset_gen.hpp"

#include <algorithm>
#include <cmath>

namespace bluescale::workload {

double utilization(const memory_task_set& tasks) {
    double u = 0.0;
    for (const auto& t : tasks) u += t.utilization();
    return u;
}

analysis::task_set to_rt_tasks(const memory_task_set& tasks) {
    analysis::task_set out;
    out.reserve(tasks.size());
    for (const auto& t : tasks) out.push_back(t.as_rt_task());
    return out;
}

std::vector<double> uunifast(rng& gen, std::uint32_t n,
                             double total_utilization) {
    std::vector<double> u(n);
    double sum = total_utilization;
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
        const double next =
            sum * std::pow(gen.uniform_unit(),
                           1.0 / static_cast<double>(n - i - 1));
        u[i] = sum - next;
        sum = next;
    }
    if (n > 0) u[n - 1] = sum;
    return u;
}

memory_task_set make_taskset(rng& gen, const taskset_params& params) {
    memory_task_set tasks;
    if (params.n_tasks == 0) return tasks;

    const auto utils =
        uunifast(gen, params.n_tasks, params.total_utilization);
    const double log_lo = std::log(static_cast<double>(params.min_period_units));
    const double log_hi = std::log(static_cast<double>(params.max_period_units));

    tasks.reserve(params.n_tasks);
    for (std::uint32_t i = 0; i < params.n_tasks; ++i) {
        memory_task t;
        t.id = static_cast<task_id_t>(i + 1);
        const double log_period = gen.uniform_real(log_lo, log_hi);
        t.period_units =
            std::max<std::uint64_t>(1,
                                    static_cast<std::uint64_t>(
                                        std::llround(std::exp(log_period))));
        const double ideal_requests =
            utils[i] * static_cast<double>(t.period_units);
        if (ideal_requests < 1.0 && utils[i] > 0.0) {
            // A job must issue at least one transaction; stretch the
            // period instead of rounding the demand up, so the realized
            // utilization tracks the target (crucial at many-client
            // scales where per-task utilizations are tiny).
            t.requests_per_job = 1;
            t.period_units = std::max<std::uint64_t>(
                t.period_units,
                static_cast<std::uint64_t>(std::llround(1.0 / utils[i])));
        } else {
            t.requests_per_job = static_cast<std::uint32_t>(
                std::llround(ideal_requests));
        }
        // A job can never demand more than its period supplies.
        t.requests_per_job = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(t.requests_per_job, t.period_units));
        t.writes = gen.uniform_unit() < params.write_fraction;
        tasks.push_back(t);
    }
    return tasks;
}

std::vector<memory_task_set>
make_client_tasksets(rng& gen, std::uint32_t n_clients,
                     double lo_total_utilization,
                     double hi_total_utilization,
                     const taskset_params& per_client_template) {
    const double total =
        gen.uniform_real(lo_total_utilization, hi_total_utilization);
    // Random (UUniFast) split across clients: real systems have heavy and
    // light clients, which is exactly what deadline-agnostic arbitration
    // handles poorly. Cap any one client at 4x its fair share so a single
    // leaf port is never structurally overloaded.
    auto shares = uunifast(gen, n_clients, total);
    const double cap = 4.0 * total / static_cast<double>(n_clients);
    double spill = 0.0;
    for (auto& s : shares) {
        if (s > cap) {
            spill += s - cap;
            s = cap;
        }
    }
    for (auto& s : shares) {
        s += spill / static_cast<double>(n_clients);
    }

    std::vector<memory_task_set> sets;
    sets.reserve(n_clients);
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        taskset_params p = per_client_template;
        p.total_utilization = shares[c];
        sets.push_back(make_taskset(gen, p));
    }
    return sets;
}

} // namespace bluescale::workload
