// Random task-set generation for the synthetic experiments (paper Sec. 6.3:
// "workloads on the traffic generators were randomly generated offline,
// with specified periods and implicit deadlines, bounding the interconnect
// utilization between 70% and 90%").
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "workload/memory_task.hpp"

namespace bluescale::workload {

struct taskset_params {
    std::uint32_t n_tasks = 4;           ///< tasks per client
    double total_utilization = 0.05;     ///< target sum of C_i/T_i
    std::uint64_t min_period_units = 100; ///< log-uniform period range
    std::uint64_t max_period_units = 2000;
    double write_fraction = 0.3;         ///< probability a task issues writes
};

/// UUniFast (Bini & Buttazzo): draws n utilizations that sum to U,
/// uniformly over the valid simplex.
[[nodiscard]] std::vector<double> uunifast(rng& gen, std::uint32_t n,
                                           double total_utilization);

/// Generates one client's task set. Periods are log-uniform in
/// [min, max] units; each task's request count is u_i * T_i rounded to at
/// least one transaction, so the achieved utilization can deviate slightly
/// from the target (use `utilization()` for the realized value).
[[nodiscard]] memory_task_set make_taskset(rng& gen,
                                           const taskset_params& params);

/// Generates task sets for `n_clients` clients whose *combined* utilization
/// is drawn uniformly in [lo, hi] (the paper's 70-90% interconnect
/// utilization), split evenly across clients.
[[nodiscard]] std::vector<memory_task_set>
make_client_tasksets(rng& gen, std::uint32_t n_clients,
                     double lo_total_utilization,
                     double hi_total_utilization,
                     const taskset_params& per_client_template = {});

} // namespace bluescale::workload
