#include "workload/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace bluescale::workload {

bool save_trace(const std::string& path, const trace& records) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("cycle,client,task,addr,op,deadline\n", f);
    for (const auto& r : records) {
        std::fprintf(f, "%" PRIu64 ",%u,%u,%" PRIu64 ",%c,%" PRIu64 "\n",
                     r.issue_cycle, r.client, r.task, r.addr,
                     r.op == mem_op::write ? 'W' : 'R', r.abs_deadline);
    }
    std::fclose(f);
    return true;
}

trace load_trace(const std::string& path) {
    trace records;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return records;
    char line[256];
    bool first = true;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (first) { // header
            first = false;
            continue;
        }
        trace_record r;
        unsigned client = 0, task = 0;
        char op = 'R';
        if (std::sscanf(line,
                        "%" SCNu64 ",%u,%u,%" SCNu64 ",%c,%" SCNu64,
                        &r.issue_cycle, &client, &task, &r.addr, &op,
                        &r.abs_deadline) == 6) {
            r.client = client;
            r.task = static_cast<task_id_t>(task);
            r.op = op == 'W' ? mem_op::write : mem_op::read;
            records.push_back(r);
        }
    }
    std::fclose(f);
    return records;
}

trace trace_from_requests(const std::vector<mem_request>& done) {
    trace records;
    records.reserve(done.size());
    for (const auto& r : done) {
        records.push_back({r.issue_cycle, r.client, r.task, r.addr, r.op,
                           r.abs_deadline});
    }
    std::sort(records.begin(), records.end(),
              [](const trace_record& a, const trace_record& b) {
                  return a.issue_cycle < b.issue_cycle;
              });
    return records;
}

trace_player::trace_player(client_id_t id, const trace& full_trace,
                           interconnect& net)
    : component("trace_player_" + std::to_string(id)), id_(id), net_(net),
      next_request_id_((static_cast<request_id_t>(id) << 40) | 1u) {
    for (const auto& r : full_trace) {
        if (r.client == id) records_.push_back(r);
    }
    std::stable_sort(records_.begin(), records_.end(),
                     [](const trace_record& a, const trace_record& b) {
                         return a.issue_cycle < b.issue_cycle;
                     });
}

void trace_player::tick(cycle_t now) {
    // One injection per cycle, in trace order, no earlier than recorded.
    if (next_ >= records_.size()) return;
    const trace_record& rec = records_[next_];
    if (rec.issue_cycle > now) return;
    if (!net_.client_can_accept(id_)) return;

    mem_request r;
    r.id = next_request_id_++;
    r.client = id_;
    r.task = rec.task;
    r.addr = rec.addr;
    r.op = rec.op;
    r.issue_cycle = now;
    r.hop_arrival = now;
    r.abs_deadline = rec.abs_deadline;
    r.level_deadline = rec.abs_deadline;
    // Replay bookkeeping, bounded by the fabric's acceptance backpressure
    // (client_can_accept() gates the issue above).
    // detlint:allow(hotpath-alloc): outstanding set is credit-bounded
    outstanding_deadline_.emplace(r.id, r.abs_deadline);
    stats_.record_issue();
    net_.client_push(id_, std::move(r));
    ++next_;
}

void trace_player::on_response(mem_request&& r) {
    outstanding_deadline_.erase(r.id);
    // No validation margin in replay accounting (beyond_margin unused).
    stats_.record_completion(static_cast<double>(r.total_latency()),
                             static_cast<double>(r.blocked_cycles),
                             !r.met_deadline(), false);
}

void trace_player::finalize(cycle_t end_cycle) {
    for (const auto& [id, deadline] : outstanding_deadline_) {
        if (deadline < end_cycle) {
            stats_.record_abandoned(1, 0);
        }
    }
    for (std::size_t i = next_; i < records_.size(); ++i) {
        if (records_[i].abs_deadline < end_cycle) {
            stats_.record_abandoned(1, 0);
        }
    }
}

} // namespace bluescale::workload
