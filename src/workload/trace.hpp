// Memory-trace capture and replay.
//
// Traces decouple workload generation from interconnect evaluation: a
// trial's traffic can be recorded once (from any client mix), saved as
// CSV, and replayed identically against every design -- or against future
// versions of this library for regression comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interconnect/interconnect.hpp"
#include "mem/request.hpp"
#include "sim/component.hpp"
#include "workload/client_stats.hpp"

namespace bluescale::workload {

/// One recorded transaction.
struct trace_record {
    cycle_t issue_cycle = 0;
    client_id_t client = 0;
    task_id_t task = 0;
    std::uint64_t addr = 0;
    mem_op op = mem_op::read;
    cycle_t abs_deadline = k_cycle_never;
};

using trace = std::vector<trace_record>;

/// Saves/loads a trace as CSV (header: cycle,client,task,addr,op,deadline).
bool save_trace(const std::string& path, const trace& records);
[[nodiscard]] trace load_trace(const std::string& path);

/// Extracts a trace from completed requests (e.g. collected by a response
/// handler during a recording run), ordered by issue cycle.
[[nodiscard]] trace trace_from_requests(const std::vector<mem_request>& done);

/// Replays one client's slice of a trace: each record is injected at its
/// recorded issue cycle (or as soon afterwards as backpressure allows,
/// preserving order). Latency/deadline statistics accumulate exactly as
/// for the synthetic clients.
class trace_player : public component {
public:
    trace_player(client_id_t id, const trace& full_trace,
                 interconnect& net);

    void tick(cycle_t now) override;
    void on_response(mem_request&& r);
    void finalize(cycle_t end_cycle);

    [[nodiscard]] client_id_t id() const { return id_; }
    [[nodiscard]] const client_stats& stats() const { return stats_; }
    [[nodiscard]] bool done() const { return next_ >= records_.size(); }
    [[nodiscard]] std::size_t remaining() const {
        return records_.size() - next_;
    }

private:
    client_id_t id_;
    trace records_; ///< this client's slice, issue-cycle ordered
    interconnect& net_;
    std::size_t next_ = 0;
    // finalize() iterates this into stats_.missed/abandoned, so the
    // container must have a deterministic order (detlint: unordered-iter).
    // An ordered map also keeps any future per-request reporting stable.
    std::map<request_id_t, cycle_t> outstanding_deadline_;
    client_stats stats_;
    request_id_t next_request_id_;
};

} // namespace bluescale::workload
