#include "workload/traffic_generator.hpp"

#include <cassert>

namespace bluescale::workload {

traffic_generator::traffic_generator(client_id_t id, memory_task_set tasks,
                                     interconnect& net, std::uint64_t seed,
                                     traffic_gen_config cfg)
    : component("traffic_gen_" + std::to_string(id)), id_(id),
      tasks_(std::move(tasks)), net_(net), rng_(seed), cfg_(cfg),
      state_(tasks_.size()),
      // Partition the request-id space by client so ids never collide.
      next_request_id_(static_cast<request_id_t>(id) << 40) {}

void traffic_generator::release_jobs(cycle_t now) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const memory_task& task = tasks_[i];
        task_state& ts = state_[i];
        const cycle_t period = task.period_cycles(cfg_.unit_cycles);
        while (ts.next_release <= now) {
            pending_job job;
            job.release = ts.next_release;
            job.deadline = ts.next_release + period; // implicit deadline
            job.remaining = task.requests_per_job;
            job.job_seq = ts.jobs_released;
            // Jobs stream lines from a random offset inside the task's
            // private region (sequential within a job -> row locality).
            const std::uint64_t task_base =
                (static_cast<std::uint64_t>(id_) * 64 + task.id) *
                cfg_.task_region_bytes;
            const std::uint64_t lines =
                cfg_.task_region_bytes / cfg_.cache_line_bytes;
            job.base_addr = task_base + rng_.uniform_u64(0, lines - 1) *
                                            cfg_.cache_line_bytes;
            ts.jobs.push_back(job);
            ts.next_release += period;
            ++ts.jobs_released;
        }
    }
}

int traffic_generator::pick_edf_task() const {
    int best = -1;
    cycle_t best_deadline = k_cycle_never;
    for (std::size_t i = 0; i < state_.size(); ++i) {
        const auto& jobs = state_[i].jobs;
        if (jobs.empty()) continue;
        if (jobs.front().deadline < best_deadline) {
            best_deadline = jobs.front().deadline;
            best = static_cast<int>(i);
        }
    }
    return best;
}

void traffic_generator::tick(cycle_t now) {
    if (stopped_) return;
    release_jobs(now);

    // Issue at most one request per cycle (client port width), EDF-first.
    if (outstanding() >= cfg_.max_outstanding) return;
    if (!net_.client_can_accept(id_)) return;
    const int which = pick_edf_task();
    if (which < 0) return;

    task_state& ts = state_[static_cast<std::size_t>(which)];
    pending_job& job = ts.jobs.front();

    mem_request r;
    r.id = next_request_id_++;
    r.client = id_;
    r.task = tasks_[static_cast<std::size_t>(which)].id;
    r.job = job.job_seq;
    r.addr = job.base_addr +
             static_cast<std::uint64_t>(job.issued) * cfg_.cache_line_bytes;
    r.op = tasks_[static_cast<std::size_t>(which)].writes ? mem_op::write
                                                          : mem_op::read;
    r.issue_cycle = now;
    r.hop_arrival = now;
    r.abs_deadline = job.deadline;
    r.level_deadline = job.deadline; // leaf-level arbitration priority

    outstanding_deadline_.emplace(r.id, r.abs_deadline);
    ++stats_.issued;
    net_.client_push(id_, std::move(r));

    ++job.issued;
    if (--job.remaining == 0) ts.jobs.pop_front();
}

void traffic_generator::on_response(mem_request&& r) {
    assert(r.client == id_);
    outstanding_deadline_.erase(r.id);
    ++stats_.completed;
    if (!r.met_deadline()) ++stats_.missed;
    if (r.complete_cycle > r.abs_deadline + cfg_.validation_margin_cycles) {
        ++stats_.missed_beyond_margin;
    }
    stats_.latency_cycles.add(static_cast<double>(r.total_latency()));
    stats_.blocking_cycles.add(static_cast<double>(r.blocked_cycles));
}

std::uint64_t traffic_generator::backlog() const {
    std::uint64_t total = 0;
    for (const auto& ts : state_) {
        for (const auto& job : ts.jobs) total += job.remaining;
    }
    return total;
}

void traffic_generator::finalize(cycle_t end_cycle) {
    // In-flight requests that can no longer meet their deadline.
    for (const auto& [id, deadline] : outstanding_deadline_) {
        if (deadline < end_cycle) {
            ++stats_.missed;
            ++stats_.abandoned;
            if (deadline + cfg_.validation_margin_cycles < end_cycle) {
                ++stats_.missed_beyond_margin;
            }
        }
    }
    // Released but never issued requests past their deadline.
    for (const auto& ts : state_) {
        for (const auto& job : ts.jobs) {
            if (job.deadline < end_cycle) {
                stats_.missed += job.remaining;
                stats_.abandoned += job.remaining;
                if (job.deadline + cfg_.validation_margin_cycles <
                    end_cycle) {
                    stats_.missed_beyond_margin += job.remaining;
                }
            }
        }
    }
}

} // namespace bluescale::workload
