#include "workload/traffic_generator.hpp"

#include <algorithm>
#include <cassert>

namespace bluescale::workload {

traffic_generator::traffic_generator(client_id_t id, memory_task_set tasks,
                                     interconnect& net, std::uint64_t seed,
                                     traffic_gen_config cfg)
    : component("traffic_gen_" + std::to_string(id)), id_(id),
      tasks_(std::move(tasks)), net_(net), rng_(seed), cfg_(cfg),
      state_(tasks_.size()),
      // Partition the request-id space by client so ids never collide.
      next_request_id_(static_cast<request_id_t>(id) << 40) {
    port_drain_wake_ = net_.bind_client_drain(id_, sim::wake_of(*this));
}

void traffic_generator::release_jobs(cycle_t now) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const memory_task& task = tasks_[i];
        task_state& ts = state_[i];
        const cycle_t period = task.period_cycles(cfg_.unit_cycles);
        while (ts.next_release <= now) {
            pending_job job;
            job.release = ts.next_release;
            job.deadline = ts.next_release + period; // implicit deadline
            job.remaining = task.requests_per_job;
            job.job_seq = ts.jobs_released;
            // Jobs stream lines from a random offset inside the task's
            // private region (sequential within a job -> row locality).
            const std::uint64_t task_base =
                (static_cast<std::uint64_t>(id_) * 64 + task.id) *
                cfg_.task_region_bytes;
            const std::uint64_t lines =
                cfg_.task_region_bytes / cfg_.cache_line_bytes;
            job.base_addr = task_base + rng_.uniform_u64(0, lines - 1) *
                                            cfg_.cache_line_bytes;
            // Software workload model, not modeled hardware: per-task job
            // backlog mirrors what a generator thread would queue.
            // detlint:allow(hotpath-alloc): client-model job bookkeeping
            ts.jobs.push_back(job);
            ts.next_release += period;
            ++ts.jobs_released;
        }
    }
}

int traffic_generator::pick_edf_task() const {
    int best = -1;
    cycle_t best_deadline = k_cycle_never;
    for (std::size_t i = 0; i < state_.size(); ++i) {
        const auto& jobs = state_[i].jobs;
        if (jobs.empty()) continue;
        if (jobs.front().deadline < best_deadline) {
            best_deadline = jobs.front().deadline;
            best = static_cast<int>(i);
        }
    }
    return best;
}

cycle_t traffic_generator::backoff_window(std::uint32_t attempts) const {
    cycle_t window = cfg_.retry_timeout_cycles;
    const std::uint32_t mult = std::max<std::uint32_t>(
        1, cfg_.retry_backoff_mult);
    for (std::uint32_t a = 0; a < attempts; ++a) window *= mult;
    return window;
}

bool traffic_generator::try_reissue(cycle_t now) {
    for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
        outstanding_req& o = it->second;
        if (o.exhausted || o.timeout_at > now) continue;
        stats_.record_timeout();
        if (o.attempts >= cfg_.max_retries) {
            // Budget spent: stop reissuing, but keep the entry -- the
            // response may merely be slow, and finalize() abandons it
            // otherwise.
            o.exhausted = true;
            o.timeout_at = k_cycle_never;
            stats_.record_retry_exhausted();
            continue;
        }
        // Reissue under a fresh id; the old id is forgotten, so its
        // response (if the request was slow rather than lost) is stale.
        outstanding_req fresh = o;
        outstanding_.erase(it);
        ++fresh.attempts;
        fresh.req.id = next_request_id_++;
        fresh.req.attempt = static_cast<std::uint8_t>(
            std::min<std::uint32_t>(fresh.attempts, 255));
        fresh.req.hop_arrival = now;
        fresh.req.hops = obs::hop_stamps{}; // fresh attempt, fresh attribution
        fresh.timeout_at = now + backoff_window(fresh.attempts);
        mem_request r = fresh.req;
        // Reissue: the entry was just erased above, so occupancy is
        // net-zero and bounded by the in-flight request cap.
        // detlint:allow(hotpath-alloc): outstanding set is credit-bounded
        outstanding_.emplace(r.id, std::move(fresh));
        stats_.record_retry();
        net_.client_push(id_, std::move(r));
        return true;
    }
    return false;
}

void traffic_generator::tick(cycle_t now) {
    if (stopped_) return;
    release_jobs(now);

    // Overload shedding: the client goes fully quiet -- no new work, no
    // recovery reissues -- so the fabric drains. Released jobs still age
    // toward their deadlines and are charged to this client.
    if (shed_) {
        stats_.record_shed_cycle(backlog() > 0);
        return;
    }

    // Issue at most one request per cycle (client port width). Recovery
    // reissues go first: a timed-out request is already late, so it
    // outranks new work for the slot.
    if (!net_.client_can_accept(id_)) return;
    if (cfg_.retry_timeout_cycles != 0 && try_reissue(now)) return;
    if (outstanding() >= cfg_.max_outstanding) return;
    const int which = pick_edf_task();
    if (which < 0) return;

    task_state& ts = state_[static_cast<std::size_t>(which)];
    pending_job& job = ts.jobs.front();

    mem_request r;
    r.id = next_request_id_++;
    r.client = id_;
    r.task = tasks_[static_cast<std::size_t>(which)].id;
    r.job = job.job_seq;
    r.addr = job.base_addr +
             static_cast<std::uint64_t>(job.issued) * cfg_.cache_line_bytes;
    r.op = tasks_[static_cast<std::size_t>(which)].writes ? mem_op::write
                                                          : mem_op::read;
    r.issue_cycle = now;
    r.hop_arrival = now;
    r.abs_deadline = job.deadline;
    r.level_deadline = job.deadline; // leaf-level arbitration priority

    outstanding_req o;
    o.req = r;
    if (cfg_.retry_timeout_cycles != 0) {
        o.timeout_at = now + cfg_.retry_timeout_cycles;
    }
    // Outstanding tracking grows only while the fabric accepts pushes, so
    // occupancy is bounded by the port/credit backpressure.
    // detlint:allow(hotpath-alloc): outstanding set is credit-bounded
    outstanding_.emplace(r.id, std::move(o));
    stats_.record_issue();
    net_.client_push(id_, std::move(r));

    ++job.issued;
    if (--job.remaining == 0) ts.jobs.pop_front();
}

void traffic_generator::on_response(mem_request&& r) {
    assert(r.client == id_);
    // Response delivery is the one signal a quiescent client cannot
    // predict: re-arm so the next tick reacts exactly when lockstep
    // would (the issue slot, retry bookkeeping, burst progress).
    wake();
    auto it = outstanding_.find(r.id);
    if (it == outstanding_.end()) {
        // A reissue superseded this attempt before its response landed.
        stats_.record_stale_response();
        return;
    }
    if (r.failed) {
        // Uncorrected DRAM error: the payload is unusable. With recovery
        // configured and budget left, expire the timeout so the next
        // tick's reissue path retries immediately; otherwise give up.
        stats_.record_failed_response();
        outstanding_req& o = it->second;
        if (cfg_.retry_timeout_cycles != 0 && !o.exhausted &&
            o.attempts < cfg_.max_retries) {
            o.timeout_at = r.complete_cycle;
            return;
        }
        if (cfg_.retry_timeout_cycles != 0 && !o.exhausted) {
            stats_.record_retry_exhausted();
        }
        stats_.record_abandoned(1, 1);
        outstanding_.erase(it);
        return;
    }
    outstanding_.erase(it);
    stats_.record_completion(
        static_cast<double>(r.total_latency()),
        static_cast<double>(r.blocked_cycles), !r.met_deadline(),
        r.complete_cycle > r.abs_deadline + cfg_.validation_margin_cycles);
}

void traffic_generator::reconfigure_tasks(memory_task_set tasks,
                                          cycle_t now) {
    tasks_ = std::move(tasks);
    state_.assign(tasks_.size(), task_state{});
    for (auto& ts : state_) ts.next_release = now;
    stats_.record_reconfiguration();
    wake(); // the new set's releases start immediately
}

cycle_t traffic_generator::next_event(cycle_t now) const {
    if (stopped_) return k_cycle_never;
    if (shed_) return now + 1;
    // At the MSHR cap nothing can issue until a response retires an
    // entry, and on_response() wakes us for exactly that edge; at a full
    // port nothing can issue until a pop frees a slot, and the fabric's
    // drain hook wakes us for exactly that edge (when the fabric cannot
    // provide it, port_drain_wake_ keeps the per-cycle poll). So pending
    // jobs only force the per-cycle cadence when a request could actually
    // go out. Release boundaries stay in the horizon even when throttled
    // or blocked: waking at every task's next_release keeps
    // release_jobs()'s rng draw order identical to lockstep's
    // cycle-by-cycle interleaving across tasks. An expired retry timeout
    // holds the horizon at now + 1 until its reissue lands, covering a
    // backpressured reissue slot.
    const bool throttled = outstanding() >= cfg_.max_outstanding;
    const bool blocked = port_drain_wake_ && !net_.client_can_accept(id_);
    cycle_t due = k_cycle_never;
    for (const auto& ts : state_) {
        if (!ts.jobs.empty() && !throttled && !blocked) return now + 1;
        due = std::min(due, ts.next_release);
    }
    if (cfg_.retry_timeout_cycles != 0) {
        for (const auto& [id, o] : outstanding_) {
            if (!o.exhausted) due = std::min(due, o.timeout_at);
        }
    }
    return std::max(now + 1, due);
}

std::uint64_t traffic_generator::backlog() const {
    std::uint64_t total = 0;
    for (const auto& ts : state_) {
        for (const auto& job : ts.jobs) total += job.remaining;
    }
    return total;
}

void traffic_generator::finalize(cycle_t end_cycle) {
    // In-flight requests that can no longer meet their deadline.
    for (const auto& [id, o] : outstanding_) {
        const cycle_t deadline = o.req.abs_deadline;
        if (deadline < end_cycle) {
            const bool beyond =
                deadline + cfg_.validation_margin_cycles < end_cycle;
            stats_.record_abandoned(1, beyond ? 1 : 0);
        }
    }
    // Released but never issued requests past their deadline.
    for (const auto& ts : state_) {
        for (const auto& job : ts.jobs) {
            if (job.deadline < end_cycle) {
                const bool beyond =
                    job.deadline + cfg_.validation_margin_cycles <
                    end_cycle;
                stats_.record_abandoned(job.remaining,
                                        beyond ? job.remaining : 0);
            }
        }
    }
}

} // namespace bluescale::workload
