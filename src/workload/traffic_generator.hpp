// Traffic generator client (paper Sec. 6.3, after Wang et al. [20]):
// issues memory requests according to a periodic task set, without
// processing any data. Requests are prioritized locally by GEDF.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "interconnect/interconnect.hpp"
#include "mem/request.hpp"
#include "sim/component.hpp"
#include "sim/rng.hpp"
#include "workload/client_stats.hpp"
#include "workload/memory_task.hpp"

namespace bluescale::workload {

struct traffic_gen_config {
    std::uint32_t unit_cycles = k_unit_cycles;
    /// Maximum requests in flight before the generator throttles (models
    /// finite MSHRs; the port buffer also exerts backpressure).
    std::uint32_t max_outstanding = 16;
    /// Private address region per task, for locality-realistic traffic.
    std::uint64_t task_region_bytes = 1u << 20;
    std::uint64_t cache_line_bytes = 64;
    /// Allowance for client_stats::missed_beyond_margin (see there).
    cycle_t validation_margin_cycles = 0;

    // --- retry/timeout recovery (fault campaigns) ----------------------
    /// When non-zero, a request unanswered for this many cycles is
    /// reissued under a fresh id; the superseded response, if it ever
    /// arrives, is dropped as stale. 0 disables recovery (a lost request
    /// stays outstanding until finalize() abandons it).
    cycle_t retry_timeout_cycles = 0;
    /// Reissue budget per request; past it the request is given up
    /// (counted retry_exhausted + abandoned).
    std::uint32_t max_retries = 0;
    /// Timeout window multiplier per attempt (exponential backoff keeps
    /// retry storms from amplifying congestion-induced slowness).
    std::uint32_t retry_backoff_mult = 2;
};

class traffic_generator : public component {
public:
    traffic_generator(client_id_t id, memory_task_set tasks,
                      interconnect& net, std::uint64_t seed,
                      traffic_gen_config cfg = {});

    void tick(cycle_t now) override;

    /// Event-engine horizon: per-cycle while jobs are pending below the
    /// outstanding cap and the port accepts (the issue slot is contested
    /// every cycle); at the cap, port-blocked, or idle, the earliest task
    /// release or retry timeout. Responses need no horizon --
    /// on_response() wakes the client -- and a blocked port re-arms the
    /// client through the fabric's drain hook (bind_client_drain); with a
    /// fabric that cannot provide that signal the client keeps polling.
    [[nodiscard]] cycle_t next_event(cycle_t now) const override;

    /// Harness routes interconnect responses for this client here.
    void on_response(mem_request&& r);

    /// Call once at trial end: requests still unfinished whose deadline has
    /// passed are counted as missed.
    void finalize(cycle_t end_cycle);

    /// Stops releasing and issuing (drain phase of a trial): in-flight
    /// requests still complete normally.
    void stop() { stopped_ = true; }

    /// Overload-shedding throttle (core::supply_watchdog): while shed,
    /// jobs keep releasing (and keep their deadlines -- a shed best-effort
    /// client absorbs the misses) but no new requests are issued. Retry
    /// reissues of in-flight requests still go out, so recovery of work
    /// already in the fabric is not orphaned.
    void set_shed(bool on) {
        if (on != shed_) wake(); // shed accounting is per-cycle
        shed_ = on;
    }
    [[nodiscard]] bool shed() const { return shed_; }

    /// Live workload change at a reconfiguration commit: swaps the task
    /// set, restarts release schedules at `now`, and drops released-but-
    /// unissued jobs of the old set (they were never issued, so the
    /// issued == completed + abandoned invariant is unaffected).
    /// In-flight requests complete under the old accounting.
    void reconfigure_tasks(memory_task_set tasks, cycle_t now);

    /// Re-homes this client's counters into `reg` (metric names
    /// "client.<id>/..."); call before the trial starts.
    void bind_observability(obs::registry& reg) {
        stats_.bind(reg, "client." + std::to_string(id_));
    }

    [[nodiscard]] const client_stats& stats() const { return stats_; }
    [[nodiscard]] client_id_t id() const { return id_; }
    [[nodiscard]] const memory_task_set& tasks() const { return tasks_; }
    /// Released but not yet issued requests.
    [[nodiscard]] std::uint64_t backlog() const;
    [[nodiscard]] std::uint32_t outstanding() const {
        return static_cast<std::uint32_t>(outstanding_.size());
    }

private:
    struct pending_job {
        cycle_t release = 0;
        cycle_t deadline = 0;
        std::uint32_t remaining = 0; ///< requests not yet issued
        std::uint64_t base_addr = 0;
        std::uint32_t issued = 0; ///< requests already issued (addr offset)
        std::uint32_t job_seq = 0;
    };
    struct task_state {
        cycle_t next_release = 0;
        std::uint32_t jobs_released = 0;
        std::deque<pending_job> jobs;
    };

    /// One in-flight transaction, with everything a reissue needs.
    struct outstanding_req {
        mem_request req; ///< last-issued copy (keeps the first issue_cycle)
        cycle_t timeout_at = k_cycle_never;
        std::uint32_t attempts = 0; ///< reissues so far
        bool exhausted = false;     ///< retry budget spent; await or abandon
    };

    void release_jobs(cycle_t now);
    /// Index of the task whose head job has the earliest deadline;
    /// -1 when nothing is pending.
    [[nodiscard]] int pick_edf_task() const;
    /// Reissues the oldest timed-out request, if any. Returns true when
    /// the cycle's issue slot was consumed.
    bool try_reissue(cycle_t now);
    [[nodiscard]] cycle_t backoff_window(std::uint32_t attempts) const;

    client_id_t id_;
    memory_task_set tasks_;
    interconnect& net_;
    rng rng_;
    traffic_gen_config cfg_;
    std::vector<task_state> state_;
    /// Keyed by request id; ids are monotonic per client, so iteration
    /// order == issue order (deterministic timeout scanning).
    std::map<request_id_t, outstanding_req> outstanding_;
    client_stats stats_;
    request_id_t next_request_id_;
    bool stopped_ = false;
    bool shed_ = false;
    /// The fabric fires our wake when a pop frees the (previously full)
    /// ingress port, so next_event() may sleep while backpressured.
    bool port_drain_wake_ = false;
};

} // namespace bluescale::workload
