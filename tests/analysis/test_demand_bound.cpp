#include <gtest/gtest.h>

#include "analysis/demand_bound.hpp"

namespace bluescale::analysis {
namespace {

TEST(dbf, single_task_staircase) {
    const rt_task t{10, 3};
    EXPECT_EQ(dbf(0, t), 0u);
    EXPECT_EQ(dbf(9, t), 0u);
    EXPECT_EQ(dbf(10, t), 3u);
    EXPECT_EQ(dbf(19, t), 3u);
    EXPECT_EQ(dbf(20, t), 6u);
    EXPECT_EQ(dbf(100, t), 30u);
}

TEST(dbf, zero_period_task_contributes_nothing) {
    EXPECT_EQ(dbf(100, rt_task{0, 5}), 0u);
}

TEST(dbf, set_sums_tasks) {
    const task_set s{{10, 3}, {5, 1}};
    EXPECT_EQ(dbf(10, s), 3u + 2u);
    EXPECT_EQ(dbf(20, s), 6u + 4u);
}

TEST(dbf, empty_set_is_zero) {
    EXPECT_EQ(dbf(100, task_set{}), 0u);
}

TEST(utilization, sums_ratios) {
    const task_set s{{10, 3}, {5, 1}};
    EXPECT_DOUBLE_EQ(utilization(s), 0.3 + 0.2);
    EXPECT_DOUBLE_EQ(utilization(task_set{}), 0.0);
}

TEST(min_period, smallest_nonzero) {
    EXPECT_EQ(min_period({{10, 1}, {5, 1}, {20, 1}}), 5u);
    EXPECT_EQ(min_period({{0, 1}, {7, 1}}), 7u);
    EXPECT_EQ(min_period({}), 0u);
}

TEST(dbf_step_points, multiples_of_each_period) {
    const task_set s{{4, 1}, {6, 1}};
    const auto pts = dbf_step_points(s, 12);
    const std::vector<std::uint64_t> expected{4, 6, 8, 12};
    EXPECT_EQ(pts, expected);
}

TEST(dbf_step_points, deduplicates_shared_multiples) {
    const task_set s{{3, 1}, {6, 1}};
    const auto pts = dbf_step_points(s, 12);
    const std::vector<std::uint64_t> expected{3, 6, 9, 12};
    EXPECT_EQ(pts, expected);
}

TEST(dbf_step_points, skips_zero_wcet_tasks) {
    const task_set s{{4, 0}, {6, 1}};
    const auto pts = dbf_step_points(s, 12);
    const std::vector<std::uint64_t> expected{6, 12};
    EXPECT_EQ(pts, expected);
}

TEST(dbf_step_points, empty_below_first_period) {
    EXPECT_TRUE(dbf_step_points({{100, 1}}, 99).empty());
}

class dbf_property : public ::testing::TestWithParam<rt_task> {};

TEST_P(dbf_property, staircase_changes_only_at_step_points) {
    const rt_task t = GetParam();
    const task_set s{t};
    const auto pts = dbf_step_points(s, 5 * t.period);
    std::size_t idx = 0;
    std::uint64_t prev = 0;
    for (std::uint64_t x = 1; x <= 5 * t.period; ++x) {
        const std::uint64_t d = dbf(x, s);
        if (d != prev) {
            ASSERT_LT(idx, pts.size());
            EXPECT_EQ(x, pts[idx]) << "dbf changed off a step point";
            ++idx;
        }
        prev = d;
    }
}

TEST_P(dbf_property, linear_envelope) {
    const rt_task t = GetParam();
    for (std::uint64_t x = 0; x <= 5 * t.period; ++x) {
        EXPECT_LE(static_cast<double>(dbf(x, t)),
                  t.utilization() * static_cast<double>(x) + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(tasks, dbf_property,
                         ::testing::Values(rt_task{10, 3}, rt_task{7, 7},
                                           rt_task{100, 1}, rt_task{3, 2}));

} // namespace
} // namespace bluescale::analysis
