#include <gtest/gtest.h>

#include "analysis/exact_test.hpp"
#include "analysis/interface_selection.hpp"
#include "sim/rng.hpp"

namespace bluescale::analysis {
namespace {

TEST(exact_edf_test, empty_set_schedulable) {
    EXPECT_EQ(exact_edf_test({}, {10, 1}), sched_result::schedulable);
}

TEST(exact_edf_test, null_interface_unschedulable) {
    EXPECT_EQ(exact_edf_test({{10, 1}}, {0, 0}),
              sched_result::unschedulable);
    EXPECT_EQ(exact_edf_test({{10, 1}}, {10, 0}),
              sched_result::unschedulable);
}

TEST(exact_edf_test, dedicated_resource_full_utilization) {
    // The oracle is exact: U == 1 on a dedicated resource IS schedulable,
    // which the (strict-inequality) analytic test conservatively rejects.
    EXPECT_EQ(exact_edf_test({{4, 4}}, {1, 1}), sched_result::schedulable);
    EXPECT_EQ(is_schedulable({{4, 4}}, {1, 1}),
              sched_result::unschedulable);
}

TEST(exact_edf_test, detects_blackout_miss) {
    // Pi=10, Theta=1: blackout 18 > period 5.
    EXPECT_EQ(exact_edf_test({{5, 1}}, {10, 1}),
              sched_result::unschedulable);
}

TEST(exact_edf_test, aborts_on_huge_hyperperiod) {
    const task_set s{{99991, 1}, {99989, 1}, {99961, 1}};
    EXPECT_EQ(exact_edf_test(s, {7, 3}, /*max_horizon=*/1u << 20),
              sched_result::aborted);
}

TEST(exact_test_horizon, hyperperiod_plus_warmup) {
    EXPECT_EQ(exact_test_horizon({{4, 1}, {6, 1}}, {10, 2}),
              60u + 10u); // lcm(4,6,10) + Pi
}

TEST(exact_edf_test, analytic_test_is_sound_wrt_oracle) {
    // Sufficiency: whatever Theorem 1 accepts, the oracle must accept.
    rng rnd(501);
    int compared = 0;
    for (int trial = 0; trial < 200; ++trial) {
        task_set tasks;
        const int n = 1 + static_cast<int>(rnd.pick(3));
        for (int i = 0; i < n; ++i) {
            // Harmonic-ish periods keep hyperperiods small.
            const std::uint64_t period = 1u << (2 + rnd.pick(5));
            tasks.push_back({period, 1 + rnd.uniform_u64(0, period / 2)});
        }
        const std::uint64_t pi = 2 + rnd.uniform_u64(0, 14);
        const resource_interface iface{pi, 1 + rnd.uniform_u64(0, pi - 1)};
        if (is_schedulable(tasks, iface) != sched_result::schedulable) {
            continue;
        }
        ++compared;
        EXPECT_EQ(exact_edf_test(tasks, iface),
                  sched_result::schedulable)
            << "trial " << trial;
    }
    EXPECT_GT(compared, 10);
}

TEST(exact_edf_test, quantifies_analytic_pessimism) {
    // There exist systems the oracle accepts but the analytic test
    // rejects (the test is sufficient, not exact). Find at least one.
    rng rnd(733);
    bool found_gap = false;
    for (int trial = 0; trial < 400 && !found_gap; ++trial) {
        task_set tasks;
        const int n = 1 + static_cast<int>(rnd.pick(2));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t period = 1u << (2 + rnd.pick(4));
            tasks.push_back({period, 1 + rnd.uniform_u64(0, period / 2)});
        }
        const std::uint64_t pi = 2 + rnd.uniform_u64(0, 6);
        const resource_interface iface{pi, 1 + rnd.uniform_u64(0, pi - 1)};
        if (is_schedulable(tasks, iface) == sched_result::unschedulable &&
            exact_edf_test(tasks, iface) == sched_result::schedulable) {
            found_gap = true;
        }
    }
    EXPECT_TRUE(found_gap);
}

TEST(exact_edf_test, selected_interfaces_pass_oracle) {
    rng rnd(91);
    for (int trial = 0; trial < 20; ++trial) {
        task_set tasks;
        for (int i = 0; i < 2; ++i) {
            const std::uint64_t period = 1u << (3 + rnd.pick(4));
            tasks.push_back({period, 1 + rnd.uniform_u64(0, period / 8)});
        }
        const auto iface =
            select_interface(tasks, utilization(tasks) + 0.3);
        if (!iface || iface->budget == 0) continue;
        EXPECT_NE(exact_edf_test(tasks, *iface),
                  sched_result::unschedulable)
            << "trial " << trial;
    }
}

} // namespace
} // namespace bluescale::analysis
