#include <gtest/gtest.h>

#include "analysis/interface_selection.hpp"
#include "analysis/tree_analysis.hpp"
#include "sim/rng.hpp"

namespace bluescale::analysis {
namespace {

TEST(theorem2_max_period, empty_set_is_zero) {
    EXPECT_EQ(theorem2_max_period({}, 0.5), 0u);
}

TEST(theorem2_max_period, no_sibling_load_caps_at_min_period) {
    const task_set s{{40, 4}, {100, 10}};
    EXPECT_EQ(theorem2_max_period(s, utilization(s)), 40u);
}

TEST(theorem2_max_period, matches_formula) {
    // min T = 40, U_X = 0.2, U_level = 0.7 -> bound = 40/(2*0.5) = 40.
    const task_set s{{40, 8}};
    EXPECT_EQ(theorem2_max_period(s, 0.7), 40u);
    // U_level = 0.95 -> 40/(2*0.75) = 26.67 -> 26.
    EXPECT_EQ(theorem2_max_period(s, 0.95), 26u);
}

TEST(min_budget_for_period, empty_tasks_need_nothing) {
    EXPECT_EQ(min_budget_for_period({}, 10), 0u);
}

TEST(min_budget_for_period, zero_period_is_infeasible) {
    EXPECT_EQ(min_budget_for_period({{10, 1}}, 0), std::nullopt);
}

TEST(min_budget_for_period, full_budget_infeasible_when_overloaded) {
    EXPECT_EQ(min_budget_for_period({{10, 10}}, 10), std::nullopt);
}

TEST(min_budget_for_period, returns_minimum_schedulable_budget) {
    const task_set s{{100, 20}};
    const auto theta = min_budget_for_period(s, 10);
    ASSERT_TRUE(theta.has_value());
    // Minimality: theta works, theta-1 does not.
    EXPECT_EQ(is_schedulable(s, {10, *theta}), sched_result::schedulable);
    ASSERT_GT(*theta, 0u);
    EXPECT_NE(is_schedulable(s, {10, *theta - 1}),
              sched_result::schedulable);
}

TEST(min_budget_for_period, short_period_needs_proportionally_less) {
    const task_set s{{100, 20}};
    const auto t2 = min_budget_for_period(s, 2);
    ASSERT_TRUE(t2.has_value());
    EXPECT_LE(static_cast<double>(*t2) / 2.0, 0.5);
}

TEST(select_interface, empty_tasks_get_null_interface) {
    const auto iface = select_interface({}, 0.9);
    ASSERT_TRUE(iface.has_value());
    EXPECT_EQ(iface->period, 0u);
    EXPECT_EQ(iface->budget, 0u);
    EXPECT_EQ(iface->bandwidth(), 0.0);
}

TEST(select_interface, result_is_schedulable_and_above_utilization) {
    const task_set s{{50, 5}, {100, 10}, {200, 20}};
    const auto iface = select_interface(s, 0.8);
    ASSERT_TRUE(iface.has_value());
    EXPECT_GT(iface->bandwidth(), utilization(s));
    EXPECT_EQ(is_schedulable(s, *iface), sched_result::schedulable);
}

TEST(select_interface, respects_theorem2_period_bound) {
    const task_set s{{40, 8}};
    const double u_level = 0.95;
    const auto iface = select_interface(s, u_level);
    ASSERT_TRUE(iface.has_value());
    EXPECT_LE(iface->period, theorem2_max_period(s, u_level));
}

TEST(select_interface, overloaded_task_set_is_infeasible) {
    // U > 1 can never be served.
    EXPECT_EQ(select_interface({{10, 11}}, 1.1), std::nullopt);
}

TEST(select_interface, bandwidth_at_most_one) {
    const task_set s{{10, 9}};
    const auto iface = select_interface(s, 0.9);
    ASSERT_TRUE(iface.has_value());
    EXPECT_LE(iface->bandwidth(), 1.0 + 1e-12);
}

TEST(select_interface, tighter_tasks_need_more_bandwidth) {
    const auto loose = select_interface({{1000, 100}}, 0.5);
    const auto tight = select_interface({{20, 2}}, 0.5);
    ASSERT_TRUE(loose.has_value());
    ASSERT_TRUE(tight.has_value());
    // Same utilization (0.1) but the short-period task needs the supply
    // more often, so its minimum bandwidth is at least as large.
    EXPECT_GE(tight->bandwidth(), loose->bandwidth());
}

class selection_optimality : public ::testing::TestWithParam<int> {};

TEST_P(selection_optimality, no_smaller_bandwidth_within_search_space) {
    // Property: the selected pair has minimal bandwidth among all
    // (Pi, Theta) pairs the algorithm's search space admits.
    rng r(GetParam());
    task_set tasks;
    const int n = 1 + static_cast<int>(r.pick(3));
    for (int i = 0; i < n; ++i) {
        const std::uint64_t period = 20 + r.uniform_u64(0, 180);
        const std::uint64_t wcet =
            1 + r.uniform_u64(0, std::max<std::uint64_t>(1, period / 8));
        tasks.push_back({period, wcet});
    }
    const double u_level = utilization(tasks) + 0.3;
    const auto best = select_interface(tasks, u_level);
    ASSERT_TRUE(best.has_value());

    const std::uint64_t pi_max = theorem2_max_period(tasks, u_level);
    for (std::uint64_t pi = 1; pi <= pi_max; ++pi) {
        const auto theta = min_budget_for_period(tasks, pi);
        if (!theta) continue;
        const double bw =
            static_cast<double>(*theta) / static_cast<double>(pi);
        EXPECT_GE(bw, best->bandwidth() - 1e-12)
            << "found better pair Pi=" << pi << " Theta=" << *theta;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, selection_optimality,
                         ::testing::Range(1, 9));

TEST(select_interface, tolerance_trades_bandwidth_for_period) {
    const task_set s{{50, 5}, {100, 10}, {200, 20}};
    const auto strict = select_interface(s, 0.8);
    analysis_context cfg;
    cfg.bandwidth_tolerance = 0.15;
    const auto relaxed = select_interface(s, 0.8, cfg);
    ASSERT_TRUE(strict.has_value());
    ASSERT_TRUE(relaxed.has_value());
    // Still schedulable, never worse than tolerance over the minimum,
    // and the period never shrinks.
    EXPECT_EQ(is_schedulable(s, *relaxed), sched_result::schedulable);
    EXPECT_LE(relaxed->bandwidth(),
              strict->bandwidth() * 1.15 + 1e-12);
    EXPECT_GE(relaxed->period, strict->period);
}

TEST(select_interface, zero_tolerance_is_strict_minimum) {
    const task_set s{{50, 5}, {100, 10}};
    analysis_context cfg;
    cfg.bandwidth_tolerance = 0.0;
    const auto a = select_interface(s, 0.5);
    const auto b = select_interface(s, 0.5, cfg);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
}

TEST(select_interface, tolerant_tree_selection_remains_sound) {
    // Tolerance is a heuristic trade (it can help or hurt feasibility),
    // but every interface it selects must still schedule its tasks.
    rng r(77);
    std::vector<task_set> clients(16);
    for (auto& s : clients) {
        const std::uint64_t period = 100 + r.uniform_u64(0, 400);
        s.push_back({period, 1 + r.uniform_u64(0, period / 25)});
    }
    analysis_context cfg;
    cfg.bandwidth_tolerance = 0.10;
    const auto relaxed = select_tree_interfaces(clients, cfg);
    for (std::uint32_t y = 0; y < 4; ++y) {
        for (std::uint32_t p = 0; p < 4; ++p) {
            const auto& iface = relaxed.port_interface(1, y, p);
            ASSERT_TRUE(iface.has_value());
            EXPECT_EQ(is_schedulable(clients[4 * y + p], *iface),
                      sched_result::schedulable);
        }
    }
}

TEST(select_interface, honors_max_period_cap) {
    analysis_context cfg;
    cfg.max_period = 3;
    const auto iface = select_interface({{100, 10}}, 0.1, cfg);
    ASSERT_TRUE(iface.has_value());
    EXPECT_LE(iface->period, 3u);
}

} // namespace
} // namespace bluescale::analysis
