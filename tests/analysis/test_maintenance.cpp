#include <gtest/gtest.h>

#include "analysis/interface_selection.hpp"
#include "analysis/maintenance.hpp"
#include "analysis/schedulability.hpp"

namespace bluescale::analysis {
namespace {

maintenance_model one_op(std::uint64_t period, std::uint64_t cost) {
    maintenance_model m;
    m.ops.push_back({period, cost});
    return m;
}

TEST(maintenance_model, empty_when_no_effective_op) {
    maintenance_model m;
    EXPECT_TRUE(m.empty());
    m.ops.push_back({0, 100}); // zero period disables
    m.ops.push_back({100, 0}); // zero cost disables
    EXPECT_TRUE(m.empty());
    m.ops.push_back({100, 5});
    EXPECT_FALSE(m.empty());
}

TEST(maintenance_model, stolen_counts_critical_instant_instance) {
    const maintenance_model m = one_op(100, 10);
    EXPECT_EQ(m.stolen(0), 0u);
    // Even a sliver of a window can overlap one full instance.
    EXPECT_EQ(m.stolen(1), 10u);
    EXPECT_EQ(m.stolen(99), 10u);
    EXPECT_EQ(m.stolen(100), 20u);
    EXPECT_EQ(m.stolen(250), 30u);
}

TEST(maintenance_model, stolen_is_monotone_and_additive_over_ops) {
    maintenance_model m;
    m.ops.push_back({100, 10});
    m.ops.push_back({30, 3});
    std::uint64_t prev = 0;
    for (std::uint64_t t = 0; t <= 500; ++t) {
        const std::uint64_t s = m.stolen(t);
        EXPECT_GE(s, prev) << "t=" << t;
        prev = s;
    }
    EXPECT_EQ(m.stolen(300), (3 + 1) * 10u + (10 + 1) * 3u);
}

TEST(maintenance_model, utilization_and_burst) {
    maintenance_model m;
    m.ops.push_back({100, 10});
    m.ops.push_back({50, 5});
    EXPECT_DOUBLE_EQ(m.utilization(), 0.2);
    EXPECT_EQ(m.burst(), 15u);
}

TEST(maintenance_sbf, reduces_to_sbf_for_empty_model) {
    const resource_interface r{10, 4};
    const maintenance_model empty;
    for (std::uint64_t t = 0; t <= 200; ++t) {
        EXPECT_EQ(maintenance_sbf(t, r, empty), sbf(t, r)) << "t=" << t;
    }
}

TEST(maintenance_sbf, shifts_window_by_stolen_time) {
    const resource_interface r{10, 4};
    const maintenance_model m = one_op(50, 8);
    // Early windows: theft covers the whole window -> no supply, not wrap.
    EXPECT_EQ(maintenance_sbf(8, r, m), 0u);
    for (std::uint64_t t = 0; t <= 500; ++t) {
        const std::uint64_t theft = m.stolen(t);
        EXPECT_EQ(maintenance_sbf(t, r, m),
                  sbf(t > theft ? t - theft : 0, r))
            << "t=" << t;
    }
    // The port loses only its share of the stolen time, not all of it:
    // strictly better than the naive full-service subtraction once the
    // supply is flowing.
    EXPECT_GT(maintenance_sbf(200, r, m),
              sbf(200, r) - std::min(sbf(200, r), m.stolen(200)));
}

TEST(maintenance_beta, reduces_to_theorem1_for_empty_model) {
    const resource_interface r{20, 9};
    EXPECT_DOUBLE_EQ(maintenance_beta(r, 0.3, {}), theorem1_beta(r, 0.3));
}

TEST(maintenance_beta, undefined_when_maintenance_eats_the_margin) {
    const resource_interface r{10, 5}; // bw = 0.5
    // U = 0.4 leaves 0.1 of margin; mu = 0.2 eats it.
    EXPECT_GT(maintenance_beta(r, 0.4, {}), 0.0);
    EXPECT_EQ(maintenance_beta(r, 0.4, one_op(20, 4)), 0.0);
}

TEST(maintenance_beta, grows_with_interference) {
    const resource_interface r{10, 5};
    const double base = theorem1_beta(r, 0.2);
    const double corrected = maintenance_beta(r, 0.2, one_op(100, 5));
    EXPECT_GT(corrected, base);
}

TEST(maintenance_sched, empty_model_is_bit_identical_to_uncorrected) {
    const task_set tasks = {{100, 20}, {250, 30}, {400, 50}};
    sched_test_config plain;
    sched_test_config corrected;
    corrected.maintenance = {}; // explicit empty
    for (std::uint64_t period = 2; period <= 40; ++period) {
        for (std::uint64_t budget = 1; budget <= period; ++budget) {
            const resource_interface r{period, budget};
            EXPECT_EQ(is_schedulable(tasks, r, plain),
                      is_schedulable(tasks, r, corrected))
                << period << "/" << budget;
        }
    }
}

TEST(maintenance_sched, heavy_maintenance_flips_schedulable_to_not) {
    const task_set tasks = {{100, 40}}; // U = 0.4
    const resource_interface r{10, 5};  // bw = 0.5
    sched_test_config cfg;
    EXPECT_EQ(is_schedulable(tasks, r, cfg), sched_result::schedulable);
    cfg.maintenance = one_op(20, 4); // mu = 0.2 > the 0.1 margin
    EXPECT_EQ(is_schedulable(tasks, r, cfg), sched_result::unschedulable);
}

TEST(maintenance_sched, corrected_admission_needs_more_budget) {
    // The fix the watchdog relies on: under maintenance the minimum
    // feasible budget rises, so maintenance-aware admission provisions
    // strictly more supply for the same task set.
    const task_set tasks = {{200, 30}, {400, 40}}; // U = 0.25
    const std::uint64_t period = 20;
    sched_test_config plain;
    sched_test_config corrected;
    corrected.maintenance = one_op(80, 16); // mu = 0.2
    const auto base =
        min_budget_for_period(tasks, period, {.sched = plain});
    const auto extra =
        min_budget_for_period(tasks, period, {.sched = corrected});
    ASSERT_TRUE(base.has_value());
    ASSERT_TRUE(extra.has_value());
    EXPECT_GT(*extra, *base);
    // And the corrected pick is genuinely feasible under maintenance.
    EXPECT_EQ(is_schedulable(tasks, {period, *extra}, corrected),
              sched_result::schedulable);
    // ...while the uncorrected pick is not.
    EXPECT_EQ(is_schedulable(tasks, {period, *base}, corrected),
              sched_result::unschedulable);
}

} // namespace
} // namespace bluescale::analysis
