// Mega-scale determinism gate (ROADMAP item 2): a depth-8 quadtree
// (65,536 leaves) whole-tree selection must be byte-identical for every
// --threads value. The workload is a uniform profile so the selection
// cache collapses the tree to a handful of distinct selection problems
// -- the test exercises the parallel ordered-merge and the sharded
// cache, not the selector's arithmetic. Runs under scripts/check_tsan.sh
// (suite megascale_determinism) to prove the determinism is not hiding
// a data race.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/selection_cache.hpp"
#include "analysis/tree_analysis.hpp"

namespace bluescale::analysis {
namespace {

constexpr std::uint32_t k_depth8_clients = 65'536; // 4^8 leaves

std::vector<task_set> mega_clients(std::uint32_t n) {
    // Total utilization 0.10 with wcet 4. The wcet matters at this scale:
    // wcet=1 server tasks degenerate (integer budgets plus the blackout
    // bound force every interface to ~2x its load, doubling bandwidth per
    // level), while a few cycles of wcet amortize the quantization and
    // keep a depth-8 tree feasible.
    return std::vector<task_set>(
        n, task_set{{static_cast<std::uint64_t>(40) * n, 4}});
}

analysis_context mega_context(selection_cache& cache, unsigned threads,
                              sched_test_stats* stats = nullptr) {
    analysis_context ctx;
    ctx.max_period = 1u << 26; // leaf periods exceed the 2^16 default cap
    ctx.sched.cheap_first = true;
    ctx.cache = &cache;
    ctx.threads = threads;
    if (stats != nullptr) ctx.sched.stats = stats;
    return ctx;
}

// Canonical byte serialization of everything a selection decides.
std::string canonical(const tree_selection& sel) {
    std::string out;
    out += sel.feasible ? "feasible;" : "infeasible;";
    out += sel.failure.to_string();
    char bw[64];
    std::snprintf(bw, sizeof bw, ";root=%a;", sel.root_bandwidth);
    out += bw;
    for (const auto& level : sel.levels) {
        for (const auto& se : level) {
            for (const auto& port : se.ports) {
                if (port) {
                    out += std::to_string(port->period);
                    out += '/';
                    out += std::to_string(port->budget);
                } else {
                    out += '-';
                }
                out += ';';
            }
        }
    }
    return out;
}

TEST(megascale_determinism, depth8_selection_identical_threads_1_vs_8) {
    const auto clients = mega_clients(k_depth8_clients);

    selection_cache cache_serial;
    sched_test_stats work_serial;
    const auto serial = select_tree_interfaces(
        clients, mega_context(cache_serial, 1, &work_serial));

    selection_cache cache_parallel;
    sched_test_stats work_parallel;
    const auto parallel = select_tree_interfaces(
        clients, mega_context(cache_parallel, 8, &work_parallel));

    ASSERT_TRUE(serial.feasible) << serial.failure.to_string();
    EXPECT_EQ(serial.shape.leaf_level, 7u);

    // Byte-identical selections...
    EXPECT_EQ(canonical(parallel), canonical(serial));
    // ...and byte-identical work totals: a cache hit replays the miss's
    // counters, so even the hit/miss split only redistributes, never
    // changes, the summed work.
    EXPECT_EQ(work_parallel.tests_run, work_serial.tests_run);
    EXPECT_EQ(work_parallel.points_checked, work_serial.points_checked);
    EXPECT_EQ(work_parallel.ladder_cheap_decided,
              work_serial.ladder_cheap_decided);
    EXPECT_EQ(work_parallel.ladder_exact_fallbacks,
              work_serial.ladder_exact_fallbacks);
    EXPECT_EQ(work_parallel.cache_hits + work_parallel.cache_misses,
              work_serial.cache_hits + work_serial.cache_misses);

    // The uniform profile collapses the 87,380 port selections (21,845
    // SEs x 4 ports) to a handful of distinct problems -- the scale
    // contract that makes depth-8 tractable.
    EXPECT_LT(cache_serial.stats().misses, 64u);
    EXPECT_GT(cache_serial.stats().hits, 80'000u);
}

TEST(megascale_determinism, threads_zero_means_hardware_concurrency) {
    // threads == 0 must behave like any explicit thread count: identical
    // bytes, whatever the machine's core count resolves to.
    const auto clients = mega_clients(1024); // depth 5: fast smoke
    selection_cache cache_a, cache_b;
    const auto a =
        select_tree_interfaces(clients, mega_context(cache_a, 1));
    const auto b =
        select_tree_interfaces(clients, mega_context(cache_b, 0));
    EXPECT_EQ(canonical(b), canonical(a));
}

} // namespace
} // namespace bluescale::analysis
