#include <gtest/gtest.h>

#include <tuple>

#include "analysis/periodic_resource.hpp"

namespace bluescale::analysis {
namespace {

TEST(sbf, zero_for_null_interface) {
    EXPECT_EQ(sbf(100, {0, 0}), 0u);
    EXPECT_EQ(sbf(100, {10, 0}), 0u);
}

TEST(sbf, dedicated_resource_supplies_t) {
    // Theta == Pi: the VE owns the resource; sbf(t) == t.
    const resource_interface full{5, 5};
    for (std::uint64_t t = 0; t <= 50; ++t) {
        EXPECT_EQ(sbf(t, full), t);
    }
}

TEST(sbf, blackout_interval_is_two_gaps) {
    // sbf(t) == 0 for t <= 2(Pi - Theta) (used by Theorem 2's proof).
    const resource_interface r{10, 4};
    const std::uint64_t blackout = 2 * (10 - 4);
    for (std::uint64_t t = 0; t <= blackout; ++t) {
        EXPECT_EQ(sbf(t, r), 0u) << "t=" << t;
    }
    EXPECT_GT(sbf(blackout + 1, r), 0u);
}

TEST(sbf, known_values_paper_formula) {
    // Pi=5, Theta=2: gap=3, blackout through t=6.
    const resource_interface r{5, 2};
    EXPECT_EQ(sbf(6, r), 0u);
    EXPECT_EQ(sbf(7, r), 1u);
    EXPECT_EQ(sbf(8, r), 2u);
    EXPECT_EQ(sbf(9, r), 2u);  // idle gap of next period
    EXPECT_EQ(sbf(12, r), 3u);
    EXPECT_EQ(sbf(13, r), 4u);
    EXPECT_EQ(sbf(17, r), 5u);
}

TEST(sbf, one_full_period_supplies_at_least_theta_minus_gap) {
    const resource_interface r{10, 7};
    // Any window of length 2*Pi contains at least Theta.
    EXPECT_GE(sbf(20, r), 7u);
}

class sbf_property
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(sbf_property, monotone_nondecreasing) {
    const auto [pi, theta] = GetParam();
    const resource_interface r{pi, theta};
    std::uint64_t prev = 0;
    for (std::uint64_t t = 0; t <= 6 * pi; ++t) {
        const std::uint64_t s = sbf(t, r);
        EXPECT_GE(s, prev) << "t=" << t;
        prev = s;
    }
}

TEST_P(sbf_property, never_exceeds_elapsed_time_or_bandwidth_envelope) {
    const auto [pi, theta] = GetParam();
    const resource_interface r{pi, theta};
    for (std::uint64_t t = 0; t <= 6 * pi; ++t) {
        const std::uint64_t s = sbf(t, r);
        EXPECT_LE(s, t);
        // Upper envelope: bandwidth * t + Theta.
        EXPECT_LE(static_cast<double>(s),
                  r.bandwidth() * static_cast<double>(t) +
                      static_cast<double>(theta) + 1e-9);
    }
}

TEST_P(sbf_property, periodic_increment_is_theta) {
    // Periodicity holds once past the initial offset Pi - Theta (inside
    // the blackout the first-period supply profile differs).
    const auto [pi, theta] = GetParam();
    const resource_interface r{pi, theta};
    for (std::uint64_t t = pi - theta; t <= 4 * pi; ++t) {
        EXPECT_EQ(sbf(t + pi, r), sbf(t, r) + theta) << "t=" << t;
    }
}

TEST_P(sbf_property, lsbf_lower_bounds_sbf) {
    const auto [pi, theta] = GetParam();
    const resource_interface r{pi, theta};
    for (std::uint64_t t = 0; t <= 6 * pi; ++t) {
        EXPECT_LE(lsbf(t, r), static_cast<double>(sbf(t, r)) + 1e-9)
            << "t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    interfaces, sbf_property,
    ::testing::Values(std::make_tuple(5u, 2u), std::make_tuple(10u, 1u),
                      std::make_tuple(10u, 9u), std::make_tuple(7u, 7u),
                      std::make_tuple(16u, 4u), std::make_tuple(100u, 37u),
                      std::make_tuple(3u, 1u), std::make_tuple(1u, 1u)));

TEST(resource_interface, bandwidth) {
    EXPECT_DOUBLE_EQ((resource_interface{4, 1}).bandwidth(), 0.25);
    EXPECT_DOUBLE_EQ((resource_interface{0, 0}).bandwidth(), 0.0);
    EXPECT_DOUBLE_EQ((resource_interface{5, 5}).bandwidth(), 1.0);
}

} // namespace
} // namespace bluescale::analysis
