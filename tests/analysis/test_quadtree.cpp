#include <gtest/gtest.h>

#include "analysis/quadtree.hpp"

namespace bluescale::analysis {
namespace {

TEST(quadtree_shape, sixteen_clients) {
    const auto s = make_quadtree_shape(16);
    EXPECT_EQ(s.leaf_level, 1u);
    EXPECT_EQ(s.padded_clients, 16u);
    EXPECT_EQ(s.total_ses(), 5u); // 1 root + 4 leaves (paper Fig. 2(a))
    EXPECT_EQ(s.ses_at_level(0), 1u);
    EXPECT_EQ(s.ses_at_level(1), 4u);
}

TEST(quadtree_shape, sixty_four_clients) {
    const auto s = make_quadtree_shape(64);
    EXPECT_EQ(s.leaf_level, 2u);
    EXPECT_EQ(s.padded_clients, 64u);
    EXPECT_EQ(s.total_ses(), 21u); // 1 + 4 + 16 (paper Fig. 2(d))
    EXPECT_EQ(s.ses_at_level(2), 16u);
}

TEST(quadtree_shape, four_clients_single_se) {
    const auto s = make_quadtree_shape(4);
    EXPECT_EQ(s.leaf_level, 0u);
    EXPECT_EQ(s.total_ses(), 1u);
}

TEST(quadtree_shape, non_power_of_four_pads_up) {
    const auto s = make_quadtree_shape(20);
    EXPECT_EQ(s.padded_clients, 64u);
    EXPECT_EQ(s.leaf_level, 2u);
}

TEST(quadtree_shape, tiny_client_counts) {
    EXPECT_EQ(make_quadtree_shape(1).total_ses(), 1u);
    EXPECT_EQ(make_quadtree_shape(2).total_ses(), 1u);
    EXPECT_EQ(make_quadtree_shape(5).padded_clients, 16u);
}

TEST(quadtree_shape, leaf_mapping) {
    const auto s = make_quadtree_shape(16);
    EXPECT_EQ(s.leaf_se_of_client(0), 0u);
    EXPECT_EQ(s.leaf_port_of_client(0), 0u);
    EXPECT_EQ(s.leaf_se_of_client(7), 1u);
    EXPECT_EQ(s.leaf_port_of_client(7), 3u);
    EXPECT_EQ(s.leaf_se_of_client(15), 3u);
    EXPECT_EQ(s.leaf_port_of_client(15), 3u);
}

TEST(quadtree_shape, parent_child_round_trip) {
    // SE(x+1, 4y+p) must be the child at port p of SE(x, y).
    for (std::uint32_t y = 0; y < 16; ++y) {
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            const std::uint32_t child = quadtree_shape::child_order(y, p);
            EXPECT_EQ(quadtree_shape::parent_order(child), y);
            EXPECT_EQ(quadtree_shape::parent_port(child), p);
        }
    }
}

TEST(quadtree_shape, request_path_length_is_leaf_level_plus_one) {
    // A request from any client crosses exactly leaf_level+1 SEs.
    const auto s = make_quadtree_shape(64);
    std::uint32_t order = s.leaf_se_of_client(63);
    std::uint32_t hops = 1; // the leaf SE itself
    for (std::uint32_t l = s.leaf_level; l > 0; --l) {
        order = quadtree_shape::parent_order(order);
        ++hops;
    }
    EXPECT_EQ(order, 0u); // must land at the root
    EXPECT_EQ(hops, s.leaf_level + 1);
}

} // namespace
} // namespace bluescale::analysis
