#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "analysis/interface_selection.hpp"
#include "analysis/schedulability.hpp"
#include "sim/rng.hpp"

namespace bluescale::analysis {
namespace {

/// Brute-force EDF simulation on the worst-case periodic supply pattern:
/// the first period delivers its budget as EARLY as possible and every
/// later period as LATE as possible, which realizes the maximal blackout
/// 2(Pi - Theta) that sbf models. All tasks release synchronously at 0.
/// Returns true when no deadline is missed within the horizon.
bool edf_simulation_meets_deadlines(const task_set& tasks,
                                    const resource_interface& iface,
                                    std::uint64_t horizon) {
    struct job {
        std::uint64_t deadline;
        std::uint64_t remaining;
    };
    std::vector<std::deque<job>> queues(tasks.size());

    for (std::uint64_t t = 0; t < horizon; ++t) {
        // Releases.
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (tasks[i].period != 0 && t % tasks[i].period == 0 &&
                tasks[i].wcet > 0) {
                queues[i].push_back({t + tasks[i].period, tasks[i].wcet});
            }
        }
        // Supply in this slot?
        const std::uint64_t phase = t % iface.period;
        const bool supplied =
            t < iface.period
                ? phase < iface.budget                  // first period: early
                : phase >= iface.period - iface.budget; // later: late
        if (supplied) {
            // EDF pick.
            int best = -1;
            std::uint64_t best_deadline = ~0ull;
            for (std::size_t i = 0; i < queues.size(); ++i) {
                if (!queues[i].empty() &&
                    queues[i].front().deadline < best_deadline) {
                    best_deadline = queues[i].front().deadline;
                    best = static_cast<int>(i);
                }
            }
            if (best >= 0) {
                auto& q = queues[static_cast<std::size_t>(best)];
                if (--q.front().remaining == 0) q.pop_front();
            }
        }
        // Deadline checks (a job due at t+1 must be done by end of slot t).
        for (auto& q : queues) {
            if (!q.empty() && q.front().deadline <= t + 1 &&
                q.front().remaining > 0) {
                return false;
            }
        }
    }
    return true;
}

TEST(theorem1_beta, undefined_when_bandwidth_at_most_utilization) {
    EXPECT_EQ(theorem1_beta({10, 2}, 0.2), 0.0);
    EXPECT_EQ(theorem1_beta({10, 2}, 0.5), 0.0);
}

TEST(theorem1_beta, matches_formula) {
    // bw=0.5, gap=5, U=0.25 -> beta = 2*0.5*5/0.25 = 20.
    EXPECT_DOUBLE_EQ(theorem1_beta({10, 5}, 0.25), 20.0);
}

TEST(theorem1_beta, dedicated_resource_has_zero_bound) {
    EXPECT_DOUBLE_EQ(theorem1_beta({10, 10}, 0.5), 0.0);
}

TEST(is_schedulable, empty_set_always_schedulable) {
    EXPECT_EQ(is_schedulable({}, {10, 1}), sched_result::schedulable);
}

TEST(is_schedulable, null_interface_never_schedulable) {
    EXPECT_EQ(is_schedulable({{10, 1}}, {0, 0}),
              sched_result::unschedulable);
    EXPECT_EQ(is_schedulable({{10, 1}}, {10, 0}),
              sched_result::unschedulable);
}

TEST(is_schedulable, utilization_precondition) {
    // U = 0.5, bandwidth = 0.5: strict inequality required.
    EXPECT_EQ(is_schedulable({{10, 5}}, {10, 5}),
              sched_result::unschedulable);
}

TEST(is_schedulable, dedicated_resource_low_utilization) {
    EXPECT_EQ(is_schedulable({{10, 5}}, {1, 1}), sched_result::schedulable);
}

TEST(is_schedulable, blackout_longer_than_period_fails) {
    // Pi=10, Theta=1 -> blackout 18 > period 5: first job must miss.
    EXPECT_EQ(is_schedulable({{5, 1}}, {10, 1}),
              sched_result::unschedulable);
}

TEST(is_schedulable, textbook_feasible_case) {
    // Task (100, 20) on (10, 3): bw 0.3 > U 0.2; sbf(100) >= 20.
    EXPECT_EQ(is_schedulable({{100, 20}}, {10, 3}),
              sched_result::schedulable);
}

TEST(is_schedulable, multiple_tasks) {
    const task_set s{{50, 5}, {100, 10}, {200, 20}};
    // U = 0.1 + 0.1 + 0.1 = 0.3.
    EXPECT_EQ(is_schedulable(s, {10, 4}), sched_result::schedulable);
    EXPECT_EQ(is_schedulable(s, {10, 3}), sched_result::unschedulable);
}

TEST(is_schedulable, counters_accumulate) {
    sched_test_stats st;
    sched_test_config cfg;
    cfg.stats = &st;
    // Task (5, 1) on (4, 2): beta = 2*0.5*2/0.3 ~= 6.7, so the step point
    // t = 5 is actually inspected.
    (void)is_schedulable({{5, 1}}, {4, 2}, cfg);
    EXPECT_EQ(st.tests_run, 1u);
    EXPECT_GT(st.points_checked, 0u);
    (void)is_schedulable({{5, 1}}, {4, 2}, cfg);
    EXPECT_EQ(st.tests_run, 2u);
}

TEST(is_schedulable, aborts_when_bound_explodes) {
    sched_test_config cfg;
    cfg.max_test_points = 4;
    // Bandwidth (0.5) barely above U (0.499999) with a tiny supply gap:
    // beta ~= 2e6 and the short-period task generates ~250k step points,
    // far beyond the cap -> the test must abort, not hang.
    const task_set s{{8, 2}, {1'000'000, 249'999}};
    EXPECT_EQ(is_schedulable(s, {4, 2}, cfg), sched_result::aborted);
}

struct sched_case {
    task_set tasks;
    resource_interface iface;
};

class schedulability_soundness
    : public ::testing::TestWithParam<sched_case> {};

TEST_P(schedulability_soundness,
       analytic_schedulable_implies_simulation_meets_deadlines) {
    const auto& p = GetParam();
    const auto verdict = is_schedulable(p.tasks, p.iface);
    if (verdict == sched_result::schedulable) {
        std::uint64_t horizon = 10 * p.iface.period;
        for (const auto& t : p.tasks) horizon = std::max(horizon, 10 * t.period);
        EXPECT_TRUE(
            edf_simulation_meets_deadlines(p.tasks, p.iface, horizon))
            << "analysis claimed schedulable but worst-case supply "
               "simulation missed a deadline";
    }
}

INSTANTIATE_TEST_SUITE_P(
    cases, schedulability_soundness,
    ::testing::Values(
        sched_case{{{100, 20}}, {10, 3}},
        sched_case{{{50, 5}, {100, 10}, {200, 20}}, {10, 4}},
        sched_case{{{20, 2}, {40, 4}}, {5, 2}},
        sched_case{{{30, 3}}, {7, 2}},
        sched_case{{{10, 1}, {20, 1}, {40, 1}, {80, 1}}, {8, 2}},
        sched_case{{{16, 4}}, {4, 2}},
        sched_case{{{12, 6}}, {2, 2}},
        sched_case{{{9, 1}, {27, 3}}, {6, 2}}));

class schedulability_random_oracle : public ::testing::TestWithParam<int> {
};

TEST_P(schedulability_random_oracle, never_accepts_what_simulation_rejects) {
    // Randomized soundness sweep: whenever the analytic test says
    // schedulable, a brute-force EDF simulation on the worst-case supply
    // pattern must meet every deadline. (The converse need not hold --
    // the test is sufficient, not exact.)
    rng rnd(100 + GetParam());
    int accepted = 0;
    for (int trial = 0; trial < 60; ++trial) {
        task_set tasks;
        const int n = 1 + static_cast<int>(rnd.pick(4));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t period = 4 + rnd.uniform_u64(0, 60);
            tasks.push_back(
                {period, 1 + rnd.uniform_u64(0, period / 2)});
        }
        const std::uint64_t pi = 2 + rnd.uniform_u64(0, 14);
        const resource_interface iface{pi, 1 + rnd.uniform_u64(0, pi - 1)};
        if (is_schedulable(tasks, iface) != sched_result::schedulable) {
            continue;
        }
        ++accepted;
        std::uint64_t horizon = 20 * pi;
        for (const auto& t : tasks) {
            horizon = std::max(horizon, 20 * t.period);
        }
        ASSERT_TRUE(edf_simulation_meets_deadlines(tasks, iface, horizon))
            << "trial " << trial << ": accepted an unschedulable system";
    }
    // The sweep must exercise the accepting path, not vacuously pass.
    EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(seeds, schedulability_random_oracle,
                         ::testing::Range(0, 10));

TEST(sufficient_portfolio, schedulable_verdicts_are_a_subset_of_exact) {
    // The degraded-precision mode (the analysis service's circuit-breaker
    // fallback) must stay SOUND: whenever the linear-time portfolio
    // proves schedulability, the pseudo-polynomial exact test agrees.
    // The converse need not hold -- `aborted` (undecided) is expected.
    rng rnd(424);
    int proved = 0;
    int undecided = 0;
    for (int trial = 0; trial < 200; ++trial) {
        task_set tasks;
        const int n = 1 + static_cast<int>(rnd.pick(4));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t period = 4 + rnd.uniform_u64(0, 120);
            tasks.push_back(
                {period, 1 + rnd.uniform_u64(0, period / 3)});
        }
        const std::uint64_t pi = 2 + rnd.uniform_u64(0, 14);
        const resource_interface iface{pi, 1 + rnd.uniform_u64(0, pi - 1)};
        const auto cheap = is_schedulable_sufficient(tasks, iface);
        if (cheap == sched_result::schedulable) {
            ++proved;
            EXPECT_EQ(is_schedulable(tasks, iface),
                      sched_result::schedulable)
                << "trial " << trial
                << ": sufficient portfolio accepted a system the exact "
                   "test rejects (unsound degraded mode)";
        } else if (cheap == sched_result::aborted) {
            ++undecided;
        } else {
            // An unschedulable verdict is a proof in this direction too.
            EXPECT_NE(is_schedulable(tasks, iface),
                      sched_result::schedulable)
                << "trial " << trial;
        }
    }
    // The sweep must exercise both the proving and the undecided paths.
    EXPECT_GT(proved, 0);
    EXPECT_GT(undecided, 0);
}

TEST(sufficient_portfolio, config_flag_delegates_to_the_portfolio) {
    // sched_test_config::sufficient_only answers through the portfolio
    // bit-for-bit -- the service's breaker swaps tests, not semantics.
    rng rnd(99);
    sched_test_config degraded;
    degraded.sufficient_only = true;
    for (int trial = 0; trial < 60; ++trial) {
        task_set tasks;
        const int n = 1 + static_cast<int>(rnd.pick(3));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t period = 4 + rnd.uniform_u64(0, 60);
            tasks.push_back(
                {period, 1 + rnd.uniform_u64(0, period / 2)});
        }
        const std::uint64_t pi = 2 + rnd.uniform_u64(0, 14);
        const resource_interface iface{pi, 1 + rnd.uniform_u64(0, pi - 1)};
        EXPECT_EQ(is_schedulable(tasks, iface, degraded),
                  is_schedulable_sufficient(tasks, iface))
            << "trial " << trial;
    }
}

TEST(schedulability_oracle, selection_results_survive_simulation) {
    // The end of the pipeline: interfaces chosen by select_interface must
    // pass the brute-force oracle too.
    rng rnd(55);
    for (int trial = 0; trial < 30; ++trial) {
        task_set tasks;
        const int n = 1 + static_cast<int>(rnd.pick(3));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t period = 10 + rnd.uniform_u64(0, 90);
            tasks.push_back(
                {period, 1 + rnd.uniform_u64(0, period / 6)});
        }
        const auto iface =
            select_interface(tasks, utilization(tasks) + 0.25);
        if (!iface || iface->budget == 0) continue;
        std::uint64_t horizon = 20 * iface->period;
        for (const auto& t : tasks) {
            horizon = std::max(horizon, 20 * t.period);
        }
        EXPECT_TRUE(
            edf_simulation_meets_deadlines(tasks, *iface, horizon))
            << "trial " << trial;
    }
}

} // namespace
} // namespace bluescale::analysis
