#include <gtest/gtest.h>

#include <utility>

#include "analysis/interface_selection.hpp"
#include "analysis/selection_cache.hpp"
#include "analysis/tree_analysis.hpp"
#include "sim/rng.hpp"

namespace bluescale::analysis {
namespace {

std::vector<task_set> random_clients(std::uint64_t seed, std::uint32_t n) {
    rng r(seed);
    std::vector<task_set> clients(n);
    for (auto& s : clients) {
        const std::uint64_t period = 100 + r.uniform_u64(0, 400);
        s.push_back({period, 1 + r.uniform_u64(0, period / 25)});
    }
    return clients;
}

TEST(selection_cache, hit_is_bit_identical_to_the_uncached_call) {
    const task_set tasks{{50, 5}, {100, 10}, {200, 20}};

    sched_test_stats plain_work;
    analysis_context plain;
    plain.sched.stats = &plain_work;
    const auto expected = select_interface(tasks, 0.8, plain);

    selection_cache cache;
    sched_test_stats miss_work, hit_work;
    analysis_context ctx;
    ctx.cache = &cache;
    ctx.sched.stats = &miss_work;
    const auto first = select_interface(tasks, 0.8, ctx);
    ctx.sched.stats = &hit_work;
    const auto second = select_interface(tasks, 0.8, ctx);

    EXPECT_EQ(first, expected);
    EXPECT_EQ(second, expected);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    // The hit replays the original work counters: identical totals, only
    // the hit/miss split differs.
    EXPECT_EQ(miss_work.tests_run, plain_work.tests_run);
    EXPECT_EQ(miss_work.points_checked, plain_work.points_checked);
    EXPECT_EQ(hit_work.tests_run, miss_work.tests_run);
    EXPECT_EQ(hit_work.points_checked, miss_work.points_checked);
    EXPECT_EQ(miss_work.cache_misses, 1u);
    EXPECT_EQ(hit_work.cache_hits, 1u);
    EXPECT_EQ(hit_work.cache_misses, 0u);
}

TEST(selection_cache, infeasibility_is_cached_too) {
    selection_cache cache;
    analysis_context ctx;
    ctx.cache = &cache;
    EXPECT_EQ(select_interface({{10, 11}}, 1.1, ctx), std::nullopt);
    EXPECT_EQ(select_interface({{10, 11}}, 1.1, ctx), std::nullopt);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(selection_cache, tree_selection_identical_with_cache_on_or_off) {
    const auto clients = random_clients(42, 16);

    sched_test_stats off_work;
    analysis_context off;
    off.sched.stats = &off_work;
    const auto base = select_tree_interfaces(clients, off);

    selection_cache cache;
    sched_test_stats on_work;
    analysis_context on;
    on.cache = &cache;
    on.sched.stats = &on_work;
    const auto cached = select_tree_interfaces(clients, on);

    EXPECT_EQ(cached.feasible, base.feasible);
    EXPECT_EQ(cached.failure, base.failure);
    EXPECT_EQ(cached.root_bandwidth, base.root_bandwidth);
    for (std::uint32_t l = 0; l < base.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < base.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(cached.levels[l][y].ports[p],
                          base.levels[l][y].ports[p]);
            }
        }
    }
    // Work totals replay identically; only the hit/miss counters differ.
    EXPECT_EQ(on_work.tests_run, off_work.tests_run);
    EXPECT_EQ(on_work.points_checked, off_work.points_checked);
    EXPECT_EQ(off_work.cache_hits + off_work.cache_misses, 0u);
    EXPECT_EQ(on_work.cache_hits + on_work.cache_misses,
              cache.stats().hits + cache.stats().misses);
}

TEST(selection_cache, analysis_knobs_are_part_of_the_key) {
    const task_set tasks{{50, 5}, {100, 10}};
    selection_cache cache;
    analysis_context ctx;
    ctx.cache = &cache;
    (void)select_interface(tasks, 0.5, ctx);

    // Same tasks, different knobs: each variant must miss (a hit would
    // hand back a result computed under different rules).
    analysis_context capped = ctx;
    capped.max_period = 7;
    (void)select_interface(tasks, 0.5, capped);

    analysis_context tolerant = ctx;
    tolerant.bandwidth_tolerance = 0.10;
    (void)select_interface(tasks, 0.5, tolerant);

    analysis_context maintained = ctx;
    maintained.sched.maintenance.ops.push_back({1000, 40});
    (void)select_interface(tasks, 0.5, maintained);

    analysis_context laddered = ctx;
    laddered.sched.cheap_first = true;
    (void)select_interface(tasks, 0.5, laddered);

    // A different utilization context is a different key as well.
    (void)select_interface(tasks, 0.6, ctx);

    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 6u);
    EXPECT_EQ(cache.size(), 6u);
}

TEST(selection_cache, capacity_bounds_entries_with_fifo_eviction) {
    selection_cache cache(16); // one entry per shard
    analysis_context ctx;
    ctx.cache = &cache;
    for (std::uint64_t p = 100; p < 200; ++p) {
        (void)select_interface({{p, 1}}, 0.5, ctx);
    }
    EXPECT_LE(cache.size(), 16u);
    EXPECT_GT(cache.stats().evictions, 0u);
    // An evicted key recomputes (miss), not a wrong hit.
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(selection_cache, committed_update_needs_no_invalidation) {
    // The cache key is the FULL input of select_interface, so a committed
    // reconfiguration cannot stale an entry: the changed client resolves
    // under a different key (a miss), untouched subtrees re-hit their old
    // keys, and the entries those hits return are still exactly what an
    // uncached selection would compute. (Result caches keyed on committed
    // state -- svc::analysis_service's evaluation cache, keyed by
    // subtree_signature -- must invalidate instead; the signature test
    // below shows the commit perturbs that key.)
    auto clients = random_clients(7, 16);
    selection_cache cache;
    analysis_context ctx;
    ctx.cache = &cache;

    auto sel = select_tree_interfaces(clients, ctx);
    ASSERT_TRUE(sel.feasible);
    const auto sig_before = subtree_signature(sel, clients, 3);

    auto update =
        evaluate_client_update(sel, clients, 3, task_set{{400, 8}}, ctx);
    apply_client_update(std::move(update), sel, clients);
    const auto sig_after = subtree_signature(sel, clients, 3);
    EXPECT_NE(sig_before, sig_after); // state-keyed caches must invalidate

    // Post-commit, a fresh uncached selection agrees with a fully cached
    // one: nothing the commit changed can be served stale.
    const auto cached = select_tree_interfaces(clients, ctx);
    const auto fresh = select_tree_interfaces(clients);
    EXPECT_EQ(cached.feasible, fresh.feasible);
    EXPECT_EQ(cached.root_bandwidth, fresh.root_bandwidth);
    for (std::uint32_t l = 0; l < fresh.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < fresh.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(cached.levels[l][y].ports[p],
                          fresh.levels[l][y].ports[p]);
            }
        }
    }
}

TEST(selection_cache, clear_empties_every_shard) {
    selection_cache cache;
    analysis_context ctx;
    ctx.cache = &cache;
    for (std::uint64_t p = 100; p < 120; ++p) {
        (void)select_interface({{p, 1}}, 0.5, ctx);
    }
    EXPECT_GT(cache.size(), 0u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace bluescale::analysis
