#include <gtest/gtest.h>

#include "analysis/interface_selection.hpp"
#include "analysis/schedulability.hpp"
#include "analysis/tree_analysis.hpp"
#include "sim/rng.hpp"

namespace bluescale::analysis {
namespace {

task_set random_tasks(rng& r, int max_tasks = 5) {
    task_set tasks;
    const int n = 1 + static_cast<int>(r.pick(max_tasks));
    for (int i = 0; i < n; ++i) {
        const std::uint64_t period = 10 + r.uniform_u64(0, 490);
        const std::uint64_t wcet =
            1 + r.uniform_u64(0, std::max<std::uint64_t>(1, period / 6));
        tasks.push_back({period, wcet});
    }
    return tasks;
}

resource_interface random_interface(rng& r) {
    const std::uint64_t pi = 1 + r.uniform_u64(0, 99);
    const std::uint64_t theta = 1 + r.uniform_u64(0, pi - 1);
    return {pi, theta};
}

// The soundness contract behind the cheap-first ladder: whenever the
// sufficient portfolio decides, the exact test agrees. A disagreement
// here would let the ladder flip a selection verdict.
class ladder_agreement : public ::testing::TestWithParam<int> {};

TEST_P(ladder_agreement, sufficient_verdicts_match_exact) {
    rng r(100 + GetParam());
    for (int i = 0; i < 200; ++i) {
        const auto tasks = random_tasks(r);
        const auto iface = random_interface(r);
        const auto quick = is_schedulable_sufficient(tasks, iface);
        if (quick == sched_result::aborted) continue; // undecided is fine
        sched_test_config exact_cfg;
        exact_cfg.max_test_points = 1u << 26; // generous: avoid aborts
        const auto exact = is_schedulable(tasks, iface, exact_cfg);
        ASSERT_NE(exact, sched_result::aborted);
        EXPECT_EQ(quick, exact)
            << "portfolio flipped the verdict for Pi=" << iface.period
            << " Theta=" << iface.budget << " (" << tasks.size()
            << " tasks)";
    }
}

TEST_P(ladder_agreement, laddered_test_never_flips_a_decided_verdict) {
    rng r(900 + GetParam());
    for (int i = 0; i < 200; ++i) {
        const auto tasks = random_tasks(r);
        const auto iface = random_interface(r);
        const auto exact = is_schedulable(tasks, iface);
        sched_test_config ladder;
        ladder.cheap_first = true;
        const auto mixed = is_schedulable(tasks, iface, ladder);
        if (exact == sched_result::aborted) {
            // The only permitted divergence: the capped exact test gave
            // up, the ladder may still prove schedulability.
            EXPECT_NE(mixed, sched_result::unschedulable);
        } else {
            EXPECT_EQ(mixed, exact);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, ladder_agreement, ::testing::Range(1, 9));

TEST(ladder_agreement, selection_identical_with_and_without_ladder) {
    // Whole-tree sweep: the laddered selection must pick bit-identical
    // interfaces whenever the exact test never aborts (it does not at
    // these scales -- the abort counter proves it).
    for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        rng r(seed);
        std::vector<task_set> clients(16);
        for (auto& s : clients) s = random_tasks(r, 3);

        sched_test_stats exact_work;
        analysis_context exact_ctx;
        exact_ctx.sched.stats = &exact_work;
        const auto exact = select_tree_interfaces(clients, exact_ctx);

        sched_test_stats ladder_work;
        analysis_context ladder_ctx;
        ladder_ctx.sched.cheap_first = true;
        ladder_ctx.sched.stats = &ladder_work;
        const auto laddered = select_tree_interfaces(clients, ladder_ctx);

        EXPECT_EQ(laddered.feasible, exact.feasible);
        EXPECT_EQ(laddered.failure, exact.failure);
        EXPECT_EQ(laddered.root_bandwidth, exact.root_bandwidth);
        ASSERT_EQ(laddered.levels.size(), exact.levels.size());
        for (std::uint32_t l = 0; l < exact.levels.size(); ++l) {
            for (std::uint32_t y = 0; y < exact.levels[l].size(); ++y) {
                for (std::uint32_t p = 0; p < 4; ++p) {
                    EXPECT_EQ(laddered.levels[l][y].ports[p],
                              exact.levels[l][y].ports[p])
                        << "SE(" << l << "," << y << ") port " << p;
                }
            }
        }
        // The ladder decided candidates cheaply...
        EXPECT_GT(ladder_work.ladder_cheap_decided, 0u);
        // ...and the exact-only run never used the ladder.
        EXPECT_EQ(exact_work.ladder_cheap_decided, 0u);
        EXPECT_EQ(exact_work.ladder_exact_fallbacks, 0u);
    }
}

TEST(ladder_stats, cheap_decisions_and_fallbacks_are_counted) {
    sched_test_stats stats;
    sched_test_config cfg;
    cfg.cheap_first = true;
    cfg.stats = &stats;
    // A trivially schedulable pair: the portfolio decides it outright.
    const task_set easy{{1000, 1}};
    EXPECT_EQ(is_schedulable(easy, {10, 9}, cfg),
              sched_result::schedulable);
    EXPECT_EQ(stats.ladder_cheap_decided, 1u);
    EXPECT_EQ(stats.ladder_exact_fallbacks, 0u);

    // A necessary-filter failure is also a cheap decision.
    EXPECT_EQ(is_schedulable(task_set{{10, 9}}, {10, 1}, cfg),
              sched_result::unschedulable);
    EXPECT_EQ(stats.ladder_cheap_decided, 2u);
}

TEST(ladder_stats, sufficient_only_wins_over_cheap_first) {
    // sufficient_only is the circuit breaker's degraded mode; cheap_first
    // must not resurrect the exact test behind it.
    sched_test_stats a_stats, b_stats;
    sched_test_config a;
    a.sufficient_only = true;
    a.stats = &a_stats;
    sched_test_config b = a;
    b.cheap_first = true;
    b.stats = &b_stats;
    const task_set tasks{{50, 5}, {80, 8}};
    const resource_interface iface{20, 7};
    EXPECT_EQ(is_schedulable(tasks, iface, a),
              is_schedulable(tasks, iface, b));
    EXPECT_EQ(a_stats, b_stats);
}

} // namespace
} // namespace bluescale::analysis
